//! Cross-crate integration tests: a small trained stack runs missions end
//! to end through the accelerator, protections change outcomes the way the
//! paper describes, and energy accounting stays consistent.
//!
//! These tests train a miniature system (seconds) rather than loading the
//! full cached testbed, so `cargo test` works from a clean checkout.

use create_ai::agents::presets::{ControllerPreset, PlannerPreset, PredictorPreset};
use create_ai::agents::{datasets, vocab, ControllerModel, PlannerModel};
use create_ai::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

fn tiny_deployment() -> &'static Deployment {
    static DEP: OnceLock<Deployment> = OnceLock::new();
    DEP.get_or_init(|| {
        let planner_preset = PlannerPreset {
            proxy_layers: 2,
            proxy_hidden: 32,
            proxy_mlp: 64,
            proxy_heads: 4,
            ..PlannerPreset::jarvis()
        };
        let controller_preset = ControllerPreset {
            proxy_layers: 1,
            proxy_hidden: 32,
            proxy_mlp: 64,
            proxy_heads: 4,
            ..ControllerPreset::jarvis()
        };
        let mut rng = StdRng::seed_from_u64(2024);
        let samples: Vec<_> = vocab::training_samples()
            .into_iter()
            .filter(|s| {
                [TaskId::Wooden, TaskId::Log, TaskId::Seed]
                    .iter()
                    .any(|t| s.tokens[0] == vocab::task_token(*t))
            })
            .collect();
        let mut planner = PlannerModel::new(&planner_preset, &mut rng);
        planner.train(
            &samples,
            240,
            3e-3,
            Some(create_ai::agents::OutlierSpec::default()),
            &mut rng,
        );
        assert!(
            planner.plan_accuracy(&samples) > 0.99,
            "tiny planner must converge"
        );
        let bc = datasets::collect_bc(
            &[TaskId::Wooden, TaskId::Log, TaskId::Seed],
            2,
            400,
            0.05,
            5,
        );
        let mut controller = ControllerModel::new(&controller_preset, &mut rng);
        controller.train(&bc, 10, 2e-3, &mut rng);
        let mut rotated = planner.clone();
        rotated.rotate_residual(&create_ai::tensor::hadamard::Rotation::hadamard(32));
        Deployment {
            planner: Arc::new(planner.deploy(&samples, Precision::Int8)),
            planner_wr: Arc::new(rotated.deploy(&samples, Precision::Int8)),
            controller: Arc::new(controller.deploy(&bc, Precision::Int8)),
            predictor: Arc::new(create_ai::agents::EntropyPredictor::new(
                vocab::N_SUBTASKS,
                &mut rng,
            )),
            planner_preset,
            controller_preset,
            predictor_preset: PredictorPreset::paper(),
            tasks: vec![TaskId::Wooden, TaskId::Log, TaskId::Seed],
        }
    })
}

#[test]
fn golden_missions_mostly_succeed() {
    let dep = tiny_deployment();
    let p = run_point(dep, TaskId::Wooden, &CreateConfig::golden(), 10, 1);
    assert!(
        p.success_rate >= 0.8,
        "golden success rate too low: {}",
        p.success_rate
    );
    assert!(p.avg_energy_j > 0.0);
}

#[test]
fn planner_is_more_fragile_than_controller() {
    // The paper's headline characterization (Fig. 5): at the same BER the
    // planner collapses while the controller barely notices.
    let dep = tiny_deployment();
    let ber = 1e-6;
    let planner_cfg = CreateConfig {
        planner_error: Some(ErrorSpec::uniform(ber)),
        ..CreateConfig::golden()
    };
    let controller_cfg = CreateConfig {
        controller_error: Some(ErrorSpec::uniform(ber)),
        ..CreateConfig::golden()
    };
    let planner_point = run_point(dep, TaskId::Wooden, &planner_cfg, 12, 2);
    let controller_point = run_point(dep, TaskId::Wooden, &controller_cfg, 12, 2);
    assert!(
        controller_point.success_rate >= planner_point.success_rate + 0.3,
        "expected controller ({}) >> planner ({}) at BER {ber}",
        controller_point.success_rate,
        planner_point.success_rate
    );
}

#[test]
fn anomaly_detection_recovers_planner_missions() {
    let dep = tiny_deployment();
    let ber = 1e-6;
    let unprotected = CreateConfig {
        planner_error: Some(ErrorSpec::uniform(ber)),
        ..CreateConfig::golden()
    };
    let protected = CreateConfig {
        planner_ad: true,
        ..unprotected.clone()
    };
    let raw = run_point(dep, TaskId::Wooden, &unprotected, 12, 3);
    let ad = run_point(dep, TaskId::Wooden, &protected, 12, 3);
    assert!(
        ad.success_rate >= raw.success_rate,
        "AD should not hurt: {} vs {}",
        ad.success_rate,
        raw.success_rate
    );
}

#[test]
fn weight_rotated_deployment_behaves_identically_when_golden() {
    let dep = tiny_deployment();
    let golden = CreateConfig::golden();
    let wr = CreateConfig {
        wr: true,
        ..CreateConfig::golden()
    };
    let a = run_point(dep, TaskId::Log, &golden, 8, 4);
    let b = run_point(dep, TaskId::Log, &wr, 8, 4);
    // Same seeds, function-preserving rotation: outcomes match closely
    // (small quantization differences may flip borderline samples).
    assert!(
        (a.success_rate - b.success_rate).abs() <= 0.25,
        "WR changed golden behaviour too much: {} vs {}",
        a.success_rate,
        b.success_rate
    );
}

#[test]
fn adaptive_voltage_saves_energy_at_equal_quality() {
    let dep = tiny_deployment();
    let fixed = run_point(dep, TaskId::Log, &CreateConfig::golden(), 10, 5);
    let adaptive_cfg = CreateConfig {
        voltage: VoltageControl::adaptive(EntropyPolicy::preset_c()),
        ..CreateConfig::golden()
    };
    let adaptive = run_point(dep, TaskId::Log, &adaptive_cfg, 10, 5);
    assert!(
        adaptive.effective_voltage < fixed.effective_voltage - 0.01,
        "VS should reduce effective voltage: {} vs {}",
        adaptive.effective_voltage,
        fixed.effective_voltage
    );
    assert!(
        adaptive.avg_compute_j < fixed.avg_compute_j,
        "VS should reduce compute energy"
    );
}

#[test]
fn dmr_baseline_recovers_errors_at_double_energy() {
    // At a near-nominal voltage both schemes succeed identically, so the
    // energy ratio cleanly isolates DMR's duplicated executions.
    let dep = tiny_deployment();
    let v = 0.90;
    let raw = create_ai::baselines::BaselineKind::Unprotected.config(v);
    let dmr = create_ai::baselines::BaselineKind::Dmr.config(v);
    let raw_p = run_point(dep, TaskId::Log, &raw, 10, 6);
    let dmr_p = run_point(dep, TaskId::Log, &dmr, 10, 6);
    assert!(
        dmr_p.success_rate >= raw_p.success_rate,
        "DMR should not be less reliable"
    );
    let ratio = dmr_p.avg_compute_j / raw_p.avg_compute_j;
    assert!(
        (1.8..2.6).contains(&ratio),
        "DMR compute energy should be ~2x, got {ratio:.2}x"
    );
}

#[test]
fn razor_baseline_is_reliable_but_never_free() {
    // The extension contender: timing borrowing recovers detected values
    // exactly (reliability ≈ DMR) at less than DMR's 2x energy, but its
    // shadow-FF overhead is paid even when nothing goes wrong.
    let dep = tiny_deployment();
    let v = 0.90;
    let raw = create_ai::baselines::BaselineKind::Unprotected.config(v);
    let razor = create_ai::baselines::BaselineKind::Razor.config(v);
    let dmr = create_ai::baselines::BaselineKind::Dmr.config(v);
    let raw_p = run_point(dep, TaskId::Log, &raw, 10, 13);
    let razor_p = run_point(dep, TaskId::Log, &razor, 10, 13);
    let dmr_p = run_point(dep, TaskId::Log, &dmr, 10, 13);
    assert!(razor_p.success_rate >= raw_p.success_rate);
    let razor_ratio = razor_p.avg_compute_j / raw_p.avg_compute_j;
    let dmr_ratio = dmr_p.avg_compute_j / raw_p.avg_compute_j;
    assert!(
        razor_ratio > 1.02,
        "shadow-FF overhead must show up: {razor_ratio:.3}x"
    );
    assert!(
        razor_ratio < dmr_ratio,
        "timing borrowing should be cheaper than duplication: {razor_ratio:.2}x vs {dmr_ratio:.2}x"
    );
}

#[test]
fn outcomes_are_independent_of_thread_schedule() {
    let dep = tiny_deployment();
    let cfg = CreateConfig {
        controller_error: Some(ErrorSpec::uniform(1e-4)),
        ..CreateConfig::golden()
    };
    let a = run_point(dep, TaskId::Seed, &cfg, 8, 7);
    let b = run_point(dep, TaskId::Seed, &cfg, 8, 7);
    assert_eq!(a.successes, b.successes);
    assert!((a.avg_energy_j - b.avg_energy_j).abs() < 1e-9);
}

#[test]
fn int4_deployment_runs_end_to_end() {
    // INT4 has a lower quality ceiling but the pipeline must stay sound.
    let dep = tiny_deployment();
    let p = run_point(dep, TaskId::Log, &CreateConfig::golden(), 6, 8);
    assert!(p.n == 6);
}

#[test]
fn memory_faults_at_nominal_rail_are_invisible_end_to_end() {
    // The memory-resilience extension composes with the mission runner: a
    // nominal-voltage snapshot leaves outcomes bit-identical to the
    // fault-free deployment.
    let dep = tiny_deployment();
    let mem = MemoryConfig::new(0.90, create_ai::accel::sram::Protection::None);
    let faulted = run_memory_point(
        dep,
        TaskId::Log,
        &CreateConfig::golden(),
        MemTarget::Controller,
        &mem,
        6,
        9,
    );
    let clean = run_point(dep, TaskId::Log, &CreateConfig::golden(), 6, 9);
    assert_eq!(faulted.sweep.successes, clean.successes);
    assert_eq!(faulted.stats.bits_upset, 0);
}

#[test]
fn secded_recovers_task_quality_where_raw_weight_storage_fails() {
    // The extension's headline: at a memory-rail voltage where raw weight
    // storage visibly corrupts the planner, SECDED holds task quality.
    let dep = tiny_deployment();
    let v = 0.69;
    let raw = run_memory_point(
        dep,
        TaskId::Wooden,
        &CreateConfig::golden(),
        MemTarget::Planner,
        &MemoryConfig::new(v, create_ai::accel::sram::Protection::None),
        10,
        10,
    );
    let ecc = run_memory_point(
        dep,
        TaskId::Wooden,
        &CreateConfig::golden(),
        MemTarget::Planner,
        &MemoryConfig::new(v, create_ai::accel::sram::Protection::Secded),
        10,
        10,
    );
    assert!(
        raw.stats.corrupt_fraction() > 4.0 * ecc.stats.corrupt_fraction().max(1e-6),
        "SECDED should repair most words: raw {:?} vs ecc {:?}",
        raw.stats,
        ecc.stats
    );
    assert!(
        ecc.sweep.success_rate >= raw.sweep.success_rate,
        "protection must not hurt task quality: {} vs {}",
        ecc.sweep.success_rate,
        raw.sweep.success_rate
    );
}

#[test]
fn ad_bound_scale_default_is_transparent() {
    // ad_bound_scale = 1.0 must reproduce the deployed configuration
    // exactly (the ablation knob is inert by default).
    let dep = tiny_deployment();
    let base = CreateConfig::golden();
    let scaled = CreateConfig {
        ad_bound_scale: 1.0,
        ..CreateConfig::golden()
    };
    let a = run_point(dep, TaskId::Seed, &base, 6, 11);
    let b = run_point(dep, TaskId::Seed, &scaled, 6, 11);
    assert_eq!(a.successes, b.successes);
    assert!((a.avg_energy_j - b.avg_energy_j).abs() < 1e-9);
}

#[test]
fn overtight_ad_bounds_break_golden_missions() {
    // The other side of the ablation: a severely tightened output bound
    // clips genuine activations and destroys task quality with no errors
    // injected at all.
    let dep = tiny_deployment();
    let clipped = CreateConfig {
        planner_ad: true,
        controller_ad: true,
        ad_bound_scale: 0.2,
        ..CreateConfig::golden()
    };
    let golden = run_point(dep, TaskId::Wooden, &CreateConfig::golden(), 8, 12);
    let tight = run_point(dep, TaskId::Wooden, &clipped, 8, 12);
    assert!(
        tight.success_rate < golden.success_rate,
        "0.2x bounds should hurt: {} vs {}",
        tight.success_rate,
        golden.success_rate
    );
}
