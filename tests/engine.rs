//! Workspace-level guarantees of the parallel experiment engine: results
//! are bit-identical across thread counts, and degenerate grids are safe.

use create_core::engine::{EngineOptions, Progress};
use create_core::prelude::*;
use create_core::testutil::tiny_deployment;

fn options(threads: usize) -> EngineOptions {
    EngineOptions::builder()
        .threads(threads)
        .progress(Progress::Silent)
        .batch(1)
        .build()
}

/// The tentpole determinism property: the same grid at `CREATE_THREADS=1`
/// and `CREATE_THREADS=8` (here pinned via `EngineOptions` so the test is
/// immune to the environment) produces **bit-identical** `SweepPoint`s —
/// every float compared with `==`, no tolerance.
#[test]
fn sweep_points_are_bit_identical_across_thread_counts() {
    let (dep, task) = tiny_deployment();
    let config = CreateConfig::golden();
    let single = run_point_with(&dep, task, &config, 8, 0xC0FFEE, &options(1));
    let eight = run_point_with(&dep, task, &config, 8, 0xC0FFEE, &options(8));
    // `SweepPoint: PartialEq` compares every field, floats included.
    assert_eq!(single, eight);
    assert_eq!(single.n, 8);
}

/// Multi-cell grids keep the property: per-point seeds derive from the
/// point *index*, not from scheduling, so a whole grid is reproducible
/// too.
#[test]
fn grids_are_bit_identical_across_thread_counts() {
    let (dep, task) = tiny_deployment();
    let cells = || {
        vec![
            (task, CreateConfig::golden()),
            (task, CreateConfig::undervolted(0.84)),
        ]
    };
    let single = run_grid_with(
        cells().into_iter().map(|(t, c)| GridCell {
            dep: &dep,
            task: t,
            config: c,
            trials: 6,
        }),
        0xBEEF,
        &options(1),
    );
    let eight = run_grid_with(
        cells().into_iter().map(|(t, c)| GridCell {
            dep: &dep,
            task: t,
            config: c,
            trials: 6,
        }),
        0xBEEF,
        &options(8),
    );
    assert_eq!(single, eight);
    assert_eq!(single.len(), 2);
}

/// An empty grid returns an empty result without touching a deployment.
#[test]
fn empty_grid_is_safe() {
    let (dep, _) = tiny_deployment();
    let points = run_config_grid(&dep, std::iter::empty(), 10, 1);
    assert!(points.is_empty());
}

/// Zero trials exercises the `n == 0` guards in the sweep aggregation:
/// every mean must come back 0 rather than NaN.
#[test]
fn zero_trials_yield_a_zeroed_point() {
    let (dep, task) = tiny_deployment();
    let p = run_point(&dep, task, &CreateConfig::golden(), 0, 5);
    assert_eq!(p.n, 0);
    assert_eq!(p.successes, 0);
    assert_eq!(p.success_rate, 0.0);
    assert_eq!(p.avg_steps, 0.0);
    assert_eq!(p.avg_energy_j, 0.0);
    assert_eq!(p.avg_compute_j, 0.0);
    assert_eq!(p.effective_voltage, 0.0);
    assert_eq!(p.avg_plans, 0.0);
    assert!(p.ci.0.is_finite() && p.ci.1.is_finite());
}

/// Trial batching (`CREATE_TRIAL_BATCH`) is a pure wall-clock knob on
/// real mission grids too: batch sizes 1, 3 and trials+1 produce
/// **bit-identical** `SweepPoint`s — batched trials share one inference
/// scratch per worker, and scratch state must never leak into outcomes.
#[test]
fn mission_grids_are_bit_identical_across_batch_sizes() {
    let (dep, task) = tiny_deployment();
    let trials = 6u32;
    let cells = || {
        vec![
            (task, CreateConfig::golden()),
            (task, CreateConfig::undervolted(0.84)),
        ]
    };
    let run = |batch: usize| {
        run_grid_with(
            cells().into_iter().map(|(t, c)| GridCell {
                dep: &dep,
                task: t,
                config: c,
                trials,
            }),
            0xBA7C4,
            &EngineOptions::builder()
                .threads(2)
                .progress(Progress::Silent)
                .batch(batch)
                .build(),
        )
    };
    let reference = run(1);
    for batch in [3usize, trials as usize + 1] {
        assert_eq!(run(batch), reference, "batch={batch}");
    }
}

/// `run_point` and `run_outcomes` share seed derivation, so aggregating
/// raw outcomes reproduces the point exactly.
#[test]
fn run_point_matches_aggregated_run_outcomes() {
    let (dep, task) = tiny_deployment();
    let config = CreateConfig::golden();
    let point = run_point(&dep, task, &config, 5, 77);
    let raw = run_outcomes(&dep, task, &config, 5, 77);
    assert_eq!(point, SweepPoint::from_outcomes(&raw));
}
