//! Workspace-level property-based tests (proptest): invariants that must
//! hold for arbitrary inputs across the crates' public APIs.

use create_ai::accel::inject::{flip_acc_bit, ErrorModel, InjectionTarget, Injector};
use create_ai::accel::ldo::Ldo;
use create_ai::accel::timing::TimingModel;
use create_ai::accel::{ad, array};
use create_ai::env::{Action, TaskId, World};
use create_ai::nn::activation::logits_entropy;
use create_ai::tensor::hadamard::Rotation;
use create_ai::tensor::{Matrix, Precision, QuantMatrix, QuantParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantize→dequantize never deviates more than half a step for
    /// in-range values.
    #[test]
    fn quantization_error_is_bounded(values in prop::collection::vec(-50.0f32..50.0, 1..64)) {
        let m = Matrix::from_vec(1, values.len(), values);
        for precision in [Precision::Int8, Precision::Int4] {
            let q = QuantMatrix::quantize(&m, precision);
            let err = m.max_abs_diff(&q.dequantize());
            prop_assert!(err <= q.rounding_error_bound() + 1e-5);
        }
    }

    /// Flipping the same accumulator bit twice restores the value, and a
    /// single flip always stays inside the 24-bit range.
    #[test]
    fn bit_flips_are_involutive(value in -8_388_608i32..8_388_607, bit in 0u32..24) {
        let once = flip_acc_bit(value, bit);
        prop_assert!(once != value);
        prop_assert!((-8_388_608..=8_388_607).contains(&once));
        prop_assert_eq!(flip_acc_bit(once, bit), value);
    }

    /// Anomaly clearance never increases a value's magnitude and never
    /// touches in-bound values.
    #[test]
    fn anomaly_clearance_is_contractive(
        acc in prop::collection::vec(-8_000_000i32..8_000_000, 1..128),
        bound in 1i64..4_000_000,
    ) {
        let mut cleared = acc.clone();
        let stats = ad::clear_anomalies(&mut cleared, bound);
        prop_assert_eq!(stats.checked as usize, acc.len());
        for (&before, &after) in acc.iter().zip(&cleared) {
            if (before as i64).abs() <= bound {
                prop_assert_eq!(after, before);
            } else {
                prop_assert_eq!(after, 0);
            }
        }
    }

    /// Hadamard rotation preserves row norms for any power-of-two width.
    #[test]
    fn rotation_preserves_norms(
        rows in 1usize..4,
        log_dim in 2u32..7,
        seed in 0u64..1000,
    ) {
        use rand::SeedableRng;
        let dim = 1usize << log_dim;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Matrix::random_uniform(rows, dim, 5.0, &mut rng);
        let rot = Rotation::hadamard(dim);
        let y = rot.apply_right(&x);
        for r in 0..rows {
            let n0: f32 = x.row(r).iter().map(|v| v * v).sum();
            let n1: f32 = y.row(r).iter().map(|v| v * v).sum();
            prop_assert!((n0 - n1).abs() <= 1e-3 * n0.max(1.0));
        }
    }

    /// The timing model's BER is monotone non-increasing in voltage and
    /// the per-bit probabilities are valid probabilities.
    #[test]
    fn timing_model_is_well_formed(v in 0.60f64..0.90) {
        let t = TimingModel::new();
        prop_assert!(t.aggregate_ber(v) >= t.aggregate_ber(v + 0.005));
        for p in t.bit_error_probs(v) {
            prop_assert!((0.0..=0.5).contains(&p));
        }
    }

    /// The LDO always lands exactly on its 10 mV grid inside the range.
    #[test]
    fn ldo_respects_grid_and_range(targets in prop::collection::vec(0.0f64..2.0, 1..10)) {
        let mut ldo = Ldo::new();
        for v in targets {
            ldo.set_target(v);
            let out = ldo.output();
            prop_assert!((0.6..=0.9 + 1e-9).contains(&out));
            let snapped = (out / 0.01).round() * 0.01;
            prop_assert!((out - snapped).abs() < 1e-9);
        }
    }

    /// Entropy of any logits vector lies in [0, ln n].
    #[test]
    fn entropy_is_bounded(logits in prop::collection::vec(-20.0f32..20.0, 2..16)) {
        let h = logits_entropy(&logits);
        prop_assert!(h >= -1e-6);
        prop_assert!(h <= (logits.len() as f32).ln() + 1e-5);
    }

    /// Injection with zero BER is the identity on any accumulator buffer.
    #[test]
    fn zero_ber_injection_is_identity(acc in prop::collection::vec(-100_000i32..100_000, 1..64)) {
        use rand::SeedableRng;
        let injector = Injector::new(
            ErrorModel::Uniform { ber: 0.0 },
            InjectionTarget::All,
            1.0,
        );
        let mut buf = acc.clone();
        let ctx = create_ai::accel::LayerCtx::new(
            create_ai::accel::Unit::Controller,
            create_ai::accel::Component::Fc1,
            0,
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        injector.inject(&mut buf, ctx, 0.9, &mut rng);
        prop_assert_eq!(buf, acc);
    }

    /// The INT8 GEMM agrees with the f32 reference within quantization
    /// tolerance for arbitrary small matrices.
    #[test]
    fn quantized_gemm_tracks_reference(
        m in 1usize..5,
        k in 1usize..24,
        n in 1usize..8,
        seed in 0u64..500,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::random_uniform(m, k, 1.0, &mut rng);
        let b = Matrix::random_uniform(k, n, 1.0, &mut rng);
        let aq = QuantMatrix::quantize(&a, Precision::Int8);
        let bq = QuantMatrix::quantize(&b, Precision::Int8);
        let acc = array::gemm_i8_acc(&aq, &bq);
        let combined = aq.params().scale() * bq.params().scale();
        let reference = aq.dequantize().matmul(&bq.dequantize());
        for (i, &v) in acc.iter().enumerate() {
            let got = v as f32 * combined;
            let want = reference.as_slice()[i];
            prop_assert!((got - want).abs() < 1e-3 + 1e-4 * k as f32);
        }
    }

    /// Environment invariants hold under arbitrary action sequences: the
    /// agent stays in bounds on passable terrain and the step counter
    /// matches the number of actions taken.
    #[test]
    fn craftworld_invariants_under_random_actions(
        seed in 0u64..200,
        actions in prop::collection::vec(0usize..Action::COUNT, 1..120),
    ) {
        let mut world = World::for_task(TaskId::Stone, seed);
        for &a in &actions {
            world.step(Action::from_index(a));
        }
        prop_assert_eq!(world.steps(), actions.len() as u64);
        if let World::Craft(w) = &world {
            let p = w.agent();
            prop_assert!((0..28).contains(&p.x) && (0..28).contains(&p.y));
            prop_assert!(w.cell(p).passable(), "agent must stand on passable terrain");
        }
    }

    /// Quantization params from explicit scales round-trip values on grid.
    #[test]
    fn quant_params_roundtrip_grid_points(code in -127i8..=127, scale in 0.001f32..10.0) {
        let params = QuantParams::from_scale(scale, Precision::Int8);
        let real = params.dequantize_value(code);
        prop_assert_eq!(params.quantize_value(real), code);
    }
}
