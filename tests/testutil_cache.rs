//! The test-deployment disk cache must be invisible except for speed: a
//! cache hit has to produce the same deployment, bit for bit, as the
//! training (miss) path it replaced.

use create_core::testutil::build_with;
use std::path::PathBuf;

fn cache_files(dir: &std::path::Path) -> Vec<PathBuf> {
    match std::fs::read_dir(dir) {
        Ok(entries) => entries.filter_map(|e| Some(e.ok()?.path())).collect(),
        Err(_) => Vec::new(),
    }
}

#[test]
fn testutil_cache_hit_is_bit_identical_to_retraining() {
    let dir = std::env::temp_dir().join(format!("create-testutil-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Miss: trains, saves, and internally asserts the write-then-read
    // roundtrip reproduces the trained weights exactly. The file name
    // embeds the schema version and the recipe fingerprint.
    let trained = build_with(Some(&dir));
    let files = cache_files(&dir);
    assert_eq!(files.len(), 1, "miss must persist exactly one bundle");
    assert!(
        files[0]
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("tiny_v") && n.ends_with(".bin")),
        "bundle name must embed the schema version: {files:?}"
    );

    // Hit: loads the bundle and redeploys — every quantized artifact must
    // match the trained deployment bit for bit.
    let loaded = build_with(Some(&dir));
    assert_eq!(*trained.planner, *loaded.planner);
    assert_eq!(*trained.planner_wr, *loaded.planner_wr);
    assert_eq!(*trained.controller, *loaded.controller);
    assert_eq!(
        trained.predictor.export_tensors(),
        loaded.predictor.export_tensors(),
        "predictor weights must survive the cache"
    );
    assert_eq!(trained.tasks, loaded.tasks);

    // A corrupt cache must fall back to retraining, not panic or deploy
    // garbage (recipe drift is covered separately: changed presets,
    // hyperparameters or data change the fingerprint in the file name, so
    // a stale bundle is simply never found).
    std::fs::write(&files[0], b"junk").expect("corrupt the cache");
    let rebuilt = build_with(Some(&dir));
    assert_eq!(*rebuilt.controller, *loaded.controller);

    let _ = std::fs::remove_dir_all(&dir);
}
