//! Property tests for the journal codec: encode/decode round-trips,
//! arbitrary truncation always recovers the valid record prefix, and a
//! corrupt byte anywhere never makes the scanner error, panic or hand
//! back records that were never written.
//!
//! The vendored proptest shim has no combinators, so records derive
//! deterministically from drawn `u64` words — each word fully determines
//! one record (kind, fields, state bytes).

use create_sweep::journal::{file_header, frame, scan_file, ChunkRecord, Manifest, Record};
use proptest::prelude::*;

/// Expands one drawn word into a record: even words become manifests,
/// odd words chunk records with up to 63 derived state bytes.
fn record_from(word: u64) -> Record {
    if word & 1 == 0 {
        Record::Manifest(Manifest {
            fingerprint: word,
            base_seed: word.rotate_left(17),
            shard_index: (word >> 8) as u32,
            shard_count: (word >> 16) as u32 | 1,
            chunk_trials: (word >> 24) as u32,
        })
    } else {
        let state_len = ((word >> 32) % 64) as usize;
        let state: Vec<u8> = (0..state_len)
            .map(|j| word.rotate_left(j as u32 * 7) as u8)
            .collect();
        Record::Chunk(ChunkRecord {
            point: (word >> 2) as u32,
            first_trial: (word >> 12) as u32,
            len: (word >> 40) as u32,
            state,
        })
    }
}

fn records_from(words: &[u64]) -> Vec<Record> {
    words.iter().copied().map(record_from).collect()
}

/// A whole journal file's bytes for a record sequence.
fn render(records: &[Record]) -> Vec<u8> {
    let mut bytes = file_header();
    for r in records {
        bytes.extend_from_slice(&frame(&r.encode()));
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn records_round_trip_through_a_scan(words in prop::collection::vec(any::<u64>(), 0..8)) {
        let records = records_from(&words);
        let bytes = render(&records);
        let (scanned, clean_len, torn) = scan_file(&bytes);
        prop_assert_eq!(scanned, records);
        prop_assert_eq!(clean_len, bytes.len());
        prop_assert!(!torn);
    }

    #[test]
    fn payload_decode_is_the_inverse_of_encode(word in any::<u64>()) {
        let record = record_from(word);
        prop_assert_eq!(Record::decode(&record.encode()).unwrap(), record);
    }

    #[test]
    fn any_truncation_recovers_a_record_prefix(
        words in prop::collection::vec(any::<u64>(), 1..6),
        keep_fraction in 0.0f64..1.0,
    ) {
        let records = records_from(&words);
        let bytes = render(&records);
        let keep = (bytes.len() as f64 * keep_fraction) as usize;
        let (scanned, clean_len, torn) = scan_file(&bytes[..keep]);
        // Never an error, never an invented record: what survives is a
        // prefix of what was written, and the torn flag fires exactly
        // when the cut did not land on a frame boundary.
        prop_assert!(scanned.len() <= records.len());
        prop_assert_eq!(&scanned[..], &records[..scanned.len()]);
        prop_assert!(clean_len <= keep);
        prop_assert_eq!(torn, clean_len != keep);
        // Re-scanning the clean prefix (what recovery rewrites the file
        // to) is stable: same records, nothing torn.
        let (healed, healed_len, healed_torn) = scan_file(&bytes[..clean_len]);
        prop_assert_eq!(healed, scanned);
        prop_assert_eq!(healed_len, clean_len);
        prop_assert!(!healed_torn);
    }

    #[test]
    fn a_corrupt_byte_yields_a_clean_prefix_not_garbage(
        words in prop::collection::vec(any::<u64>(), 1..6),
        at_fraction in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let records = records_from(&words);
        let mut bytes = render(&records);
        let at = ((bytes.len() - 1) as f64 * at_fraction) as usize;
        bytes[at] ^= flip;
        let (scanned, clean_len, _) = scan_file(&bytes);
        // The CRC frames guarantee a flipped byte can only cost records,
        // never alter or invent one: the scan is a prefix of the truth.
        prop_assert!(clean_len <= bytes.len());
        prop_assert!(scanned.len() <= records.len());
        prop_assert_eq!(&scanned[..], &records[..scanned.len()]);
        // A flip inside the 12-byte header kills the whole file.
        if at < 12 {
            prop_assert_eq!(scanned.len(), 0);
            prop_assert_eq!(clean_len, 0);
        }
    }
}

#[test]
fn corrupting_each_single_byte_of_a_small_journal_never_panics() {
    // Exhaustive single-byte sweep over a two-record journal: every
    // position, a hard bit flip. The scan must stay total and truthful.
    let records = vec![
        Record::Manifest(Manifest {
            fingerprint: 7,
            base_seed: 11,
            shard_index: 0,
            shard_count: 2,
            chunk_trials: 5,
        }),
        Record::Chunk(ChunkRecord {
            point: 3,
            first_trial: 10,
            len: 5,
            state: vec![1, 2, 3, 4],
        }),
    ];
    let bytes = render(&records);
    for at in 0..bytes.len() {
        let mut damaged = bytes.clone();
        damaged[at] ^= 0xFF;
        let (scanned, clean_len, torn) = scan_file(&damaged);
        assert!(clean_len <= damaged.len(), "byte {at}");
        assert!(
            scanned.len() < records.len(),
            "byte {at}: a flip must cost a record"
        );
        assert_eq!(scanned, records[..scanned.len()], "byte {at}");
        assert!(torn, "byte {at}: damage must be reported");
    }
}
