//! End-to-end fabric tests: kill/resume histories, shard-count
//! invariance, torn-tail recovery, foreign-journal rejection and
//! double-count protection — all against a cheap synthetic grid whose
//! float sums are genuinely rounding-sensitive, so "bit-identical" means
//! something.

use create_core::engine::{
    run_grid_with, Accumulator, EngineOptions, ExperimentPoint, Progress, StateAccumulator,
};
use create_sweep::journal::{ChunkRecord, Manifest, Record, ShardJournal};
use create_sweep::{merge_summaries, run_shard, status, ChaosMode, SweepConfig, SweepError};
use std::io::Write;
use std::path::{Path, PathBuf};

/// A synthetic grid point: trial `t` at seed `s` yields an irrational
/// float in `[0, 1)` plus the raw seed, so sums pick up real rounding.
struct TestPoint {
    trials: u32,
}

#[derive(Debug, Default, PartialEq)]
struct SumState {
    n: u32,
    sum: f64,
    xor: u64,
}

impl Accumulator<(u64, f64)> for SumState {
    type Summary = (u32, u64, u64);

    fn push(&mut self, (seed, value): (u64, f64)) {
        self.n += 1;
        self.sum += value;
        self.xor ^= seed;
    }

    fn finish(self) -> (u32, u64, u64) {
        // Bit-exact summary: expose the sum's raw bits, not a rounded
        // rendering.
        (self.n, self.sum.to_bits(), self.xor)
    }
}

impl StateAccumulator<(u64, f64)> for SumState {
    fn encode_state(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20);
        out.extend_from_slice(&self.n.to_le_bytes());
        out.extend_from_slice(&self.sum.to_bits().to_le_bytes());
        out.extend_from_slice(&self.xor.to_le_bytes());
        out
    }

    fn decode_state(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() != 20 {
            return Err(format!("expected 20 bytes, got {}", bytes.len()));
        }
        Ok(SumState {
            n: u32::from_le_bytes(bytes[..4].try_into().unwrap()),
            sum: f64::from_bits(u64::from_le_bytes(bytes[4..12].try_into().unwrap())),
            xor: u64::from_le_bytes(bytes[12..20].try_into().unwrap()),
        })
    }

    fn merge_state(&mut self, other: &Self) {
        self.n += other.n;
        self.sum += other.sum;
        self.xor ^= other.xor;
    }
}

impl ExperimentPoint for TestPoint {
    type Outcome = (u64, f64);
    type Acc = SumState;

    fn trials(&self) -> u32 {
        self.trials
    }

    fn accumulator(&self) -> SumState {
        SumState::default()
    }

    fn run_trial(&self, _trial: u32, seed: u64) -> (u64, f64) {
        (seed, (seed >> 11) as f64 / (1u64 << 53) as f64)
    }
}

const FP: u64 = 0xFEED_FACE_CAFE_D00D;
const SEED: u64 = 424242;

fn grid() -> Vec<TestPoint> {
    [7u32, 0, 5, 12]
        .into_iter()
        .map(|trials| TestPoint { trials })
        .collect()
}

fn trials() -> Vec<u32> {
    grid().iter().map(|p| p.trials).collect()
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("create-sweep-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(
    dir: &Path,
    shard_count: u32,
    shard_index: u32,
    chunk: u32,
    chaos: ChaosMode,
) -> SweepConfig {
    SweepConfig {
        shard_count,
        shard_index,
        chunk_trials: chunk,
        base_seed: SEED,
        dir: dir.to_path_buf(),
        chaos,
    }
}

/// Runs every shard to completion, resuming through simulated kills.
/// Returns total attempts across all shards.
fn complete_all_shards(dir: &Path, shard_count: u32, chunk: u32, chaos_p: f64) -> u32 {
    let mut attempts = 0u32;
    for shard in 0..shard_count {
        let chaos = if chaos_p > 0.0 {
            ChaosMode::Simulated(chaos_p)
        } else {
            ChaosMode::Off
        };
        let cfg = config(dir, shard_count, shard, chunk, chaos);
        loop {
            attempts += 1;
            assert!(attempts < 1000, "kill/resume loop failed to converge");
            match run_shard(&grid(), &cfg, FP) {
                Ok(_) => break,
                Err(SweepError::ChaosKilled { .. }) => continue,
                Err(e) => panic!("unexpected sweep error: {e}"),
            }
        }
    }
    attempts
}

fn merged(dir: &Path, shard_count: u32, chunk: u32) -> Vec<(u32, u64, u64)> {
    let cfg = config(dir, shard_count, 0, chunk, ChaosMode::Off);
    merge_summaries::<(u64, f64), SumState>(&trials(), &cfg, FP).expect("merge")
}

#[test]
fn single_chunk_per_point_reproduces_run_grid_bit_for_bit() {
    // chunk >= every trial count => one chunk per point => the merge is
    // exactly the engine's per-point left fold.
    let reference: Vec<(u32, u64, u64)> = run_grid_with(
        grid(),
        SEED,
        &EngineOptions::builder()
            .threads(4)
            .progress(Progress::Silent)
            .build(),
    );
    for shard_count in [1u32, 2, 3] {
        let dir = fresh_dir(&format!("parity-{shard_count}"));
        complete_all_shards(&dir, shard_count, 64, 0.0);
        assert_eq!(
            merged(&dir, shard_count, 64),
            reference,
            "shard_count={shard_count}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn merged_results_are_invariant_to_shards_and_kill_history() {
    // Small chunks, so the canonical result differs from run_grid's
    // single fold — but must be identical across shard counts and across
    // arbitrarily violent kill/resume histories.
    let dir = fresh_dir("invariance-ref");
    complete_all_shards(&dir, 1, 3, 0.0);
    let reference = merged(&dir, 1, 3);
    let _ = std::fs::remove_dir_all(&dir);

    for (shard_count, chaos_p) in [(1u32, 0.8f64), (2, 0.5), (3, 0.8)] {
        let dir = fresh_dir(&format!("invariance-{shard_count}-{chaos_p}"));
        let attempts = complete_all_shards(&dir, shard_count, 3, chaos_p);
        assert!(
            attempts > shard_count,
            "chaos at p={chaos_p} should have killed at least once"
        );
        assert_eq!(
            merged(&dir, shard_count, 3),
            reference,
            "shards={shard_count} chaos={chaos_p}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn resume_skips_all_completed_work() {
    let dir = fresh_dir("resume");
    let cfg = config(&dir, 1, 0, 4, ChaosMode::Off);
    let first = run_shard(&grid(), &cfg, FP).expect("first run");
    assert_eq!(first.ran, first.owned);
    assert_eq!(first.resumed, 0);
    let second = run_shard(&grid(), &cfg, FP).expect("second run");
    assert_eq!(second.ran, 0, "completed chunks must not be recomputed");
    assert_eq!(second.resumed, second.owned);
    assert_eq!(second.generation, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_is_discarded_healed_and_recomputed() {
    let dir = fresh_dir("torn");
    let cfg = config(&dir, 1, 0, 4, ChaosMode::Off);
    run_shard(&grid(), &cfg, FP).expect("seed run");
    let reference = merged(&dir, 1, 4);

    // Corrupt the active file: append half a frame (a torn append), as a
    // crash mid-write would leave.
    let victim = dir.join("shard-0000").join("open.crj");
    let torn = Record::Chunk(ChunkRecord {
        point: 0,
        first_trial: 0,
        len: 4,
        state: vec![0xAB; 20],
    });
    let framed = create_sweep::journal::frame(&torn.encode());
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&victim)
        .unwrap();
    f.write_all(&framed[..framed.len() / 2]).unwrap();
    drop(f);

    // Recovery discards the tail, keeps every whole record, and the
    // merge still reproduces the reference bit for bit.
    let report = run_shard(&grid(), &cfg, FP).expect("recovery run");
    assert_eq!(report.torn_files, 1);
    assert_eq!(report.ran, 0, "all real records were intact");
    assert_eq!(merged(&dir, 1, 4), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_file_corruption_drops_the_tail_and_recomputes_it() {
    let dir = fresh_dir("corrupt");
    let cfg = config(&dir, 1, 0, 4, ChaosMode::Off);
    run_shard(&grid(), &cfg, FP).expect("seed run");
    let reference = merged(&dir, 1, 4);

    // Flip one byte in the middle of the journal's record area: the CRC
    // of some frame stops matching, so that frame and everything after
    // it in the file are discarded and later re-run.
    let victim = dir.join("shard-0000").join("open.crj");
    let mut bytes = std::fs::read(&victim).unwrap();
    let at = bytes.len() / 2;
    bytes[at] ^= 0xFF;
    std::fs::write(&victim, &bytes).unwrap();

    let report = run_shard(&grid(), &cfg, FP).expect("recovery run");
    assert_eq!(report.torn_files, 1);
    assert!(report.ran > 0, "the dropped ranges must be recomputed");
    assert_eq!(merged(&dir, 1, 4), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_journals_are_rejected_not_mixed() {
    let dir = fresh_dir("foreign");
    let cfg = config(&dir, 1, 0, 4, ChaosMode::Off);
    run_shard(&grid(), &cfg, FP).expect("seed run");
    // Same directory, different grid fingerprint: refuse to resume...
    match run_shard(&grid(), &cfg, FP ^ 1) {
        Err(SweepError::ForeignJournal(_)) => {}
        other => panic!("expected ForeignJournal, got {other:?}"),
    }
    // ...and refuse to merge.
    match merge_summaries::<(u64, f64), SumState>(&trials(), &cfg, FP ^ 1) {
        Err(SweepError::ForeignJournal(_)) => {}
        other => panic!("expected ForeignJournal, got {:?}", other.map(|_| ())),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_chunk_records_never_double_count() {
    let dir = fresh_dir("dupes");
    let cfg = config(&dir, 1, 0, 4, ChaosMode::Off);
    run_shard(&grid(), &cfg, FP).expect("seed run");
    let reference = merged(&dir, 1, 4);

    // Append a duplicate record for an already-journaled range, carrying
    // a *wrong* state. First occurrence must win at merge.
    let manifest = Manifest {
        fingerprint: FP,
        base_seed: SEED,
        shard_index: 0,
        shard_count: 1,
        chunk_trials: 4,
    };
    let (_, mut journal) =
        ShardJournal::open(&dir.join("shard-0000"), manifest).expect("reopen journal");
    let mut bogus = SumState::default();
    bogus.push((999, 0.123));
    journal
        .append(&Record::Chunk(ChunkRecord {
            point: 0,
            first_trial: 0,
            len: 4,
            state: bogus.encode_state(),
        }))
        .expect("append duplicate");
    drop(journal);

    assert_eq!(merged(&dir, 1, 4), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_of_an_incomplete_sweep_says_what_is_missing() {
    let dir = fresh_dir("incomplete");
    // Run only shard 0 of 2: shard 1's chunks have no state anywhere.
    let cfg = config(&dir, 2, 0, 4, ChaosMode::Off);
    run_shard(&grid(), &cfg, FP).expect("shard 0");
    match merge_summaries::<(u64, f64), SumState>(&trials(), &cfg, FP) {
        Err(SweepError::Incomplete(why)) => {
            assert!(why.contains("chunks have no journaled state"), "{why}");
        }
        other => panic!("expected Incomplete, got {:?}", other.map(|_| ())),
    }
    // Status agrees: shard 1 owns work and has done none of it.
    let st = status(&trials(), &cfg, FP).expect("status");
    assert_eq!(st.len(), 2);
    assert_eq!(st[0].done, st[0].owned);
    assert!(st[0].owned > 0);
    assert_eq!(st[1].done, 0);
    assert!(st[1].owned > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
