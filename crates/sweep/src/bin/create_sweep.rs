//! The sweep fabric CLI: one shard of a crash-resumable voltage × task
//! sweep per `run` invocation, `merge` to reassemble the results,
//! `status` to inspect progress.
//!
//! ```text
//! create_sweep run     # execute (or resume) shard CREATE_SWEEP_SHARD
//! create_sweep merge   # fold all shards into <dir>/merged.json
//! create_sweep status  # per-shard progress
//! ```
//!
//! Knobs (all via the shared warn-and-fallback env contract):
//!
//! * `CREATE_SWEEP_SHARDS` — total shards (default 1)
//! * `CREATE_SWEEP_SHARD`  — this process's shard index (default 0)
//! * `CREATE_SWEEP_DIR`    — journal + output root (default
//!   `target/create-sweep/`)
//! * `CREATE_SWEEP_CHUNK`  — trials per checkpoint chunk (default 8)
//! * `CREATE_SWEEP_CHAOS`  — deterministic kill probability per chunk
//!   attempt (default 0; kills abort the process, resume with `run`)
//! * `CREATE_REPS`         — trials per grid point (default 40)
//!
//! The workload is the cached miniature deployment's task grid at three
//! supply voltages. `merge` writes one schema-versioned results-store
//! record per grid point, including a `state_digest` hex field of the
//! merged accumulator's exact bit state — so byte-diffing two
//! `merged.json` files compares every last ulp, which is how the CI
//! kill-and-resume smoke job proves chaos runs merge bit-identically to
//! an uninterrupted reference run.

use create_core::prelude::*;
use create_core::results;
use create_core::stats::{GridCell, SweepAccumulator};
use create_core::testutil;
use create_core::Accumulator;
use create_env::TaskId;
use create_sweep::{merge_states, run_shard, status, ChaosMode, Fingerprint, SweepConfig};
use std::path::PathBuf;
use std::process::ExitCode;

/// Fixed engine base seed: the sweep is a reproducibility harness, so
/// its canonical results are pinned, not time-varying.
const BASE_SEED: u64 = 2026;

/// The supply voltages the workload sweeps.
const VOLTAGES: [f64; 3] = [0.90, 0.86, 0.82];

fn sweep_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CREATE_SWEEP_DIR") {
        if !dir.trim().is_empty() {
            return PathBuf::from(dir);
        }
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/create-sweep")
        .components()
        .collect()
}

fn config_from_env() -> Result<SweepConfig, String> {
    let shard_count = create_tensor::envcfg::read_positive_usize("CREATE_SWEEP_SHARDS", 1) as u32;
    let shard_index = create_tensor::envcfg::read_nonneg_usize("CREATE_SWEEP_SHARD", 0) as u32;
    if shard_index >= shard_count {
        return Err(format!(
            "CREATE_SWEEP_SHARD={shard_index} is out of range for \
             CREATE_SWEEP_SHARDS={shard_count}"
        ));
    }
    let chunk_trials = create_tensor::envcfg::read_positive_usize("CREATE_SWEEP_CHUNK", 8) as u32;
    let chaos_p = create_tensor::envcfg::read_fraction("CREATE_SWEEP_CHAOS", 0.0);
    Ok(SweepConfig {
        shard_count,
        shard_index,
        chunk_trials,
        base_seed: BASE_SEED,
        dir: sweep_dir(),
        chaos: if chaos_p > 0.0 {
            ChaosMode::Process(chaos_p)
        } else {
            ChaosMode::Off
        },
    })
}

/// The grid: every deployment task at every voltage, `CREATE_REPS`
/// trials each, plus the fingerprint that gates journal reuse.
fn grid(dep: &Deployment, reps: u32) -> (Vec<GridCell<'_>>, u64) {
    let mut cells = Vec::new();
    let mut fp = Fingerprint::new().push_u64(u64::from(reps));
    for &task in &dep.tasks {
        for &v in &VOLTAGES {
            fp = fp
                .push_bytes(format!("{task:?}").as_bytes())
                .push_u64(v.to_bits());
            cells.push(GridCell {
                dep,
                task,
                config: CreateConfig::undervolted(v),
                trials: reps,
            });
        }
    }
    (cells, fp.finish())
}

fn labels(dep: &Deployment) -> Vec<(TaskId, f64)> {
    let mut out = Vec::new();
    for &task in &dep.tasks {
        for &v in &VOLTAGES {
            out.push((task, v));
        }
    }
    out
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn cmd_run(config: &SweepConfig) -> Result<(), String> {
    let (dep, _) = testutil::tiny_deployment();
    let reps = default_reps();
    let (cells, fingerprint) = grid(&dep, reps);
    let report = run_shard(&cells, config, fingerprint).map_err(|e| e.to_string())?;
    println!(
        "[sweep] shard {}/{}: attempt {}, {} owned chunks ({} resumed from journal, {} run), \
         {} torn file(s) healed",
        config.shard_index,
        config.shard_count,
        report.generation,
        report.owned,
        report.resumed,
        report.ran,
        report.torn_files
    );
    Ok(())
}

fn cmd_merge(config: &SweepConfig) -> Result<(), String> {
    let (dep, _) = testutil::tiny_deployment();
    let reps = default_reps();
    let (cells, fingerprint) = grid(&dep, reps);
    let trials: Vec<u32> = cells.iter().map(|c| c.trials).collect();
    let merged = merge_states::<_, SweepAccumulator>(&trials, config, fingerprint)
        .map_err(|e| e.to_string())?;
    let mut records = Vec::new();
    for ((task, voltage), acc) in labels(&dep).into_iter().zip(merged) {
        let digest = hex(&create_core::StateAccumulator::encode_state(&acc));
        let point: SweepPoint = acc.finish();
        records.push(
            results::Record::new()
                .str("task", format!("{task:?}"))
                .raw_num("voltage_v", format!("{voltage:.2}"))
                .int("n", u64::from(point.n))
                .int("successes", u64::from(point.successes))
                .num("success_rate", point.success_rate)
                .num("avg_steps", point.avg_steps)
                .num("avg_energy_j", point.avg_energy_j)
                .num("avg_compute_j", point.avg_compute_j)
                .num("effective_voltage", point.effective_voltage)
                .num("avg_plans", point.avg_plans)
                .str("state_digest", digest),
        );
    }
    let path = config.dir.join("merged.json");
    results::write_doc(&path, "sweep_merged", &records)
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!(
        "[sweep] merged {} points -> {}",
        records.len(),
        path.display()
    );
    Ok(())
}

fn cmd_status(config: &SweepConfig) -> Result<(), String> {
    let (dep, _) = testutil::tiny_deployment();
    let reps = default_reps();
    let (cells, fingerprint) = grid(&dep, reps);
    let trials: Vec<u32> = cells.iter().map(|c| c.trials).collect();
    let shards = status(&trials, config, fingerprint).map_err(|e| e.to_string())?;
    let mut table = TextTable::new(vec!["shard", "done", "owned", "attempts", "torn_files"]);
    for s in &shards {
        table.row(vec![
            s.shard.to_string(),
            s.done.to_string(),
            s.owned.to_string(),
            s.attempts.to_string(),
            s.torn_files.to_string(),
        ]);
    }
    println!("{}", table.render());
    let done: usize = shards.iter().map(|s| s.done).sum();
    let owned: usize = shards.iter().map(|s| s.owned).sum();
    println!("[sweep] {done}/{owned} chunks complete");
    Ok(())
}

fn main() -> ExitCode {
    let command = std::env::args().nth(1).unwrap_or_default();
    let config = match config_from_env() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("[sweep] {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "run" => cmd_run(&config),
        "merge" => cmd_merge(&config),
        "status" => cmd_status(&config),
        _ => {
            eprintln!(
                "usage: create_sweep <run|merge|status>  (see crate docs for CREATE_SWEEP_* knobs)"
            );
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("[sweep] {e}");
            ExitCode::FAILURE
        }
    }
}
