//! Deterministic kill injection for the sweep fabric.
//!
//! `CREATE_SWEEP_CHAOS` follows the same contract as the serving
//! engine's `CREATE_SERVE_CHAOS`: a fraction in `[0, 1]`, and whether
//! the hook fires for a given unit of work is a **pure function of the
//! probability and a seed** — `0` never fires, `1` always fires, and the
//! set of chaos-hit chunks is identical across reruns, thread counts and
//! machines.
//!
//! The sweep's unit is one chunk, and the seed is salted with the
//! shard's *recovery generation* (how many attempts the journal has
//! recorded): a kill decision that ignored the generation would re-fire
//! identically on every resume and a chaos-enabled sweep could never
//! finish. With the salt, each resume re-draws, so for any `p < 1` the
//! kill-resume loop terminates with probability 1 while staying fully
//! deterministic given the journal state. `p = 1` still kills every
//! attempt — "always fires" is part of the contract.

/// Salt decorrelating sweep chaos draws from the serving engine's (which
/// uses its own salt) and from the trial RNG streams.
const SWEEP_CHAOS_SALT: u64 = 0x5EE9_FAB1_C0DE_CAFE;

/// Where in a chunk's lifecycle the kill lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillSite {
    /// Before the chunk's trials run: no file side effects at all.
    Before,
    /// Mid-append: a torn partial frame reaches the journal, the classic
    /// crash-during-write.
    MidAppend,
    /// After the record is durably appended: the work is saved but the
    /// process never got to act on it.
    AfterAppend,
}

/// How kills are delivered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosMode {
    /// No injection (the default).
    Off,
    /// Real crash semantics: `std::process::abort()`, no destructors, no
    /// unwinding — the closest in-process stand-in for SIGKILL. Used by
    /// the CLI and the CI kill-and-resume smoke job.
    Process(f64),
    /// Same decisions and same file side effects, but the kill surfaces
    /// as an error return instead of process death — lets in-process
    /// tests drive whole kill/resume histories.
    Simulated(f64),
}

impl ChaosMode {
    /// The injection probability (0 when off).
    pub fn probability(&self) -> f64 {
        match self {
            ChaosMode::Off => 0.0,
            ChaosMode::Process(p) | ChaosMode::Simulated(p) => *p,
        }
    }
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The raw chaos draw for one chunk attempt: a pure function of the
/// chunk's identity and the shard's recovery generation.
pub fn chaos_draw(chunk_seed: u64, generation: u32) -> u64 {
    mix(chunk_seed ^ SWEEP_CHAOS_SALT ^ (u64::from(generation)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Whether chaos fires on this attempt, and where, given `draw` from
/// [`chaos_draw`]. The top 53 bits decide *if* (the same
/// uniform-in-`[0,1)` construction `CREATE_SERVE_CHAOS` uses); two low
/// bits pick the site so all three sites occur across a sweep.
pub fn plan_kill(probability: f64, draw: u64) -> Option<KillSite> {
    if probability <= 0.0 {
        return None;
    }
    let fires = probability >= 1.0 || ((draw >> 11) as f64 / (1u64 << 53) as f64) < probability;
    if !fires {
        return None;
    }
    Some(match draw & 3 {
        0 => KillSite::Before,
        1 => KillSite::MidAppend,
        _ => KillSite::AfterAppend,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_never_fires_and_one_always_fires() {
        for seed in 0..200u64 {
            for generation in 1..4 {
                let draw = chaos_draw(seed, generation);
                assert_eq!(plan_kill(0.0, draw), None);
                assert!(plan_kill(1.0, draw).is_some());
            }
        }
    }

    #[test]
    fn draws_are_deterministic_but_vary_with_generation() {
        let a = chaos_draw(42, 1);
        assert_eq!(a, chaos_draw(42, 1));
        assert_ne!(a, chaos_draw(42, 2));
        assert_ne!(a, chaos_draw(43, 1));
    }

    #[test]
    fn firing_rate_tracks_probability() {
        let n = 4000;
        let hits = (0..n)
            .filter(|&s| plan_kill(0.3, chaos_draw(s, 1)).is_some())
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.05, "rate {rate} far from 0.3");
    }

    #[test]
    fn all_three_sites_occur() {
        let mut seen = [false; 3];
        for s in 0..200u64 {
            match plan_kill(1.0, chaos_draw(s, 1)) {
                Some(KillSite::Before) => seen[0] = true,
                Some(KillSite::MidAppend) => seen[1] = true,
                Some(KillSite::AfterAppend) => seen[2] = true,
                None => unreachable!("p=1 always fires"),
            }
        }
        assert_eq!(seen, [true; 3]);
    }
}
