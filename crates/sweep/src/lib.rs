//! Crash-resumable sharded sweep fabric for the CREATE experiment grids.
//!
//! Long characterization sweeps die — OOM killers, preempted nodes,
//! `kill -9` — and restarting a multi-hour grid from scratch is the
//! difference between "rerun overnight" and "miss the deadline". This
//! crate makes sweeps *resumable and shardable* without giving up the
//! engine's bit-exact determinism:
//!
//! * [`fabric::chunks`] partitions a grid's `(point, trial)` space into
//!   fixed chunks **independent of shard count**, and shards deal the
//!   chunk list round-robin — N worker processes, zero coordination
//!   beyond the filesystem;
//! * [`journal`] gives each shard an append-only, CRC-checksummed,
//!   fsync'd checkpoint journal of completed chunk ranges plus their
//!   serialized [`create_core::StateAccumulator`] fold states; a
//!   SIGKILL'd shard re-opened from the journal skips finished work,
//!   and torn or corrupt tails are discarded (warn + heal), never fatal;
//! * [`fabric::merge_summaries`] reassembles the per-point aggregates by
//!   folding chunk states in chunk order — **bit-identical** to an
//!   uninterrupted run of the same sweep, no matter how many shards ran
//!   or how many times they were killed (CI byte-diffs exactly this);
//! * [`chaos`] injects deterministic kills (`CREATE_SWEEP_CHAOS`, same
//!   per-seed contract as the serving engine's `CREATE_SERVE_CHAOS`) at
//!   three sites — before the chunk, mid-append with a torn frame, and
//!   after the durable append — so the recovery paths are exercised on
//!   every CI run, not trusted on faith.
//!
//! The `create_sweep` binary wires this to the real mission grid: `run`
//! executes one shard of a voltage × task sweep over the cached
//! miniature deployment, `merge` writes the merged points to the
//! schema-versioned results store, `status` reports per-shard progress.

pub mod chaos;
pub mod fabric;
pub mod journal;

pub use chaos::{ChaosMode, KillSite};
pub use fabric::{
    chunks, merge_states, merge_summaries, run_shard, status, Chunk, Fingerprint, ShardReport,
    ShardStatus, SweepConfig, SweepError,
};
pub use journal::{ChunkRecord, Manifest, Record, ShardJournal, JOURNAL_SCHEMA_VERSION};
