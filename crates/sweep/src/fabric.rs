//! The shard coordinator: deterministic chunking, the resumable shard
//! runner, and the bit-exact merge.
//!
//! # Why chunks, not shards, are the unit of everything
//!
//! f64 folds are not associative, so *any* decomposition of a point's
//! trials changes the last few ulps of its sums. The fabric therefore
//! fixes the decomposition **as a function of the grid alone**: every
//! point's trials split into contiguous chunks of `chunk_trials` (the
//! last chunk ragged), enumerated point-major into one global chunk
//! list. Shards deal that list round-robin (`chunk.index % shard_count`)
//! and the merge folds each point's chunk states **in chunk order** —
//! so the merged result is a pure function of `(grid, base_seed,
//! chunk_trials)`. Shard count, kill/resume history, and which process
//! ran which chunk all cancel out, which is what lets CI byte-diff a
//! chaos-ridden sweep against an uninterrupted one. With `chunk_trials
//! >= trials` every point is one chunk and the merge reproduces
//! [`create_core::run_grid`] bit for bit.

use crate::chaos::{ChaosMode, KillSite};
use crate::journal::{self, ChunkRecord, Manifest, Record, ShardJournal};
use create_core::engine::{run_point_range, Accumulator, ExperimentPoint, StateAccumulator};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// Everything that parameterizes one sweep run, normally read from the
/// `CREATE_SWEEP_*` environment knobs by the CLI.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Total worker processes the chunk space is dealt across.
    pub shard_count: u32,
    /// This process's shard in `0..shard_count`.
    pub shard_index: u32,
    /// Trials per chunk — the checkpoint granularity *and* the merge
    /// fold granularity (changing it changes the canonical result's
    /// float rounding, so it is part of the journal manifest).
    pub chunk_trials: u32,
    /// Engine base seed.
    pub base_seed: u64,
    /// Root directory holding one `shard-NNNN/` journal per shard.
    pub dir: PathBuf,
    /// Kill injection.
    pub chaos: ChaosMode,
}

impl SweepConfig {
    /// The journal directory of one shard.
    pub fn shard_dir(&self, shard: u32) -> PathBuf {
        self.dir.join(format!("shard-{shard:04}"))
    }

    fn manifest(&self, fingerprint: u64, shard: u32) -> Manifest {
        Manifest {
            fingerprint,
            base_seed: self.base_seed,
            shard_index: shard,
            shard_count: self.shard_count,
            chunk_trials: self.chunk_trials,
        }
    }
}

/// One chunk of the global decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Position in the global point-major chunk list.
    pub index: usize,
    /// Grid point the trials belong to.
    pub point: usize,
    /// First trial of the range.
    pub first_trial: u32,
    /// Trials in the range (ragged at each point's end).
    pub len: u32,
}

/// The global chunk list for a grid with the given per-point trial
/// counts — a pure function of the grid and `chunk_trials`, never of
/// shard count.
pub fn chunks(trials_per_point: &[u32], chunk_trials: u32) -> Vec<Chunk> {
    let chunk_trials = chunk_trials.max(1);
    let mut out = Vec::new();
    for (point, &trials) in trials_per_point.iter().enumerate() {
        let mut first = 0u32;
        while first < trials {
            let len = chunk_trials.min(trials - first);
            out.push(Chunk {
                index: out.len(),
                point,
                first_trial: first,
                len,
            });
            first += len;
        }
    }
    out
}

/// The deterministic identity seed of one chunk — what the chaos hook
/// draws from. Derived from the *first trial's* engine seed so it moves
/// with the same `(base_seed, point, trial)` contract as everything
/// else.
fn chunk_seed(base_seed: u64, chunk: &Chunk) -> u64 {
    create_core::engine::derive_seed(base_seed, chunk.point, chunk.first_trial)
}

/// Errors the fabric can surface. Torn or corrupt journal content is
/// *not* among them — that is recovered, not reported.
#[derive(Debug)]
pub enum SweepError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A journal on disk belongs to a different sweep (grid fingerprint,
    /// seed, shard layout or chunk size mismatch).
    ForeignJournal(String),
    /// Merge found chunks nobody has completed yet.
    Incomplete(String),
    /// A journaled chunk state failed to decode (wrong accumulator type
    /// or a corrupted record that still checksummed — both indicate the
    /// journal is not this sweep's).
    BadState(String),
    /// Simulated chaos killed this attempt (the process-mode equivalent
    /// is `std::process::abort()`; this variant only exists so tests can
    /// drive kill/resume loops in-process).
    ChaosKilled {
        /// Where in the chunk lifecycle the kill landed.
        site: KillSite,
        /// Global index of the chunk that was being processed.
        chunk_index: usize,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Io(e) => write!(f, "sweep i/o error: {e}"),
            SweepError::ForeignJournal(why) => write!(f, "foreign journal: {why}"),
            SweepError::Incomplete(why) => write!(f, "sweep incomplete: {why}"),
            SweepError::BadState(why) => write!(f, "bad chunk state: {why}"),
            SweepError::ChaosKilled { site, chunk_index } => {
                write!(f, "chaos killed attempt at {site:?} on chunk {chunk_index}")
            }
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SweepError {
    fn from(e: std::io::Error) -> Self {
        SweepError::Io(e)
    }
}

/// FNV-1a accumulator for grid fingerprints — callers hash whatever
/// defines their grid (tasks, configs, trial counts) into one `u64` that
/// gates journal reuse.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint(0xCBF2_9CE4_8422_2325)
    }
}

impl Fingerprint {
    /// A fresh accumulator at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds raw bytes in.
    pub fn push_bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self
    }

    /// Folds one integer in (little-endian).
    pub fn push_u64(self, v: u64) -> Self {
        self.push_bytes(&v.to_le_bytes())
    }

    /// The fingerprint.
    pub fn finish(self) -> u64 {
        self.0
    }
}

fn check_manifests(
    records: &[Record],
    expected: &Manifest,
    where_: &str,
) -> Result<(), SweepError> {
    for record in records {
        if let Record::Manifest(m) = record {
            if m != expected {
                return Err(SweepError::ForeignJournal(format!(
                    "{where_} was written by a different sweep \
                     (found {m:?}, expected {expected:?}) — point CREATE_SWEEP_DIR \
                     somewhere fresh or remove the stale journal"
                )));
            }
        }
    }
    Ok(())
}

/// What one shard attempt did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardReport {
    /// Chunks this shard owns.
    pub owned: usize,
    /// Chunks whose journaled state let this attempt skip the work.
    pub resumed: usize,
    /// Chunks actually run (and journaled) by this attempt.
    pub ran: usize,
    /// Files whose torn tails recovery discarded on open.
    pub torn_files: usize,
    /// Attempt number (1 = first run, >1 = resume).
    pub generation: u32,
}

/// Runs (or resumes) this process's shard: every owned chunk without a
/// journaled state is executed via [`run_point_range`] and its encoded
/// accumulator state appended durably to the shard journal. Safe to
/// re-run any number of times; completed work is never recomputed.
///
/// # Errors
///
/// Filesystem errors, a foreign journal, or (simulated chaos only) an
/// injected kill. A process-mode chaos kill does not return — it aborts.
pub fn run_shard<P>(
    points: &[P],
    config: &SweepConfig,
    fingerprint: u64,
) -> Result<ShardReport, SweepError>
where
    P: ExperimentPoint,
    P::Acc: StateAccumulator<P::Outcome>,
{
    let trials: Vec<u32> = points.iter().map(ExperimentPoint::trials).collect();
    let all = chunks(&trials, config.chunk_trials);
    let expected = config.manifest(fingerprint, config.shard_index);
    let shard_dir = config.shard_dir(config.shard_index);
    let (recovered, mut journal) = ShardJournal::open(&shard_dir, expected)?;
    check_manifests(
        &recovered.records,
        &expected,
        &shard_dir.display().to_string(),
    )?;

    let done: BTreeSet<(u32, u32, u32)> = recovered
        .records
        .iter()
        .filter_map(|r| match r {
            Record::Chunk(c) => Some((c.point, c.first_trial, c.len)),
            Record::Manifest(_) => None,
        })
        .collect();

    let mut report = ShardReport {
        owned: 0,
        resumed: 0,
        ran: 0,
        torn_files: recovered.torn_files,
        generation: recovered.generation,
    };
    let probability = config.chaos.probability();
    for chunk in all
        .iter()
        .filter(|c| c.index as u32 % config.shard_count.max(1) == config.shard_index)
    {
        report.owned += 1;
        if done.contains(&(chunk.point as u32, chunk.first_trial, chunk.len)) {
            report.resumed += 1;
            continue;
        }
        let draw =
            crate::chaos::chaos_draw(chunk_seed(config.base_seed, chunk), recovered.generation);
        let kill = crate::chaos::plan_kill(probability, draw);
        if kill == Some(KillSite::Before) {
            return Err(deliver_kill(&config.chaos, KillSite::Before, chunk.index));
        }
        let acc = run_point_range(
            &points[chunk.point],
            chunk.point,
            config.base_seed,
            chunk.first_trial,
            chunk.len,
        );
        let record = Record::Chunk(ChunkRecord {
            point: chunk.point as u32,
            first_trial: chunk.first_trial,
            len: chunk.len,
            state: acc.encode_state(),
        });
        if kill == Some(KillSite::MidAppend) {
            // Leave a realistic torn frame behind, then die.
            let framed_len = journal::frame(&record.encode()).len();
            let cut = 1 + (draw >> 8) as usize % (framed_len - 1);
            journal.append_torn(&record, cut)?;
            return Err(deliver_kill(
                &config.chaos,
                KillSite::MidAppend,
                chunk.index,
            ));
        }
        journal.append(&record)?;
        report.ran += 1;
        if kill == Some(KillSite::AfterAppend) {
            return Err(deliver_kill(
                &config.chaos,
                KillSite::AfterAppend,
                chunk.index,
            ));
        }
    }
    Ok(report)
}

fn deliver_kill(mode: &ChaosMode, site: KillSite, chunk_index: usize) -> SweepError {
    match mode {
        ChaosMode::Process(_) => {
            eprintln!("[sweep] chaos kill at {site:?} on chunk {chunk_index}");
            std::process::abort();
        }
        _ => SweepError::ChaosKilled { site, chunk_index },
    }
}

/// Merges every shard's journal into one accumulator per point, folding
/// chunk states **in chunk order** — the canonical result described in
/// the module docs. Duplicate records for a range (possible after a
/// crash between append and bookkeeping) are de-duplicated, first
/// occurrence wins, so nothing is ever double-counted.
///
/// Generic over the accumulator only — merging needs the per-point trial
/// counts and the state codec, not live experiment points.
///
/// # Errors
///
/// Filesystem errors, a foreign journal, undecodable states, or an
/// incomplete sweep (some chunk has no journaled state anywhere).
pub fn merge_states<O, A>(
    trials_per_point: &[u32],
    config: &SweepConfig,
    fingerprint: u64,
) -> Result<Vec<A>, SweepError>
where
    A: StateAccumulator<O> + Default,
{
    let all = chunks(trials_per_point, config.chunk_trials);
    let mut states: BTreeMap<(u32, u32, u32), Vec<u8>> = BTreeMap::new();
    for shard in 0..config.shard_count.max(1) {
        let shard_dir = config.shard_dir(shard);
        let recovered = journal::read_shard_dir(&shard_dir)?;
        let expected = config.manifest(fingerprint, shard);
        check_manifests(
            &recovered.records,
            &expected,
            &shard_dir.display().to_string(),
        )?;
        for record in recovered.records {
            if let Record::Chunk(c) = record {
                // First occurrence wins; re-run ranges produce identical
                // states anyway (same seeds, same fold), but the rule
                // also guards against double-counting.
                states
                    .entry((c.point, c.first_trial, c.len))
                    .or_insert(c.state);
            }
        }
    }

    let missing: Vec<&Chunk> = all
        .iter()
        .filter(|c| !states.contains_key(&(c.point as u32, c.first_trial, c.len)))
        .collect();
    if !missing.is_empty() {
        return Err(SweepError::Incomplete(format!(
            "{} of {} chunks have no journaled state (first missing: point {} trials {}..{}); \
             run the remaining shards to completion first",
            missing.len(),
            all.len(),
            missing[0].point,
            missing[0].first_trial,
            missing[0].first_trial + missing[0].len
        )));
    }

    let mut merged: Vec<Option<A>> = (0..trials_per_point.len()).map(|_| None).collect();
    for chunk in &all {
        let state = &states[&(chunk.point as u32, chunk.first_trial, chunk.len)];
        let acc = A::decode_state(state).map_err(|why| {
            SweepError::BadState(format!(
                "point {} trials {}..{}: {why}",
                chunk.point,
                chunk.first_trial,
                chunk.first_trial + chunk.len
            ))
        })?;
        match &mut merged[chunk.point] {
            Some(m) => m.merge_state(&acc),
            slot @ None => *slot = Some(acc),
        }
    }
    Ok(merged.into_iter().map(|m| m.unwrap_or_default()).collect())
}

/// [`merge_states`] + `finish()`: the per-point summaries.
///
/// # Errors
///
/// Same as [`merge_states`].
pub fn merge_summaries<O, A>(
    trials_per_point: &[u32],
    config: &SweepConfig,
    fingerprint: u64,
) -> Result<Vec<A::Summary>, SweepError>
where
    A: StateAccumulator<O> + Default,
{
    Ok(merge_states::<O, A>(trials_per_point, config, fingerprint)?
        .into_iter()
        .map(Accumulator::finish)
        .collect())
}

/// Progress of one shard, as visible from its journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStatus {
    /// Shard index.
    pub shard: u32,
    /// Owned chunks with a journaled state.
    pub done: usize,
    /// Chunks this shard owns.
    pub owned: usize,
    /// Attempts recorded so far (manifest count).
    pub attempts: u32,
    /// Files with discarded torn tails.
    pub torn_files: usize,
}

/// Reads every shard's progress without touching the journals.
///
/// # Errors
///
/// Filesystem errors or a foreign journal.
pub fn status(
    trials_per_point: &[u32],
    config: &SweepConfig,
    fingerprint: u64,
) -> Result<Vec<ShardStatus>, SweepError> {
    let all = chunks(trials_per_point, config.chunk_trials);
    let mut out = Vec::new();
    for shard in 0..config.shard_count.max(1) {
        let shard_dir = config.shard_dir(shard);
        let recovered = journal::read_shard_dir(&shard_dir)?;
        let expected = config.manifest(fingerprint, shard);
        check_manifests(
            &recovered.records,
            &expected,
            &shard_dir.display().to_string(),
        )?;
        let done_set: BTreeSet<(u32, u32, u32)> = recovered
            .records
            .iter()
            .filter_map(|r| match r {
                Record::Chunk(c) => Some((c.point, c.first_trial, c.len)),
                Record::Manifest(_) => None,
            })
            .collect();
        let owned: Vec<&Chunk> = all
            .iter()
            .filter(|c| c.index as u32 % config.shard_count.max(1) == shard)
            .collect();
        let done = owned
            .iter()
            .filter(|c| done_set.contains(&(c.point as u32, c.first_trial, c.len)))
            .count();
        out.push(ShardStatus {
            shard,
            done,
            owned: owned.len(),
            attempts: recovered.generation,
            torn_files: recovered.torn_files,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_is_point_major_and_ragged() {
        let c = chunks(&[5, 0, 3], 2);
        let shape: Vec<(usize, u32, u32)> =
            c.iter().map(|c| (c.point, c.first_trial, c.len)).collect();
        assert_eq!(
            shape,
            vec![(0, 0, 2), (0, 2, 2), (0, 4, 1), (2, 0, 2), (2, 2, 1)]
        );
        assert!(c.iter().enumerate().all(|(i, c)| c.index == i));
    }

    #[test]
    fn chunking_ignores_shard_count_by_construction() {
        // The function does not even take a shard count; pin that the
        // chunk list only changes with the grid or the chunk size.
        assert_eq!(chunks(&[7], 3), chunks(&[7], 3));
        assert_ne!(chunks(&[7], 3), chunks(&[7], 4));
    }

    #[test]
    fn fingerprint_distinguishes_inputs() {
        let a = Fingerprint::new().push_u64(1).push_bytes(b"log").finish();
        let b = Fingerprint::new().push_u64(2).push_bytes(b"log").finish();
        let c = Fingerprint::new().push_u64(1).push_bytes(b"seed").finish();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(
            a,
            Fingerprint::new().push_u64(1).push_bytes(b"log").finish()
        );
    }
}
