//! The per-shard checkpoint journal: append-only, CRC-framed, fsync'd.
//!
//! A shard directory (`shard-0003/`) holds a sequence of **sealed
//! segments** (`seg-00000001.crj`, immutable once named) plus one
//! **active file** (`open.crj`) that the running shard appends to. Every
//! file starts with a 12-byte header (magic + schema version); every
//! record after it is one *frame*:
//!
//! ```text
//! [payload len: u32 LE][CRC32 (IEEE) of payload: u32 LE][payload]
//! ```
//!
//! Appends `fsync` before the shard acts on the record being durable, so
//! a record the resume path skips work for is guaranteed on disk. A
//! crash mid-append leaves a **torn tail** — a partial frame, or a frame
//! whose CRC does not match. Recovery ([`ShardJournal::open`]) never
//! aborts on one: it keeps the valid frame prefix of every file, warns,
//! rewrites the damaged file to that prefix (temp file + fsync + atomic
//! rename, via [`create_tensor::atomicfile`]), and the trial ranges whose
//! records were torn off simply re-run. Double-appends (a record made it
//! to disk but the process died before noting so) are harmless: readers
//! de-duplicate chunk records by trial range, keeping the first
//! occurrence.
//!
//! Each open also appends a fresh [`Record::Manifest`], so the number of
//! manifests in a journal counts the shard's *attempts* — the recovery
//! generation the chaos hook salts its kill decisions with (otherwise a
//! deterministic kill would re-fire identically on every resume and the
//! sweep could never finish).

use create_tensor::atomicfile::write_atomic;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// File magic for sweep journals.
pub const JOURNAL_MAGIC: &[u8; 8] = b"CRSWEEP\x01";

/// Bump when the frame or record encoding changes incompatibly; readers
/// reject other versions (a journal is scratch state, not an archive).
pub const JOURNAL_SCHEMA_VERSION: u32 = 1;

const HEADER_LEN: usize = 12;
const FRAME_HEADER_LEN: usize = 8;

/// Frames larger than this are treated as torn (a corrupt length field
/// would otherwise make the reader try to allocate gigabytes).
const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// The journal's frame checksum — the workspace-shared CRC32
/// ([`create_tensor::crc::crc32`]; the net front-end's wire frames use
/// the very same primitive).
pub use create_tensor::crc::crc32;

/// Identity of the sweep a journal belongs to. Every field must match
/// for a resume to trust the journal; anything else is a *foreign
/// journal* (a different grid, shard layout or seed writing into the
/// same directory) and is a hard error — silently mixing two sweeps'
/// chunk states would corrupt both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// Fingerprint of the experiment grid (points, configs, trials).
    pub fingerprint: u64,
    /// Engine base seed the sweep derives trial seeds from.
    pub base_seed: u64,
    /// This shard's index in `0..shard_count`.
    pub shard_index: u32,
    /// Total shards the chunk space is dealt across.
    pub shard_count: u32,
    /// Trials per chunk (the unit of checkpointing and of merge folds).
    pub chunk_trials: u32,
}

/// One completed chunk: the contiguous trials `first_trial ..
/// first_trial + len` of point `point`, plus the serialized
/// [`StateAccumulator`](create_core::StateAccumulator) fold state of
/// exactly those trials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkRecord {
    /// Grid point index.
    pub point: u32,
    /// First trial of the range.
    pub first_trial: u32,
    /// Number of trials in the range.
    pub len: u32,
    /// Encoded accumulator state for the range.
    pub state: Vec<u8>,
}

/// A journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// Written once per shard open (attempt).
    Manifest(Manifest),
    /// Written once per completed chunk, after the trials ran.
    Chunk(ChunkRecord),
}

const KIND_MANIFEST: u8 = 1;
const KIND_CHUNK: u8 = 2;

impl Record {
    /// Serializes the record payload (everything inside one frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Record::Manifest(m) => {
                out.push(KIND_MANIFEST);
                out.extend_from_slice(&m.fingerprint.to_le_bytes());
                out.extend_from_slice(&m.base_seed.to_le_bytes());
                out.extend_from_slice(&m.shard_index.to_le_bytes());
                out.extend_from_slice(&m.shard_count.to_le_bytes());
                out.extend_from_slice(&m.chunk_trials.to_le_bytes());
            }
            Record::Chunk(c) => {
                out.push(KIND_CHUNK);
                out.extend_from_slice(&c.point.to_le_bytes());
                out.extend_from_slice(&c.first_trial.to_le_bytes());
                out.extend_from_slice(&c.len.to_le_bytes());
                out.extend_from_slice(&(c.state.len() as u32).to_le_bytes());
                out.extend_from_slice(&c.state);
            }
        }
        out
    }

    /// Parses one record payload.
    ///
    /// # Errors
    ///
    /// Rejects unknown kinds and truncated payloads with a description.
    pub fn decode(payload: &[u8]) -> Result<Record, String> {
        let u32_at = |at: usize| -> Result<u32, String> {
            payload
                .get(at..at + 4)
                .map(|s| u32::from_le_bytes(s.try_into().expect("4 bytes")))
                .ok_or_else(|| "record truncated".to_string())
        };
        let u64_at = |at: usize| -> Result<u64, String> {
            payload
                .get(at..at + 8)
                .map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
                .ok_or_else(|| "record truncated".to_string())
        };
        match payload.first() {
            Some(&KIND_MANIFEST) => {
                let m = Manifest {
                    fingerprint: u64_at(1)?,
                    base_seed: u64_at(9)?,
                    shard_index: u32_at(17)?,
                    shard_count: u32_at(21)?,
                    chunk_trials: u32_at(25)?,
                };
                if payload.len() != 29 {
                    return Err(format!("manifest has {} bytes, expected 29", payload.len()));
                }
                Ok(Record::Manifest(m))
            }
            Some(&KIND_CHUNK) => {
                let point = u32_at(1)?;
                let first_trial = u32_at(5)?;
                let len = u32_at(9)?;
                let state_len = u32_at(13)? as usize;
                let state = payload
                    .get(17..17 + state_len)
                    .ok_or_else(|| "chunk state truncated".to_string())?
                    .to_vec();
                if payload.len() != 17 + state_len {
                    return Err("chunk record has trailing bytes".to_string());
                }
                Ok(Record::Chunk(ChunkRecord {
                    point,
                    first_trial,
                    len,
                    state,
                }))
            }
            Some(&kind) => Err(format!("unknown record kind {kind}")),
            None => Err("empty record".to_string()),
        }
    }
}

/// Wraps a record payload in one CRC frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The journal file header.
pub fn file_header() -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN);
    out.extend_from_slice(JOURNAL_MAGIC);
    out.extend_from_slice(&JOURNAL_SCHEMA_VERSION.to_le_bytes());
    out
}

/// The valid prefix of one journal file's bytes: decoded records, the
/// byte length of the clean prefix, and whether a torn/corrupt tail was
/// discarded. A file whose *header* is unreadable contributes nothing
/// (clean length 0) and counts as torn if non-empty.
pub fn scan_file(bytes: &[u8]) -> (Vec<Record>, usize, bool) {
    if bytes.len() < HEADER_LEN
        || &bytes[..8] != JOURNAL_MAGIC
        || bytes[8..HEADER_LEN] != JOURNAL_SCHEMA_VERSION.to_le_bytes()
    {
        return (Vec::new(), 0, !bytes.is_empty());
    }
    let mut records = Vec::new();
    let mut at = HEADER_LEN;
    loop {
        let Some(head) = bytes.get(at..at + FRAME_HEADER_LEN) else {
            // Partial frame header (or clean EOF when nothing remains).
            return (records, at, at != bytes.len());
        };
        let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes"));
        let want_crc = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            return (records, at, true);
        }
        let Some(payload) = bytes.get(at + FRAME_HEADER_LEN..at + FRAME_HEADER_LEN + len as usize)
        else {
            return (records, at, true);
        };
        if crc32(payload) != want_crc {
            return (records, at, true);
        }
        match Record::decode(payload) {
            Ok(r) => records.push(r),
            // A frame that checksums but does not decode is as torn as a
            // bad CRC: keep the prefix, drop it and everything after.
            Err(_) => return (records, at, true),
        }
        at += FRAME_HEADER_LEN + len as usize;
    }
}

/// What [`ShardJournal::open`] recovered from disk.
#[derive(Debug)]
pub struct Recovered {
    /// Every valid record, in segment order then file order (manifests
    /// included — one per prior attempt).
    pub records: Vec<Record>,
    /// Number of files whose torn/corrupt tails were discarded.
    pub torn_files: usize,
    /// Attempts so far *including this open* (= manifests now on disk).
    pub generation: u32,
}

/// The active, append-only journal of one shard.
#[derive(Debug)]
pub struct ShardJournal {
    dir: PathBuf,
    open_path: PathBuf,
    file: File,
}

fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

fn segment_paths(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut segs: Vec<PathBuf> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("seg-") && name.ends_with(".crj") {
            segs.push(path);
        }
    }
    segs.sort();
    Ok(segs)
}

impl ShardJournal {
    /// Opens (creating or recovering) the journal in `dir` and starts a
    /// new attempt: sealed segments and any previous `open.crj` are
    /// scanned, torn tails are discarded (with a stderr warning) and the
    /// damaged files rewritten to their valid prefixes, the old
    /// `open.crj` is sealed into the next segment, and a fresh `open.crj`
    /// is created with `manifest` appended (durably) as the attempt
    /// marker.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors. Torn or corrupt journal *content*
    /// is never an error.
    pub fn open(dir: &Path, manifest: Manifest) -> std::io::Result<(Recovered, ShardJournal)> {
        fs::create_dir_all(dir)?;
        let mut records = Vec::new();
        let mut torn_files = 0usize;

        let segs = segment_paths(dir)?;
        let mut next_seal = segs.len() as u64 + 1;
        let open_path = dir.join("open.crj");
        let mut to_scan: Vec<(PathBuf, bool)> = segs.into_iter().map(|p| (p, false)).collect();
        if open_path.is_file() {
            to_scan.push((open_path.clone(), true));
        }
        for (path, is_open) in to_scan {
            let mut bytes = Vec::new();
            File::open(&path)?.read_to_end(&mut bytes)?;
            let (file_records, clean_len, torn) = scan_file(&bytes);
            if torn {
                torn_files += 1;
                eprintln!(
                    "[sweep] {}: discarding torn tail ({} of {} bytes valid, {} record(s) kept)",
                    path.display(),
                    clean_len,
                    bytes.len(),
                    file_records.len()
                );
            }
            let keep = !file_records.is_empty();
            if torn && keep {
                // Rewrite the file to its valid prefix so the damage is
                // healed once, not re-scanned (and re-warned) forever.
                write_atomic(&path, &bytes[..clean_len])?;
            }
            if is_open {
                // Seal the previous attempt's file (renames are atomic;
                // a crash here just re-seals next open).
                if keep {
                    let seal = dir.join(format!("seg-{next_seal:08}.crj"));
                    fs::rename(&path, &seal)?;
                    next_seal += 1;
                } else {
                    fs::remove_file(&path)?;
                }
            } else if !keep {
                // A sealed segment with no valid records is dead weight.
                fs::remove_file(&path)?;
            }
            records.extend(file_records);
        }

        let prior_manifests = records
            .iter()
            .filter(|r| matches!(r, Record::Manifest(_)))
            .count() as u32;

        let mut file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&open_path)?;
        file.write_all(&file_header())?;
        file.sync_all()?;
        sync_dir(dir);

        let mut journal = ShardJournal {
            dir: dir.to_path_buf(),
            open_path,
            file,
        };
        journal.append(&Record::Manifest(manifest))?;
        Ok((
            Recovered {
                records,
                torn_files,
                generation: prior_manifests + 1,
            },
            journal,
        ))
    }

    /// Appends one record durably (`fsync` before returning).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(&mut self, record: &Record) -> std::io::Result<()> {
        self.file.write_all(&frame(&record.encode()))?;
        self.file.sync_all()
    }

    /// Appends the first `cut` bytes of `record`'s frame — a *torn*
    /// append, exactly what a crash mid-write leaves behind. The chaos
    /// hook's mid-append kill site writes through this so recovery paths
    /// are exercised with realistic damage.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append_torn(&mut self, record: &Record, cut: usize) -> std::io::Result<()> {
        let framed = frame(&record.encode());
        let cut = cut.min(framed.len().saturating_sub(1)).max(1);
        self.file.write_all(&framed[..cut])?;
        self.file.sync_all()
    }

    /// The shard directory this journal lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The active file's path (`open.crj`).
    pub fn open_path(&self) -> &Path {
        &self.open_path
    }
}

/// Reads every valid record in a shard directory **without** opening it
/// for writing — the merge/status path. Torn tails are discarded with a
/// warning, never an error; a missing directory reads as empty.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn read_shard_dir(dir: &Path) -> std::io::Result<Recovered> {
    let mut records = Vec::new();
    let mut torn_files = 0usize;
    if dir.is_dir() {
        let mut paths = segment_paths(dir)?;
        let open_path = dir.join("open.crj");
        if open_path.is_file() {
            paths.push(open_path);
        }
        for path in paths {
            let mut bytes = Vec::new();
            File::open(&path)?.read_to_end(&mut bytes)?;
            let (file_records, _, torn) = scan_file(&bytes);
            if torn {
                torn_files += 1;
                eprintln!(
                    "[sweep] {}: ignoring torn tail ({} record(s) kept)",
                    path.display(),
                    file_records.len()
                );
            }
            records.extend(file_records);
        }
    }
    let generation = records
        .iter()
        .filter(|r| matches!(r, Record::Manifest(_)))
        .count() as u32;
    Ok(Recovered {
        records,
        torn_files,
        generation,
    })
}
