//! Plain-text tables for the experiment harnesses.
//!
//! Every bench target prints the paper's rows/series as an aligned text
//! table and mirrors them into the schema-versioned results store
//! (`results/*.json`, see [`crate::results`]) for plotting — via
//! [`TextTable::to_records`], which turns each row into one structured
//! record keyed by the column headers. CSV export ([`TextTable::write_csv`])
//! remains available for spreadsheet use but is no longer the harnesses'
//! emission path.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (panics if the width differs from the header).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Converts each row into one results-store record keyed by the
    /// column headers. Cells that are valid JSON numbers (digits, sign,
    /// decimal point, exponent — and nothing else) are stored as numbers
    /// with their exact rendering preserved; everything else (formatted
    /// percentages, labels, scientific "0" placeholders with units) stays
    /// a string.
    pub fn to_records(&self) -> Vec<crate::results::Record> {
        self.rows
            .iter()
            .map(|row| {
                let mut record = crate::results::Record::new();
                for (header, cell) in self.header.iter().zip(row) {
                    let cell = cell.trim();
                    let numeric_grammar = !cell.is_empty()
                        && cell.chars().all(|c| {
                            c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')
                        });
                    record = if numeric_grammar
                        && cell.parse::<f64>().map(f64::is_finite).unwrap_or(false)
                    {
                        record.raw_num(header, cell)
                    } else {
                        record.str(header, cell)
                    };
                }
                record
            })
            .collect()
    }

    /// Writes the table as CSV.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut out = String::new();
        let csv_row = |cells: &[String]| -> String {
            cells
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect::<Vec<_>>()
                .join(",")
        };
        out.push_str(&csv_row(&self.header));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&csv_row(row));
            out.push('\n');
        }
        fs::write(path, out)
    }
}

/// The directory experiment CSVs are written to (`results/`, or
/// `CREATE_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CREATE_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .components()
        .collect()
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats joules with adaptive units.
pub fn joules(x: f64) -> String {
    if x >= 1.0 {
        format!("{x:.2} J")
    } else if x >= 1e-3 {
        format!("{:.2} mJ", x * 1e3)
    } else {
        format!("{:.2} µJ", x * 1e6)
    }
}

/// Formats a BER in scientific notation.
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else {
        format!("{x:.0e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "2.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new(vec!["k", "v"]);
        t.row(vec!["x,y", "ok"]);
        let path = std::env::temp_dir().join(format!("create-csv-{}.csv", std::process::id()));
        t.write_csv(&path).unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"x,y\""));
        fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_enforced() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn to_records_types_numeric_cells_and_keeps_labels() {
        let mut t = TextTable::new(vec!["voltage_v", "ber", "success_rate", "note"]);
        t.row(vec!["0.90", "2e-8", "90.6%", "ok"]);
        let records = t.to_records();
        assert_eq!(records.len(), 1);
        assert_eq!(
            records[0].render(),
            "  {\"voltage_v\": 0.90, \"ber\": 2e-8, \
             \"success_rate\": \"90.6%\", \"note\": \"ok\"}"
        );
        // The rendering round-trips through the store parser.
        let doc =
            crate::results::parse_doc(&crate::results::render_doc("t", &records)).expect("parse");
        assert_eq!(doc.records.len(), 1);
        match &doc.records[0][0].1 {
            crate::results::Value::Num { raw, value } => {
                assert_eq!(raw, "0.90");
                assert_eq!(*value, 0.90);
            }
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.906), "90.6%");
        assert_eq!(joules(2.5), "2.50 J");
        assert_eq!(joules(0.0021), "2.10 mJ");
        assert_eq!(sci(2e-8), "2e-8");
    }
}
