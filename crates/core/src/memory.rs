//! The memory-resilience extension: task quality under SRAM weight faults.
//!
//! The paper confines CREATE to computational timing errors, asserting that
//! "memory faults can be effectively mitigated by ECC" (Sec. 2.3) and
//! flagging memory-rail voltage scaling as future work (Sec. 3.1). This
//! module measures both halves of that claim on the same mission runner
//! used everywhere else:
//!
//! 1. deployed INT8 weights are stored in the modeled SRAM
//!    ([`create_accel::sram`]), which materializes one *retention-fault
//!    snapshot per trial* at the memory-rail voltage (cells whose static
//!    noise margin collapses stay bad until rewritten — the Ares-style
//!    static weight-fault protocol);
//! 2. missions then run with the faulted weights, with or without SECDED
//!    (72,64) protection ([`create_accel::ecc`]), and success rates are
//!    aggregated exactly like every other sweep.
//!
//! The `ext_memory` bench target charts the outcome: unprotected weight
//! storage collapses task quality well above the logic rail's protected
//! minimum voltage, while SECDED holds golden quality to far lower
//! voltages at a fixed 12.5% storage / ~3% read-energy overhead —
//! quantifying the assumption the paper makes in prose.

use crate::config::CreateConfig;
use crate::engine::{self, Accumulator, ExperimentPoint};
use crate::mission::{run_trial, Deployment, MissionOutcome};
use crate::stats::{SweepAccumulator, SweepPoint};
use create_accel::sram::{MemoryFaultModel, Protection, ReadStats, SramBuffer};
use create_agents::controller::QuantController;
use create_agents::planner::QuantPlanner;
use create_env::TaskId;
use create_tensor::QuantMatrix;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::sync::Arc;

/// Which unit's weight buffer sits on the scaled memory rail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemTarget {
    /// Fault the planner's weight buffer.
    Planner,
    /// Fault the controller's weight buffer.
    Controller,
}

impl std::fmt::Display for MemTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MemTarget::Planner => "planner",
            MemTarget::Controller => "controller",
        })
    }
}

/// Memory-rail configuration for one experiment point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryConfig {
    /// Memory-rail supply voltage (independent of the logic rails).
    pub voltage: f64,
    /// Storage protection.
    pub protection: Protection,
    /// The retention-fault model.
    pub model: MemoryFaultModel,
}

impl MemoryConfig {
    /// A memory rail at voltage `v` with the given protection.
    pub fn new(voltage: f64, protection: Protection) -> Self {
        Self {
            voltage,
            protection,
            model: MemoryFaultModel::new(),
        }
    }
}

/// Routes one weight matrix through the modeled SRAM and writes the fault
/// snapshot back in place, accumulating counters into `stats`.
fn fault_weight(
    w: &mut QuantMatrix,
    cfg: &MemoryConfig,
    rng: &mut impl Rng,
    stats: &mut ReadStats,
) {
    let buf = SramBuffer::store(w.as_slice(), cfg.protection, cfg.model);
    let (read, s) = buf.snapshot(cfg.voltage, rng);
    w.as_mut_slice().copy_from_slice(&read);
    stats.merge(s);
}

/// One retention-fault snapshot of a deployed controller.
pub fn faulty_controller(
    ctrl: &QuantController,
    cfg: &MemoryConfig,
    seed: u64,
) -> (QuantController, ReadStats) {
    let mut out = ctrl.clone();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51AA_D5EE);
    let mut stats = ReadStats::default();
    out.visit_weights_mut(|w| fault_weight(w, cfg, &mut rng, &mut stats));
    (out, stats)
}

/// One retention-fault snapshot of a deployed planner.
pub fn faulty_planner(
    planner: &QuantPlanner,
    cfg: &MemoryConfig,
    seed: u64,
) -> (QuantPlanner, ReadStats) {
    let mut out = planner.clone();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51AA_D5EE);
    let mut stats = ReadStats::default();
    out.visit_weights_mut(|w| fault_weight(w, cfg, &mut rng, &mut stats));
    (out, stats)
}

/// Builds a deployment whose targeted unit carries one fault snapshot.
///
/// Only the planner variant actually selected by `config.wr` is faulted;
/// the mission runner ignores the other one.
pub fn faulty_deployment(
    dep: &Deployment,
    target: MemTarget,
    cfg: &MemoryConfig,
    wr: bool,
    seed: u64,
) -> (Deployment, ReadStats) {
    let mut out = dep.clone();
    let stats = match target {
        MemTarget::Controller => {
            let (ctrl, stats) = faulty_controller(&dep.controller, cfg, seed);
            out.controller = Arc::new(ctrl);
            stats
        }
        MemTarget::Planner => {
            let source = if wr { &dep.planner_wr } else { &dep.planner };
            let (planner, stats) = faulty_planner(source, cfg, seed);
            if wr {
                out.planner_wr = Arc::new(planner);
            } else {
                out.planner = Arc::new(planner);
            }
            stats
        }
    };
    (out, stats)
}

/// Aggregated result of one memory-fault experiment point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryPoint {
    /// Mission-level aggregation (success rate, steps, energy).
    pub sweep: SweepPoint,
    /// Fault counters accumulated over all trials' snapshots.
    pub stats: ReadStats,
}

/// Streams `(outcome, snapshot stats)` pairs into a [`MemoryPoint`]:
/// mission aggregation via [`SweepAccumulator`], fault counters merged in
/// trial order.
#[derive(Default)]
pub struct MemoryAccumulator {
    sweep: SweepAccumulator,
    stats: ReadStats,
}

impl Accumulator<(MissionOutcome, ReadStats)> for MemoryAccumulator {
    type Summary = MemoryPoint;

    fn push(&mut self, (outcome, stats): (MissionOutcome, ReadStats)) {
        self.sweep.push(outcome);
        self.stats.merge(stats);
    }

    fn finish(self) -> MemoryPoint {
        MemoryPoint {
            sweep: self.sweep.finish(),
            stats: self.stats,
        }
    }
}

/// One memory-rail experiment cell: every trial draws a fresh
/// retention-fault snapshot of the targeted unit before running the
/// mission.
pub struct MemoryCell<'a> {
    /// The shared golden deployment (snapshots are per-trial copies).
    pub dep: &'a Deployment,
    /// Task to run.
    pub task: TaskId,
    /// Technique/error configuration (datapath side).
    pub config: CreateConfig,
    /// Which unit's weights sit on the scaled rail.
    pub target: MemTarget,
    /// The memory-rail configuration.
    pub mem: MemoryConfig,
    /// Trials for this cell.
    pub trials: u32,
}

impl ExperimentPoint for MemoryCell<'_> {
    type Outcome = (MissionOutcome, ReadStats);
    type Acc = MemoryAccumulator;

    fn trials(&self) -> u32 {
        self.trials
    }

    fn accumulator(&self) -> MemoryAccumulator {
        MemoryAccumulator::default()
    }

    fn run_trial(&self, _trial: u32, seed: u64) -> (MissionOutcome, ReadStats) {
        let (faulted, stats) =
            faulty_deployment(self.dep, self.target, &self.mem, self.config.wr, seed);
        (run_trial(&faulted, self.task, &self.config, seed), stats)
    }
}

/// Runs a grid of [`MemoryCell`]s with all trials fanned over one worker
/// pool, returning one [`MemoryPoint`] per cell in input order.
pub fn run_memory_grid<'a>(
    cells: impl IntoIterator<Item = MemoryCell<'a>>,
    base_seed: u64,
) -> Vec<MemoryPoint> {
    engine::run_grid(cells, base_seed)
}

/// Runs `n` trials where each trial draws a fresh retention-fault snapshot
/// of the targeted unit's weights before executing the mission.
///
/// Datapath injection, AD, WR and voltage control follow `config`
/// unchanged, so memory faults compose with the rest of CREATE exactly as
/// they would on the platform. Fan-out, seeding and aggregation all come
/// from [`crate::engine`].
pub fn run_memory_point(
    dep: &Deployment,
    task: TaskId,
    config: &CreateConfig,
    target: MemTarget,
    mem: &MemoryConfig,
    n: u32,
    base_seed: u64,
) -> MemoryPoint {
    run_memory_grid(
        std::iter::once(MemoryCell {
            dep,
            task,
            config: config.clone(),
            target,
            mem: *mem,
            trials: n,
        }),
        base_seed,
    )
    .pop()
    .expect("one cell in, one point out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use create_accel::timing::V_NOMINAL;

    #[test]
    fn memory_config_carries_the_model() {
        let cfg = MemoryConfig::new(0.7, Protection::Secded);
        assert_eq!(cfg.voltage, 0.7);
        assert_eq!(cfg.protection, Protection::Secded);
        assert!(cfg.model.upset_prob(0.7) > 0.0);
    }

    #[test]
    fn targets_render_for_reports() {
        assert_eq!(MemTarget::Planner.to_string(), "planner");
        assert_eq!(MemTarget::Controller.to_string(), "controller");
    }

    #[test]
    fn nominal_voltage_snapshot_leaves_weights_untouched() {
        let (dep, _) = crate::testutil::tiny_deployment();
        let cfg = MemoryConfig::new(V_NOMINAL, Protection::None);
        let (ctrl, stats) = faulty_controller(&dep.controller, &cfg, 42);
        assert_eq!(stats.bits_upset, 0);
        assert_eq!(stats.corrupt_fraction(), 0.0);
        assert!(stats.words_total > 0, "visitor must reach the weights");
        // Behaviour identical: golden mission outcomes match.
        let mut faulted_dep = dep.clone();
        faulted_dep.controller = Arc::new(ctrl);
        let a = run_trial(&dep, dep.tasks[0], &CreateConfig::golden(), 3);
        let b = run_trial(&faulted_dep, dep.tasks[0], &CreateConfig::golden(), 3);
        assert_eq!(a.success, b.success);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn low_voltage_unprotected_faults_change_weights() {
        let (dep, _) = crate::testutil::tiny_deployment();
        let cfg = MemoryConfig::new(0.62, Protection::None);
        let (_, stats) = faulty_controller(&dep.controller, &cfg, 42);
        assert!(stats.bits_upset > 0);
        assert!(stats.words_silent > 0);
    }

    #[test]
    fn secded_repairs_the_same_snapshot_voltage() {
        let (dep, _) = crate::testutil::tiny_deployment();
        let v = MemoryFaultModel::new().voltage_for_upset(2e-4);
        let plain =
            faulty_controller(&dep.controller, &MemoryConfig::new(v, Protection::None), 7).1;
        let ecc = faulty_controller(
            &dep.controller,
            &MemoryConfig::new(v, Protection::Secded),
            7,
        )
        .1;
        assert!(plain.corrupt_fraction() > 0.0);
        assert!(
            ecc.corrupt_fraction() < 0.25 * plain.corrupt_fraction(),
            "SECDED {ecc:?} vs plain {plain:?}"
        );
    }

    #[test]
    fn memory_point_is_deterministic() {
        let (dep, task) = crate::testutil::tiny_deployment();
        let cfg = MemoryConfig::new(0.78, Protection::Secded);
        let a = run_memory_point(
            &dep,
            task,
            &CreateConfig::golden(),
            MemTarget::Controller,
            &cfg,
            4,
            11,
        );
        let b = run_memory_point(
            &dep,
            task,
            &CreateConfig::golden(),
            MemTarget::Controller,
            &cfg,
            4,
            11,
        );
        assert_eq!(a.sweep.successes, b.sweep.successes);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn planner_faults_target_the_wr_variant_when_wr_is_on() {
        let (dep, _) = crate::testutil::tiny_deployment();
        let cfg = MemoryConfig::new(0.62, Protection::None);
        let (faulted, stats) = faulty_deployment(&dep, MemTarget::Planner, &cfg, true, 9);
        assert!(stats.bits_upset > 0);
        // The non-WR planner is untouched.
        assert!(Arc::ptr_eq(&faulted.planner, &dep.planner));
        assert!(!Arc::ptr_eq(&faulted.planner_wr, &dep.planner_wr));
    }
}
