//! The parallel experiment engine: one worker pool for every sweep.
//!
//! Every CREATE experiment has the same shape — a *grid* of experiment
//! points (a task × config × voltage × BER … cell), each of which runs `n`
//! independent trials and aggregates them. This module owns that shape
//! once, so `stats`, `memory` and the per-figure harnesses never hand-roll
//! worker pools:
//!
//! * trials from **all** points fan out over one pool (a long point cannot
//!   serialize the grid behind it);
//! * per-trial seeds derive deterministically from `(base seed, point
//!   index, trial index)` via [`derive_seed`], so results are bit-identical
//!   regardless of thread count or scheduling;
//! * outcomes stream into per-point [`Accumulator`]s in trial order (a
//!   small reorder window — see `OrderedFold`) instead of buffering every
//!   raw outcome;
//! * the pool size comes from `CREATE_THREADS` (validated, falling back to
//!   the machine's parallelism) and progress reporting from
//!   `CREATE_PROGRESS` (both through the shared
//!   [`create_tensor::envcfg`] warn-and-fallback contract).
//!
//! The scoped worker-pool primitive itself ([`scoped_map`], re-exported
//! here) lives in [`create_tensor::par`], at the bottom of the crate
//! graph, because the data-parallel training loops in `create-agents`
//! share it and `create-core` depends on `create-agents`.

use std::collections::BTreeMap;
use std::io::Write;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub use create_tensor::par::scoped_map;

/// Streaming aggregation of one experiment point's outcomes.
///
/// `push` is called exactly once per trial, **in trial order**, so a
/// left-fold accumulator produces bit-identical floats to a sequential
/// loop over the same outcomes.
pub trait Accumulator<O>: Send {
    /// The aggregated result type.
    type Summary;

    /// Folds one outcome in.
    fn push(&mut self, outcome: O);

    /// Consumes the accumulator into its summary.
    fn finish(self) -> Self::Summary;
}

/// An [`Accumulator`] whose running fold state can be serialized,
/// restored and merged — the contract the crash-resumable sweep fabric
/// (`create-sweep`) journals between processes.
///
/// The laws, all *bit-exact* (`create-sweep` byte-diffs merged results):
///
/// * `decode_state(&a.encode_state())` reproduces `a` exactly — same
///   `finish()` summary, same re-encoding;
/// * `encode_state` is a pure function of the outcomes folded so far
///   (no timestamps, addresses or other ambient state);
/// * [`merge_state`](Self::merge_state) is deterministic: merging the
///   same sequence of range states in the same order always produces the
///   same state, no matter which process does it or how many crashes
///   happened in between. (It is *not* required to reproduce the exact
///   float rounding of one uninterrupted left-fold across the boundary —
///   the fabric gets run-to-run identity by always merging fixed-size
///   chunk states in chunk order, so the chunk decomposition, not the
///   execution history, determines the result.)
pub trait StateAccumulator<O>: Accumulator<O> + Sized {
    /// Serializes the running fold state to bytes (deterministic).
    fn encode_state(&self) -> Vec<u8>;

    /// Restores a state produced by [`encode_state`](Self::encode_state).
    ///
    /// # Errors
    ///
    /// Rejects malformed bytes with a description (corrupt journals must
    /// fail loudly at decode, not produce garbage statistics).
    fn decode_state(bytes: &[u8]) -> Result<Self, String>;

    /// Folds `other` — the state of the trial range immediately after
    /// this one — into `self`.
    fn merge_state(&mut self, other: &Self);
}

/// Runs the contiguous trials `first_trial .. first_trial + len` of one
/// grid point sequentially and returns the resulting accumulator.
///
/// Seeds derive exactly as [`run_grid`] derives them —
/// [`derive_seed`]`(base_seed, point_index, trial)` — so a range runner
/// (the sweep fabric's shard worker) folds the *same trials at the same
/// seeds* as the in-process engine would, just one chunk at a time. The
/// fold is in trial order; outcomes go through
/// [`ExperimentPoint::run_batch`] so per-batch setup amortizes the same
/// way.
pub fn run_point_range<P: ExperimentPoint>(
    point: &P,
    point_index: usize,
    base_seed: u64,
    first_trial: u32,
    len: u32,
) -> P::Acc {
    let seeds: Vec<u64> = (0..len)
        .map(|i| derive_seed(base_seed, point_index, first_trial + i))
        .collect();
    let mut outcomes = Vec::with_capacity(len as usize);
    point.run_batch(first_trial, &seeds, &mut outcomes);
    debug_assert_eq!(
        outcomes.len(),
        len as usize,
        "run_batch must yield one outcome per seed"
    );
    let mut acc = point.accumulator();
    for outcome in outcomes {
        acc.push(outcome);
    }
    acc
}

/// Collects outcomes into a `Vec` in trial order — the "raw outcomes"
/// aggregator behind [`crate::stats::run_outcomes`].
#[derive(Debug)]
pub struct CollectAll<O>(Vec<O>);

impl<O> Default for CollectAll<O> {
    fn default() -> Self {
        CollectAll(Vec::new())
    }
}

impl<O: Send> Accumulator<O> for CollectAll<O> {
    type Summary = Vec<O>;

    fn push(&mut self, outcome: O) {
        self.0.push(outcome);
    }

    fn finish(self) -> Vec<O> {
        self.0
    }
}

/// One cell of an experiment grid.
///
/// The point is shared immutably across workers; each trial gets its own
/// deterministic seed.
pub trait ExperimentPoint: Sync {
    /// What one trial produces.
    type Outcome: Send;
    /// How this point's trials aggregate.
    type Acc: Accumulator<Self::Outcome>;

    /// Number of trials this point runs.
    fn trials(&self) -> u32;

    /// A fresh accumulator for this point.
    fn accumulator(&self) -> Self::Acc;

    /// Runs trial `trial` with the engine-derived `seed`.
    fn run_trial(&self, trial: u32, seed: u64) -> Self::Outcome;

    /// Runs the contiguous trials `first_trial .. first_trial +
    /// seeds.len()` of this point, appending one outcome per trial to
    /// `out` **in trial order**.
    ///
    /// The engine calls this once per claimed batch (`CREATE_TRIAL_BATCH`
    /// trials at a time), so points whose trials share expensive per-trial
    /// setup — inference scratch buffers, deployment clones — can override
    /// it to pay that setup once per batch. Outcomes must be identical to
    /// calling [`run_trial`](Self::run_trial) per entry, which is exactly
    /// what the default implementation does.
    fn run_batch(&self, first_trial: u32, seeds: &[u64], out: &mut Vec<Self::Outcome>) {
        for (i, &seed) in seeds.iter().enumerate() {
            out.push(self.run_trial(first_trial + i as u32, seed));
        }
    }
}

/// Derives the seed for one trial from `(base_seed, point_index,
/// trial_index)` with a SplitMix64-style finalizer, so neighbouring
/// points/trials get decorrelated streams and the mapping never depends
/// on scheduling.
pub fn derive_seed(base_seed: u64, point_index: usize, trial_index: u32) -> u64 {
    let mut z = base_seed
        .wrapping_add((point_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((trial_index as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Reads a positive integer environment variable, rejecting `0` and
/// unparseable values with a stderr warning and a clear fallback rather
/// than silently misbehaving (the shared [`create_tensor::envcfg`]
/// contract — `CREATE_REPS`, `CREATE_THREADS` and `CREATE_TRIAL_BATCH`
/// all parse through here).
pub(crate) fn positive_env(name: &str, default: usize) -> usize {
    create_tensor::envcfg::read_positive_usize(name, default)
}

/// Worker-pool size: `CREATE_THREADS` when set to a positive integer,
/// otherwise the machine's available parallelism. Delegates to
/// [`create_tensor::par::default_threads`] — one resolution (cached per
/// process) shared with the data-parallel training loops.
pub fn default_threads() -> usize {
    create_tensor::par::default_threads()
}

/// How the engine reports sweep progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// No reporting (the default).
    Silent,
    /// A single self-overwriting stderr line (`CREATE_PROGRESS=1`).
    Stderr,
}

impl std::fmt::Display for Progress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Progress::Silent => "0",
            Progress::Stderr => "1",
        })
    }
}

impl FromStr for Progress {
    type Err = String;

    /// `"0"` = silent, `"1"` = stderr (whitespace-tolerant).
    fn from_str(s: &str) -> Result<Self, String> {
        match s.trim() {
            "0" => Ok(Progress::Silent),
            "1" => Ok(Progress::Stderr),
            other => Err(format!("unknown progress mode {other:?}: expected 0 or 1")),
        }
    }
}

impl Progress {
    /// Resolves a raw `CREATE_PROGRESS` value (`None` = unset) with the
    /// shared warn-and-fallback contract
    /// ([`create_tensor::envcfg::parse_validated`]) — the same shape as
    /// every other `CREATE_*` knob: unset/blank selects [`Silent`]
    /// silently, garbage warns on stderr and falls back instead of
    /// silently misbehaving.
    ///
    /// [`Silent`]: Progress::Silent
    pub fn parse_env(raw: Option<&str>) -> Self {
        create_tensor::envcfg::parse_validated("CREATE_PROGRESS", raw, Progress::Silent, str::parse)
    }
}

/// Engine tuning knobs, normally read from the environment.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Worker threads to fan trials over.
    pub threads: usize,
    /// Progress reporting sink.
    pub progress: Progress,
    /// Trials a worker claims per batch (`CREATE_TRIAL_BATCH`, default
    /// 1 — one claim per trial, the pre-batching behavior).
    ///
    /// Larger batches amortize per-trial setup — each batch runs through
    /// one [`ExperimentPoint::run_batch`] call, so a point can reuse
    /// inference scratch across the whole batch — at the cost of coarser
    /// load balancing. Results are **bit-identical for any batch size**:
    /// seeds still derive from `(base seed, point, trial)` and folding
    /// stays in trial order (pinned by `tests/engine.rs`).
    pub batch: usize,
}

impl EngineOptions {
    /// A validated builder; unset knobs fall back to their env-backed
    /// defaults at [`build`](EngineOptionsBuilder::build) time.
    pub fn builder() -> EngineOptionsBuilder {
        EngineOptionsBuilder::default()
    }

    /// Options from `CREATE_THREADS` / `CREATE_PROGRESS` /
    /// `CREATE_TRIAL_BATCH` — [`builder`](Self::builder) with nothing
    /// overridden.
    pub fn from_env() -> Self {
        Self::builder().build()
    }
}

/// Validated builder for [`EngineOptions`] — the single config path
/// shared by grid callers and the serving layer's `ServeConfig` builder:
/// explicit settings are clamped to the same ranges the env parsers
/// enforce (thread and batch counts are floored at 1), and anything left
/// unset resolves through the env-backed `CREATE_*` defaults at
/// [`build`](Self::build) time, so an out-of-range value cannot sneak in
/// through code that the env contract would have rejected.
#[derive(Debug, Clone, Default)]
pub struct EngineOptionsBuilder {
    threads: Option<usize>,
    progress: Option<Progress>,
    batch: Option<usize>,
}

impl EngineOptionsBuilder {
    /// Worker threads to fan trials over (floored at 1, with a warning
    /// on the shared [`envcfg`](create_tensor::envcfg) stderr channel
    /// when the floor bites; default `CREATE_THREADS` / machine
    /// parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        if threads == 0 {
            create_tensor::envcfg::warn_adjusted(
                "CREATE_THREADS",
                threads,
                1usize,
                "the engine needs at least one worker thread",
            );
        }
        self.threads = Some(threads.max(1));
        self
    }

    /// Progress reporting sink (default `CREATE_PROGRESS`).
    pub fn progress(mut self, progress: Progress) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Trials a worker claims per batch (floored at 1, warning like
    /// [`threads`](Self::threads) when the floor bites; default
    /// `CREATE_TRIAL_BATCH`).
    pub fn batch(mut self, batch: usize) -> Self {
        if batch == 0 {
            create_tensor::envcfg::warn_adjusted(
                "CREATE_TRIAL_BATCH",
                batch,
                1usize,
                "workers claim at least one trial per batch",
            );
        }
        self.batch = Some(batch.max(1));
        self
    }

    /// Resolves unset knobs from the environment and builds the options.
    pub fn build(self) -> EngineOptions {
        EngineOptions {
            threads: self.threads.unwrap_or_else(default_threads),
            progress: self.progress.unwrap_or_else(|| {
                Progress::parse_env(std::env::var("CREATE_PROGRESS").ok().as_deref())
            }),
            batch: self
                .batch
                .unwrap_or_else(|| positive_env("CREATE_TRIAL_BATCH", 1)),
        }
    }
}

/// Reorders out-of-order trial completions into a strict in-order fold.
///
/// Workers finish trials out of order; folding them as they land would make
/// float sums depend on scheduling. Instead each completion is offered
/// here: the contiguous prefix is folded immediately and only the
/// not-yet-contiguous tail is parked, so at most (threads − 1) outcomes per
/// point are ever buffered — not the whole sweep.
struct OrderedFold<A, O> {
    acc: A,
    next: u32,
    pending: BTreeMap<u32, O>,
}

impl<O, A: Accumulator<O>> OrderedFold<A, O> {
    fn new(acc: A) -> Self {
        OrderedFold {
            acc,
            next: 0,
            pending: BTreeMap::new(),
        }
    }

    fn offer(&mut self, trial: u32, outcome: O) {
        if trial == self.next {
            self.acc.push(outcome);
            self.next += 1;
            while let Some(o) = self.pending.remove(&self.next) {
                self.acc.push(o);
                self.next += 1;
            }
        } else {
            self.pending.insert(trial, outcome);
        }
    }

    fn finish(self, expected: u32) -> A::Summary {
        debug_assert!(self.pending.is_empty(), "trials lost in reorder buffer");
        debug_assert_eq!(self.next, expected, "not all trials folded");
        let _ = expected;
        self.acc.finish()
    }
}

/// Runs every trial of every point in `points` across the worker pool and
/// returns one summary per point, in point order.
///
/// Seeds derive from [`derive_seed`]`(base_seed, point_index, trial_index)`
/// and aggregation folds in trial order, so the result is bit-identical
/// for any thread count (the determinism test in `tests/engine.rs` pins
/// this down).
pub fn run_grid<P, I>(
    points: I,
    base_seed: u64,
) -> Vec<<P::Acc as Accumulator<P::Outcome>>::Summary>
where
    P: ExperimentPoint,
    I: IntoIterator<Item = P>,
{
    run_grid_with(points, base_seed, &EngineOptions::from_env())
}

/// [`run_grid`] with explicit [`EngineOptions`].
pub fn run_grid_with<P, I>(
    points: I,
    base_seed: u64,
    options: &EngineOptions,
) -> Vec<<P::Acc as Accumulator<P::Outcome>>::Summary>
where
    P: ExperimentPoint,
    I: IntoIterator<Item = P>,
{
    let points: Vec<P> = points.into_iter().collect();
    if points.is_empty() {
        return Vec::new();
    }

    // Flatten the grid: global trial t maps to the point whose offset
    // bracket contains it. `offsets[i]` is the first flat index of point i.
    let mut offsets: Vec<usize> = Vec::with_capacity(points.len() + 1);
    let mut total = 0usize;
    for p in &points {
        offsets.push(total);
        total += p.trials() as usize;
    }
    offsets.push(total);

    let folds: Vec<Mutex<OrderedFold<P::Acc, P::Outcome>>> = points
        .iter()
        .map(|p| Mutex::new(OrderedFold::new(p.accumulator())))
        .collect();

    if total > 0 {
        let cursor = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let threads = options.threads.max(1).min(total);
        let batch = options.batch.max(1);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut seeds: Vec<u64> = Vec::new();
                    let mut outcomes: Vec<P::Outcome> = Vec::new();
                    loop {
                        // Claim a contiguous batch of flat trial indices.
                        let start = cursor.fetch_add(batch, Ordering::Relaxed);
                        if start >= total {
                            break;
                        }
                        let end = (start + batch).min(total);
                        // A claim can straddle point boundaries; each
                        // same-point span runs as one run_batch call.
                        let mut flat = start;
                        while flat < end {
                            // partition_point returns how many offsets are
                            // <= flat; the containing point is one before.
                            let point_idx = offsets.partition_point(|&o| o <= flat) - 1;
                            let span_end = offsets[point_idx + 1].min(end);
                            let first_trial = (flat - offsets[point_idx]) as u32;
                            let span = span_end - flat;
                            seeds.clear();
                            seeds.extend(
                                (0..span as u32)
                                    .map(|i| derive_seed(base_seed, point_idx, first_trial + i)),
                            );
                            outcomes.clear();
                            points[point_idx].run_batch(first_trial, &seeds, &mut outcomes);
                            debug_assert_eq!(
                                outcomes.len(),
                                span,
                                "run_batch must yield one outcome per seed"
                            );
                            {
                                let mut fold =
                                    folds[point_idx].lock().expect("engine fold poisoned");
                                for (i, outcome) in outcomes.drain(..).enumerate() {
                                    fold.offer(first_trial + i as u32, outcome);
                                }
                            }
                            let finished = done.fetch_add(span, Ordering::Relaxed) + span;
                            if options.progress == Progress::Stderr {
                                report_progress(finished, span, total);
                            }
                            flat = span_end;
                        }
                    }
                });
            }
        });
        if options.progress == Progress::Stderr {
            eprintln!();
        }
    }

    folds
        .into_iter()
        .zip(&points)
        .map(|(fold, p)| {
            fold.into_inner()
                .expect("engine fold poisoned")
                .finish(p.trials())
        })
        .collect()
}

fn report_progress(finished: usize, span: usize, total: usize) {
    // Only ~100 updates per sweep: report when a percent boundary is
    // crossed by the just-finished span of trials.
    let pct = finished * 100 / total;
    let prev_pct = (finished - span) * 100 / total;
    if pct != prev_pct || finished == total {
        let mut err = std::io::stderr().lock();
        let _ = write!(err, "\r[create] trials {finished}/{total} ({pct}%)");
        let _ = err.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cheap arithmetic point: trial i at seed s yields (i, s).
    struct Cell {
        trials: u32,
    }

    #[derive(Default)]
    struct SeedSum {
        order: Vec<u32>,
        seeds: Vec<u64>,
    }

    impl Accumulator<(u32, u64)> for SeedSum {
        type Summary = (Vec<u32>, Vec<u64>);

        fn push(&mut self, (trial, seed): (u32, u64)) {
            self.order.push(trial);
            self.seeds.push(seed);
        }

        fn finish(self) -> (Vec<u32>, Vec<u64>) {
            (self.order, self.seeds)
        }
    }

    impl ExperimentPoint for Cell {
        type Outcome = (u32, u64);
        type Acc = SeedSum;

        fn trials(&self) -> u32 {
            self.trials
        }

        fn accumulator(&self) -> SeedSum {
            SeedSum::default()
        }

        fn run_trial(&self, trial: u32, seed: u64) -> (u32, u64) {
            (trial, seed)
        }
    }

    fn options(threads: usize) -> EngineOptions {
        EngineOptions::builder()
            .threads(threads)
            .progress(Progress::Silent)
            .batch(1)
            .build()
    }

    fn options_batched(threads: usize, batch: usize) -> EngineOptions {
        EngineOptions::builder()
            .threads(threads)
            .progress(Progress::Silent)
            .batch(batch)
            .build()
    }

    #[test]
    fn folds_arrive_in_trial_order_regardless_of_threads() {
        for threads in [1, 2, 8] {
            let grid = vec![Cell { trials: 17 }, Cell { trials: 3 }, Cell { trials: 9 }];
            let out = run_grid_with(grid, 99, &options(threads));
            for (point, (order, _)) in out.iter().enumerate() {
                let expect: Vec<u32> = (0..out[point].0.len() as u32).collect();
                assert_eq!(order, &expect, "threads={threads} point={point}");
            }
        }
    }

    #[test]
    fn seeds_depend_on_point_and_trial_only() {
        let a = run_grid_with(vec![Cell { trials: 5 }, Cell { trials: 5 }], 7, &options(1));
        let b = run_grid_with(vec![Cell { trials: 5 }, Cell { trials: 5 }], 7, &options(8));
        assert_eq!(a, b, "seed assignment must not depend on thread count");
        assert_ne!(a[0].1, a[1].1, "distinct points get distinct seed streams");
        let c = run_grid_with(vec![Cell { trials: 5 }], 8, &options(1));
        assert_ne!(a[0].1, c[0].1, "base seed changes the stream");
    }

    #[test]
    fn empty_grid_and_zero_trials_are_safe() {
        let empty: Vec<Cell> = vec![];
        assert!(run_grid_with(empty, 1, &options(4)).is_empty());
        let out = run_grid_with(vec![Cell { trials: 0 }], 1, &options(4));
        assert_eq!(out.len(), 1);
        assert!(out[0].0.is_empty());
    }

    #[test]
    fn ordered_fold_reorders_a_scrambled_completion_order() {
        let mut fold = OrderedFold::new(SeedSum::default());
        for trial in [3u32, 0, 2, 1, 4] {
            fold.offer(trial, (trial, trial as u64));
        }
        let (order, _) = fold.finish(5);
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn positive_env_accepts_positive_integers() {
        std::env::set_var("CREATE_TEST_ENGINE_OK", "12");
        assert_eq!(positive_env("CREATE_TEST_ENGINE_OK", 40), 12);
        std::env::remove_var("CREATE_TEST_ENGINE_OK");
    }

    #[test]
    fn positive_env_rejects_zero_and_garbage() {
        assert_eq!(positive_env("CREATE_TEST_ENGINE_UNSET", 40), 40);
        std::env::set_var("CREATE_TEST_ENGINE_ZERO", "0");
        assert_eq!(positive_env("CREATE_TEST_ENGINE_ZERO", 40), 40);
        std::env::remove_var("CREATE_TEST_ENGINE_ZERO");
        std::env::set_var("CREATE_TEST_ENGINE_BAD", "not-a-number");
        assert_eq!(positive_env("CREATE_TEST_ENGINE_BAD", 40), 40);
        std::env::remove_var("CREATE_TEST_ENGINE_BAD");
        std::env::set_var("CREATE_TEST_ENGINE_NEG", "-3");
        assert_eq!(positive_env("CREATE_TEST_ENGINE_NEG", 40), 40);
        std::env::remove_var("CREATE_TEST_ENGINE_NEG");
    }

    #[test]
    fn batched_claims_are_bit_identical_to_per_trial_claims() {
        // CREATE_TRIAL_BATCH is a pure wall-clock knob: any batch size —
        // including one larger than every point's trial count — must give
        // identical seeds and fold order as batch=1, at any thread count.
        let grid = || vec![Cell { trials: 17 }, Cell { trials: 3 }, Cell { trials: 9 }];
        let reference = run_grid_with(grid(), 99, &options(1));
        for threads in [1, 2, 8] {
            for batch in [1usize, 3, 18, 64] {
                let out = run_grid_with(grid(), 99, &options_batched(threads, batch));
                assert_eq!(out, reference, "threads={threads} batch={batch}");
            }
        }
    }

    #[test]
    fn run_batch_default_matches_per_trial_outcomes() {
        let cell = Cell { trials: 5 };
        let seeds: Vec<u64> = (0..4u32).map(|t| derive_seed(7, 0, 2 + t)).collect();
        let mut batched = Vec::new();
        cell.run_batch(2, &seeds, &mut batched);
        let singles: Vec<_> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| cell.run_trial(2 + i as u32, s))
            .collect();
        assert_eq!(batched, singles);
    }

    #[test]
    fn builder_clamps_threads_and_batch_to_one() {
        let opts = EngineOptions::builder()
            .threads(0)
            .progress(Progress::Silent)
            .batch(0)
            .build();
        assert_eq!(opts.threads, 1);
        assert_eq!(opts.batch, 1);
        assert_eq!(options_batched(1, 12).batch, 12);
    }

    #[test]
    fn progress_parses_through_the_shared_validated_contract() {
        // Unset and blank select Silent silently.
        assert_eq!(Progress::parse_env(None), Progress::Silent);
        assert_eq!(Progress::parse_env(Some("")), Progress::Silent);
        assert_eq!(Progress::parse_env(Some("  \t")), Progress::Silent);
        // The two valid values, whitespace-tolerant.
        assert_eq!(Progress::parse_env(Some("0")), Progress::Silent);
        assert_eq!(Progress::parse_env(Some("1")), Progress::Stderr);
        assert_eq!(Progress::parse_env(Some(" 1 ")), Progress::Stderr);
        // Garbage warns and falls back instead of silently enabling.
        assert_eq!(Progress::parse_env(Some("yes")), Progress::Silent);
        assert_eq!(Progress::parse_env(Some("2")), Progress::Silent);
        // Display round-trips through FromStr like the backend kinds.
        for p in [Progress::Silent, Progress::Stderr] {
            assert_eq!(p.to_string().parse(), Ok(p));
        }
    }

    #[test]
    fn run_point_range_matches_grid_seed_derivation() {
        // The range runner must fold exactly the trials [2, 6) of point 1
        // at the seeds run_grid would have handed them.
        let grid = vec![Cell { trials: 4 }, Cell { trials: 9 }];
        let full = run_grid_with(grid, 99, &options(1));
        let (order, seeds) = run_point_range(&Cell { trials: 9 }, 1, 99, 2, 4).finish();
        assert_eq!(order, vec![2, 3, 4, 5]);
        assert_eq!(seeds, full[1].1[2..6].to_vec());
    }

    #[test]
    fn derive_seed_decorrelates_neighbours() {
        let s = derive_seed(1, 0, 0);
        assert_ne!(s, derive_seed(1, 0, 1));
        assert_ne!(s, derive_seed(1, 1, 0));
        assert_ne!(s, derive_seed(2, 0, 0));
    }
}
