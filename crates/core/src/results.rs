//! The schema-versioned structured results store.
//!
//! Every machine-readable artifact the workspace emits — the
//! `BENCH_*.json` trajectory files, the per-figure tables mirrored from
//! the harnesses, the sweep fabric's merged grid results — is one *store
//! document*: a JSON envelope carrying a schema version, the document
//! name, and a flat array of records (ordered key/value pairs whose
//! values are strings, numbers or `null`).
//!
//! ```json
//! {"schema": 2, "name": "kernels", "records": [
//!   {"bench": "gemm_i8", "shape": "16x256x256", "ns_per_iter": 1234.5},
//!   ...
//! ]}
//! ```
//!
//! Three properties matter more than the format itself:
//!
//! * **Versioned**: [`RESULTS_SCHEMA_VERSION`] names the envelope
//!   revision; writers stamp it, so a reader always knows what it holds.
//! * **Forward-compatible reader**: [`parse_doc`] ignores envelope keys
//!   it does not recognize and accepts documents stamped with a *newer*
//!   schema than its own, as long as they still carry `records` — so a
//!   v2 binary can diff results written by a v3 one. It also reads the
//!   schema-1 legacy format (a bare array of records, what
//!   `emit_bench_json` wrote before the envelope existed), so committed
//!   baselines never need rewriting.
//! * **Crash-safe writer**: [`write_doc`] goes through
//!   [`create_tensor::atomicfile::write_atomic`], so a killed process
//!   never leaves a torn results file.
//!
//! The hand-rolled parser is deliberately small (the build environment
//! has no registry, so no serde) and accepts exactly the writer's value
//! grammar plus arbitrary whitespace and unknown envelope values.

use std::io;
use std::path::Path;

/// Envelope revision written by [`write_doc`] / [`render_doc`].
///
/// History: **1** — bare array of flat records, no envelope (PR 3–8);
/// **2** — `{schema, name, records}` envelope (this revision).
pub const RESULTS_SCHEMA_VERSION: u32 = 2;

/// A value in a parsed flat record.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A JSON string.
    Str(String),
    /// A JSON number, with its raw rendering kept so configuration
    /// integers (no `.`) can be told apart from measured floats.
    Num {
        /// The exact rendering found in the document.
        raw: String,
        /// The parsed value.
        value: f64,
    },
    /// `null` (a non-finite measurement).
    Null,
}

/// One parsed record: ordered key/value pairs, exactly as [`Record`]
/// emitted them.
pub type FlatRecord = Vec<(String, Value)>;

/// A parsed store document.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultsDoc {
    /// The schema the document was stamped with (1 for legacy bare
    /// arrays; may exceed [`RESULTS_SCHEMA_VERSION`] for documents from
    /// the future, which still parse).
    pub schema: u32,
    /// The document name (empty for legacy bare arrays).
    pub name: String,
    /// The records, in document order.
    pub records: Vec<FlatRecord>,
}

/// One record under construction, destined for a store document.
///
/// Fields are kept in insertion order and rendered as one flat JSON
/// object; numbers are emitted as JSON numbers, everything else as
/// strings.
#[derive(Debug, Clone, Default)]
pub struct Record {
    fields: Vec<(String, String)>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Record {
    /// An empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: impl AsRef<str>) -> Self {
        self.fields.push((
            key.to_string(),
            format!("\"{}\"", json_escape(value.as_ref())),
        ));
        self
    }

    /// Adds a numeric field (rendered with enough precision to diff).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            format!("{value:.6}")
        } else {
            "null".to_string()
        };
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Adds a numeric field with its exact raw rendering (callers that
    /// need full-precision or integer-looking numbers beyond what
    /// [`num`](Self::num)'s fixed format gives). The raw text must be a
    /// valid JSON number; this is asserted in debug builds.
    pub fn raw_num(mut self, key: &str, raw: impl Into<String>) -> Self {
        let raw = raw.into();
        debug_assert!(
            raw.parse::<f64>().map(f64::is_finite).unwrap_or(false),
            "raw_num must be a finite JSON number, got {raw:?}"
        );
        self.fields.push((key.to_string(), raw));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Renders the record as one flat JSON object (two-space indented,
    /// the store's one-record-per-line layout).
    pub fn render(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{}\": {v}", json_escape(k)))
            .collect();
        format!("  {{{}}}", body.join(", "))
    }
}

/// Renders a full store document: the versioned envelope around one
/// record per line (so diffs stay reviewable).
pub fn render_doc(name: &str, records: &[Record]) -> String {
    let body: Vec<String> = records.iter().map(Record::render).collect();
    format!(
        "{{\"schema\": {RESULTS_SCHEMA_VERSION}, \"name\": \"{}\", \"records\": [\n{}\n]}}\n",
        json_escape(name),
        body.join(",\n")
    )
}

/// Writes a store document to `path` crash-safely (temp file, fsync,
/// atomic rename — a killed process never leaves a torn document).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_doc(path: &Path, name: &str, records: &[Record]) -> io::Result<()> {
    create_tensor::atomicfile::write_atomic(path, render_doc(name, records).as_bytes())
}

type Chars<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn skip_ws(chars: &mut Chars<'_>) {
    while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut Chars<'_>) -> Result<String, String> {
    let mut s = String::new();
    loop {
        match chars.next() {
            Some((_, '"')) => return Ok(s),
            Some((_, '\\')) => match chars.next() {
                Some((_, '"')) => s.push('"'),
                Some((_, '\\')) => s.push('\\'),
                Some((_, 'n')) => s.push('\n'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (at, c) = chars.next().ok_or("results json: truncated \\u")?;
                        code = code * 16
                            + c.to_digit(16)
                                .ok_or(format!("results json: bad \\u digit at byte {at}"))?;
                    }
                    s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                }
                other => return Err(format!("results json: bad escape {other:?}")),
            },
            Some((_, c)) => s.push(c),
            None => return Err("results json: unterminated string".to_string()),
        }
    }
}

fn parse_value(chars: &mut Chars<'_>) -> Result<Value, String> {
    match chars.peek().copied() {
        Some((_, '"')) => {
            chars.next();
            Ok(Value::Str(parse_string(chars)?))
        }
        Some((_, 'n')) => {
            expect_literal(chars, "null")?;
            Ok(Value::Null)
        }
        Some((num_at, _)) => {
            let mut raw = String::new();
            while matches!(
                chars.peek(),
                Some((_, c)) if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')
            ) {
                raw.push(chars.next().expect("peeked").1);
            }
            let value = raw
                .parse::<f64>()
                .map_err(|e| format!("results json: bad number at byte {num_at}: {e}"))?;
            Ok(Value::Num { raw, value })
        }
        None => Err("results json: expected value, got end of input".to_string()),
    }
}

fn expect_literal(chars: &mut Chars<'_>, literal: &str) -> Result<(), String> {
    for want in literal.chars() {
        match chars.next() {
            Some((_, c)) if c == want => {}
            other => return Err(format!("results json: expected {literal}, got {other:?}")),
        }
    }
    Ok(())
}

/// Skips one JSON value of any shape — the forward-compatibility hatch
/// that lets the reader step over envelope fields added by future schema
/// revisions (including nested objects and arrays).
fn skip_value(chars: &mut Chars<'_>) -> Result<(), String> {
    skip_ws(chars);
    match chars.peek().copied() {
        Some((_, '"')) => {
            chars.next();
            parse_string(chars).map(|_| ())
        }
        Some((_, 't')) => expect_literal(chars, "true"),
        Some((_, 'f')) => expect_literal(chars, "false"),
        Some((_, 'n')) => expect_literal(chars, "null"),
        Some((_, '{')) => {
            chars.next();
            loop {
                skip_ws(chars);
                match chars.next() {
                    Some((_, '}')) => return Ok(()),
                    Some((_, ',')) => continue,
                    Some((_, '"')) => {
                        parse_string(chars)?;
                        skip_ws(chars);
                        match chars.next() {
                            Some((_, ':')) => skip_value(chars)?,
                            other => {
                                return Err(format!("results json: expected ':', got {other:?}"))
                            }
                        }
                    }
                    other => return Err(format!("results json: expected key, got {other:?}")),
                }
            }
        }
        Some((_, '[')) => {
            chars.next();
            loop {
                skip_ws(chars);
                match chars.peek().copied() {
                    Some((_, ']')) => {
                        chars.next();
                        return Ok(());
                    }
                    Some((_, ',')) => {
                        chars.next();
                    }
                    Some(_) => skip_value(chars)?,
                    None => return Err("results json: unterminated array".to_string()),
                }
            }
        }
        Some(_) => parse_value(chars).map(|_| ()),
        None => Err("results json: expected value, got end of input".to_string()),
    }
}

fn parse_record(chars: &mut Chars<'_>) -> Result<FlatRecord, String> {
    let mut record = FlatRecord::new();
    loop {
        skip_ws(chars);
        match chars.next() {
            Some((_, '}')) => return Ok(record),
            Some((_, ',')) => continue,
            Some((_, '"')) => {
                let key = parse_string(chars)?;
                skip_ws(chars);
                match chars.next() {
                    Some((_, ':')) => {}
                    other => return Err(format!("results json: expected ':', got {other:?}")),
                }
                skip_ws(chars);
                record.push((key, parse_value(chars)?));
            }
            other => return Err(format!("results json: expected key, got {other:?}")),
        }
    }
}

fn parse_record_array(chars: &mut Chars<'_>) -> Result<Vec<FlatRecord>, String> {
    let mut records = Vec::new();
    loop {
        skip_ws(chars);
        match chars.peek().copied() {
            Some((_, ']')) => {
                chars.next();
                return Ok(records);
            }
            Some((_, ',')) => {
                chars.next();
            }
            Some((_, '{')) => {
                chars.next();
                records.push(parse_record(chars)?);
            }
            other => return Err(format!("results json: expected record, got {other:?}")),
        }
    }
}

/// Parses a store document, accepting both the versioned envelope and
/// the schema-1 legacy bare array, ignoring unrecognized envelope fields
/// (forward compatibility — see the module docs).
pub fn parse_doc(text: &str) -> Result<ResultsDoc, String> {
    let mut chars = text.char_indices().peekable();
    skip_ws(&mut chars);
    match chars.peek().copied() {
        Some((_, '[')) => {
            chars.next();
            Ok(ResultsDoc {
                schema: 1,
                name: String::new(),
                records: parse_record_array(&mut chars)?,
            })
        }
        Some((_, '{')) => {
            chars.next();
            let mut schema: Option<u32> = None;
            let mut name = String::new();
            let mut records: Option<Vec<FlatRecord>> = None;
            loop {
                skip_ws(&mut chars);
                match chars.next() {
                    Some((_, '}')) => break,
                    Some((_, ',')) => continue,
                    Some((_, '"')) => {
                        let key = parse_string(&mut chars)?;
                        skip_ws(&mut chars);
                        match chars.next() {
                            Some((_, ':')) => {}
                            other => {
                                return Err(format!("results json: expected ':', got {other:?}"))
                            }
                        }
                        skip_ws(&mut chars);
                        match key.as_str() {
                            "schema" => match parse_value(&mut chars)? {
                                Value::Num { value, .. }
                                    if value.fract() == 0.0 && (1.0..4e9).contains(&value) =>
                                {
                                    schema = Some(value as u32);
                                }
                                other => {
                                    return Err(format!("results json: bad schema value {other:?}"))
                                }
                            },
                            "name" => match parse_value(&mut chars)? {
                                Value::Str(s) => name = s,
                                other => {
                                    return Err(format!("results json: bad name value {other:?}"))
                                }
                            },
                            "records" => match chars.next() {
                                Some((_, '[')) => records = Some(parse_record_array(&mut chars)?),
                                other => {
                                    return Err(format!(
                                        "results json: expected records array, got {other:?}"
                                    ))
                                }
                            },
                            // Unknown envelope fields (from future schema
                            // revisions) are skipped, whatever their shape.
                            _ => skip_value(&mut chars)?,
                        }
                    }
                    other => return Err(format!("results json: expected key, got {other:?}")),
                }
            }
            Ok(ResultsDoc {
                schema: schema.ok_or("results json: envelope missing \"schema\"")?,
                name,
                records: records.ok_or("results json: envelope missing \"records\"")?,
            })
        }
        other => Err(format!("results json: expected document, got {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_render_as_flat_json_objects() {
        let r = Record::new()
            .str("bench", "gemm_i8")
            .str("shape", "16x256x256")
            .num("ns_per_iter", 1234.5)
            .int("macs", 1_048_576);
        assert_eq!(
            r.render(),
            "  {\"bench\": \"gemm_i8\", \"shape\": \"16x256x256\", \
             \"ns_per_iter\": 1234.500000, \"macs\": 1048576}"
        );
        let quoted = Record::new().str("k", "a\"b\\c");
        assert_eq!(quoted.render(), "  {\"k\": \"a\\\"b\\\\c\"}");
    }

    #[test]
    fn envelope_round_trips() {
        let records = [
            Record::new().str("a", "x").num("v", 1.5).int("n", 3),
            Record::new().str("a", "y").num("nan", f64::NAN),
        ];
        let text = render_doc("my doc", &records);
        let doc = parse_doc(&text).expect("parse");
        assert_eq!(doc.schema, RESULTS_SCHEMA_VERSION);
        assert_eq!(doc.name, "my doc");
        assert_eq!(doc.records.len(), 2);
        assert_eq!(
            doc.records[0][0],
            ("a".to_string(), Value::Str("x".to_string()))
        );
        assert_eq!(doc.records[1][1], ("nan".to_string(), Value::Null));
    }

    #[test]
    fn legacy_bare_arrays_parse_as_schema_one() {
        let text = "[\n  {\"bench\": \"k\", \"ns_per_iter\": 10.5},\n  {\"b\": 2}\n]\n";
        let doc = parse_doc(text).expect("parse");
        assert_eq!(doc.schema, 1);
        assert_eq!(doc.name, "");
        assert_eq!(doc.records.len(), 2);
        assert_eq!(
            doc.records[0][1],
            (
                "ns_per_iter".to_string(),
                Value::Num {
                    raw: "10.5".to_string(),
                    value: 10.5
                }
            )
        );
    }

    #[test]
    fn reader_is_forward_compatible_with_future_envelopes() {
        // A hypothetical schema-3 document: a newer stamp, extra envelope
        // fields of every JSON shape (nested object, array, bool, null,
        // string, number) — the reader must step over all of them and
        // still return the records.
        let text = r#"{
            "schema": 3,
            "name": "future",
            "generator": {"tool": "create", "nested": [1, {"deep": true}]},
            "tags": ["a", "b"],
            "sealed": false,
            "comment": null,
            "records": [ {"k": "v", "x": 1.25} ],
            "trailer": "after records"
        }"#;
        let doc = parse_doc(text).expect("future envelope must parse");
        assert_eq!(doc.schema, 3);
        assert_eq!(doc.name, "future");
        assert_eq!(doc.records.len(), 1);
        assert_eq!(
            doc.records[0][0],
            ("k".to_string(), Value::Str("v".to_string()))
        );
    }

    #[test]
    fn malformed_documents_are_rejected_not_panicked() {
        for bad in [
            "",
            "not json",
            "{\"schema\": 2}",
            "{\"records\": [{}]}",
            "{\"schema\": \"two\", \"records\": []}",
            "{\"schema\": 2, \"records\": [{\"k\": }]}",
            "[{\"k\": \"unterminated",
        ] {
            assert!(parse_doc(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn write_doc_is_crash_safe_and_readable() {
        let path =
            std::env::temp_dir().join(format!("create-results-{}-store.json", std::process::id()));
        write_doc(&path, "t", &[Record::new().str("k", "v")]).unwrap();
        let doc = parse_doc(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.name, "t");
        assert_eq!(doc.records.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn raw_num_preserves_exact_rendering() {
        let r = Record::new().raw_num("bits", "4614256656552045848");
        assert_eq!(r.render(), "  {\"bits\": 4614256656552045848}");
    }
}
