//! CREATE: the cross-layer resilience co-optimization framework.
//!
//! This crate ties the substrates together into the system the paper
//! proposes (Fig. 2):
//!
//! * [`config`] — which techniques are active (AD / WR / VS), what errors
//!   are injected where, step budgets;
//! * [`mission`] — the end-to-end trial runner: planner decode → subtask
//!   execution → replanning, with reference-scale energy metering and
//!   LDO-driven autonomy-adaptive voltage scaling;
//! * [`policy`] — entropy→voltage mapping policies (presets A–F and the
//!   search candidate grid);
//! * [`memory`] — the memory-resilience extension (SRAM retention faults
//!   vs. SECDED) the paper defers to future work;
//! * [`stats`] — parallel trial execution with Wilson-interval aggregation;
//! * [`report`] — text tables for the experiment harnesses;
//! * [`results`] — the schema-versioned structured results store every
//!   machine-readable artifact (bench trajectories, figure tables, merged
//!   sweep results) is written to and read from.
//!
//! # Example
//!
//! ```no_run
//! use create_core::prelude::*;
//!
//! // Load (or train) the JARVIS-1 testbed and run one protected mission.
//! let system = create_agents::AgentSystem::jarvis();
//! let deployment = Deployment::new(&system, create_tensor::Precision::Int8);
//! let config = CreateConfig::undervolted(0.75)
//!     .with_full_create(EntropyPolicy::preset_c());
//! let outcome = run_trial(&deployment, create_env::TaskId::Wooden, &config, 1);
//! println!("success: {}, energy: {:.2} J", outcome.success, outcome.energy_j());
//! ```

pub mod config;
pub mod engine;
pub mod memory;
pub mod mission;
pub mod policy;
pub mod report;
pub mod results;
pub mod stats;

#[cfg(any(test, feature = "testutil"))]
pub mod testutil;

pub use config::{CreateConfig, ErrorSpec, MissionLimits, PhaseGate, VoltageControl};
pub use engine::{
    run_grid, run_grid_with, run_point_range, Accumulator, EngineOptions, EngineOptionsBuilder,
    ExperimentPoint, StateAccumulator,
};
pub use memory::{
    run_memory_grid, run_memory_point, MemTarget, MemoryCell, MemoryConfig, MemoryPoint,
};
pub use mission::{
    run_trial, run_trial_with, Deployment, ErrorSignals, MissionClass, MissionOutcome,
    MissionSession, TrialScratch, ENTROPY_SPIKE_THRESHOLD,
};
pub use policy::EntropyPolicy;
pub use stats::{
    default_reps, run_config_grid, run_outcomes, run_point, run_point_with, GridCell, SweepPoint,
};

/// Convenient glob import for examples and benches.
pub mod prelude {
    pub use crate::config::{CreateConfig, ErrorSpec, MissionLimits, PhaseGate, VoltageControl};
    pub use crate::engine::{
        run_grid, run_grid_with, run_point_range, EngineOptions, EngineOptionsBuilder,
        StateAccumulator,
    };
    pub use crate::memory::{
        run_memory_grid, run_memory_point, MemTarget, MemoryCell, MemoryConfig, MemoryPoint,
    };
    pub use crate::mission::{
        run_trial, run_trial_with, Deployment, ErrorSignals, MissionClass, MissionOutcome,
        MissionSession, TrialScratch, ENTROPY_SPIKE_THRESHOLD,
    };
    pub use crate::policy::EntropyPolicy;
    pub use crate::report::{joules, pct, results_dir, sci, TextTable};
    pub use crate::stats::{
        default_reps, run_config_grid, run_outcomes, run_point, run_point_with, GridCell,
        SweepPoint,
    };
}
