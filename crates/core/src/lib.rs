//! CREATE: the cross-layer resilience co-optimization framework.
//!
//! This crate ties the substrates together into the system the paper
//! proposes (Fig. 2):
//!
//! * [`config`] — which techniques are active (AD / WR / VS), what errors
//!   are injected where, step budgets;
//! * [`mission`] — the end-to-end trial runner: planner decode → subtask
//!   execution → replanning, with reference-scale energy metering and
//!   LDO-driven autonomy-adaptive voltage scaling;
//! * [`policy`] — entropy→voltage mapping policies (presets A–F and the
//!   search candidate grid);
//! * [`memory`] — the memory-resilience extension (SRAM retention faults
//!   vs. SECDED) the paper defers to future work;
//! * [`stats`] — parallel trial execution with Wilson-interval aggregation;
//! * [`report`] — text tables and CSV output for the experiment harnesses.
//!
//! # Example
//!
//! ```no_run
//! use create_core::prelude::*;
//!
//! // Load (or train) the JARVIS-1 testbed and run one protected mission.
//! let system = create_agents::AgentSystem::jarvis();
//! let deployment = Deployment::new(&system, create_tensor::Precision::Int8);
//! let config = CreateConfig::undervolted(0.75)
//!     .with_full_create(EntropyPolicy::preset_c());
//! let outcome = run_trial(&deployment, create_env::TaskId::Wooden, &config, 1);
//! println!("success: {}, energy: {:.2} J", outcome.success, outcome.energy_j());
//! ```

pub mod config;
pub mod memory;
pub mod mission;
pub mod policy;
pub mod report;
pub mod stats;

#[cfg(test)]
mod testutil;

pub use config::{CreateConfig, ErrorSpec, MissionLimits, PhaseGate, VoltageControl};
pub use memory::{MemTarget, MemoryConfig, MemoryPoint, run_memory_point};
pub use mission::{Deployment, MissionOutcome, run_trial};
pub use policy::EntropyPolicy;
pub use stats::{SweepPoint, default_reps, run_outcomes, run_point};

/// Convenient glob import for examples and benches.
pub mod prelude {
    pub use crate::config::{CreateConfig, ErrorSpec, MissionLimits, PhaseGate, VoltageControl};
    pub use crate::memory::{MemTarget, MemoryConfig, MemoryPoint, run_memory_point};
    pub use crate::mission::{Deployment, MissionOutcome, run_trial};
    pub use crate::policy::EntropyPolicy;
    pub use crate::report::{TextTable, joules, pct, results_dir, sci};
    pub use crate::stats::{SweepPoint, default_reps, run_outcomes, run_point};
}
