//! The mission runner: one end-to-end embodied-AI trial.
//!
//! Mirrors the JARVIS-1 execution loop (paper Sec. 2.1): the planner
//! decomposes the task into subtasks; the controller executes them step by
//! step; a subtask that stalls past its window triggers replanning
//! conditioned on the completed subtasks; the mission fails when the total
//! step budget is exhausted. Energy is metered at reference scale per
//! inference, and autonomy-adaptive voltage scaling drives the controller
//! rail through the LDO model.

use crate::config::{CreateConfig, PhaseGate, VoltageControl};
use create_accel::ad::AdStats;
use create_accel::energy::{EnergyMeter, InferenceCost};
use create_accel::{AccelConfig, Accelerator, Ldo, SchemeStats, Unit};
use create_agents::bundle::AgentSystem;
use create_agents::controller::QuantController;
use create_agents::planner::QuantPlanner;
use create_agents::predictor::EntropyPredictor;
use create_agents::presets::{ControllerPreset, PlannerPreset, PredictorPreset};
use create_env::{Observation, Subtask, TaskId, World};
use create_tensor::Precision;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Immutable deployed models shared across parallel trials.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// Quantized planner without weight rotation.
    pub planner: Arc<QuantPlanner>,
    /// Quantized planner with weight rotation (WR).
    pub planner_wr: Arc<QuantPlanner>,
    /// Quantized controller.
    pub controller: Arc<QuantController>,
    /// Entropy predictor (runs error-free at nominal voltage).
    pub predictor: Arc<EntropyPredictor>,
    /// Planner platform preset (energy/injection scales).
    pub planner_preset: PlannerPreset,
    /// Controller platform preset.
    pub controller_preset: ControllerPreset,
    /// Predictor workload preset.
    pub predictor_preset: PredictorPreset,
    /// Tasks this deployment's controller was trained for.
    pub tasks: Vec<TaskId>,
}

impl Deployment {
    /// Quantizes and deploys a trained [`AgentSystem`].
    pub fn new(system: &AgentSystem, precision: Precision) -> Self {
        Self {
            planner: Arc::new(system.deploy_planner(false, precision)),
            planner_wr: Arc::new(system.deploy_planner(true, precision)),
            controller: Arc::new(system.deploy_controller(precision)),
            predictor: Arc::new(system.predictor.clone()),
            planner_preset: system.planner_preset,
            controller_preset: system.controller_preset,
            predictor_preset: PredictorPreset::paper(),
            tasks: system.tasks(),
        }
    }
}

/// Everything measured in one trial.
///
/// `PartialEq` compares every field — floats with `==`, no tolerance —
/// which is what the served-vs-offline replay contract pins on: a served
/// mission and its offline [`run_trial_with`] replay at the same seed
/// must be **bit-identical**, not merely close.
#[derive(Debug, Clone, PartialEq)]
pub struct MissionOutcome {
    /// Whether the task goal was achieved within the budget.
    pub success: bool,
    /// Environment steps executed.
    pub steps: u64,
    /// Planner invocations (1 + replans).
    pub plans: u32,
    /// Reference-scale energy accounting.
    pub meter: EnergyMeter,
    /// LDO transitions performed.
    pub ldo_switches: u64,
    /// Per-step golden-indicator entropy (only when traces are recorded).
    pub entropy_trace: Vec<f32>,
    /// Per-step predicted entropy (VS runs only; NaN on non-update steps).
    pub predicted_trace: Vec<f32>,
    /// Per-step controller voltage (only when traces are recorded).
    pub voltage_trace: Vec<f64>,
    /// Merged planner + controller anomaly-detection activity: how many
    /// GEMM outputs the AD units checked and cleared over the mission.
    pub ad: AdStats,
    /// Merged planner + controller protection-scheme telemetry (DMR/ABFT
    /// redundant executions and residual corruption).
    pub scheme_events: SchemeStats,
    /// Steps whose controller action entropy exceeded
    /// [`ENTROPY_SPIKE_THRESHOLD`] — a near-uniform action distribution,
    /// which on a trained controller signals corrupted logits (Fig. 10's
    /// error signature) rather than healthy exploration. Counted every
    /// step, independent of `record_traces`.
    pub entropy_spikes: u64,
}

/// Controller action-entropy level (nats) above which a step counts as an
/// [`entropy spike`](MissionOutcome::entropy_spikes). Sits above every
/// entropy-policy threshold (the presets top out at 1.5), so healthy
/// exploration does not register.
pub const ENTROPY_SPIKE_THRESHOLD: f32 = 1.5;

/// The per-mission error signals a runtime reliability policy can act on
/// **without ground truth**: outcome, AD activity, scheme activity and
/// entropy spikes are all observable on deployed hardware, unlike
/// injection statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErrorSignals {
    /// Whether the mission achieved its goal.
    pub success: bool,
    /// GEMM outputs checked by the AD units.
    pub ad_checked: u64,
    /// GEMM outputs the AD units cleared (each one a caught anomaly).
    pub ad_trips: u64,
    /// Scheme applications where corruption survived (DMR three-way
    /// disagreements that guessed wrong, ABFT retry exhaustion, …).
    pub scheme_residuals: u64,
    /// Steps with action entropy above [`ENTROPY_SPIKE_THRESHOLD`].
    pub entropy_spikes: u64,
    /// Environment steps executed (normalizer for the spike count).
    pub steps: u64,
}

impl ErrorSignals {
    /// Fraction of AD-checked outputs that tripped (0 when AD is off or
    /// nothing ran).
    pub fn ad_trip_fraction(&self) -> f64 {
        if self.ad_checked == 0 {
            0.0
        } else {
            self.ad_trips as f64 / self.ad_checked as f64
        }
    }

    /// Fraction of steps that were entropy spikes (0 on an empty mission).
    pub fn entropy_spike_fraction(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.entropy_spikes as f64 / self.steps as f64
        }
    }
}

/// Coarse mission health classification derived from [`ErrorSignals`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissionClass {
    /// Succeeded with no anomaly activity at all.
    Clean,
    /// Succeeded, but the substrate visibly misbehaved on the way (AD
    /// trips, scheme residuals or entropy spikes) — the early-warning
    /// band an adaptive policy reacts to before missions start failing.
    Degraded,
    /// The mission failed.
    Failed,
}

impl MissionOutcome {
    /// Total metered energy (J).
    pub fn energy_j(&self) -> f64 {
        self.meter.total_j()
    }

    /// Compute-only energy (J).
    pub fn compute_j(&self) -> f64 {
        self.meter.compute_j()
    }

    /// The controller's effective voltage over the mission.
    pub fn effective_voltage(&self) -> f64 {
        self.meter.unit(Unit::Controller).effective_voltage()
    }

    /// The observable per-mission error signals (see [`ErrorSignals`]).
    pub fn error_signals(&self) -> ErrorSignals {
        ErrorSignals {
            success: self.success,
            ad_checked: self.ad.checked,
            ad_trips: self.ad.cleared,
            scheme_residuals: self.scheme_events.residuals,
            entropy_spikes: self.entropy_spikes,
            steps: self.steps,
        }
    }

    /// Classifies the mission as [`Clean`](MissionClass::Clean),
    /// [`Degraded`](MissionClass::Degraded) or
    /// [`Failed`](MissionClass::Failed) from its observable signals.
    pub fn classify(&self) -> MissionClass {
        if !self.success {
            MissionClass::Failed
        } else if self.ad.cleared > 0 || self.scheme_events.residuals > 0 || self.entropy_spikes > 0
        {
            MissionClass::Degraded
        } else {
            MissionClass::Clean
        }
    }
}

/// Classifies the phase of a step for [`PhaseGate`] injection gating:
/// execution = an adjacent target or an active interact streak.
fn is_execution_phase(obs: &Observation) -> bool {
    let streak = obs.status[0] > 0.0;
    let adjacent = obs.status[16..20].iter().any(|&v| v > 0.5);
    let craft_ready = obs.status[1] > 0.5;
    streak || adjacent || craft_ready
}

/// Reusable inference buffers for one worker's trials.
///
/// A mission runs the controller every environment step and the planner
/// on every (re)plan; their scratch buffers live here so one trial — and,
/// with engine trial batching (`CREATE_TRIAL_BATCH`), a whole batch of
/// trials on the same worker — reuses a single set of allocations.
/// Scratch state carries no information between steps or trials: every
/// buffer is fully overwritten before being read, so outcomes are
/// bit-identical whether a scratch is fresh or recycled.
#[derive(Debug, Default)]
pub struct TrialScratch {
    controller: create_agents::ControllerScratch,
    planner: create_agents::PlannerScratch,
}

impl TrialScratch {
    /// Pre-sizes every inference buffer for `dep` by running one clean
    /// throwaway inference per agent, so the first real trial pays no
    /// buffer growth. A serving worker warms its session before
    /// admission opens; outcomes are unaffected (scratch contents never
    /// influence results — the same contract that lets scratch be reused
    /// across trials at all).
    pub fn warm(&mut self, dep: &Deployment) {
        dep.controller.warm(&mut self.controller);
        if let Some(&task) = dep.tasks.first() {
            dep.planner.warm(task, &mut self.planner);
        }
    }
}

/// A reusable mission-running handle: one deployment plus warm inference
/// scratch.
///
/// This is the **one code path** every mission executor goes through —
/// the batch engine's grid cells (`stats::run_mission_batch`), the
/// resident serving workers (`create-serve`), and offline replays all
/// call [`run`](Self::run), which is exactly [`run_trial_with`] over the
/// session's own scratch. Outcomes are bit-identical however the session
/// is reused: scratch carries no information between trials.
///
/// Prefer a session over threading a [`TrialScratch`] through call sites
/// by hand; `run_trial`/`run_trial_with` remain as the underlying
/// primitives (and as the offline replay anchor for served missions).
#[derive(Debug)]
pub struct MissionSession<'d> {
    dep: &'d Deployment,
    scratch: TrialScratch,
}

impl<'d> MissionSession<'d> {
    /// A session over `dep` with cold (empty) buffers; they grow to size
    /// on the first trial and are reused afterwards.
    pub fn new(dep: &'d Deployment) -> Self {
        MissionSession {
            dep,
            scratch: TrialScratch::default(),
        }
    }

    /// A session with pre-sized buffers ([`TrialScratch::warm`]) — what
    /// a serving worker starts from, so first-request latency excludes
    /// allocation.
    pub fn warmed(dep: &'d Deployment) -> Self {
        let mut session = Self::new(dep);
        session.scratch.warm(dep);
        session
    }

    /// The deployment this session runs against.
    pub fn deployment(&self) -> &'d Deployment {
        self.dep
    }

    /// Runs one mission trial — bit-identical to
    /// [`run_trial`]`(dep, task, config, seed)` regardless of what this
    /// session ran before.
    pub fn run(&mut self, task: TaskId, config: &CreateConfig, seed: u64) -> MissionOutcome {
        run_trial_with(self.dep, task, config, seed, &mut self.scratch)
    }
}

/// Runs one mission trial.
pub fn run_trial(
    dep: &Deployment,
    task: TaskId,
    config: &CreateConfig,
    seed: u64,
) -> MissionOutcome {
    run_trial_with(dep, task, config, seed, &mut TrialScratch::default())
}

/// [`run_trial`] with caller-provided inference scratch, the batched
/// engine's entry point. Outcomes are bit-identical to [`run_trial`].
pub fn run_trial_with(
    dep: &Deployment,
    task: TaskId,
    config: &CreateConfig,
    seed: u64,
    scratch: &mut TrialScratch,
) -> MissionOutcome {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51EED);
    let mut world = World::for_task(task, seed);

    // Accelerators: planner at its fixed voltage, controller on the LDO
    // rail, predictor implicitly error-free (f32 at nominal).
    let mut planner_accel = Accelerator::new(
        AccelConfig {
            injector: config
                .planner_error
                .map(|e| e.injector(dep.planner_preset.injection_scale)),
            ad_enabled: config.planner_ad,
            scheme: config.scheme,
            bound_scale: config.ad_bound_scale,
            // GEMM backend from CREATE_GEMM_BACKEND; outcomes are
            // backend-invariant (bit-identical clean accumulators).
            ..AccelConfig::default()
        },
        seed ^ 0x9A,
    );
    planner_accel.set_voltage(config.planner_voltage);
    let controller_injector = config
        .controller_error
        .map(|e| e.injector(dep.controller_preset.injection_scale));
    let mut ctrl_accel = Accelerator::new(
        AccelConfig {
            injector: controller_injector.clone(),
            ad_enabled: config.controller_ad,
            scheme: config.scheme,
            bound_scale: config.ad_bound_scale,
            ..AccelConfig::default()
        },
        seed ^ 0xC7,
    );
    let mut ldo = Ldo::new();
    match &config.voltage {
        VoltageControl::Fixed(v) => {
            ldo.set_target(*v);
        }
        VoltageControl::Adaptive { policy, .. } => {
            // Start at the policy's most conservative level.
            ldo.set_target(policy.voltage_for(0.0));
        }
    }
    ctrl_accel.set_voltage(ldo.output());

    let planner_model: &QuantPlanner = if config.wr {
        &dep.planner_wr
    } else {
        &dep.planner
    };
    let planner_cost: InferenceCost = dep.planner_preset.inference_cost();
    let ctrl_cost: InferenceCost = dep.controller_preset.inference_cost();
    let pred_cost: InferenceCost = dep.predictor_preset.inference_cost();
    let mut meter = EnergyMeter::new();

    let overhead = 1.0 + config.scheme.static_overhead();
    let scaled = |cost: &InferenceCost, factor: f64| InferenceCost {
        macs: cost.macs * factor,
        dram_bytes: cost.dram_bytes,
        sram_bytes: cost.sram_bytes,
    };
    let accel_factor = |accel: &Accelerator, p0: u64, l0: u64| -> f64 {
        let dp = accel.macs() - p0;
        let dl = accel.logical_macs() - l0;
        if dl == 0 {
            1.0
        } else {
            dp as f64 / dl as f64
        }
    };

    // Initial plan.
    let (p0, l0) = (planner_accel.macs(), planner_accel.logical_macs());
    let mut plan = planner_model.decode_with(&mut planner_accel, task, &[], &mut scratch.planner);
    meter.record(
        Unit::Planner,
        &scaled(
            &planner_cost,
            accel_factor(&planner_accel, p0, l0) * overhead,
        ),
        config.planner_voltage,
        config.precision,
    );
    let mut plans = 1u32;
    let mut completed: Vec<Subtask> = Vec::new();
    let mut plan_idx = 0usize;
    let mut subtask_steps = 0u32;
    world.set_subtask(plan[0]);

    let mut entropy_trace = Vec::new();
    let mut predicted_trace = Vec::new();
    let mut voltage_trace = Vec::new();
    let mut success = false;
    let mut step_in_mission = 0u64;
    let mut burst_used = 0u32;
    let mut entropy_spikes = 0u64;

    while world.steps() < config.limits.max_steps {
        // Advance through completed subtasks.
        while world.subtask_complete() {
            completed.push(plan[plan_idx]);
            plan_idx += 1;
            subtask_steps = 0;
            if plan_idx < plan.len() {
                world.set_subtask(plan[plan_idx]);
            } else {
                break;
            }
        }
        if world.task_goal_met() {
            success = true;
            break;
        }
        // Replan when the plan is exhausted or the subtask stalls.
        if plan_idx >= plan.len() || subtask_steps >= config.limits.subtask_timeout {
            let (p0, l0) = (planner_accel.macs(), planner_accel.logical_macs());
            plan = planner_model.decode_with(
                &mut planner_accel,
                task,
                &completed,
                &mut scratch.planner,
            );
            meter.record(
                Unit::Planner,
                &scaled(
                    &planner_cost,
                    accel_factor(&planner_accel, p0, l0) * overhead,
                ),
                config.planner_voltage,
                config.precision,
            );
            plans += 1;
            plan_idx = 0;
            subtask_steps = 0;
            world.set_subtask(plan[0]);
        }

        let obs = world.observe();

        // Autonomy-adaptive voltage scaling (every `interval` steps).
        if let VoltageControl::Adaptive { policy, interval } = &config.voltage {
            if step_in_mission.is_multiple_of(*interval as u64) {
                let image = obs.render_image();
                let predicted = dep.predictor.predict(&image, obs.subtask_token);
                meter.record(
                    Unit::Predictor,
                    &pred_cost,
                    create_accel::timing::V_NOMINAL,
                    config.precision,
                );
                ldo.set_target(policy.voltage_for(predicted));
                ctrl_accel.set_voltage(ldo.output());
                if config.record_traces {
                    predicted_trace.push(predicted);
                }
            } else if config.record_traces {
                predicted_trace.push(f32::NAN);
            }
        }

        // Phase gating for the Fig. 7 study. With a burst limit, only the
        // first `k` phase-matching steps receive errors, so both phases
        // get identical exposure and the comparison isolates per-step
        // criticality.
        let phase_matches = match config.controller_phase {
            PhaseGate::Always => true,
            PhaseGate::ExplorationOnly => !is_execution_phase(&obs),
            PhaseGate::ExecutionOnly => is_execution_phase(&obs),
        };
        if config.controller_phase != PhaseGate::Always || config.controller_burst.is_some() {
            let budget_left = config.controller_burst.is_none_or(|k| burst_used < k);
            let inject = phase_matches && budget_left;
            if inject {
                burst_used += 1;
            }
            ctrl_accel.set_injector(if inject {
                controller_injector.clone()
            } else {
                None
            });
        }

        let (c0, cl0) = (ctrl_accel.macs(), ctrl_accel.logical_macs());
        let (action, entropy) = dep.controller.act_with(
            &mut ctrl_accel,
            &obs,
            config.temperature,
            &mut rng,
            &mut scratch.controller,
        );
        meter.record(
            Unit::Controller,
            &scaled(&ctrl_cost, accel_factor(&ctrl_accel, c0, cl0) * overhead),
            ctrl_accel.voltage(),
            config.precision,
        );
        if entropy > ENTROPY_SPIKE_THRESHOLD {
            entropy_spikes += 1;
        }
        if config.record_traces {
            entropy_trace.push(entropy);
            voltage_trace.push(ctrl_accel.voltage());
        }
        world.step(action);
        subtask_steps += 1;
        step_in_mission += 1;
    }
    if world.task_goal_met() {
        success = true;
    }
    meter.record_ldo(ldo.switching_energy());

    let mut ad = planner_accel.ad_stats();
    ad.merge(ctrl_accel.ad_stats());
    let mut scheme_events = planner_accel.scheme_stats();
    scheme_events.merge(ctrl_accel.scheme_stats());

    MissionOutcome {
        success,
        steps: world.steps(),
        plans,
        meter,
        ldo_switches: ldo.switches(),
        entropy_trace,
        predicted_trace,
        voltage_trace,
        ad,
        scheme_events,
        entropy_spikes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ErrorSpec;
    use crate::policy::EntropyPolicy;
    use create_agents::presets::{ControllerPreset, PlannerPreset};
    use create_agents::{datasets, vocab};
    use create_agents::{ControllerModel, PlannerModel};

    /// A miniature deployment trained in-seconds for unit tests.
    fn tiny_deployment() -> Deployment {
        let planner_preset = PlannerPreset {
            proxy_layers: 2,
            proxy_hidden: 32,
            proxy_mlp: 64,
            proxy_heads: 4,
            ..PlannerPreset::jarvis()
        };
        let controller_preset = ControllerPreset {
            proxy_layers: 1,
            proxy_hidden: 32,
            proxy_mlp: 64,
            proxy_heads: 4,
            ..ControllerPreset::jarvis()
        };
        let mut rng = StdRng::seed_from_u64(42);
        let samples: Vec<_> = vocab::training_samples()
            .into_iter()
            .filter(|s| {
                s.tokens[0] == vocab::task_token(TaskId::Log)
                    || s.tokens[0] == vocab::task_token(TaskId::Seed)
            })
            .collect();
        let mut planner = PlannerModel::new(&planner_preset, &mut rng);
        planner.train(&samples, 200, 3e-3, None, &mut rng);
        let bc = datasets::collect_bc(&[TaskId::Log, TaskId::Seed], 2, 300, 0.05, 3);
        let mut controller = ControllerModel::new(&controller_preset, &mut rng);
        controller.train(&bc, 8, 2e-3, &mut rng);
        let predictor = create_agents::EntropyPredictor::new(vocab::N_SUBTASKS, &mut rng);
        Deployment {
            planner: Arc::new(planner.deploy(&samples, Precision::Int8)),
            planner_wr: Arc::new(planner.deploy(&samples, Precision::Int8)),
            controller: Arc::new(controller.deploy(&bc, Precision::Int8)),
            predictor: Arc::new(predictor),
            planner_preset,
            controller_preset,
            predictor_preset: PredictorPreset::paper(),
            tasks: vec![TaskId::Log, TaskId::Seed],
        }
    }

    #[test]
    fn golden_mission_succeeds_and_meters_energy() {
        let dep = tiny_deployment();
        let mut successes = 0;
        for seed in 0..5 {
            let out = run_trial(&dep, TaskId::Log, &CreateConfig::golden(), seed);
            if out.success {
                successes += 1;
            }
            assert!(out.energy_j() > 0.0);
            assert!(out.steps > 0);
            assert!(
                out.plans <= 6,
                "golden log mission should replan at most a few times, got {}",
                out.plans
            );
        }
        assert!(successes >= 4, "golden success {successes}/5");
    }

    #[test]
    fn sessions_match_run_trial_bit_for_bit_cold_or_warm() {
        // One session reused across trials — cold-started or pre-warmed —
        // must reproduce the standalone runner exactly: every float
        // compared with `==` through MissionOutcome's PartialEq.
        let dep = tiny_deployment();
        let config = CreateConfig::golden();
        let mut cold = MissionSession::new(&dep);
        let mut warm = MissionSession::warmed(&dep);
        assert!(std::ptr::eq(warm.deployment(), &dep));
        for seed in [3u64, 9, 11] {
            let reference = run_trial(&dep, TaskId::Log, &config, seed);
            assert_eq!(cold.run(TaskId::Log, &config, seed), reference);
            assert_eq!(warm.run(TaskId::Log, &config, seed), reference);
        }
    }

    #[test]
    fn trials_are_reproducible() {
        let dep = tiny_deployment();
        let a = run_trial(&dep, TaskId::Seed, &CreateConfig::golden(), 9);
        let b = run_trial(&dep, TaskId::Seed, &CreateConfig::golden(), 9);
        assert_eq!(a.success, b.success);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.energy_j(), b.energy_j());
    }

    #[test]
    fn massive_controller_errors_break_the_mission() {
        let dep = tiny_deployment();
        let config = CreateConfig {
            controller_error: Some(ErrorSpec::uniform(2e-2)),
            ..CreateConfig::golden()
        };
        let mut successes = 0;
        for seed in 0..4 {
            if run_trial(&dep, TaskId::Log, &config, seed).success {
                successes += 1;
            }
        }
        assert!(successes <= 1, "heavy errors should break missions");
    }

    #[test]
    fn adaptive_voltage_reduces_effective_voltage() {
        let dep = tiny_deployment();
        let fixed = run_trial(&dep, TaskId::Seed, &CreateConfig::golden(), 4);
        let config = CreateConfig {
            voltage: VoltageControl::adaptive(EntropyPolicy::preset_c()),
            record_traces: true,
            ..CreateConfig::golden()
        };
        let adaptive = run_trial(&dep, TaskId::Seed, &config, 4);
        assert!(
            adaptive.effective_voltage() < fixed.effective_voltage(),
            "VS should lower the effective voltage: {} vs {}",
            adaptive.effective_voltage(),
            fixed.effective_voltage()
        );
        assert!(adaptive.ldo_switches > 0 || adaptive.voltage_trace.len() < 5);
        assert_eq!(adaptive.voltage_trace.len() as u64, adaptive.steps);
    }

    #[test]
    fn traces_are_recorded_only_on_request() {
        let dep = tiny_deployment();
        let out = run_trial(&dep, TaskId::Seed, &CreateConfig::golden(), 6);
        assert!(out.entropy_trace.is_empty());
        let config = CreateConfig {
            record_traces: true,
            ..CreateConfig::golden()
        };
        let traced = run_trial(&dep, TaskId::Seed, &config, 6);
        assert_eq!(traced.entropy_trace.len() as u64, traced.steps);
    }

    #[test]
    fn zero_burst_is_equivalent_to_golden() {
        // A burst budget of 0 disarms phase-gated injection entirely: the
        // injector is detached before the first controller inference.
        let dep = tiny_deployment();
        let golden = run_trial(&dep, TaskId::Log, &CreateConfig::golden(), 5);
        let burst0 = CreateConfig {
            controller_error: Some(ErrorSpec::uniform(0.05)),
            controller_phase: PhaseGate::ExecutionOnly,
            controller_burst: Some(0),
            ..CreateConfig::golden()
        };
        let out = run_trial(&dep, TaskId::Log, &burst0, 5);
        assert_eq!(out.success, golden.success);
        assert_eq!(out.steps, golden.steps);
    }

    #[test]
    fn bounded_bursts_hurt_no_more_than_unlimited_exposure() {
        let dep = tiny_deployment();
        let unlimited = CreateConfig {
            controller_error: Some(ErrorSpec::uniform(2e-2)),
            controller_phase: PhaseGate::ExplorationOnly,
            ..CreateConfig::golden()
        };
        let burst = CreateConfig {
            controller_burst: Some(5),
            ..unlimited.clone()
        };
        let mut burst_successes = 0;
        let mut unlimited_successes = 0;
        for seed in 0..6 {
            if run_trial(&dep, TaskId::Log, &burst, seed).success {
                burst_successes += 1;
            }
            if run_trial(&dep, TaskId::Log, &unlimited, seed).success {
                unlimited_successes += 1;
            }
        }
        assert!(
            burst_successes >= unlimited_successes,
            "capping exposure must not make missions worse: {burst_successes} vs {unlimited_successes}"
        );
    }

    #[test]
    fn error_signals_stay_silent_golden_and_fire_under_injection() {
        let dep = tiny_deployment();
        let golden = run_trial(&dep, TaskId::Log, &CreateConfig::golden(), 2);
        let signals = golden.error_signals();
        assert_eq!(signals.ad_trips, 0);
        assert_eq!(signals.scheme_residuals, 0);
        assert_eq!(signals.ad_trip_fraction(), 0.0);
        assert_eq!(signals.steps, golden.steps);
        if golden.success {
            assert_ne!(golden.classify(), MissionClass::Failed);
        }

        // Heavy injection with AD on: the trips are observable, the
        // checked counter normalizes them, and DMR activity shows up in
        // the scheme telemetry.
        let noisy = CreateConfig {
            controller_error: Some(ErrorSpec::uniform(2e-2)),
            controller_ad: true,
            scheme: create_accel::Scheme::Dmr,
            ..CreateConfig::golden()
        };
        let out = run_trial(&dep, TaskId::Log, &noisy, 2);
        let signals = out.error_signals();
        assert!(signals.ad_checked > 0, "AD on means outputs were checked");
        assert!(signals.ad_trip_fraction() <= 1.0);
        assert!(
            out.scheme_events.applications > 0,
            "DMR ran on every injected GEMM"
        );
        assert!(out.scheme_events.redundant_executions >= out.scheme_events.applications);
        assert_ne!(out.classify(), MissionClass::Clean);
    }

    #[test]
    fn failed_missions_burn_the_full_budget() {
        let dep = tiny_deployment();
        let config = CreateConfig {
            controller_error: Some(ErrorSpec::uniform(5e-2)),
            limits: crate::config::MissionLimits {
                subtask_timeout: 50,
                max_steps: 300,
            },
            ..CreateConfig::golden()
        };
        let out = run_trial(&dep, TaskId::Log, &config, 1);
        if !out.success {
            assert_eq!(
                out.steps, 300,
                "failures run to the budget (energy accounted for full execution)"
            );
            assert!(out.plans > 1, "stalling should trigger replanning");
        }
    }
}
