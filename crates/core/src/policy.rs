//! Entropy→voltage mapping policies (paper Sec. 5.3, Fig. 21).
//!
//! Lower entropy means a critical step that needs a robust voltage margin;
//! higher entropy means the agent is roaming and the controller tolerates
//! aggressive undervolting. A policy is a monotone step function from
//! predicted entropy to LDO target voltage. The paper searches ~100
//! candidates and reports six Pareto-efficient ones (A–F); we provide the
//! same six presets plus the candidate generator for the search benchmark.

use create_accel::ldo::Ldo;
use create_accel::timing::{V_MIN, V_NOMINAL};
use std::fmt;

/// A piecewise-constant entropy→voltage map.
#[derive(Debug, Clone, PartialEq)]
pub struct EntropyPolicy {
    name: String,
    /// Ascending entropy cut points.
    thresholds: Vec<f32>,
    /// One voltage per bin (`thresholds.len() + 1` entries, descending:
    /// the lowest-entropy bin gets the highest voltage).
    voltages: Vec<f64>,
}

impl EntropyPolicy {
    /// Builds a policy.
    ///
    /// # Panics
    ///
    /// Panics if `voltages.len() != thresholds.len() + 1`, thresholds are
    /// not ascending, or voltages are not non-increasing in entropy.
    pub fn new(name: impl Into<String>, thresholds: Vec<f32>, voltages: Vec<f64>) -> Self {
        assert_eq!(
            voltages.len(),
            thresholds.len() + 1,
            "need one voltage per entropy bin"
        );
        assert!(
            thresholds.windows(2).all(|w| w[0] < w[1]),
            "thresholds must ascend"
        );
        assert!(
            voltages.windows(2).all(|w| w[0] >= w[1]),
            "voltage must not increase with entropy"
        );
        let voltages = voltages.into_iter().map(Ldo::quantize).collect();
        Self {
            name: name.into(),
            thresholds,
            voltages,
        }
    }

    /// Policy name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The LDO target voltage for a predicted entropy.
    pub fn voltage_for(&self, entropy: f32) -> f64 {
        let mut bin = 0;
        for &t in &self.thresholds {
            if entropy >= t {
                bin += 1;
            } else {
                break;
            }
        }
        self.voltages[bin]
    }

    /// The bin voltages.
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// The entropy thresholds.
    pub fn thresholds(&self) -> &[f32] {
        &self.thresholds
    }

    /// Paper policy A (most conservative preset).
    pub fn preset_a() -> Self {
        Self::new("A", vec![0.5, 1.2], vec![0.88, 0.85, 0.82])
    }

    /// Paper policy B.
    pub fn preset_b() -> Self {
        Self::new("B", vec![0.5, 1.2], vec![0.87, 0.83, 0.80])
    }

    /// Paper policy C — the default operating policy (Sec. 6.5 selects C).
    pub fn preset_c() -> Self {
        Self::new("C", vec![0.4, 1.0], vec![0.86, 0.82, 0.78])
    }

    /// Paper policy D.
    pub fn preset_d() -> Self {
        Self::new("D", vec![0.4, 1.0], vec![0.85, 0.80, 0.76])
    }

    /// Paper policy E.
    pub fn preset_e() -> Self {
        Self::new("E", vec![0.3, 0.9], vec![0.84, 0.78, 0.74])
    }

    /// Paper policy F (most aggressive preset).
    pub fn preset_f() -> Self {
        Self::new("F", vec![0.3, 0.9], vec![0.83, 0.76, 0.72])
    }

    /// The six Fig. 21 presets.
    pub fn presets() -> Vec<EntropyPolicy> {
        vec![
            Self::preset_a(),
            Self::preset_b(),
            Self::preset_c(),
            Self::preset_d(),
            Self::preset_e(),
            Self::preset_f(),
        ]
    }

    /// Generates the policy-search candidate grid (~100 candidates, the
    /// Sec. 6.5 search space): threshold pairs × voltage ladders.
    pub fn search_candidates() -> Vec<EntropyPolicy> {
        let mut out = Vec::new();
        let threshold_sets = [
            vec![0.3f32, 0.9],
            vec![0.4, 1.0],
            vec![0.5, 1.2],
            vec![0.6, 1.3],
        ];
        let tops = [0.88f64, 0.86, 0.84, 0.82];
        let mid_drops = [0.02f64, 0.04, 0.06];
        let low_drops = [0.02f64, 0.04, 0.06];
        let mut idx = 0;
        for ts in &threshold_sets {
            for &top in &tops {
                for &md in &mid_drops {
                    for &ld in &low_drops {
                        let mid = top - md;
                        let low = (mid - ld).max(V_MIN);
                        out.push(EntropyPolicy::new(
                            format!("cand{idx}"),
                            ts.clone(),
                            vec![top, mid, low],
                        ));
                        idx += 1;
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for EntropyPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.name)?;
        for (i, &v) in self.voltages.iter().enumerate() {
            if i > 0 {
                write!(f, " | H≥{:.2} ", self.thresholds[i - 1])?;
            }
            write!(f, "{v:.2}V")?;
        }
        Ok(())
    }
}

/// Validates that every policy voltage stays within the LDO's range.
pub fn policy_in_ldo_range(p: &EntropyPolicy) -> bool {
    p.voltages()
        .iter()
        .all(|&v| (V_MIN - 1e-9..=V_NOMINAL + 1e-9).contains(&v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_entropy_gets_high_voltage() {
        let p = EntropyPolicy::preset_c();
        assert!(p.voltage_for(0.0) > p.voltage_for(1.5));
        assert!((p.voltage_for(0.0) - 0.86).abs() < 1e-9);
        assert!((p.voltage_for(0.5) - 0.82).abs() < 1e-9);
        assert!((p.voltage_for(1.5) - 0.78).abs() < 1e-9);
    }

    #[test]
    fn thresholds_are_inclusive_lower_bounds() {
        let p = EntropyPolicy::new("t", vec![1.0], vec![0.9, 0.8]);
        assert!((p.voltage_for(0.999) - 0.9).abs() < 1e-9);
        assert!((p.voltage_for(1.0) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn presets_are_ordered_by_aggressiveness() {
        let presets = EntropyPolicy::presets();
        for w in presets.windows(2) {
            let mean_a: f64 = w[0].voltages().iter().sum::<f64>() / w[0].voltages().len() as f64;
            let mean_b: f64 = w[1].voltages().iter().sum::<f64>() / w[1].voltages().len() as f64;
            assert!(mean_a > mean_b, "{} should be gentler than {}", w[0], w[1]);
        }
    }

    #[test]
    fn search_space_has_about_100_candidates() {
        let c = EntropyPolicy::search_candidates();
        assert!(
            (100..200).contains(&c.len()),
            "expected ~100+ candidates, got {}",
            c.len()
        );
        assert!(c.iter().all(policy_in_ldo_range));
    }

    #[test]
    fn voltages_snap_to_ldo_grid() {
        let p = EntropyPolicy::new("grid", vec![1.0], vec![0.8333, 0.7777]);
        for &v in p.voltages() {
            let snapped = (v / 0.01).round() * 0.01;
            assert!((v - snapped).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "voltage must not increase")]
    fn increasing_voltage_with_entropy_is_rejected() {
        let _ = EntropyPolicy::new("bad", vec![1.0], vec![0.7, 0.9]);
    }
}
