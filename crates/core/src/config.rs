//! Experiment configuration: which CREATE techniques are active, what
//! errors are injected where, and the mission step budgets.

use create_accel::inject::{ErrorModel, InjectionTarget, Injector};
use create_accel::timing::{TimingModel, V_NOMINAL};
use create_accel::Scheme;
use create_tensor::Precision;

use crate::policy::EntropyPolicy;

/// Error injection for one unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSpec {
    /// Statistical error model.
    pub model: ErrorModel,
    /// Which GEMMs receive errors.
    pub target: InjectionTarget,
}

impl ErrorSpec {
    /// Uniform-BER injection into every GEMM (the Sec. 4 characterization
    /// model).
    pub fn uniform(ber: f64) -> Self {
        Self {
            model: ErrorModel::Uniform { ber },
            target: InjectionTarget::All,
        }
    }

    /// Hardware (voltage-derived) injection into every GEMM (the Sec. 6
    /// deployment model).
    pub fn voltage() -> Self {
        Self {
            model: ErrorModel::Voltage {
                model: TimingModel::new(),
            },
            target: InjectionTarget::All,
        }
    }

    /// Builds the accelerator injector with a unit's inference scale.
    pub fn injector(&self, inference_scale: f64) -> Injector {
        Injector::new(self.model, self.target, inference_scale)
    }
}

/// Voltage control for the controller rail.
#[derive(Debug, Clone, PartialEq)]
pub enum VoltageControl {
    /// Constant supply voltage.
    Fixed(f64),
    /// Autonomy-adaptive voltage scaling (Sec. 5.3): the entropy predictor
    /// drives an LDO through an entropy→voltage policy.
    Adaptive {
        /// The entropy→voltage mapping.
        policy: EntropyPolicy,
        /// Steps between voltage updates (paper default: 5).
        interval: u32,
    },
}

impl VoltageControl {
    /// The paper's default adaptive setup with the given policy.
    pub fn adaptive(policy: EntropyPolicy) -> Self {
        VoltageControl::Adaptive {
            policy,
            interval: 5,
        }
    }
}

/// Restricting injection to a mission phase (Fig. 7's stage study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PhaseGate {
    /// Inject throughout.
    #[default]
    Always,
    /// Inject only while exploring (no adjacent target, no streak).
    ExplorationOnly,
    /// Inject only during execution (adjacent target or active streak).
    ExecutionOnly,
}

/// Mission step budgets.
///
/// Scaled ~×20 down from the paper's JARVIS-1 limits (600-step subtask
/// replan windows, 12 000-step task failure), matching the proxy worlds'
/// shorter missions. Ratios are preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissionLimits {
    /// Steps before an unfinished subtask triggers replanning.
    pub subtask_timeout: u32,
    /// Total steps before the mission is declared failed.
    pub max_steps: u64,
}

impl Default for MissionLimits {
    fn default() -> Self {
        Self {
            subtask_timeout: 220,
            max_steps: 3000,
        }
    }
}

impl MissionLimits {
    /// Tighter limits for manipulation-world tasks (shorter missions).
    pub fn manipulation() -> Self {
        Self {
            subtask_timeout: 120,
            max_steps: 800,
        }
    }
}

/// Full configuration of one mission trial.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateConfig {
    /// Error injection for the planner (None = golden).
    pub planner_error: Option<ErrorSpec>,
    /// Error injection for the controller (None = golden).
    pub controller_error: Option<ErrorSpec>,
    /// Anomaly detection on the planner's array.
    pub planner_ad: bool,
    /// Anomaly detection on the controller's array.
    pub controller_ad: bool,
    /// Weight-rotation-enhanced planning (selects the rotated deployment).
    pub wr: bool,
    /// Planner supply voltage.
    pub planner_voltage: f64,
    /// Controller voltage control.
    pub voltage: VoltageControl,
    /// Phase gating for controller injection (Fig. 7).
    pub controller_phase: PhaseGate,
    /// Burst length for phase-gated injection (Fig. 7's per-step
    /// criticality panel): when `Some(k)`, controller errors hit only the
    /// *first k steps* that match [`Self::controller_phase`], so both
    /// phases receive the same error exposure and the comparison isolates
    /// per-step severity. `None` injects for the phase's whole duration
    /// (exposure-weighted vulnerability).
    pub controller_burst: Option<u32>,
    /// Datapath protection scheme (baseline comparison; CREATE = Plain).
    pub scheme: Scheme,
    /// Datapath precision.
    pub precision: Precision,
    /// Ablation knob: multiplier on every layer's offline-profiled output
    /// bound (AD threshold and requantization rail); `1.0` deploys the
    /// profiled bounds unchanged. See the `abl_ad_bound` bench target.
    pub ad_bound_scale: f32,
    /// Step budgets.
    pub limits: MissionLimits,
    /// Controller sampling temperature.
    pub temperature: f32,
    /// Record per-step entropy/voltage traces.
    pub record_traces: bool,
}

impl Default for CreateConfig {
    fn default() -> Self {
        Self {
            planner_error: None,
            controller_error: None,
            planner_ad: false,
            controller_ad: false,
            wr: false,
            planner_voltage: V_NOMINAL,
            voltage: VoltageControl::Fixed(V_NOMINAL),
            controller_phase: PhaseGate::Always,
            controller_burst: None,
            scheme: Scheme::Plain,
            precision: Precision::Int8,
            ad_bound_scale: 1.0,
            limits: MissionLimits::default(),
            temperature: 0.7,
            record_traces: false,
        }
    }
}

impl CreateConfig {
    /// Golden (error-free, nominal-voltage) configuration.
    pub fn golden() -> Self {
        Self::default()
    }

    /// Both units injected with the hardware error model at `v` (the
    /// "no protection" deployment corner).
    pub fn undervolted(v: f64) -> Self {
        Self {
            planner_error: Some(ErrorSpec::voltage()),
            controller_error: Some(ErrorSpec::voltage()),
            planner_voltage: v,
            voltage: VoltageControl::Fixed(v),
            ..Self::default()
        }
    }

    /// Enables the full CREATE stack (AD + WR + adaptive VS).
    pub fn with_full_create(mut self, policy: EntropyPolicy) -> Self {
        self.planner_ad = true;
        self.controller_ad = true;
        self.wr = true;
        self.voltage = VoltageControl::adaptive(policy);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_config_is_error_free_and_nominal() {
        let c = CreateConfig::golden();
        assert!(c.planner_error.is_none());
        assert!(c.controller_error.is_none());
        assert_eq!(c.planner_voltage, V_NOMINAL);
        assert_eq!(c.voltage, VoltageControl::Fixed(V_NOMINAL));
    }

    #[test]
    fn undervolted_config_injects_everywhere() {
        let c = CreateConfig::undervolted(0.75);
        assert!(c.planner_error.is_some());
        assert!(c.controller_error.is_some());
        assert_eq!(c.planner_voltage, 0.75);
    }

    #[test]
    fn full_create_enables_all_techniques() {
        let c = CreateConfig::undervolted(0.75).with_full_create(EntropyPolicy::preset_c());
        assert!(c.planner_ad && c.controller_ad && c.wr);
        assert!(matches!(
            c.voltage,
            VoltageControl::Adaptive { interval: 5, .. }
        ));
    }

    #[test]
    fn limits_keep_paper_ratio() {
        let l = MissionLimits::default();
        // 600 / 12000 in the paper — one replan window is 1/~13 of the
        // mission budget; ours stays in that regime.
        let ratio = l.max_steps as f64 / l.subtask_timeout as f64;
        assert!((10.0..20.0).contains(&ratio));
    }

    #[test]
    fn uniform_spec_builds_injector() {
        let spec = ErrorSpec::uniform(1e-4);
        let inj = spec.injector(1.0);
        assert!(inj.element_corruption_prob(0.9) > 0.0);
    }
}
