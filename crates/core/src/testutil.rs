//! Shared test fixtures: a miniature deployment trained once per test
//! binary and cached **on disk** across binaries.
//!
//! Training even the tiny stack costs seconds, and a `cargo test`
//! invocation spawns one binary per test target — each of which used to
//! retrain the same models. The trained f32 bundle (planner, controller,
//! predictor) is therefore persisted under the workspace `target/`
//! directory via [`create_agents::io`], keyed by
//! [`TESTUTIL_SCHEMA_VERSION`]: bump the constant whenever the fixture's
//! architecture, data or training recipe changes and every binary
//! retrains exactly once.
//!
//! Correctness contract: a cache hit must be **bit-identical** to a
//! retrain. The deployment is a pure function of the trained weights and
//! the (deterministically regenerated) calibration data, and on every
//! cache *miss* the freshly written file is read back and asserted equal
//! to what was trained before it is used — so a hit can never diverge
//! from the miss path. Set `CREATE_TESTUTIL_CACHE=0` to opt out and
//! always retrain.

use crate::mission::Deployment;
use create_agents::bundle::{
    controller_from_tensors, controller_to_tensors, planner_from_tensors, planner_to_tensors,
};
use create_agents::io::{self, NamedTensor};
use create_agents::presets::{ControllerPreset, PlannerPreset, PredictorPreset};
use create_agents::{datasets, vocab, ControllerModel, EntropyPredictor, PlannerModel};
use create_agents::{BcSample, ControllerTrainScratch, PlannerTrainScratch};
use create_env::TaskId;
use create_tensor::Precision;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

/// Bump for cache-format or recipe changes the automatic fingerprint
/// cannot see (the file name also embeds an FNV-1a fingerprint of the
/// presets, the training hyperparameters and the *regenerated training
/// data itself*, so dataset/preset/hyperparameter drift — including
/// upstream `create-env`/vocab changes that alter the samples — already
/// misses the cache without touching this constant).
pub const TESTUTIL_SCHEMA_VERSION: u32 = 1;

/// Fixture training recipe (also folded into the cache fingerprint).
const TRAIN_SEED: u64 = 77;
const PLANNER_EPOCHS: usize = 200;
const PLANNER_LR: f32 = 3e-3;
const CONTROLLER_EPOCHS: usize = 8;
const CONTROLLER_LR: f32 = 2e-3;

static TINY: OnceLock<Deployment> = OnceLock::new();

/// A miniature two-task deployment (log + seed), trained in seconds,
/// cached for the lifetime of the test binary *and* (via `target/`) for
/// sibling test binaries. Returns the deployment and a task it was
/// trained for.
pub fn tiny_deployment() -> (Deployment, TaskId) {
    let dep = TINY
        .get_or_init(|| build_with(default_cache_dir().as_deref()))
        .clone();
    (dep, TaskId::Log)
}

/// The on-disk directory for trained bundles, or `None` when caching is
/// disabled via `CREATE_TESTUTIL_CACHE=0`/`false` (parsed through the
/// shared [`create_tensor::envcfg`] warn-and-fallback contract like every
/// other `CREATE_*` knob).
fn default_cache_dir() -> Option<PathBuf> {
    if !create_tensor::envcfg::read_flag("CREATE_TESTUTIL_CACHE", true) {
        return None;
    }
    // crates/core -> workspace root -> target/. Deliberately under the
    // build directory: `cargo clean` clears it and it is never committed.
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/testutil-cache")
        .components()
        .collect();
    Some(path)
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Fingerprints everything the trained bundle depends on besides the
/// training *code*: architecture presets, hyperparameters, and the full
/// regenerated sample sets (which transitively cover vocab layout, task
/// plans and environment/expert behavior). Training-code changes are
/// covered by the bit-parity contract instead; anything that evades both
/// needs a [`TESTUTIL_SCHEMA_VERSION`] bump.
fn recipe_fingerprint(samples: &[vocab::PlanSample], bc: &[BcSample]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let p = planner_preset();
    let c = controller_preset();
    for v in [
        p.proxy_layers,
        p.proxy_hidden,
        p.proxy_mlp,
        p.proxy_heads,
        c.proxy_layers,
        c.proxy_hidden,
        c.proxy_mlp,
        c.proxy_heads,
        PLANNER_EPOCHS,
        CONTROLLER_EPOCHS,
        vocab::VOCAB,
    ] {
        fnv1a(&mut h, &(v as u64).to_le_bytes());
    }
    fnv1a(&mut h, &TRAIN_SEED.to_le_bytes());
    fnv1a(&mut h, &PLANNER_LR.to_bits().to_le_bytes());
    fnv1a(&mut h, &CONTROLLER_LR.to_bits().to_le_bytes());
    for s in samples {
        fnv1a(&mut h, &(s.sep_index as u64).to_le_bytes());
        for &tok in &s.tokens {
            fnv1a(&mut h, &(tok as u64).to_le_bytes());
        }
    }
    for s in bc {
        for &cell in s.obs.view.iter() {
            fnv1a(&mut h, &[cell]);
        }
        for &v in s.obs.compass.iter().chain(s.obs.status.iter()) {
            fnv1a(&mut h, &v.to_bits().to_le_bytes());
        }
        fnv1a(&mut h, &(s.obs.subtask_token as u64).to_le_bytes());
        for &t in &s.target {
            fnv1a(&mut h, &t.to_bits().to_le_bytes());
        }
    }
    h
}

fn planner_preset() -> PlannerPreset {
    PlannerPreset {
        proxy_layers: 2,
        proxy_hidden: 32,
        proxy_mlp: 64,
        proxy_heads: 4,
        ..PlannerPreset::jarvis()
    }
}

fn controller_preset() -> ControllerPreset {
    ControllerPreset {
        proxy_layers: 1,
        proxy_hidden: 32,
        proxy_mlp: 64,
        proxy_heads: 4,
        ..ControllerPreset::jarvis()
    }
}

/// Deterministically regenerates the training/calibration data the tiny
/// deployment is built from.
fn tiny_data() -> (Vec<vocab::PlanSample>, Vec<BcSample>) {
    let samples: Vec<_> = vocab::training_samples()
        .into_iter()
        .filter(|s| {
            s.tokens[0] == vocab::task_token(TaskId::Log)
                || s.tokens[0] == vocab::task_token(TaskId::Seed)
        })
        .collect();
    let bc = datasets::collect_bc(&[TaskId::Log, TaskId::Seed], 2, 300, 0.05, 3);
    (samples, bc)
}

/// Quantizes and assembles the deployment from trained f32 models — the
/// single code path shared by cache hits and misses, so both produce the
/// same bits given the same weights.
fn deploy(
    planner: &PlannerModel,
    controller: &ControllerModel,
    predictor: EntropyPredictor,
    samples: &[vocab::PlanSample],
    bc: &[BcSample],
) -> Deployment {
    Deployment {
        planner: Arc::new(planner.deploy(samples, Precision::Int8)),
        planner_wr: Arc::new(planner.deploy(samples, Precision::Int8)),
        controller: Arc::new(controller.deploy(bc, Precision::Int8)),
        predictor: Arc::new(predictor),
        planner_preset: planner_preset(),
        controller_preset: controller_preset(),
        predictor_preset: PredictorPreset::paper(),
        tasks: vec![TaskId::Log, TaskId::Seed],
    }
}

fn prefixed(prefix: &str, tensors: Vec<NamedTensor>) -> Vec<NamedTensor> {
    tensors
        .into_iter()
        .map(|t| NamedTensor::new(format!("{prefix}/{}", t.name), t.shape, t.data))
        .collect()
}

fn section(prefix: &str, tensors: &[NamedTensor]) -> Vec<NamedTensor> {
    let want = format!("{prefix}/");
    tensors
        .iter()
        .filter(|t| t.name.starts_with(&want))
        .map(|t| {
            NamedTensor::new(
                t.name[want.len()..].to_string(),
                t.shape.clone(),
                t.data.clone(),
            )
        })
        .collect()
}

fn bundle_to_tensors(
    planner: &PlannerModel,
    controller: &ControllerModel,
    predictor: &EntropyPredictor,
) -> Vec<NamedTensor> {
    let mut out = prefixed("planner", planner_to_tensors(planner));
    out.extend(prefixed("controller", controller_to_tensors(controller)));
    out.extend(prefixed("predictor", predictor.export_tensors()));
    out
}

fn bundle_from_tensors(
    tensors: &[NamedTensor],
) -> Option<(PlannerModel, ControllerModel, EntropyPredictor)> {
    let planner = planner_from_tensors(&planner_preset(), &section("planner", tensors))?;
    let controller =
        controller_from_tensors(&controller_preset(), &section("controller", tensors))?;
    let predictor = EntropyPredictor::import_tensors(&section("predictor", tensors))?;
    Some((planner, controller, predictor))
}

/// Builds the deployment, loading the trained bundle from `cache_dir`
/// when possible and persisting (with a read-back bit-identity assertion)
/// on a miss. The file name inside the directory embeds both
/// [`TESTUTIL_SCHEMA_VERSION`] and the [recipe
/// fingerprint](recipe_fingerprint), so a changed recipe simply never
/// finds a stale bundle. Exposed to the cache tests; everyone else goes
/// through [`tiny_deployment`].
pub fn build_with(cache_dir: Option<&Path>) -> Deployment {
    let (samples, bc) = tiny_data();
    let cache = cache_dir.map(|dir| {
        dir.join(format!(
            "tiny_v{TESTUTIL_SCHEMA_VERSION}_{:016x}.bin",
            recipe_fingerprint(&samples, &bc)
        ))
    });
    if let Some(path) = &cache {
        if let Ok(tensors) = io::load_tensors(path) {
            if let Some((planner, controller, predictor)) = bundle_from_tensors(&tensors) {
                return deploy(&planner, &controller, predictor, &samples, &bc);
            }
        }
    }
    // Cache miss (or caching disabled): train from scratch.
    let mut rng = StdRng::seed_from_u64(TRAIN_SEED);
    let mut planner = PlannerModel::new(&planner_preset(), &mut rng);
    planner.train_with(
        &samples,
        PLANNER_EPOCHS,
        PLANNER_LR,
        None,
        &mut rng,
        &mut PlannerTrainScratch::default(),
    );
    let mut controller = ControllerModel::new(&controller_preset(), &mut rng);
    controller.train_with(
        &bc,
        CONTROLLER_EPOCHS,
        CONTROLLER_LR,
        &mut rng,
        &mut ControllerTrainScratch::default(),
    );
    let predictor = EntropyPredictor::new(vocab::N_SUBTASKS, &mut rng);
    if let Some(path) = &cache {
        let written = bundle_to_tensors(&planner, &controller, &predictor);
        if io::save_tensors(path, &written).is_ok() {
            // The next binary will trust this file blindly, so prove now
            // that a reload reproduces the trained weights bit for bit.
            let reread = io::load_tensors(path).expect("reread testutil cache");
            assert_eq!(
                reread, written,
                "testutil cache roundtrip must be bit-identical"
            );
        }
    }
    deploy(&planner, &controller, predictor, &samples, &bc)
}
