//! Shared test fixtures: a miniature deployment trained once per test
//! binary (training even the tiny stack costs seconds, and several test
//! modules need the same models).

use crate::mission::Deployment;
use create_agents::presets::{ControllerPreset, PlannerPreset, PredictorPreset};
use create_agents::{datasets, vocab, ControllerModel, EntropyPredictor, PlannerModel};
use create_env::TaskId;
use create_tensor::Precision;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

static TINY: OnceLock<Deployment> = OnceLock::new();

/// A miniature two-task deployment (log + seed), trained in seconds and
/// cached for the lifetime of the test binary. Returns the deployment and
/// a task it was trained for.
pub fn tiny_deployment() -> (Deployment, TaskId) {
    let dep = TINY.get_or_init(build).clone();
    (dep, TaskId::Log)
}

fn build() -> Deployment {
    let planner_preset = PlannerPreset {
        proxy_layers: 2,
        proxy_hidden: 32,
        proxy_mlp: 64,
        proxy_heads: 4,
        ..PlannerPreset::jarvis()
    };
    let controller_preset = ControllerPreset {
        proxy_layers: 1,
        proxy_hidden: 32,
        proxy_mlp: 64,
        proxy_heads: 4,
        ..ControllerPreset::jarvis()
    };
    let mut rng = StdRng::seed_from_u64(77);
    let samples: Vec<_> = vocab::training_samples()
        .into_iter()
        .filter(|s| {
            s.tokens[0] == vocab::task_token(TaskId::Log)
                || s.tokens[0] == vocab::task_token(TaskId::Seed)
        })
        .collect();
    let mut planner = PlannerModel::new(&planner_preset, &mut rng);
    planner.train(&samples, 200, 3e-3, None, &mut rng);
    let bc = datasets::collect_bc(&[TaskId::Log, TaskId::Seed], 2, 300, 0.05, 3);
    let mut controller = ControllerModel::new(&controller_preset, &mut rng);
    controller.train(&bc, 8, 2e-3, &mut rng);
    let predictor = EntropyPredictor::new(vocab::N_SUBTASKS, &mut rng);
    Deployment {
        planner: Arc::new(planner.deploy(&samples, Precision::Int8)),
        planner_wr: Arc::new(planner.deploy(&samples, Precision::Int8)),
        controller: Arc::new(controller.deploy(&bc, Precision::Int8)),
        predictor: Arc::new(predictor),
        planner_preset,
        controller_preset,
        predictor_preset: PredictorPreset::paper(),
        tasks: vec![TaskId::Log, TaskId::Seed],
    }
}
