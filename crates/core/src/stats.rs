//! Parallel trial execution and aggregation.
//!
//! Experiments fan trials out over worker threads (the deployment is
//! immutable and shared); per-trial seeds derive from the base seed and the
//! trial index, so results are identical regardless of thread count.

use crate::config::CreateConfig;
use crate::mission::{Deployment, MissionOutcome, run_trial};
use create_env::TaskId;
use create_tensor::stats::wilson_interval;
use std::sync::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Aggregated results for one experiment point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Trials run.
    pub n: u32,
    /// Successful trials.
    pub successes: u32,
    /// Success rate in \[0,1\].
    pub success_rate: f64,
    /// 95% Wilson interval for the success rate.
    pub ci: (f64, f64),
    /// Mean steps among successful trials (paper's definition).
    pub avg_steps: f64,
    /// Mean total energy per trial in joules (failures included at full
    /// budget, per Sec. 6.1).
    pub avg_energy_j: f64,
    /// Mean compute-only energy per trial (J).
    pub avg_compute_j: f64,
    /// Mean controller effective voltage.
    pub effective_voltage: f64,
    /// Mean planner invocations per trial.
    pub avg_plans: f64,
}

impl SweepPoint {
    /// Aggregates trial outcomes.
    pub fn from_outcomes(outcomes: &[MissionOutcome]) -> SweepPoint {
        let n = outcomes.len() as u32;
        let successes = outcomes.iter().filter(|o| o.success).count() as u32;
        let success_rate = if n == 0 { 0.0 } else { successes as f64 / n as f64 };
        let ci = wilson_interval(successes as u64, n as u64);
        let avg_steps = if successes == 0 {
            0.0
        } else {
            outcomes
                .iter()
                .filter(|o| o.success)
                .map(|o| o.steps as f64)
                .sum::<f64>()
                / successes as f64
        };
        let avg = |f: &dyn Fn(&MissionOutcome) -> f64| {
            if n == 0 {
                0.0
            } else {
                outcomes.iter().map(f).sum::<f64>() / n as f64
            }
        };
        SweepPoint {
            n,
            successes,
            success_rate,
            ci,
            avg_steps,
            avg_energy_j: avg(&|o| o.energy_j()),
            avg_compute_j: avg(&|o| o.compute_j()),
            effective_voltage: avg(&|o| o.effective_voltage()),
            avg_plans: avg(&|o| o.plans as f64),
        }
    }
}

/// Number of repetitions per experiment point: defaults to 40 and scales
/// with the `CREATE_REPS` environment variable (the paper uses ≥100; 40
/// gives a ~±15% CI and Table 5 shows convergence by 100).
pub fn default_reps() -> u32 {
    std::env::var("CREATE_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40)
}

/// Runs `n` trials of `task` under `config` in parallel and collects the
/// raw outcomes (sorted by trial index for determinism).
pub fn run_outcomes(
    dep: &Deployment,
    task: TaskId,
    config: &CreateConfig,
    n: u32,
    base_seed: u64,
) -> Vec<MissionOutcome> {
    let counter = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, MissionOutcome)>> = Mutex::new(Vec::with_capacity(n as usize));
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n.max(1) as usize);
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let idx = counter.fetch_add(1, Ordering::Relaxed);
                if idx >= n as usize {
                    break;
                }
                let seed = base_seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(idx as u64 * 7919);
                let outcome = run_trial(dep, task, config, seed);
                results.lock().unwrap().push((idx, outcome));
            });
        }
    })
    .expect("trial worker panicked");
    let mut raw = results.into_inner().unwrap();
    raw.sort_by_key(|(i, _)| *i);
    raw.into_iter().map(|(_, o)| o).collect()
}

/// Runs `n` trials and aggregates them into a [`SweepPoint`].
pub fn run_point(
    dep: &Deployment,
    task: TaskId,
    config: &CreateConfig,
    n: u32,
    base_seed: u64,
) -> SweepPoint {
    SweepPoint::from_outcomes(&run_outcomes(dep, task, config, n, base_seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use create_accel::EnergyMeter;

    fn outcome(success: bool, steps: u64) -> MissionOutcome {
        MissionOutcome {
            success,
            steps,
            plans: 1,
            meter: EnergyMeter::new(),
            ldo_switches: 0,
            entropy_trace: vec![],
            predicted_trace: vec![],
            voltage_trace: vec![],
        }
    }

    #[test]
    fn aggregation_counts_successes() {
        let outcomes = vec![outcome(true, 100), outcome(false, 300), outcome(true, 200)];
        let p = SweepPoint::from_outcomes(&outcomes);
        assert_eq!(p.n, 3);
        assert_eq!(p.successes, 2);
        assert!((p.success_rate - 2.0 / 3.0).abs() < 1e-9);
        assert!((p.avg_steps - 150.0).abs() < 1e-9, "steps only over successes");
    }

    #[test]
    fn empty_outcomes_are_safe() {
        let p = SweepPoint::from_outcomes(&[]);
        assert_eq!(p.n, 0);
        assert_eq!(p.success_rate, 0.0);
    }

    #[test]
    fn ci_brackets_the_rate() {
        let outcomes: Vec<_> = (0..50).map(|i| outcome(i % 5 != 0, 10)).collect();
        let p = SweepPoint::from_outcomes(&outcomes);
        assert!(p.ci.0 <= p.success_rate && p.success_rate <= p.ci.1);
    }

    #[test]
    fn default_reps_reads_env() {
        // No env set in tests: default is 40.
        if std::env::var("CREATE_REPS").is_err() {
            assert_eq!(default_reps(), 40);
        }
    }
}
