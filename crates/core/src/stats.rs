//! Trial aggregation and the mission-level experiment points.
//!
//! All fan-out lives in [`crate::engine`]; this module defines what a
//! CREATE trial *is* (run one mission) and how outcomes aggregate (a
//! [`SweepPoint`] via the streaming [`SweepAccumulator`]). Per-trial seeds
//! derive from `(base seed, point index, trial index)`, so results are
//! identical regardless of thread count.

use crate::config::CreateConfig;
use crate::engine::{
    self, Accumulator, CollectAll, EngineOptions, ExperimentPoint, StateAccumulator,
};
use crate::mission::{run_trial, Deployment, MissionOutcome, MissionSession};
use create_env::TaskId;
use create_tensor::stats::wilson_interval;

/// Aggregated results for one experiment point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Trials run.
    pub n: u32,
    /// Successful trials.
    pub successes: u32,
    /// Success rate in \[0,1\].
    pub success_rate: f64,
    /// 95% Wilson interval for the success rate.
    pub ci: (f64, f64),
    /// Mean steps among successful trials (paper's definition).
    pub avg_steps: f64,
    /// Mean total energy per trial in joules (failures included at full
    /// budget, per Sec. 6.1).
    pub avg_energy_j: f64,
    /// Mean compute-only energy per trial (J).
    pub avg_compute_j: f64,
    /// Mean controller effective voltage.
    pub effective_voltage: f64,
    /// Mean planner invocations per trial.
    pub avg_plans: f64,
}

impl SweepPoint {
    /// Aggregates trial outcomes.
    pub fn from_outcomes(outcomes: &[MissionOutcome]) -> SweepPoint {
        let mut acc = SweepAccumulator::default();
        for o in outcomes {
            acc.push_ref(o);
        }
        acc.finish()
    }
}

/// Streaming aggregation into a [`SweepPoint`]: left-fold sums in trial
/// order, so the result is bit-identical to a sequential loop over the
/// same outcomes (and therefore independent of thread count).
#[derive(Debug, Default)]
pub struct SweepAccumulator {
    n: u32,
    successes: u32,
    steps_sum: f64,
    energy_sum: f64,
    compute_sum: f64,
    voltage_sum: f64,
    plans_sum: f64,
}

impl SweepAccumulator {
    fn push_ref(&mut self, o: &MissionOutcome) {
        self.n += 1;
        if o.success {
            self.successes += 1;
            self.steps_sum += o.steps as f64;
        }
        self.energy_sum += o.energy_j();
        self.compute_sum += o.compute_j();
        self.voltage_sum += o.effective_voltage();
        self.plans_sum += o.plans as f64;
    }
}

impl Accumulator<MissionOutcome> for SweepAccumulator {
    type Summary = SweepPoint;

    fn push(&mut self, outcome: MissionOutcome) {
        self.push_ref(&outcome);
    }

    fn finish(self) -> SweepPoint {
        let n = self.n;
        let successes = self.successes;
        let mean = |sum: f64| if n == 0 { 0.0 } else { sum / n as f64 };
        SweepPoint {
            n,
            successes,
            success_rate: if n == 0 {
                0.0
            } else {
                successes as f64 / n as f64
            },
            ci: wilson_interval(successes as u64, n as u64),
            avg_steps: if successes == 0 {
                0.0
            } else {
                self.steps_sum / successes as f64
            },
            avg_energy_j: mean(self.energy_sum),
            avg_compute_j: mean(self.compute_sum),
            effective_voltage: mean(self.voltage_sum),
            avg_plans: mean(self.plans_sum),
        }
    }
}

/// The journaled-state size: two `u32` counters plus five `f64` sums.
const SWEEP_STATE_LEN: usize = 4 + 4 + 5 * 8;

/// Serializable fold state for the crash-resumable sweep fabric: the
/// counters and raw sums, little-endian, floats as [`f64::to_bits`] so
/// the encoding is bit-exact. Merging adds counters and sums — the
/// deterministic pairwise fold [`StateAccumulator`] requires.
impl StateAccumulator<MissionOutcome> for SweepAccumulator {
    fn encode_state(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SWEEP_STATE_LEN);
        out.extend_from_slice(&self.n.to_le_bytes());
        out.extend_from_slice(&self.successes.to_le_bytes());
        for sum in [
            self.steps_sum,
            self.energy_sum,
            self.compute_sum,
            self.voltage_sum,
            self.plans_sum,
        ] {
            out.extend_from_slice(&sum.to_bits().to_le_bytes());
        }
        out
    }

    fn decode_state(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() != SWEEP_STATE_LEN {
            return Err(format!(
                "sweep state must be {SWEEP_STATE_LEN} bytes, got {}",
                bytes.len()
            ));
        }
        let u32_at = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let f64_at = |at: usize| {
            f64::from_bits(u64::from_le_bytes(
                bytes[at..at + 8].try_into().expect("8 bytes"),
            ))
        };
        let n = u32_at(0);
        let successes = u32_at(4);
        if successes > n {
            return Err(format!("sweep state has {successes} successes out of {n}"));
        }
        Ok(SweepAccumulator {
            n,
            successes,
            steps_sum: f64_at(8),
            energy_sum: f64_at(16),
            compute_sum: f64_at(24),
            voltage_sum: f64_at(32),
            plans_sum: f64_at(40),
        })
    }

    fn merge_state(&mut self, other: &Self) {
        self.n += other.n;
        self.successes += other.successes;
        self.steps_sum += other.steps_sum;
        self.energy_sum += other.energy_sum;
        self.compute_sum += other.compute_sum;
        self.voltage_sum += other.voltage_sum;
        self.plans_sum += other.plans_sum;
    }
}

/// Number of repetitions per experiment point: defaults to 40 and scales
/// with the `CREATE_REPS` environment variable (the paper uses ≥100; 40
/// gives a ~±15% CI and Table 5 shows convergence by 100). Zero,
/// unparseable or over-`u32` values are rejected with a warning and fall
/// back to the default.
pub fn default_reps() -> u32 {
    clamp_reps(engine::positive_env("CREATE_REPS", 40))
}

/// Rejects rep counts that would truncate when narrowed to `u32`.
fn clamp_reps(reps: usize) -> u32 {
    u32::try_from(reps).unwrap_or_else(|_| {
        eprintln!("[create] ignoring CREATE_REPS={reps}: exceeds u32::MAX; using default 40");
        40
    })
}

/// Shared [`ExperimentPoint::run_batch`] body for the mission cells: a
/// grid cell is a thin client of the same [`MissionSession`] path the
/// resident serving engine (`create-serve`) runs requests through — one
/// session serves every trial of the batch, so the controller and
/// planner inference buffers are allocated once per batch instead of
/// once per trial (outcomes are session-independent, hence
/// bit-identical).
fn run_mission_batch(
    dep: &Deployment,
    task: TaskId,
    config: &CreateConfig,
    seeds: &[u64],
    out: &mut Vec<MissionOutcome>,
) {
    let mut session = MissionSession::new(dep);
    for &seed in seeds {
        out.push(session.run(task, config, seed));
    }
}

/// One `(task, config)` cell of a mission experiment grid.
pub struct GridCell<'a> {
    /// The shared immutable deployment.
    pub dep: &'a Deployment,
    /// Task to run.
    pub task: TaskId,
    /// Technique/error configuration.
    pub config: CreateConfig,
    /// Trials for this cell.
    pub trials: u32,
}

impl ExperimentPoint for GridCell<'_> {
    type Outcome = MissionOutcome;
    type Acc = SweepAccumulator;

    fn trials(&self) -> u32 {
        self.trials
    }

    fn accumulator(&self) -> SweepAccumulator {
        SweepAccumulator::default()
    }

    fn run_trial(&self, _trial: u32, seed: u64) -> MissionOutcome {
        run_trial(self.dep, self.task, &self.config, seed)
    }

    fn run_batch(&self, _first_trial: u32, seeds: &[u64], out: &mut Vec<MissionOutcome>) {
        run_mission_batch(self.dep, self.task, &self.config, seeds, out);
    }
}

/// Runs a whole grid of `(task, config)` cells at `reps` trials each,
/// fanning every trial of every cell across one worker pool, and returns
/// one [`SweepPoint`] per cell in input order.
///
/// This is the bulk entry point the per-figure harnesses use: a BER sweep
/// is one call, not one pool per BER.
pub fn run_config_grid(
    dep: &Deployment,
    cells: impl IntoIterator<Item = (TaskId, CreateConfig)>,
    reps: u32,
    base_seed: u64,
) -> Vec<SweepPoint> {
    engine::run_grid(
        cells.into_iter().map(|(task, config)| GridCell {
            dep,
            task,
            config,
            trials: reps,
        }),
        base_seed,
    )
}

/// A single-cell grid whose raw outcomes are wanted in trial order.
struct RawCell<'a> {
    dep: &'a Deployment,
    task: TaskId,
    config: &'a CreateConfig,
    trials: u32,
}

impl ExperimentPoint for RawCell<'_> {
    type Outcome = MissionOutcome;
    type Acc = CollectAll<MissionOutcome>;

    fn trials(&self) -> u32 {
        self.trials
    }

    fn accumulator(&self) -> CollectAll<MissionOutcome> {
        CollectAll::default()
    }

    fn run_trial(&self, _trial: u32, seed: u64) -> MissionOutcome {
        run_trial(self.dep, self.task, self.config, seed)
    }

    fn run_batch(&self, _first_trial: u32, seeds: &[u64], out: &mut Vec<MissionOutcome>) {
        run_mission_batch(self.dep, self.task, self.config, seeds, out);
    }
}

/// Runs `n` trials of `task` under `config` in parallel and collects the
/// raw outcomes (in trial order, deterministic in `base_seed`).
pub fn run_outcomes(
    dep: &Deployment,
    task: TaskId,
    config: &CreateConfig,
    n: u32,
    base_seed: u64,
) -> Vec<MissionOutcome> {
    engine::run_grid(
        std::iter::once(RawCell {
            dep,
            task,
            config,
            trials: n,
        }),
        base_seed,
    )
    .pop()
    .unwrap_or_default()
}

/// Runs `n` trials and aggregates them into a [`SweepPoint`].
///
/// Seeds match [`run_outcomes`] (same point index 0), so
/// `run_point(..) == SweepPoint::from_outcomes(&run_outcomes(..))`.
pub fn run_point(
    dep: &Deployment,
    task: TaskId,
    config: &CreateConfig,
    n: u32,
    base_seed: u64,
) -> SweepPoint {
    run_point_with(dep, task, config, n, base_seed, &EngineOptions::from_env())
}

/// [`run_point`] with explicit [`EngineOptions`] (used by the determinism
/// tests to pin thread counts without touching the environment).
pub fn run_point_with(
    dep: &Deployment,
    task: TaskId,
    config: &CreateConfig,
    n: u32,
    base_seed: u64,
    options: &EngineOptions,
) -> SweepPoint {
    engine::run_grid_with(
        std::iter::once(GridCell {
            dep,
            task,
            config: config.clone(),
            trials: n,
        }),
        base_seed,
        options,
    )
    .pop()
    .expect("one cell in, one point out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use create_accel::EnergyMeter;

    fn outcome(success: bool, steps: u64) -> MissionOutcome {
        MissionOutcome {
            success,
            steps,
            plans: 1,
            meter: EnergyMeter::new(),
            ldo_switches: 0,
            entropy_trace: vec![],
            predicted_trace: vec![],
            voltage_trace: vec![],
            ad: Default::default(),
            scheme_events: Default::default(),
            entropy_spikes: 0,
        }
    }

    #[test]
    fn aggregation_counts_successes() {
        let outcomes = vec![outcome(true, 100), outcome(false, 300), outcome(true, 200)];
        let p = SweepPoint::from_outcomes(&outcomes);
        assert_eq!(p.n, 3);
        assert_eq!(p.successes, 2);
        assert!((p.success_rate - 2.0 / 3.0).abs() < 1e-9);
        assert!(
            (p.avg_steps - 150.0).abs() < 1e-9,
            "steps only over successes"
        );
    }

    #[test]
    fn empty_outcomes_are_safe() {
        let p = SweepPoint::from_outcomes(&[]);
        assert_eq!(p.n, 0);
        assert_eq!(p.success_rate, 0.0);
        assert_eq!(p.avg_steps, 0.0);
        assert_eq!(p.avg_energy_j, 0.0);
    }

    #[test]
    fn streaming_accumulator_matches_buffered_aggregation() {
        let outcomes: Vec<_> = (0..32).map(|i| outcome(i % 3 != 0, 10 + i)).collect();
        let mut acc = SweepAccumulator::default();
        for o in &outcomes {
            acc.push(o.clone());
        }
        assert_eq!(acc.finish(), SweepPoint::from_outcomes(&outcomes));
    }

    #[test]
    fn sweep_state_round_trips_bit_exactly() {
        let outcomes: Vec<_> = (0..13).map(|i| outcome(i % 4 != 0, 10 + i)).collect();
        let mut acc = SweepAccumulator::default();
        for o in &outcomes {
            acc.push_ref(o);
        }
        let bytes = acc.encode_state();
        let decoded = SweepAccumulator::decode_state(&bytes).expect("decode");
        assert_eq!(decoded.encode_state(), bytes);
        assert_eq!(decoded.finish(), SweepPoint::from_outcomes(&outcomes));
    }

    #[test]
    fn sweep_state_rejects_malformed_bytes() {
        assert!(SweepAccumulator::decode_state(&[]).is_err());
        assert!(SweepAccumulator::decode_state(&[0u8; 47]).is_err());
        // successes > n is structurally impossible from a real fold.
        let mut bytes = SweepAccumulator::default().encode_state();
        bytes[4] = 1;
        assert!(SweepAccumulator::decode_state(&bytes).is_err());
    }

    #[test]
    fn merging_range_states_matches_one_sequential_fold() {
        // Step counts are small integers and the test meter reads zero, so
        // every sum here is exact and the comparison is bit-for-bit.
        let outcomes: Vec<_> = (0..20).map(|i| outcome(i % 3 != 0, 10 + i)).collect();
        let mut merged = SweepAccumulator::default();
        for chunk in outcomes.chunks(7) {
            let mut acc = SweepAccumulator::default();
            for o in chunk {
                acc.push_ref(o);
            }
            let decoded = SweepAccumulator::decode_state(&acc.encode_state()).expect("decode");
            merged.merge_state(&decoded);
        }
        assert_eq!(merged.finish(), SweepPoint::from_outcomes(&outcomes));
    }

    #[test]
    fn ci_brackets_the_rate() {
        let outcomes: Vec<_> = (0..50).map(|i| outcome(i % 5 != 0, 10)).collect();
        let p = SweepPoint::from_outcomes(&outcomes);
        assert!(p.ci.0 <= p.success_rate && p.success_rate <= p.ci.1);
    }

    #[test]
    fn default_reps_reads_env() {
        // No env set in tests: default is 40.
        if std::env::var("CREATE_REPS").is_err() {
            assert_eq!(default_reps(), 40);
        }
    }

    #[test]
    fn reps_beyond_u32_fall_back_instead_of_truncating() {
        assert_eq!(clamp_reps(40), 40);
        assert_eq!(clamp_reps(u32::MAX as usize), u32::MAX);
        #[cfg(target_pointer_width = "64")]
        {
            // 2^32 would silently truncate to 0 trials under a plain `as u32`.
            assert_eq!(clamp_reps(u32::MAX as usize + 1), 40);
        }
    }
}
