//! Model presets: the paper's reference architectures (Tables 4 and 7–9)
//! and the proxy architectures this reproduction trains and deploys.
//!
//! Energy and latency are book-kept at *reference* scale (the proxy
//! executes the math; joules follow Table 4), and the error injector's
//! scale model bridges the proxy/reference size gap (see DESIGN.md).

use create_accel::cycles::ArrayConfig;
use create_accel::InferenceCost;

/// A planner platform (paper Table 7 + Table 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerPreset {
    /// Platform name.
    pub name: &'static str,
    /// Reference layer count.
    pub ref_layers: usize,
    /// Reference hidden dim.
    pub ref_hidden: usize,
    /// Reference MLP dim.
    pub ref_mlp: usize,
    /// Reference parameter count (millions).
    pub ref_params_m: f64,
    /// Reference GOps per inference (INT8, Table 4).
    pub ref_gops: f64,
    /// Representative prefill tokens.
    pub ref_prefill: usize,
    /// Representative decode tokens.
    pub ref_decode: usize,
    /// Proxy layer count.
    pub proxy_layers: usize,
    /// Proxy hidden dim (power of two for Hadamard rotation).
    pub proxy_hidden: usize,
    /// Proxy MLP dim.
    pub proxy_mlp: usize,
    /// Proxy attention heads.
    pub proxy_heads: usize,
    /// Error-injection scale: calibrated so the proxy's failure cliff sits
    /// at the paper's BER (Fig. 5a). See DESIGN.md.
    pub injection_scale: f64,
}

impl PlannerPreset {
    /// JARVIS-1's LLM planner (the primary testbed).
    pub fn jarvis() -> Self {
        Self {
            name: "JARVIS-1",
            ref_layers: 32,
            ref_hidden: 4096,
            ref_mlp: 14336,
            ref_params_m: 7869.0,
            ref_gops: 5344.0,
            ref_prefill: 740,
            ref_decode: 251,
            proxy_layers: 4,
            proxy_hidden: 64,
            proxy_mlp: 256,
            proxy_heads: 4,
            injection_scale: 2500.0,
        }
    }

    /// OpenVLA (LIBERO platform).
    pub fn openvla() -> Self {
        Self {
            name: "OpenVLA",
            ref_layers: 32,
            ref_hidden: 4096,
            ref_mlp: 11008,
            ref_params_m: 6929.0,
            ref_gops: 4595.0,
            ref_prefill: 617,
            ref_decode: 71,
            proxy_layers: 4,
            proxy_hidden: 64,
            proxy_mlp: 224,
            proxy_heads: 4,
            injection_scale: 2500.0,
        }
    }

    /// RoboFlamingo (CALVIN platform).
    pub fn roboflamingo() -> Self {
        Self {
            name: "RoboFlamingo",
            ref_layers: 24,
            ref_hidden: 2048,
            ref_mlp: 8192,
            ref_params_m: 2552.0,
            ref_gops: 2411.0,
            ref_prefill: 505,
            ref_decode: 61,
            proxy_layers: 3,
            proxy_hidden: 64,
            proxy_mlp: 256,
            proxy_heads: 4,
            injection_scale: 2500.0,
        }
    }

    /// Per-inference energy workload at reference scale.
    pub fn inference_cost(&self) -> InferenceCost {
        let macs = self.ref_gops * 1e9 / 2.0;
        let weight_bytes = self.ref_params_m * 1e6; // INT8: 1 byte/param
        InferenceCost::from_workload(macs, weight_bytes, true, 128.0)
    }

    /// Inference latency on the platform (seconds), Table 3 style.
    pub fn latency_s(&self, array: &ArrayConfig) -> f64 {
        array.latency_for_macs(self.ref_gops * 1e9 / 2.0, 0.70)
    }
}

/// A controller platform (paper Table 8 + Table 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerPreset {
    /// Platform name.
    pub name: &'static str,
    /// Reference parameter count (millions).
    pub ref_params_m: f64,
    /// Reference GOps per step (Table 4).
    pub ref_gops: f64,
    /// Reference input image resolution.
    pub ref_image: usize,
    /// Proxy layer count.
    pub proxy_layers: usize,
    /// Proxy hidden dim.
    pub proxy_hidden: usize,
    /// Proxy MLP dim.
    pub proxy_mlp: usize,
    /// Proxy attention heads.
    pub proxy_heads: usize,
    /// Error-injection scale (fraction-faithful by default; see DESIGN.md).
    pub injection_scale: f64,
}

impl ControllerPreset {
    /// JARVIS-1's STEVE-1-style controller.
    pub fn jarvis() -> Self {
        Self {
            name: "JARVIS-1",
            ref_params_m: 61.0,
            ref_gops: 102.0,
            ref_image: 128,
            proxy_layers: 2,
            proxy_hidden: 48,
            proxy_mlp: 128,
            proxy_heads: 4,
            injection_scale: 5.0,
        }
    }

    /// RT-1 (OXE platform).
    pub fn rt1() -> Self {
        Self {
            name: "RT-1",
            ref_params_m: 35.0,
            ref_gops: 78.0,
            ref_image: 224,
            proxy_layers: 2,
            proxy_hidden: 48,
            proxy_mlp: 112,
            proxy_heads: 4,
            injection_scale: 5.0,
        }
    }

    /// Octo (OXE platform).
    pub fn octo() -> Self {
        Self {
            name: "Octo",
            ref_params_m: 27.0,
            ref_gops: 76.0,
            ref_image: 224,
            proxy_layers: 2,
            proxy_hidden: 48,
            proxy_mlp: 96,
            proxy_heads: 4,
            injection_scale: 5.0,
        }
    }

    /// Per-step energy workload at reference scale (weights SRAM-resident).
    pub fn inference_cost(&self) -> InferenceCost {
        let macs = self.ref_gops * 1e9 / 2.0;
        InferenceCost::from_workload(macs, self.ref_params_m * 1e6, false, 48.0)
    }

    /// Inference latency on the platform (seconds).
    pub fn latency_s(&self, array: &ArrayConfig) -> f64 {
        array.latency_for_macs(self.ref_gops * 1e9 / 2.0, 0.40)
    }
}

/// The entropy predictor's reference workload (Table 4: 55 k params,
/// 43 MOps).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictorPreset {
    /// Reference parameter count.
    pub ref_params: f64,
    /// Reference MOps per inference.
    pub ref_mops: f64,
}

impl PredictorPreset {
    /// The paper's Table 9 predictor.
    pub fn paper() -> Self {
        Self {
            ref_params: 55_000.0,
            ref_mops: 43.0,
        }
    }

    /// Per-inference energy workload.
    pub fn inference_cost(&self) -> InferenceCost {
        InferenceCost::from_workload(self.ref_mops * 1e6 / 2.0, self.ref_params, false, 16.0)
    }

    /// Inference latency (seconds).
    pub fn latency_s(&self, array: &ArrayConfig) -> f64 {
        array.latency_for_macs(self.ref_mops * 1e6 / 2.0, 0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jarvis_planner_matches_table4() {
        let p = PlannerPreset::jarvis();
        assert_eq!(p.ref_params_m, 7869.0);
        assert_eq!(p.ref_gops, 5344.0);
        assert!(p.proxy_hidden.is_power_of_two(), "Hadamard needs 2^k");
    }

    #[test]
    fn planner_latency_is_milliseconds_scale() {
        let array = ArrayConfig::default();
        let t = PlannerPreset::jarvis().latency_s(&array);
        assert!(
            (1e-3..100e-3).contains(&t),
            "planner latency should be ms-scale, got {t}"
        );
    }

    #[test]
    fn controller_latency_is_sub_millisecond_scale() {
        let array = ArrayConfig::default();
        let t = ControllerPreset::jarvis().latency_s(&array);
        assert!(
            (0.1e-3..5e-3).contains(&t),
            "controller latency should be ~1 ms, got {t}"
        );
    }

    #[test]
    fn predictor_latency_is_microseconds_scale() {
        let array = ArrayConfig::default();
        let t = PredictorPreset::paper().latency_s(&array);
        assert!(
            (1e-6..100e-6).contains(&t),
            "predictor latency should be µs-scale, got {t}"
        );
    }

    #[test]
    fn latency_ordering_matches_table3() {
        // Planner >> controller >> predictor.
        let array = ArrayConfig::default();
        let tp = PlannerPreset::jarvis().latency_s(&array);
        let tc = ControllerPreset::jarvis().latency_s(&array);
        let te = PredictorPreset::paper().latency_s(&array);
        assert!(tp > 5.0 * tc);
        assert!(tc > 10.0 * te);
    }

    #[test]
    fn controller_presets_differ_in_size() {
        let j = ControllerPreset::jarvis();
        let r = ControllerPreset::rt1();
        let o = ControllerPreset::octo();
        assert!(j.ref_params_m > r.ref_params_m);
        assert!(r.ref_params_m > o.ref_params_m);
    }

    #[test]
    fn planner_energy_dominated_by_compute() {
        let cost = PlannerPreset::jarvis().inference_cost();
        let frac = cost.compute_energy(0.9, create_tensor::Precision::Int8)
            / cost.total_energy(0.9, create_tensor::Precision::Int8);
        assert!((0.55..0.75).contains(&frac), "Fig. 18 band, got {frac}");
    }
}
