//! The RL-style low-level controller: a small pre-LayerNorm transformer
//! (paper Fig. 3, right) that maps a subtask prompt plus the current
//! observation to per-step action logits.
//!
//! The controller is obtained by behaviour cloning the scripted expert of
//! the environments — a close analog of STEVE-1-style training — so its
//! logit entropy genuinely tracks step criticality: near-uniform while
//! roaming (several equally good moves), sharply peaked while chopping,
//! crafting or grasping. That entropy signal is what autonomy-adaptive
//! voltage scaling keys on (Sec. 5.3).

use crate::presets::ControllerPreset;
use crate::vocab::{self};
use create_accel::{Accelerator, Component, LayerCtx, Unit};
use create_env::observe::CELL_TYPES;
use create_env::{Action, Observation, STATUS_DIMS, VIEW_CELLS};
use create_nn::activation::{logits_entropy_with, softmax_rows_in_place};
use create_nn::block::{
    ActivationTap, ControllerBlock, ControllerBlockGrads, QuantControllerBlock,
};
use create_nn::calibrate::{Cal, ControllerBlockCal};
use create_nn::linear::{Linear, LinearGrads, QuantLinear};
use create_nn::norm::{
    layernorm, layernorm_backward_into, layernorm_into, layernorm_with_stats_into,
};
use create_nn::optim::{AdamState, AdamWConfig};
use create_tensor::{Matrix, Precision};
use rand::seq::SliceRandom;
use rand::Rng;

/// Quantization margin for profiled maxima.
pub const QUANT_MARGIN: f32 = 1.25;

/// Dimension of the one-hot view feature (49 cells × 14 types).
pub const VIEW_FEATURES: usize = VIEW_CELLS * CELL_TYPES;

/// Dimension of the compass+status feature.
pub const STAT_FEATURES: usize = 4 + STATUS_DIMS;

/// Sequence layout: `[CLS, subtask, view, status]`.
const N_TOKENS: usize = 4;

/// One behaviour-cloning sample.
#[derive(Debug, Clone)]
pub struct BcSample {
    /// The observation at decision time.
    pub obs: Observation,
    /// The expert's action distribution (soft target).
    pub target: [f32; Action::COUNT],
}

/// Expands an observation's view grid into a one-hot row vector.
pub fn view_one_hot(obs: &Observation) -> Matrix {
    let mut m = Matrix::zeros(1, VIEW_FEATURES);
    view_one_hot_into(obs, &mut m);
    m
}

/// [`view_one_hot`] into a caller-provided matrix (identical values,
/// reused storage — the deployed controller builds this every step).
pub fn view_one_hot_into(obs: &Observation, out: &mut Matrix) {
    out.reset_zeros(1, VIEW_FEATURES);
    for (cell, &id) in obs.view.iter().enumerate() {
        out.set(
            0,
            cell * CELL_TYPES + (id as usize).min(CELL_TYPES - 1),
            1.0,
        );
    }
}

/// Packs compass + status into a row vector.
pub fn stat_vector(obs: &Observation) -> Matrix {
    let mut m = Matrix::zeros(1, STAT_FEATURES);
    stat_vector_into(obs, &mut m);
    m
}

/// [`stat_vector`] into a caller-provided matrix (identical values,
/// reused storage).
pub fn stat_vector_into(obs: &Observation, out: &mut Matrix) {
    out.reset_zeros(1, STAT_FEATURES);
    for (i, &v) in obs.compass.iter().enumerate() {
        out.set(0, i, v);
    }
    for (i, &v) in obs.status.iter().enumerate() {
        out.set(0, 4 + i, v);
    }
}

/// Trainable controller.
#[derive(Debug, Clone)]
pub struct ControllerModel {
    /// View featurizer `(VIEW_FEATURES, d)`.
    pub view_embed: Linear,
    /// Compass/status featurizer `(STAT_FEATURES, d)`.
    pub stat_embed: Linear,
    /// Subtask prompt embedding `(N_SUBTASKS, d)`.
    pub subtask_embed: Matrix,
    /// Learned CLS token `(1, d)`.
    pub cls: Matrix,
    /// Transformer blocks.
    pub blocks: Vec<ControllerBlock>,
    /// Policy head `(d, actions)`.
    pub head: Linear,
}

#[derive(Debug, Default)]
struct ControllerOpt {
    view: AdamState,
    view_b: AdamState,
    stat: AdamState,
    stat_b: AdamState,
    subtask: AdamState,
    cls: AdamState,
    head: AdamState,
    head_b: AdamState,
    blocks: Vec<[AdamState; 8]>,
}

impl ControllerOpt {
    /// Zeroes the moments in place, (re)shaped for `m` — the state of a
    /// freshly built optimizer with the heap buffers kept.
    fn reset_for(&mut self, m: &ControllerModel) {
        let bias_len = |v: &Option<Vec<f32>>| v.as_ref().map(|b| b.len()).unwrap_or(0);
        self.view.reset(m.view_embed.w.len());
        self.view_b.reset(bias_len(&m.view_embed.b));
        self.stat.reset(m.stat_embed.w.len());
        self.stat_b.reset(bias_len(&m.stat_embed.b));
        self.subtask.reset(m.subtask_embed.len());
        self.cls.reset(m.cls.len());
        self.head.reset(m.head.w.len());
        self.head_b.reset(bias_len(&m.head.b));
        self.blocks.resize_with(m.blocks.len(), Default::default);
        for (so, b) in self.blocks.iter_mut().zip(&m.blocks) {
            so[0].reset(b.attn.wq.w.len());
            so[1].reset(b.attn.wk.w.len());
            so[2].reset(b.attn.wv.w.len());
            so[3].reset(b.attn.wo.w.len());
            so[4].reset(b.mlp.fc1.w.len());
            so[5].reset(bias_len(&b.mlp.fc1.b));
            so[6].reset(b.mlp.fc2.w.len());
            so[7].reset(bias_len(&b.mlp.fc2.b));
        }
    }
}

#[derive(Debug, Default)]
struct ControllerGrads {
    view: LinearGrads,
    stat: LinearGrads,
    subtask: Matrix,
    cls: Matrix,
    head: LinearGrads,
    blocks: Vec<ControllerBlockGrads>,
}

impl ControllerGrads {
    /// Zeroes every buffer in place, (re)shaped for `m` (identical
    /// contents to freshly built zero gradients, storage kept).
    fn reset_for(&mut self, m: &ControllerModel) {
        self.view.reset_for(&m.view_embed);
        self.stat.reset_for(&m.stat_embed);
        self.subtask
            .reset_zeros(m.subtask_embed.rows(), m.subtask_embed.cols());
        self.cls.reset_zeros(1, m.cls.cols());
        self.head.reset_for(&m.head);
        self.blocks.resize_with(m.blocks.len(), Default::default);
        for (g, b) in self.blocks.iter_mut().zip(&m.blocks) {
            g.reset_for(b);
        }
    }

    /// Scales every gradient by `s` in place (bit-identical to the
    /// allocating `scale()` copies the optimizer steps used to take).
    fn scale_in_place(&mut self, s: f32) {
        let scale_bias = |b: &mut Option<Vec<f32>>| {
            if let Some(b) = b {
                for v in b.iter_mut() {
                    *v *= s;
                }
            }
        };
        self.view.dw.scale_in_place(s);
        scale_bias(&mut self.view.db);
        self.stat.dw.scale_in_place(s);
        scale_bias(&mut self.stat.db);
        self.subtask.scale_in_place(s);
        self.cls.scale_in_place(s);
        self.head.dw.scale_in_place(s);
        scale_bias(&mut self.head.db);
        for g in &mut self.blocks {
            g.attn.wq.dw.scale_in_place(s);
            g.attn.wk.dw.scale_in_place(s);
            g.attn.wv.dw.scale_in_place(s);
            g.attn.wo.dw.scale_in_place(s);
            g.mlp.fc1.dw.scale_in_place(s);
            scale_bias(&mut g.mlp.fc1.db);
            g.mlp.fc2.dw.scale_in_place(s);
            scale_bias(&mut g.mlp.fc2.db);
        }
    }
}

/// Per-sample forward/backward buffers for one behaviour-cloning step.
/// Fully overwritten before use; one instance serves every sample a
/// worker claims, across every epoch.
#[derive(Debug, Default)]
struct ControllerFwdScratch {
    onehot: Matrix,
    statvec: Matrix,
    view_tok: Matrix,
    stat_tok: Matrix,
    x: Matrix,
    x_next: Matrix,
    caches: Vec<create_nn::block::ControllerBlockCache>,
    block: create_nn::BlockTrainScratch,
    normed: Matrix,
    norm_stats: create_nn::norm::NormStats,
    cls_row: Matrix,
    logits: Matrix,
    probs: Matrix,
    dlogits: Matrix,
    dcls: Matrix,
    dnormed: Matrix,
    dx: Matrix,
    dx_next: Matrix,
    dview: Matrix,
    dstat: Matrix,
}

/// One sample's gradient contribution, captured by a data-parallel
/// worker and folded into the shared [`ControllerGrads`] **in sample
/// order** by the reducing thread.
///
/// The capture is designed so the ordered fold replays, addend for
/// addend, exactly the floating-point additions the sequential loop
/// performs on each shared gradient element (f32 addition is not
/// associative, so this is what makes parallel training bit-identical):
///
/// * weight gradients that the sequential loop adds as one product per
///   sample (`head_dw`, `view_dw`, `stat_dw`) are stored as the *raw
///   GEMM product*, so the fold's `add_assign` is the sequential
///   statement verbatim;
/// * block weight gradients are accumulated into a zeroed per-sample
///   [`ControllerBlockGrads`] by the unchanged nn backward kernels;
///   `0.0 + p` differs from `p` only in the sign of a zero, and adding
///   either to the shared accumulator (which is never `-0.0`: it starts
///   at `+0.0` and IEEE-754 round-to-nearest sums can only produce
///   `-0.0` from two negative zeros) yields bit-identical results;
/// * bias gradients whose per-sample contribution is *several* row adds
///   (`fc1`/`fc2`, fed by `N_TOKENS`-row `dy`s) store the dy rows
///   themselves (`block_dz`, `block_dpre`) and the fold replays the row
///   adds one by one, as do the single-row `dlogits`/`dview`/`dstat`
///   and the cls/subtask rows in `dx01` — the per-sample `blocks`
///   entries keep their bias slots `None` so the nn kernels do not also
///   row-sum a throwaway copy.
#[derive(Debug, Default)]
struct ControllerSampleDelta {
    loss: f32,
    /// Head weight-gradient product `cls_rowᵀ @ dlogits`.
    head_dw: Matrix,
    /// The sample's `1 × Action::COUNT` logit gradient (head-bias row).
    dlogits: Matrix,
    /// Rows 0–1 of the input gradient: the cls and subtask rows.
    dx01: Matrix,
    /// Row 2 of the input gradient (view-featurizer bias row).
    dview: Matrix,
    /// Row 3 of the input gradient (stat-featurizer bias row).
    dstat: Matrix,
    /// View featurizer weight-gradient product `onehotᵀ @ dview`.
    view_dw: Matrix,
    /// Stat featurizer weight-gradient product `statvecᵀ @ dstat`.
    stat_dw: Matrix,
    /// Per-block gradients accumulated from zero by the nn kernels.
    blocks: Vec<ControllerBlockGrads>,
    /// Per block: the incoming `dz` (the `fc2` bias rows).
    block_dz: Vec<Matrix>,
    /// Per block: the `fc1` pre-activation gradient rows.
    block_dpre: Vec<Matrix>,
}

/// Reusable training state for [`ControllerModel::train_with`]: the
/// AdamW moments, the accumulated gradients, the shuffled sample order,
/// one forward/backward scratch per worker thread and one gradient delta
/// per minibatch slot.
///
/// All buffers are value-reset at the start of each training run and
/// fully overwritten during it, so reusing one instance is bit-identical
/// to training with fresh buffers — after a warm-up run, a worker's
/// train step performs **no heap allocation** (pinned by
/// `crates/agents/tests/train_alloc.rs` on the inline single-worker
/// path, which runs the identical per-sample code).
#[derive(Debug, Default)]
pub struct ControllerTrainScratch {
    opt: ControllerOpt,
    grads: ControllerGrads,
    order: Vec<usize>,
    workers: Vec<ControllerFwdScratch>,
    deltas: Vec<ControllerSampleDelta>,
}

impl ControllerModel {
    /// Randomly initialized controller for `preset`'s proxy architecture.
    pub fn new(preset: &ControllerPreset, rng: &mut impl Rng) -> Self {
        let d = preset.proxy_hidden;
        Self {
            view_embed: Linear::new(VIEW_FEATURES, d, true, rng),
            stat_embed: Linear::new(STAT_FEATURES, d, true, rng),
            subtask_embed: Matrix::random_uniform(vocab::N_SUBTASKS, d, 0.5, rng),
            cls: Matrix::random_uniform(1, d, 0.5, rng),
            blocks: (0..preset.proxy_layers)
                .map(|_| ControllerBlock::new(d, preset.proxy_mlp, preset.proxy_heads, rng))
                .collect(),
            head: Linear::new(d, Action::COUNT, true, rng),
        }
    }

    /// Model width.
    pub fn width(&self) -> usize {
        self.cls.cols()
    }

    /// Builds the 4-token input sequence for an observation.
    fn tokens(&self, obs: &Observation) -> Matrix {
        let mut onehot = Matrix::default();
        let mut statvec = Matrix::default();
        let mut view_tok = Matrix::default();
        let mut stat_tok = Matrix::default();
        let mut x = Matrix::default();
        self.tokens_into(
            obs,
            &mut onehot,
            &mut statvec,
            &mut view_tok,
            &mut stat_tok,
            &mut x,
        );
        x
    }

    /// [`tokens`](Self::tokens) into caller-provided buffers — the single
    /// home of the `[CLS, subtask, view, status]` layout on the f32 path
    /// (the quantized deployment has its own accelerator-typed copy in
    /// [`QuantController::logits_with`]).
    fn tokens_into(
        &self,
        obs: &Observation,
        onehot: &mut Matrix,
        statvec: &mut Matrix,
        view_tok: &mut Matrix,
        stat_tok: &mut Matrix,
        x: &mut Matrix,
    ) {
        let d = self.width();
        view_one_hot_into(obs, onehot);
        self.view_embed.forward_into(onehot, view_tok);
        stat_vector_into(obs, statvec);
        self.stat_embed.forward_into(statvec, stat_tok);
        x.reset_zeros(N_TOKENS, d);
        for c in 0..d {
            x.set(0, c, self.cls.get(0, c));
            x.set(1, c, self.subtask_embed.get(obs.subtask_token, c));
            x.set(2, c, view_tok.get(0, c));
            x.set(3, c, stat_tok.get(0, c));
        }
    }

    /// Action logits in f32.
    pub fn logits(&self, obs: &Observation) -> Vec<f32> {
        let mut x = self.tokens(obs);
        for block in &self.blocks {
            let (z, _) = block.forward(&x);
            x = z;
        }
        let normed = layernorm(&x);
        let cls = normed.rows_range(0, 1);
        self.head.forward(&cls).row(0).to_vec()
    }

    /// One BC sample: cross-entropy against the expert's soft
    /// distribution, captured into a per-sample [`ControllerSampleDelta`]
    /// instead of shared gradient accumulators — the data-parallel worker
    /// half of the train step. [`fold_sample_delta`](Self::fold_sample_delta)
    /// applies the capture to the shared gradients in sample order;
    /// together they are bit-identical to the historical sequential
    /// accumulation (pinned by the `train_matches_allocating_reference`
    /// test below).
    ///
    /// Every temporary lives in `fwd` or `delta` (value-reset before
    /// use), so a warmed-up call allocates nothing.
    fn backprop_sample_delta(
        &self,
        sample: &BcSample,
        delta: &mut ControllerSampleDelta,
        fwd: &mut ControllerFwdScratch,
    ) {
        let d = self.width();
        self.tokens_into(
            &sample.obs,
            &mut fwd.onehot,
            &mut fwd.statvec,
            &mut fwd.view_tok,
            &mut fwd.stat_tok,
            &mut fwd.x,
        );
        fwd.caches.resize_with(self.blocks.len(), Default::default);
        delta
            .blocks
            .resize_with(self.blocks.len(), Default::default);
        delta
            .block_dz
            .resize_with(self.blocks.len(), Matrix::default);
        delta
            .block_dpre
            .resize_with(self.blocks.len(), Matrix::default);
        for (g, b) in delta.blocks.iter_mut().zip(&self.blocks) {
            // Like `reset_for`, but the per-sample fc1/fc2 bias slots
            // stay `None`: the fold replays the bias rows from
            // `block_dz`/`block_dpre` (it must, for bit-identity), so
            // letting `accumulate_grads` also row-sum them into the
            // delta would be pure throwaway work on the hot path. The
            // attention projections are bias-free, so their `reset_for`
            // never creates a bias slot either.
            g.attn.reset_for(&b.attn);
            g.mlp
                .fc1
                .dw
                .reset_zeros(b.mlp.fc1.w.rows(), b.mlp.fc1.w.cols());
            g.mlp
                .fc2
                .dw
                .reset_zeros(b.mlp.fc2.w.rows(), b.mlp.fc2.w.cols());
            debug_assert!(g.mlp.fc1.db.is_none() && g.mlp.fc2.db.is_none());
        }
        {
            let ControllerFwdScratch {
                x,
                x_next,
                caches,
                block,
                ..
            } = fwd;
            for (l, blk) in self.blocks.iter().enumerate() {
                blk.forward_cached(x, &mut caches[l], block, x_next);
                std::mem::swap(x, x_next);
            }
        }
        layernorm_with_stats_into(&fwd.x, &mut fwd.normed, &mut fwd.norm_stats);
        fwd.normed.rows_range_into(0, 1, &mut fwd.cls_row);
        self.head.forward_into(&fwd.cls_row, &mut fwd.logits);
        fwd.probs.copy_from(&fwd.logits);
        softmax_rows_in_place(&mut fwd.probs);
        let mut loss = 0.0;
        fwd.dlogits.reset_zeros(1, Action::COUNT);
        for a in 0..Action::COUNT {
            let t = sample.target[a];
            if t > 0.0 {
                loss -= t * fwd.probs.get(0, a).max(1e-9).ln();
            }
            fwd.dlogits.set(0, a, fwd.probs.get(0, a) - t);
        }
        // Head: capture the raw weight-gradient product and the bias row;
        // `dcls` is the same input gradient `Linear::backward_with`
        // computes.
        fwd.cls_row.matmul_tn_into(&fwd.dlogits, &mut delta.head_dw);
        delta.dlogits.copy_from(&fwd.dlogits);
        fwd.dlogits.matmul_nt_into(&self.head.w, &mut fwd.dcls);
        // Scatter the CLS gradient into the full normed matrix.
        fwd.dnormed.reset_zeros(N_TOKENS, d);
        for c in 0..d {
            fwd.dnormed.set(0, c, fwd.dcls.get(0, c));
        }
        layernorm_backward_into(&fwd.normed, &fwd.norm_stats, &fwd.dnormed, &mut fwd.dx);
        {
            let ControllerFwdScratch {
                dx,
                dx_next,
                caches,
                block,
                ..
            } = fwd;
            for l in (0..self.blocks.len()).rev() {
                // `dx` is the dy the block feeds to `mlp.fc2`; `dpre` is
                // what it feeds to `mlp.fc1` — snapshot both so the fold
                // can replay their bias-row adds exactly.
                delta.block_dz[l].copy_from(dx);
                self.blocks[l].backward_with(&caches[l], dx, &mut delta.blocks[l], block, dx_next);
                delta.block_dpre[l].copy_from(block.relu_fc1_dy());
                std::mem::swap(dx, dx_next);
            }
        }
        // Token gradients: keep the cls/subtask rows for the fold.
        fwd.dx.rows_range_into(0, 2, &mut delta.dx01);
        fwd.dx.rows_range_into(2, 3, &mut fwd.dview);
        fwd.dx.rows_range_into(3, 4, &mut fwd.dstat);
        // The featurizers' input gradient is never consumed, so only the
        // parameter-gradient products are captured (the allocating form
        // computed and discarded `dx`, which no observable state saw).
        fwd.onehot.matmul_tn_into(&fwd.dview, &mut delta.view_dw);
        delta.dview.copy_from(&fwd.dview);
        fwd.statvec.matmul_tn_into(&fwd.dstat, &mut delta.stat_dw);
        delta.dstat.copy_from(&fwd.dstat);
        delta.loss = loss;
    }

    /// Folds one captured sample delta into the shared gradients,
    /// replaying the sequential loop's additions addend for addend (see
    /// [`ControllerSampleDelta`]); returns the sample's loss. Called in
    /// sample order by the reducing thread.
    fn fold_sample_delta(
        &self,
        sample: &BcSample,
        delta: &ControllerSampleDelta,
        grads: &mut ControllerGrads,
    ) -> f32 {
        let add_rows = |db: &mut Option<Vec<f32>>, dy: &Matrix| {
            if let Some(db) = db.as_mut() {
                for r in 0..dy.rows() {
                    for (g, v) in db.iter_mut().zip(dy.row(r)) {
                        *g += v;
                    }
                }
            }
        };
        grads.head.dw.add_assign(&delta.head_dw);
        add_rows(&mut grads.head.db, &delta.dlogits);
        for l in (0..self.blocks.len()).rev() {
            let g = &delta.blocks[l];
            let sh = &mut grads.blocks[l];
            sh.mlp.fc2.dw.add_assign(&g.mlp.fc2.dw);
            add_rows(&mut sh.mlp.fc2.db, &delta.block_dz[l]);
            sh.mlp.fc1.dw.add_assign(&g.mlp.fc1.dw);
            add_rows(&mut sh.mlp.fc1.db, &delta.block_dpre[l]);
            sh.attn.wo.dw.add_assign(&g.attn.wo.dw);
            sh.attn.wq.dw.add_assign(&g.attn.wq.dw);
            sh.attn.wk.dw.add_assign(&g.attn.wk.dw);
            sh.attn.wv.dw.add_assign(&g.attn.wv.dw);
        }
        let d = self.width();
        let st = sample.obs.subtask_token;
        for c in 0..d {
            grads
                .cls
                .set(0, c, grads.cls.get(0, c) + delta.dx01.get(0, c));
            grads
                .subtask
                .set(st, c, grads.subtask.get(st, c) + delta.dx01.get(1, c));
        }
        grads.view.dw.add_assign(&delta.view_dw);
        add_rows(&mut grads.view.db, &delta.dview);
        grads.stat.dw.add_assign(&delta.stat_dw);
        add_rows(&mut grads.stat.db, &delta.dstat);
        delta.loss
    }

    /// Behaviour-clones the expert dataset; returns the final epoch's mean
    /// loss.
    pub fn train(
        &mut self,
        samples: &[BcSample],
        epochs: usize,
        lr: f32,
        rng: &mut impl Rng,
    ) -> f32 {
        self.train_with(
            samples,
            epochs,
            lr,
            rng,
            &mut ControllerTrainScratch::default(),
        )
    }

    /// [`train`](Self::train) with caller-provided training scratch,
    /// data-parallel over the `CREATE_THREADS` worker pool (see
    /// [`train_with_threads`](Self::train_with_threads)).
    ///
    /// Bit-identical to `train` (the scratch is value-reset up front):
    /// same RNG draw order, same losses, same final weights. Reusing one
    /// scratch across runs keeps the steady-state train step free of heap
    /// allocation — AdamW moments, gradient accumulators and every
    /// forward/backward temporary live in `scratch` and survive across
    /// epochs.
    pub fn train_with(
        &mut self,
        samples: &[BcSample],
        epochs: usize,
        lr: f32,
        rng: &mut impl Rng,
        scratch: &mut ControllerTrainScratch,
    ) -> f32 {
        self.train_with_threads(
            samples,
            epochs,
            lr,
            rng,
            create_tensor::par::default_threads(),
            scratch,
        )
    }

    /// [`train_with`](Self::train_with) with an explicit worker count.
    ///
    /// Spawns one persistent [`create_tensor::par::WorkerPool`] for the
    /// whole call — workers park on a condvar between minibatch chunks
    /// instead of being spawned and joined per chunk, removing the
    /// ~10%-of-a-train-step thread-churn overhead the committed baselines
    /// measured. With `threads == 1` the pool runs inline on the calling
    /// thread and no threads are spawned.
    pub fn train_with_threads(
        &mut self,
        samples: &[BcSample],
        epochs: usize,
        lr: f32,
        rng: &mut impl Rng,
        threads: usize,
        scratch: &mut ControllerTrainScratch,
    ) -> f32 {
        let mut pool = create_tensor::par::WorkerPool::new(threads);
        self.train_with_mapper(samples, epochs, lr, rng, &mut pool, scratch)
    }

    /// [`train_with_threads`](Self::train_with_threads) with an explicit
    /// chunk-fan-out strategy (any [`MinibatchMap`]): the persistent
    /// [`WorkerPool`](create_tensor::par::WorkerPool) in production, or
    /// [`SpawnPerChunk`](create_tensor::par::SpawnPerChunk) when the
    /// `train` bench measures the pool against the old behaviour.
    ///
    /// Each minibatch fans its per-sample forward/backward passes over
    /// the mapper's workers; each worker owns one
    /// [`ControllerFwdScratch`] and writes one [`ControllerSampleDelta`]
    /// per sample, and the deltas are folded into the shared gradients
    /// **in sample order** before the AdamW step. The fold replays the
    /// sequential loop's additions exactly, so losses and final weights
    /// are **bit-identical for every mapper and worker count** (pinned by
    /// the thread-parity test below and by
    /// `train_matches_allocating_reference_bit_for_bit` against the
    /// pre-refactor loop).
    pub fn train_with_mapper(
        &mut self,
        samples: &[BcSample],
        epochs: usize,
        lr: f32,
        rng: &mut impl Rng,
        mapper: &mut impl create_tensor::par::MinibatchMap,
        scratch: &mut ControllerTrainScratch,
    ) -> f32 {
        let cfg = AdamWConfig {
            lr,
            weight_decay: 1e-4,
            ..AdamWConfig::default()
        };
        let ControllerTrainScratch {
            opt,
            grads,
            order,
            workers,
            deltas,
        } = scratch;
        opt.reset_for(self);
        order.clear();
        order.extend(0..samples.len());
        let batch = 32usize;
        workers.resize_with(mapper.workers(), Default::default);
        deltas.resize_with(batch.min(samples.len().max(1)), Default::default);
        let mut step = 0u64;
        let mut last = f32::INFINITY;
        for _ in 0..epochs {
            order.shuffle(rng);
            let mut epoch_loss = 0.0;
            for chunk in order.chunks(batch) {
                grads.reset_for(self);
                let model = &*self;
                let slots = &mut deltas[..chunk.len()];
                mapper.map(slots, workers, |pos, delta, fwd| {
                    model.backprop_sample_delta(&samples[chunk[pos]], delta, fwd);
                });
                for (delta, &i) in slots.iter().zip(chunk) {
                    epoch_loss += model.fold_sample_delta(&samples[i], delta, grads);
                }
                grads.scale_in_place(1.0 / chunk.len() as f32);
                step += 1;
                opt.view
                    .step_matrix(&mut self.view_embed.w, &grads.view.dw, &cfg, step);
                step_bias(
                    &mut opt.view_b,
                    &mut self.view_embed.b,
                    &grads.view.db,
                    &cfg,
                    step,
                );
                opt.stat
                    .step_matrix(&mut self.stat_embed.w, &grads.stat.dw, &cfg, step);
                step_bias(
                    &mut opt.stat_b,
                    &mut self.stat_embed.b,
                    &grads.stat.db,
                    &cfg,
                    step,
                );
                opt.subtask
                    .step_matrix(&mut self.subtask_embed, &grads.subtask, &cfg, step);
                opt.cls.step_matrix(&mut self.cls, &grads.cls, &cfg, step);
                opt.head
                    .step_matrix(&mut self.head.w, &grads.head.dw, &cfg, step);
                step_bias(
                    &mut opt.head_b,
                    &mut self.head.b,
                    &grads.head.db,
                    &cfg,
                    step,
                );
                for (l, b) in self.blocks.iter_mut().enumerate() {
                    let g = &grads.blocks[l];
                    let so = &mut opt.blocks[l];
                    so[0].step_matrix(&mut b.attn.wq.w, &g.attn.wq.dw, &cfg, step);
                    so[1].step_matrix(&mut b.attn.wk.w, &g.attn.wk.dw, &cfg, step);
                    so[2].step_matrix(&mut b.attn.wv.w, &g.attn.wv.dw, &cfg, step);
                    so[3].step_matrix(&mut b.attn.wo.w, &g.attn.wo.dw, &cfg, step);
                    so[4].step_matrix(&mut b.mlp.fc1.w, &g.mlp.fc1.dw, &cfg, step);
                    step_bias(&mut so[5], &mut b.mlp.fc1.b, &g.mlp.fc1.db, &cfg, step);
                    so[6].step_matrix(&mut b.mlp.fc2.w, &g.mlp.fc2.dw, &cfg, step);
                    step_bias(&mut so[7], &mut b.mlp.fc2.b, &g.mlp.fc2.db, &cfg, step);
                }
            }
            last = epoch_loss / samples.len() as f32;
        }
        last
    }

    /// Fraction of samples where the model's argmax action is one of the
    /// expert's optimal actions (the expert distribution is uniform over
    /// ties, so any maximal-probability action counts as correct).
    pub fn agreement(&self, samples: &[BcSample]) -> f32 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut hits = 0usize;
        for s in samples {
            let logits = self.logits(&s.obs);
            let got = argmax(&logits);
            let best = s.target.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            if s.target[got] >= best - 1e-3 {
                hits += 1;
            }
        }
        hits as f32 / samples.len() as f32
    }

    /// Calibrates on `samples` and quantizes for deployment.
    pub fn deploy(&self, samples: &[BcSample], precision: Precision) -> QuantController {
        let mut block_cals = vec![ControllerBlockCal::default(); self.blocks.len()];
        let mut view_cal = Cal::default();
        let mut stat_cal = Cal::default();
        let mut head_cal = Cal::default();
        for s in samples {
            let vh = view_one_hot(&s.obs);
            let vt = self.view_embed.forward(&vh);
            view_cal.update(1.0, vt.max_abs());
            let sv = stat_vector(&s.obs);
            let st = self.stat_embed.forward(&sv);
            stat_cal.update(sv.max_abs(), st.max_abs());
            let mut x = self.tokens(&s.obs);
            for (l, block) in self.blocks.iter().enumerate() {
                x = block.forward_calibrate(&x, &mut block_cals[l]);
            }
            let normed = layernorm(&x);
            let cls = normed.rows_range(0, 1);
            let logits = self.head.forward(&cls);
            head_cal.update(cls.max_abs(), logits.max_abs());
        }
        QuantController {
            view_embed: QuantLinear::from_calibrated(
                &self.view_embed,
                view_cal.input,
                view_cal.output,
                QUANT_MARGIN,
                precision,
            ),
            stat_embed: QuantLinear::from_calibrated(
                &self.stat_embed,
                stat_cal.input,
                stat_cal.output,
                QUANT_MARGIN,
                precision,
            ),
            subtask_embed: self.subtask_embed.clone(),
            cls: self.cls.clone(),
            blocks: self
                .blocks
                .iter()
                .zip(&block_cals)
                .map(|(b, cal)| {
                    QuantControllerBlock::from_block_cal(b, cal, QUANT_MARGIN, precision)
                })
                .collect(),
            head: QuantLinear::from_calibrated(
                &self.head,
                head_cal.input,
                head_cal.output,
                QUANT_MARGIN,
                precision,
            ),
        }
    }
}

fn step_bias(
    state: &mut AdamState,
    bias: &mut Option<Vec<f32>>,
    grad: &Option<Vec<f32>>,
    cfg: &AdamWConfig,
    step: u64,
) {
    // The gradient arrives pre-scaled (`ControllerGrads::scale_in_place`),
    // so the step borrows it directly — no per-step allocation.
    if let (Some(b), Some(g)) = (bias.as_mut(), grad.as_ref()) {
        state.step(b, g, cfg, step);
    }
}

/// Reusable buffers for the deployed controller's per-step inference.
///
/// The mission runner holds one of these per trial and reuses it across
/// every environment step (and, with engine trial batching, across the
/// trials of a batch), so the steady-state `act` path performs no heap
/// allocation. Contents never influence results — every buffer is fully
/// overwritten before use.
#[derive(Debug, Default)]
pub struct ControllerScratch {
    onehot: Matrix,
    statvec: Matrix,
    view_tok: Matrix,
    stat_tok: Matrix,
    x: Matrix,
    x_next: Matrix,
    block: create_nn::QuantControllerBlockScratch,
    normed: Matrix,
    cls_row: Matrix,
    logits: Matrix,
    probs: Matrix,
}

/// Deployed, quantized controller executing on the accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantController {
    view_embed: QuantLinear,
    stat_embed: QuantLinear,
    subtask_embed: Matrix,
    cls: Matrix,
    blocks: Vec<QuantControllerBlock>,
    head: QuantLinear,
}

impl QuantController {
    /// Number of transformer blocks.
    pub fn depth(&self) -> usize {
        self.blocks.len()
    }

    /// Visits every stored INT8 weight matrix in deployment order.
    ///
    /// This is the hook for the memory-resilience extension: the SRAM
    /// fault model perturbs the deployed codes in place, exactly as a
    /// retention failure in the weight buffer would. The f32 embedding
    /// tables are excluded — on the modeled platform only GEMM weights
    /// live in the voltage-scaled SRAM banks.
    pub fn visit_weights_mut(&mut self, mut f: impl FnMut(&mut create_tensor::QuantMatrix)) {
        f(self.view_embed.weight_mut());
        f(self.stat_embed.weight_mut());
        for b in &mut self.blocks {
            f(b.attn.wq.weight_mut());
            f(b.attn.wk.weight_mut());
            f(b.attn.wv.weight_mut());
            f(b.attn.wo.weight_mut());
            f(b.fc1.weight_mut());
            f(b.fc2.weight_mut());
        }
        f(self.head.weight_mut());
    }

    /// Action logits on the accelerator; optionally taps pre-norm
    /// activations.
    pub fn logits(
        &self,
        accel: &mut Accelerator,
        obs: &Observation,
        tap: Option<&mut ActivationTap>,
    ) -> Vec<f32> {
        let mut scratch = ControllerScratch::default();
        self.logits_with(accel, obs, tap, &mut scratch)
    }

    /// [`logits`](Self::logits) with caller-provided scratch buffers —
    /// bit-identical, and allocation-free except for the returned vector.
    pub fn logits_with(
        &self,
        accel: &mut Accelerator,
        obs: &Observation,
        tap: Option<&mut ActivationTap>,
        scratch: &mut ControllerScratch,
    ) -> Vec<f32> {
        self.logits_into(accel, obs, tap, scratch);
        scratch.logits.row(0).to_vec()
    }

    /// Runs the stack, leaving the logits in `scratch.logits` (1 ×
    /// `Action::COUNT`). Everything, including the output, lives in
    /// reused storage.
    fn logits_into(
        &self,
        accel: &mut Accelerator,
        obs: &Observation,
        mut tap: Option<&mut ActivationTap>,
        scratch: &mut ControllerScratch,
    ) {
        let d = self.cls.cols();
        view_one_hot_into(obs, &mut scratch.onehot);
        self.view_embed.forward_into(
            accel,
            &scratch.onehot,
            LayerCtx::new(Unit::Controller, Component::Embed, 0),
            &mut scratch.view_tok,
        );
        stat_vector_into(obs, &mut scratch.statvec);
        self.stat_embed.forward_into(
            accel,
            &scratch.statvec,
            LayerCtx::new(Unit::Controller, Component::Embed, 0),
            &mut scratch.stat_tok,
        );
        scratch.x.reset_zeros(N_TOKENS, d);
        for c in 0..d {
            scratch.x.set(0, c, self.cls.get(0, c));
            scratch
                .x
                .set(1, c, self.subtask_embed.get(obs.subtask_token, c));
            scratch.x.set(2, c, scratch.view_tok.get(0, c));
            scratch.x.set(3, c, scratch.stat_tok.get(0, c));
        }
        let ControllerScratch {
            x, x_next, block, ..
        } = scratch;
        for (l, blk) in self.blocks.iter().enumerate() {
            blk.forward_into(accel, x, l, tap.as_deref_mut(), block, x_next);
            std::mem::swap(x, x_next);
        }
        layernorm_into(&scratch.x, &mut scratch.normed);
        scratch.normed.rows_range_into(0, 1, &mut scratch.cls_row);
        self.head.forward_into(
            accel,
            &scratch.cls_row,
            LayerCtx::new(Unit::Controller, Component::Head, self.blocks.len()),
            &mut scratch.logits,
        );
    }

    /// Samples an action from `softmax(logits / temperature)`.
    ///
    /// Returns `(action, entropy_of_logits)` — the entropy is the paper's
    /// step-criticality indicator, computed at temperature 1.
    pub fn act(
        &self,
        accel: &mut Accelerator,
        obs: &Observation,
        temperature: f32,
        rng: &mut impl Rng,
    ) -> (Action, f32) {
        let mut scratch = ControllerScratch::default();
        self.act_with(accel, obs, temperature, rng, &mut scratch)
    }

    /// [`act`](Self::act) with caller-provided scratch buffers —
    /// bit-identical action, entropy and RNG consumption, zero
    /// steady-state allocation.
    pub fn act_with(
        &self,
        accel: &mut Accelerator,
        obs: &Observation,
        temperature: f32,
        rng: &mut impl Rng,
        scratch: &mut ControllerScratch,
    ) -> (Action, f32) {
        self.logits_into(accel, obs, None, scratch);
        let entropy = logits_entropy_with(&scratch.logits, &mut scratch.probs);
        scratch.probs.copy_from(&scratch.logits);
        let temp = temperature.max(1e-3);
        for v in scratch.probs.as_mut_slice().iter_mut() {
            *v /= temp;
        }
        softmax_rows_in_place(&mut scratch.probs);
        let mut r: f32 = rng.random_range(0.0..1.0);
        let mut action = Action::Wait;
        for (i, &p) in scratch.probs.row(0).iter().enumerate() {
            if r < p {
                action = Action::from_index(i);
                break;
            }
            r -= p;
        }
        (action, entropy)
    }

    /// Pre-sizes `scratch` for this model by running one clean inference
    /// on an empty observation through a throwaway error-free
    /// accelerator, so the first real request pays no buffer growth — a
    /// serving worker warms its session before admission opens. Scratch
    /// contents never influence outcomes, so warming cannot change any
    /// subsequent result.
    pub fn warm(&self, scratch: &mut ControllerScratch) {
        let mut accel = Accelerator::new(create_accel::AccelConfig::default(), 0);
        self.logits_into(&mut accel, &Observation::empty(), None, scratch);
        // `act_with` also touches the sampling buffer.
        let _ = logits_entropy_with(&scratch.logits, &mut scratch.probs);
    }
}

fn argmax(values: &[f32]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;
    use create_env::TaskId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_preset() -> ControllerPreset {
        ControllerPreset {
            proxy_layers: 1,
            proxy_hidden: 32,
            proxy_mlp: 64,
            proxy_heads: 4,
            ..ControllerPreset::jarvis()
        }
    }

    #[test]
    fn logits_have_action_dimension() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = ControllerModel::new(&tiny_preset(), &mut rng);
        let obs = Observation::empty();
        assert_eq!(model.logits(&obs).len(), Action::COUNT);
    }

    /// The pre-refactor *training loop*, kept verbatim as the reference
    /// the scratch-threaded `train_with` must reproduce bit for bit
    /// (same RNG draw order, same losses, same final weights). This pins
    /// the loop-level refactor (scratch reuse, grads reset/scale,
    /// optimizer stepping); the shared nn kernels it calls are pinned
    /// against frozen pre-refactor copies in
    /// `crates/nn/tests/legacy_parity.rs`.
    fn train_allocating_reference(
        model: &mut ControllerModel,
        samples: &[BcSample],
        epochs: usize,
        lr: f32,
        rng: &mut impl Rng,
    ) -> f32 {
        use create_nn::norm::{layernorm_backward, layernorm_with_stats};
        use create_nn::softmax_rows;
        let backprop = |model: &ControllerModel, sample: &BcSample, grads: &mut ControllerGrads| {
            let x0 = model.tokens(&sample.obs);
            let mut x = x0.clone();
            let mut caches = Vec::with_capacity(model.blocks.len());
            for block in &model.blocks {
                let (z, cache) = block.forward(&x);
                caches.push(cache);
                x = z;
            }
            let (normed, norm_stats) = layernorm_with_stats(&x);
            let cls = normed.rows_range(0, 1);
            let logits_m = model.head.forward(&cls);
            let probs = softmax_rows(&logits_m);
            let mut loss = 0.0;
            let mut dlogits = Matrix::zeros(1, Action::COUNT);
            for a in 0..Action::COUNT {
                let t = sample.target[a];
                if t > 0.0 {
                    loss -= t * probs.get(0, a).max(1e-9).ln();
                }
                dlogits.set(0, a, probs.get(0, a) - t);
            }
            let dcls = model.head.backward(&cls, &dlogits, &mut grads.head);
            let mut dnormed = Matrix::zeros(N_TOKENS, model.width());
            for c in 0..model.width() {
                dnormed.set(0, c, dcls.get(0, c));
            }
            let mut dx = layernorm_backward(&normed, &norm_stats, &dnormed);
            for l in (0..model.blocks.len()).rev() {
                dx = model.blocks[l].backward(&caches[l], &dx, &mut grads.blocks[l]);
            }
            let d = model.width();
            for c in 0..d {
                grads.cls.set(0, c, grads.cls.get(0, c) + dx.get(0, c));
                let st = sample.obs.subtask_token;
                grads
                    .subtask
                    .set(st, c, grads.subtask.get(st, c) + dx.get(1, c));
            }
            let dview = dx.rows_range(2, 3);
            let dstat = dx.rows_range(3, 4);
            model
                .view_embed
                .backward(&view_one_hot(&sample.obs), &dview, &mut grads.view);
            model
                .stat_embed
                .backward(&stat_vector(&sample.obs), &dstat, &mut grads.stat);
            loss
        };
        let step_bias_scaled = |state: &mut AdamState,
                                bias: &mut Option<Vec<f32>>,
                                grad: &Option<Vec<f32>>,
                                s: f32,
                                cfg: &AdamWConfig,
                                step: u64| {
            if let (Some(b), Some(g)) = (bias.as_mut(), grad.as_ref()) {
                let scaled: Vec<f32> = g.iter().map(|v| v * s).collect();
                state.step(b, &scaled, cfg, step);
            }
        };
        let cfg = AdamWConfig {
            lr,
            weight_decay: 1e-4,
            ..AdamWConfig::default()
        };
        let mut opt = ControllerOpt::default();
        opt.reset_for(model);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let batch = 32usize;
        let mut step = 0u64;
        let mut last = f32::INFINITY;
        for _ in 0..epochs {
            order.shuffle(rng);
            let mut epoch_loss = 0.0;
            for chunk in order.chunks(batch) {
                let mut grads = ControllerGrads::default();
                grads.reset_for(model);
                for &i in chunk {
                    epoch_loss += backprop(model, &samples[i], &mut grads);
                }
                let s = 1.0 / chunk.len() as f32;
                step += 1;
                opt.view
                    .step_matrix(&mut model.view_embed.w, &grads.view.dw.scale(s), &cfg, step);
                step_bias_scaled(
                    &mut opt.view_b,
                    &mut model.view_embed.b,
                    &grads.view.db,
                    s,
                    &cfg,
                    step,
                );
                opt.stat
                    .step_matrix(&mut model.stat_embed.w, &grads.stat.dw.scale(s), &cfg, step);
                step_bias_scaled(
                    &mut opt.stat_b,
                    &mut model.stat_embed.b,
                    &grads.stat.db,
                    s,
                    &cfg,
                    step,
                );
                opt.subtask.step_matrix(
                    &mut model.subtask_embed,
                    &grads.subtask.scale(s),
                    &cfg,
                    step,
                );
                opt.cls
                    .step_matrix(&mut model.cls, &grads.cls.scale(s), &cfg, step);
                opt.head
                    .step_matrix(&mut model.head.w, &grads.head.dw.scale(s), &cfg, step);
                step_bias_scaled(
                    &mut opt.head_b,
                    &mut model.head.b,
                    &grads.head.db,
                    s,
                    &cfg,
                    step,
                );
                for (l, b) in model.blocks.iter_mut().enumerate() {
                    let g = &grads.blocks[l];
                    let so = &mut opt.blocks[l];
                    so[0].step_matrix(&mut b.attn.wq.w, &g.attn.wq.dw.scale(s), &cfg, step);
                    so[1].step_matrix(&mut b.attn.wk.w, &g.attn.wk.dw.scale(s), &cfg, step);
                    so[2].step_matrix(&mut b.attn.wv.w, &g.attn.wv.dw.scale(s), &cfg, step);
                    so[3].step_matrix(&mut b.attn.wo.w, &g.attn.wo.dw.scale(s), &cfg, step);
                    so[4].step_matrix(&mut b.mlp.fc1.w, &g.mlp.fc1.dw.scale(s), &cfg, step);
                    step_bias_scaled(&mut so[5], &mut b.mlp.fc1.b, &g.mlp.fc1.db, s, &cfg, step);
                    so[6].step_matrix(&mut b.mlp.fc2.w, &g.mlp.fc2.dw.scale(s), &cfg, step);
                    step_bias_scaled(&mut so[7], &mut b.mlp.fc2.b, &g.mlp.fc2.db, s, &cfg, step);
                }
            }
            last = epoch_loss / samples.len() as f32;
        }
        last
    }

    #[test]
    fn train_matches_allocating_reference_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(12);
        let base = ControllerModel::new(&tiny_preset(), &mut rng);
        let samples = datasets::collect_bc(&[TaskId::Log], 1, 120, 0.05, 13);
        let mut scratch_model = base.clone();
        let mut ref_model = base.clone();
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        // Reuse one (dirtied) scratch across two runs to also pin that
        // scratch reuse cannot leak state between trainings.
        let mut scratch = ControllerTrainScratch::default();
        let _ = scratch_model.clone().train_with(
            &samples[..40],
            1,
            2e-3,
            &mut rng_a.clone(),
            &mut scratch,
        );
        let loss_a = scratch_model.train_with(&samples, 2, 2e-3, &mut rng_a, &mut scratch);
        let loss_b = train_allocating_reference(&mut ref_model, &samples, 2, 2e-3, &mut rng_b);
        assert_eq!(loss_a.to_bits(), loss_b.to_bits(), "losses must match");
        assert_eq!(scratch_model.view_embed.w, ref_model.view_embed.w);
        assert_eq!(scratch_model.view_embed.b, ref_model.view_embed.b);
        assert_eq!(scratch_model.stat_embed.w, ref_model.stat_embed.w);
        assert_eq!(scratch_model.subtask_embed, ref_model.subtask_embed);
        assert_eq!(scratch_model.cls, ref_model.cls);
        assert_eq!(scratch_model.head.w, ref_model.head.w);
        assert_eq!(scratch_model.head.b, ref_model.head.b);
        for (a, b) in scratch_model.blocks.iter().zip(&ref_model.blocks) {
            assert_eq!(a.attn.wq.w, b.attn.wq.w);
            assert_eq!(a.attn.wo.w, b.attn.wo.w);
            assert_eq!(a.mlp.fc1.w, b.mlp.fc1.w);
            assert_eq!(a.mlp.fc1.b, b.mlp.fc1.b);
            assert_eq!(a.mlp.fc2.w, b.mlp.fc2.w);
        }
    }

    #[test]
    fn train_is_bit_identical_across_worker_counts() {
        let mut rng = StdRng::seed_from_u64(20);
        let base = ControllerModel::new(&tiny_preset(), &mut rng);
        let samples = datasets::collect_bc(&[TaskId::Log], 1, 120, 0.05, 21);
        let mut runs = Vec::new();
        for threads in [1usize, 2, 4] {
            let mut model = base.clone();
            let mut train_rng = StdRng::seed_from_u64(7);
            // A dirtied, reused scratch must not change results either.
            let mut scratch = ControllerTrainScratch::default();
            let _ = model.clone().train_with_threads(
                &samples[..40],
                1,
                2e-3,
                &mut train_rng.clone(),
                threads,
                &mut scratch,
            );
            let loss =
                model.train_with_threads(&samples, 2, 2e-3, &mut train_rng, threads, &mut scratch);
            runs.push((threads, loss, model));
        }
        let (_, loss_1, model_1) = &runs[0];
        for (threads, loss, model) in &runs[1..] {
            assert_eq!(
                loss.to_bits(),
                loss_1.to_bits(),
                "loss must not depend on threads={threads}"
            );
            assert_eq!(
                model.view_embed.w, model_1.view_embed.w,
                "threads={threads}"
            );
            assert_eq!(
                model.view_embed.b, model_1.view_embed.b,
                "threads={threads}"
            );
            assert_eq!(
                model.stat_embed.w, model_1.stat_embed.w,
                "threads={threads}"
            );
            assert_eq!(
                model.subtask_embed, model_1.subtask_embed,
                "threads={threads}"
            );
            assert_eq!(model.cls, model_1.cls, "threads={threads}");
            assert_eq!(model.head.w, model_1.head.w, "threads={threads}");
            assert_eq!(model.head.b, model_1.head.b, "threads={threads}");
            for (a, b) in model.blocks.iter().zip(&model_1.blocks) {
                assert_eq!(a.attn.wq.w, b.attn.wq.w, "threads={threads}");
                assert_eq!(a.attn.wo.w, b.attn.wo.w, "threads={threads}");
                assert_eq!(a.mlp.fc1.w, b.mlp.fc1.w, "threads={threads}");
                assert_eq!(a.mlp.fc1.b, b.mlp.fc1.b, "threads={threads}");
                assert_eq!(a.mlp.fc2.w, b.mlp.fc2.w, "threads={threads}");
                assert_eq!(a.mlp.fc2.b, b.mlp.fc2.b, "threads={threads}");
            }
        }
    }

    #[test]
    fn pool_training_matches_spawn_per_chunk_bit_for_bit() {
        // The persistent WorkerPool is a pure scheduling change: routed
        // through train_with_mapper, it must reproduce the old
        // spawn-per-chunk run exactly, weights and loss bits included.
        let mut rng = StdRng::seed_from_u64(23);
        let base = ControllerModel::new(&tiny_preset(), &mut rng);
        let samples = datasets::collect_bc(&[TaskId::Log], 1, 120, 0.05, 21);
        let mut spawn_model = base.clone();
        let mut spawn = create_tensor::par::SpawnPerChunk(3);
        let spawn_loss = spawn_model.train_with_mapper(
            &samples,
            2,
            2e-3,
            &mut StdRng::seed_from_u64(7),
            &mut spawn,
            &mut ControllerTrainScratch::default(),
        );
        let mut pool_model = base.clone();
        let mut pool = create_tensor::par::WorkerPool::new(3);
        let pool_loss = pool_model.train_with_mapper(
            &samples,
            2,
            2e-3,
            &mut StdRng::seed_from_u64(7),
            &mut pool,
            &mut ControllerTrainScratch::default(),
        );
        assert_eq!(spawn_loss.to_bits(), pool_loss.to_bits());
        assert_eq!(spawn_model.view_embed.w, pool_model.view_embed.w);
        assert_eq!(spawn_model.cls, pool_model.cls);
        assert_eq!(spawn_model.head.w, pool_model.head.w);
        for (a, b) in spawn_model.blocks.iter().zip(&pool_model.blocks) {
            assert_eq!(a.attn.wq.w, b.attn.wq.w);
            assert_eq!(a.mlp.fc1.w, b.mlp.fc1.w);
            assert_eq!(a.mlp.fc2.w, b.mlp.fc2.w);
        }
    }

    #[test]
    fn bc_training_clones_the_expert() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = ControllerModel::new(&tiny_preset(), &mut rng);
        let samples = datasets::collect_bc(&[TaskId::Log, TaskId::Seed], 3, 400, 0.05, 7);
        assert!(samples.len() > 300, "dataset too small: {}", samples.len());
        model.train(&samples, 12, 2e-3, &mut rng);
        let agree = model.agreement(&samples);
        assert!(agree > 0.85, "BC agreement too low: {agree}");
    }

    #[test]
    fn deployed_controller_matches_float_logits() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = ControllerModel::new(&tiny_preset(), &mut rng);
        let samples = datasets::collect_bc(&[TaskId::Log], 2, 250, 0.05, 8);
        model.train(&samples, 8, 2e-3, &mut rng);
        let quant = model.deploy(&samples, Precision::Int8);
        let mut accel = Accelerator::ideal(0);
        let mut agree = 0usize;
        for s in samples.iter().take(100) {
            let lf = model.logits(&s.obs);
            let lq = quant.logits(&mut accel, &s.obs, None);
            if argmax(&lf) == argmax(&lq) {
                agree += 1;
            }
        }
        assert!(agree >= 90, "quantized argmax agreement {agree}/100");
    }

    #[test]
    fn act_samples_valid_actions_and_entropy() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = ControllerModel::new(&tiny_preset(), &mut rng);
        let samples = datasets::collect_bc(&[TaskId::Seed], 1, 50, 0.0, 9);
        let quant = model.deploy(&samples, Precision::Int8);
        let mut accel = Accelerator::ideal(0);
        let (action, entropy) = quant.act(&mut accel, &samples[0].obs, 1.0, &mut rng);
        assert!(Action::ALL.contains(&action));
        assert!((0.0..=(Action::COUNT as f32).ln() + 1e-3).contains(&entropy));
    }

    #[test]
    fn scratch_inference_is_bit_identical_to_allocating_inference() {
        let mut rng = StdRng::seed_from_u64(6);
        let model = ControllerModel::new(&tiny_preset(), &mut rng);
        let samples = datasets::collect_bc(&[TaskId::Seed, TaskId::Log], 1, 60, 0.05, 11);
        let quant = model.deploy(&samples, Precision::Int8);
        let mut accel_a = Accelerator::ideal(1);
        let mut accel_b = Accelerator::ideal(1);
        let mut rng_a = StdRng::seed_from_u64(2);
        let mut rng_b = StdRng::seed_from_u64(2);
        let mut scratch = ControllerScratch::default();
        for s in samples.iter().take(30) {
            // One scratch instance across many observations: logits,
            // sampled actions, entropies and RNG consumption must all
            // match the allocating path exactly.
            let la = quant.logits(&mut accel_a, &s.obs, None);
            let lb = quant.logits_with(&mut accel_b, &s.obs, None, &mut scratch);
            assert_eq!(la, lb);
            let (act_a, ent_a) = quant.act(&mut accel_a, &s.obs, 0.7, &mut rng_a);
            let (act_b, ent_b) =
                quant.act_with(&mut accel_b, &s.obs, 0.7, &mut rng_b, &mut scratch);
            assert_eq!(act_a, act_b);
            assert_eq!(ent_a, ent_b);
        }
        assert_eq!(accel_a.macs(), accel_b.macs());
        assert_eq!(accel_a.gemms(), accel_b.gemms());
    }

    #[test]
    fn golden_deployed_run_never_trips_ad() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = ControllerModel::new(&tiny_preset(), &mut rng);
        let samples = datasets::collect_bc(&[TaskId::Log], 2, 200, 0.05, 10);
        model.train(&samples, 6, 2e-3, &mut rng);
        let quant = model.deploy(&samples, Precision::Int8);
        let mut per_backend = Vec::new();
        for backend in create_accel::GemmBackendKind::ALL {
            let mut accel = Accelerator::new(
                create_accel::AccelConfig {
                    injector: None,
                    ad_enabled: true,
                    backend,
                    ..Default::default()
                },
                0,
            );
            let logits: Vec<_> = samples
                .iter()
                .take(50)
                .map(|s| quant.logits(&mut accel, &s.obs, None))
                .collect();
            assert_eq!(
                accel.ad_stats().cleared,
                0,
                "AD fired on calibration data ({backend})"
            );
            per_backend.push(logits);
        }
        for (kind, logits) in create_accel::GemmBackendKind::ALL.iter().zip(&per_backend) {
            assert_eq!(
                logits, &per_backend[0],
                "deployed controller logits must be backend-invariant ({kind})"
            );
        }
    }
}
