//! Minimal tensor serialization for caching trained models on disk.
//!
//! Training the planner, controller and predictor from scratch takes
//! minutes; experiment harnesses cache the trained weights under
//! `results/cache/` (override with `CREATE_CACHE_DIR`) so every bench
//! target loads the same models. The format is deliberately trivial:
//! `MAGIC, version, section count, then (name, shape, f32-LE data)*`.

use std::fs;
use std::io::{self, Read};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"CREATEv1";

/// One named tensor: a shape and its row-major data.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedTensor {
    /// Section name (e.g. `"block0.wq"`).
    pub name: String,
    /// Shape (any rank; product must equal `data.len()`).
    pub shape: Vec<u32>,
    /// Row-major values.
    pub data: Vec<f32>,
}

impl NamedTensor {
    /// Builds a tensor, validating the shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape product disagrees with the data length.
    pub fn new(name: impl Into<String>, shape: Vec<u32>, data: Vec<f32>) -> Self {
        let expect: usize = shape.iter().map(|&d| d as usize).product();
        assert_eq!(expect, data.len(), "shape/data mismatch");
        Self {
            name: name.into(),
            shape,
            data,
        }
    }
}

/// The directory trained-model caches live in.
pub fn cache_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CREATE_CACHE_DIR") {
        return PathBuf::from(dir);
    }
    // crates/agents -> workspace root -> results/cache
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/cache")
        .components()
        .collect()
}

/// Writes tensors to `path` (creating parent directories) through
/// [`create_tensor::atomicfile::write_atomic`], so a crash mid-write can
/// never leave a torn bundle behind: readers see the old complete file,
/// the new complete file, or no file — all of which the corrupt-cache
/// fallback paths handle by retraining.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_tensors(path: &Path, tensors: &[NamedTensor]) -> io::Result<()> {
    let mut buf: Vec<u8> = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(tensors.len() as u32).to_le_bytes());
    for t in tensors {
        let name = t.name.as_bytes();
        buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
        buf.extend_from_slice(name);
        buf.extend_from_slice(&(t.shape.len() as u32).to_le_bytes());
        for &d in &t.shape {
            buf.extend_from_slice(&d.to_le_bytes());
        }
        buf.extend_from_slice(&(t.data.len() as u32).to_le_bytes());
        for &v in &t.data {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    create_tensor::atomicfile::write_atomic(path, &buf)
}

/// Reads tensors from `path`.
///
/// # Errors
///
/// Fails on filesystem errors or a malformed/corrupt file.
pub fn load_tensors(path: &Path) -> io::Result<Vec<NamedTensor>> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    let mut cursor = 0usize;
    let take = |cursor: &mut usize, n: usize| -> io::Result<&[u8]> {
        if *cursor + n > bytes.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated tensor file",
            ));
        }
        let s = &bytes[*cursor..*cursor + n];
        *cursor += n;
        Ok(s)
    };
    let read_u32 = |cursor: &mut usize| -> io::Result<u32> {
        let s = take(cursor, 4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    };
    if take(&mut cursor, 8)? != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad magic in tensor file",
        ));
    }
    let count = read_u32(&mut cursor)?;
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let name_len = read_u32(&mut cursor)? as usize;
        let name = String::from_utf8(take(&mut cursor, name_len)?.to_vec())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let rank = read_u32(&mut cursor)? as usize;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(read_u32(&mut cursor)?);
        }
        let len = read_u32(&mut cursor)? as usize;
        let expect: usize = shape.iter().map(|&d| d as usize).product();
        if expect != len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("shape/data mismatch in section {name}"),
            ));
        }
        let raw = take(&mut cursor, len * 4)?;
        let data = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        out.push(NamedTensor { name, shape, data });
    }
    Ok(out)
}

/// Finds a tensor by name.
pub fn find<'a>(tensors: &'a [NamedTensor], name: &str) -> Option<&'a NamedTensor> {
    tensors.iter().find(|t| t.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("create-io-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_tensors() {
        let tensors = vec![
            NamedTensor::new("a", vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
            NamedTensor::new(
                "b.nested",
                vec![4],
                vec![-1.5, 0.0, 7.25, f32::MIN_POSITIVE],
            ),
        ];
        let path = tmp_path("roundtrip.bin");
        save_tensors(&path, &tensors).unwrap();
        let loaded = load_tensors(&path).unwrap();
        assert_eq!(loaded, tensors);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_list_roundtrips() {
        let path = tmp_path("empty.bin");
        save_tensors(&path, &[]).unwrap();
        assert!(load_tensors(&path).unwrap().is_empty());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_file_is_rejected() {
        let path = tmp_path("corrupt.bin");
        fs::write(&path, b"not a tensor file at all").unwrap();
        assert!(load_tensors(&path).is_err());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn find_locates_sections() {
        let tensors = vec![NamedTensor::new("x", vec![1], vec![9.0])];
        assert!(find(&tensors, "x").is_some());
        assert!(find(&tensors, "y").is_none());
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn bad_shape_panics() {
        let _ = NamedTensor::new("bad", vec![2, 2], vec![1.0]);
    }
}
