//! The entropy predictor (paper Sec. 5.3, Fig. 11a, Table 9).
//!
//! A small CNN processes the observed image, an MLP processes the subtask
//! prompt embedding, and a fusion MLP outputs a scalar estimate of the
//! controller's *error-free* action-logits entropy — computed *before* the
//! controller runs, at nominal voltage, so voltage scaling can be set for
//! the step ahead without being distorted by prior errors.
//!
//! Architecture (matching Table 9): three `Conv2d(k3, s3, p1)` stages with
//! ReLU and pooling (16→32→64 channels, 64×64 input → 1×1×64), a
//! `Linear(512→64)` prompt branch over a fixed random 512-d prompt
//! embedding per subtask, and a `128→128→1` fusion MLP with ReLU and
//! dropout. Trained with MSE and AdamW (weight decay 1e-2).

use crate::datasets::EntropySample;
use create_nn::conv::{
    global_avgpool, global_avgpool_backward, maxpool2, maxpool2_backward, Conv2d, Conv2dGrads,
    Tensor3,
};
use create_nn::linear::{Linear, LinearGrads};
use create_nn::optim::{AdamState, AdamWConfig};
use create_tensor::stats::r2_score;
use create_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// Prompt embedding width (Table 9: Linear in=512).
pub const PROMPT_DIM: usize = 512;

/// Fused feature width.
const FUSED: usize = 128;

/// Dropout probability during training.
const DROPOUT: f32 = 0.1;

/// The trainable entropy predictor.
#[derive(Debug, Clone)]
pub struct EntropyPredictor {
    conv1: Conv2d,
    conv2: Conv2d,
    conv3: Conv2d,
    prompt_table: Matrix,
    prompt_proj: Linear,
    fuse1: Linear,
    fuse2: Linear,
}

/// Gradients for one training step.
struct PredictorGrads {
    conv1: Conv2dGrads,
    conv2: Conv2dGrads,
    conv3: Conv2dGrads,
    prompt_proj: LinearGrads,
    fuse1: LinearGrads,
    fuse2: LinearGrads,
}

/// Optimizer state.
struct PredictorOpt {
    conv1_w: AdamState,
    conv1_b: AdamState,
    conv2_w: AdamState,
    conv2_b: AdamState,
    conv3_w: AdamState,
    conv3_b: AdamState,
    prompt: AdamState,
    prompt_b: AdamState,
    fuse1: AdamState,
    fuse1_b: AdamState,
    fuse2: AdamState,
    fuse2_b: AdamState,
}

impl EntropyPredictor {
    /// Randomly initialized predictor; the per-subtask 512-d prompt table
    /// is fixed (not trained), mirroring frozen prompt embeddings.
    pub fn new(n_subtasks: usize, rng: &mut impl Rng) -> Self {
        Self {
            conv1: Conv2d::new(3, 16, 3, 3, 1, rng),
            conv2: Conv2d::new(16, 32, 3, 3, 1, rng),
            conv3: Conv2d::new(32, 64, 3, 3, 1, rng),
            prompt_table: Matrix::random_uniform(n_subtasks, PROMPT_DIM, 1.0, rng),
            prompt_proj: Linear::new(PROMPT_DIM, 64, true, rng),
            fuse1: Linear::new(FUSED, FUSED, true, rng),
            fuse2: Linear::new(FUSED, 1, true, rng),
        }
    }

    /// Total trainable parameters (should be ~paper scale, Table 4: 55 k).
    pub fn param_count(&self) -> usize {
        self.conv1.weight.len()
            + self.conv1.bias.len()
            + self.conv2.weight.len()
            + self.conv2.bias.len()
            + self.conv3.weight.len()
            + self.conv3.bias.len()
            + self.prompt_proj.w.len()
            + 64
            + self.fuse1.w.len()
            + FUSED
            + self.fuse2.w.len()
            + 1
    }

    /// Predicts the entropy for an image + subtask prompt.
    pub fn predict(&self, image: &Tensor3, subtask_token: usize) -> f32 {
        self.forward(image, subtask_token, None, &mut StdRng::seed_from_u64(0))
            .0
    }

    /// Forward pass; with `dropout_mask` Some, dropout is sampled into it.
    fn forward(
        &self,
        image: &Tensor3,
        subtask_token: usize,
        dropout_mask: Option<&mut Vec<f32>>,
        rng: &mut impl Rng,
    ) -> (f32, PredictorCache) {
        let pre1 = self.conv1.forward(image);
        let act1 = pre1.relu();
        let (pool1, arg1) = maxpool2(&act1);
        let pre2 = self.conv2.forward(&pool1);
        let act2 = pre2.relu();
        let (pool2, arg2) = maxpool2(&act2);
        let pre3 = self.conv3.forward(&pool2);
        let act3 = pre3.relu();
        let img_feat = global_avgpool(&act3);

        let tok = subtask_token.min(self.prompt_table.rows() - 1);
        let prompt = Matrix::from_vec(1, PROMPT_DIM, self.prompt_table.row(tok).to_vec());
        let prompt_feat = self.prompt_proj.forward(&prompt);

        let mut fused = Matrix::zeros(1, FUSED);
        for c in 0..64 {
            fused.set(0, c, img_feat[c]);
            fused.set(0, 64 + c, prompt_feat.get(0, c));
        }
        let pre_f1 = self.fuse1.forward(&fused);
        let mut act_f1 = Matrix::from_fn(1, FUSED, |_, c| pre_f1.get(0, c).max(0.0));
        if let Some(mask) = dropout_mask {
            mask.clear();
            for c in 0..FUSED {
                let keep = if rng.random_range(0.0..1.0f32) < DROPOUT {
                    0.0
                } else {
                    1.0 / (1.0 - DROPOUT)
                };
                mask.push(keep);
                act_f1.set(0, c, act_f1.get(0, c) * keep);
            }
        }
        let out = self.fuse2.forward(&act_f1);
        let cache = PredictorCache {
            image: image.clone(),
            pre1,
            act1_shape: (16, 22, 22),
            arg1,
            pool1,
            pre2,
            act2_shape: (32, 4, 4),
            arg2,
            pool2,
            pre3,
            act3,
            prompt,
            fused,
            pre_f1,
            act_f1,
        };
        (out.get(0, 0), cache)
    }

    /// Backward for one sample; `dout` is d(loss)/d(prediction).
    fn backward(&self, cache: &PredictorCache, dout: f32, grads: &mut PredictorGrads) {
        let dlogit = Matrix::from_vec(1, 1, vec![dout]);
        let dact_f1 = self
            .fuse2
            .backward(&cache.act_f1, &dlogit, &mut grads.fuse2);
        // ReLU (+ dropout folded into act_f1 already: mask applied in the
        // cached activation, so gradient flows through nonzero entries).
        let dpre_f1 = Matrix::from_fn(1, FUSED, |_, c| {
            if cache.act_f1.get(0, c) != 0.0 {
                dact_f1.get(0, c) * (cache.act_f1.get(0, c) / cache.pre_f1.get(0, c).max(1e-12))
            } else {
                0.0
            }
        });
        let dfused = self
            .fuse1
            .backward(&cache.fused, &dpre_f1, &mut grads.fuse1);
        // Split fused gradient.
        let mut dimg = vec![0.0f32; 64];
        let mut dprompt_feat = Matrix::zeros(1, 64);
        for c in 0..64 {
            dimg[c] = dfused.get(0, c);
            dprompt_feat.set(0, c, dfused.get(0, 64 + c));
        }
        self.prompt_proj
            .backward(&cache.prompt, &dprompt_feat, &mut grads.prompt_proj);
        // Image branch.
        let dact3 = global_avgpool_backward((cache.act3.c, cache.act3.h, cache.act3.w), &dimg);
        let dpre3 = cache.pre3.relu_backward(&dact3);
        let dpool2 = self.conv3.backward(&cache.pool2, &dpre3, &mut grads.conv3);
        let dact2 = maxpool2_backward(cache.act2_shape, &cache.arg2, &dpool2);
        let dpre2 = cache.pre2.relu_backward(&dact2);
        let dpool1 = self.conv2.backward(&cache.pool1, &dpre2, &mut grads.conv2);
        let dact1 = maxpool2_backward(cache.act1_shape, &cache.arg1, &dpool1);
        let dpre1 = cache.pre1.relu_backward(&dact1);
        let _ = self.conv1.backward(&cache.image, &dpre1, &mut grads.conv1);
    }

    /// Trains with MSE + AdamW; returns the final epoch's mean MSE.
    pub fn train(&mut self, samples: &[EntropySample], epochs: usize, lr: f32, seed: u64) -> f32 {
        let cfg = AdamWConfig {
            lr,
            weight_decay: 1e-2,
            ..AdamWConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut opt = PredictorOpt {
            conv1_w: AdamState::new(self.conv1.weight.len()),
            conv1_b: AdamState::new(self.conv1.bias.len()),
            conv2_w: AdamState::new(self.conv2.weight.len()),
            conv2_b: AdamState::new(self.conv2.bias.len()),
            conv3_w: AdamState::new(self.conv3.weight.len()),
            conv3_b: AdamState::new(self.conv3.bias.len()),
            prompt: AdamState::new(self.prompt_proj.w.len()),
            prompt_b: AdamState::new(64),
            fuse1: AdamState::new(self.fuse1.w.len()),
            fuse1_b: AdamState::new(FUSED),
            fuse2: AdamState::new(self.fuse2.w.len()),
            fuse2_b: AdamState::new(1),
        };
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let batch = 32usize;
        let mut step = 0u64;
        let mut last = f32::INFINITY;
        let mut mask = Vec::new();
        for _ in 0..epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            for chunk in order.chunks(batch) {
                let mut grads = PredictorGrads {
                    conv1: self.conv1.zero_grads(),
                    conv2: self.conv2.zero_grads(),
                    conv3: self.conv3.zero_grads(),
                    prompt_proj: self.prompt_proj.zero_grads(),
                    fuse1: self.fuse1.zero_grads(),
                    fuse2: self.fuse2.zero_grads(),
                };
                for &i in chunk {
                    let s = &samples[i];
                    let (pred, cache) =
                        self.forward(&s.image, s.subtask_token, Some(&mut mask), &mut rng);
                    let err = pred - s.entropy;
                    epoch_loss += err * err;
                    self.backward(&cache, 2.0 * err / chunk.len() as f32, &mut grads);
                }
                step += 1;
                opt.conv1_w
                    .step(&mut self.conv1.weight, &grads.conv1.dw, &cfg, step);
                opt.conv1_b
                    .step(&mut self.conv1.bias, &grads.conv1.db, &cfg, step);
                opt.conv2_w
                    .step(&mut self.conv2.weight, &grads.conv2.dw, &cfg, step);
                opt.conv2_b
                    .step(&mut self.conv2.bias, &grads.conv2.db, &cfg, step);
                opt.conv3_w
                    .step(&mut self.conv3.weight, &grads.conv3.dw, &cfg, step);
                opt.conv3_b
                    .step(&mut self.conv3.bias, &grads.conv3.db, &cfg, step);
                opt.prompt
                    .step_matrix(&mut self.prompt_proj.w, &grads.prompt_proj.dw, &cfg, step);
                if let (Some(b), Some(g)) =
                    (self.prompt_proj.b.as_mut(), grads.prompt_proj.db.as_ref())
                {
                    opt.prompt_b.step(b, g, &cfg, step);
                }
                opt.fuse1
                    .step_matrix(&mut self.fuse1.w, &grads.fuse1.dw, &cfg, step);
                if let (Some(b), Some(g)) = (self.fuse1.b.as_mut(), grads.fuse1.db.as_ref()) {
                    opt.fuse1_b.step(b, g, &cfg, step);
                }
                opt.fuse2
                    .step_matrix(&mut self.fuse2.w, &grads.fuse2.dw, &cfg, step);
                if let (Some(b), Some(g)) = (self.fuse2.b.as_mut(), grads.fuse2.db.as_ref()) {
                    opt.fuse2_b.step(b, g, &cfg, step);
                }
            }
            last = epoch_loss / samples.len() as f32;
        }
        last
    }

    /// Serializes all weights (for the disk cache).
    pub fn export_tensors(&self) -> Vec<crate::io::NamedTensor> {
        use crate::io::NamedTensor;
        let conv = |name: &str, c: &Conv2d, out: &mut Vec<NamedTensor>| {
            out.push(NamedTensor::new(
                format!("{name}.w"),
                vec![c.weight.len() as u32],
                c.weight.clone(),
            ));
            out.push(NamedTensor::new(
                format!("{name}.b"),
                vec![c.bias.len() as u32],
                c.bias.clone(),
            ));
        };
        let lin = |name: &str, l: &Linear, out: &mut Vec<NamedTensor>| {
            out.push(NamedTensor::new(
                format!("{name}.w"),
                vec![l.w.rows() as u32, l.w.cols() as u32],
                l.w.as_slice().to_vec(),
            ));
            if let Some(b) = &l.b {
                out.push(NamedTensor::new(
                    format!("{name}.b"),
                    vec![b.len() as u32],
                    b.clone(),
                ));
            }
        };
        let mut out = Vec::new();
        conv("conv1", &self.conv1, &mut out);
        conv("conv2", &self.conv2, &mut out);
        conv("conv3", &self.conv3, &mut out);
        out.push(crate::io::NamedTensor::new(
            "prompt_table",
            vec![
                self.prompt_table.rows() as u32,
                self.prompt_table.cols() as u32,
            ],
            self.prompt_table.as_slice().to_vec(),
        ));
        lin("prompt_proj", &self.prompt_proj, &mut out);
        lin("fuse1", &self.fuse1, &mut out);
        lin("fuse2", &self.fuse2, &mut out);
        out
    }

    /// Restores a predictor from serialized weights.
    pub fn import_tensors(tensors: &[crate::io::NamedTensor]) -> Option<Self> {
        use crate::io;
        let table = io::find(tensors, "prompt_table")?;
        if table.shape.len() != 2 {
            return None;
        }
        let n_subtasks = table.shape[0] as usize;
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Self::new(n_subtasks, &mut rng);
        let conv = |name: &str, c: &mut Conv2d| -> Option<()> {
            let w = io::find(tensors, &format!("{name}.w"))?;
            let b = io::find(tensors, &format!("{name}.b"))?;
            if w.data.len() != c.weight.len() || b.data.len() != c.bias.len() {
                return None;
            }
            c.weight = w.data.clone();
            c.bias = b.data.clone();
            Some(())
        };
        let lin = |name: &str, l: &mut Linear| -> Option<()> {
            let w = io::find(tensors, &format!("{name}.w"))?;
            if w.shape.len() != 2 {
                return None;
            }
            l.w = Matrix::from_vec(w.shape[0] as usize, w.shape[1] as usize, w.data.clone());
            if l.b.is_some() {
                l.b = Some(io::find(tensors, &format!("{name}.b"))?.data.clone());
            }
            Some(())
        };
        conv("conv1", &mut model.conv1)?;
        conv("conv2", &mut model.conv2)?;
        conv("conv3", &mut model.conv3)?;
        model.prompt_table = Matrix::from_vec(
            table.shape[0] as usize,
            table.shape[1] as usize,
            table.data.clone(),
        );
        lin("prompt_proj", &mut model.prompt_proj)?;
        lin("fuse1", &mut model.fuse1)?;
        lin("fuse2", &mut model.fuse2)?;
        Some(model)
    }

    /// R² of predictions against golden entropies (paper Fig. 14a).
    pub fn r2(&self, samples: &[EntropySample]) -> f32 {
        let actual: Vec<f32> = samples.iter().map(|s| s.entropy).collect();
        let predicted: Vec<f32> = samples
            .iter()
            .map(|s| self.predict(&s.image, s.subtask_token))
            .collect();
        r2_score(&actual, &predicted)
    }
}

/// Cached forward state.
struct PredictorCache {
    image: Tensor3,
    pre1: Tensor3,
    act1_shape: (usize, usize, usize),
    arg1: Vec<usize>,
    pool1: Tensor3,
    pre2: Tensor3,
    act2_shape: (usize, usize, usize),
    arg2: Vec<usize>,
    pool2: Tensor3,
    pre3: Tensor3,
    act3: Tensor3,
    prompt: Matrix,
    fused: Matrix,
    pre_f1: Matrix,
    act_f1: Matrix,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic dataset: entropy is a simple function of the image's mean
    /// red channel and the subtask token, so a working trainer must fit it.
    fn synthetic_samples(n: usize, seed: u64) -> Vec<EntropySample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let level: f32 = rng.random_range(0.0..1.0);
                let tok = rng.random_range(0..4usize);
                let mut img = Tensor3::zeros(3, 64, 64);
                for r in 0..64 {
                    for c in 0..64 {
                        img.set(0, r, c, level);
                        img.set(1, r, c, 1.0 - level);
                    }
                }
                EntropySample {
                    image: img,
                    subtask_token: tok,
                    entropy: 0.4 + level + 0.2 * tok as f32,
                }
            })
            .collect()
    }

    #[test]
    fn parameter_count_is_paper_scale() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = EntropyPredictor::new(40, &mut rng);
        let n = p.param_count();
        // Table 4 reports 55k; ours should be the same order of magnitude.
        assert!(
            (30_000..120_000).contains(&n),
            "predictor params {n} not at paper scale"
        );
    }

    #[test]
    fn training_fits_a_synthetic_function() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = EntropyPredictor::new(8, &mut rng);
        let train = synthetic_samples(220, 3);
        let test = synthetic_samples(60, 4);
        let before = p.r2(&test);
        let mse = p.train(&train, 24, 1.5e-3, 5);
        let after = p.r2(&test);
        assert!(mse < 0.06, "training MSE too high: {mse}");
        assert!(
            after > 0.8 && after > before,
            "R² should be high after training: {before} -> {after}"
        );
    }

    #[test]
    fn prediction_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(6);
        let p = EntropyPredictor::new(8, &mut rng);
        let s = &synthetic_samples(1, 7)[0];
        let a = p.predict(&s.image, s.subtask_token);
        let b = p.predict(&s.image, s.subtask_token);
        assert_eq!(a, b, "inference must not be stochastic");
    }

    #[test]
    fn out_of_range_subtask_token_is_clamped() {
        let mut rng = StdRng::seed_from_u64(8);
        let p = EntropyPredictor::new(4, &mut rng);
        let s = &synthetic_samples(1, 9)[0];
        // Token beyond the table must not panic.
        let _ = p.predict(&s.image, 1000);
    }
}
