//! End-to-end agent construction with disk caching.
//!
//! Training the full agent stack (planner with planted outliers, BC
//! controller, entropy predictor) takes a couple of minutes; every bench
//! target and example needs the *same* trained models, so weights are
//! cached under `results/cache/` and reloaded on subsequent runs.

use crate::controller::{BcSample, ControllerModel, QuantController};
use crate::datasets;
use crate::io::{self, NamedTensor};
use crate::planner::{OutlierSpec, PlannerModel, QuantPlanner};
use crate::predictor::EntropyPredictor;
use crate::presets::{ControllerPreset, PlannerPreset};
use crate::vocab::{self, PlanSample};
use create_env::{Benchmark, TaskId};
use create_nn::linear::Linear;
use create_tensor::hadamard::Rotation;
use create_tensor::{Matrix, Precision};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// Deployment temperature for controller action sampling.
pub const ACT_TEMPERATURE: f32 = 0.7;

/// Base seed for all training.
const TRAIN_SEED: u64 = 20260322;

/// Planner training epochs.
const PLANNER_EPOCHS: usize = 300;

/// Controller BC epochs.
const CONTROLLER_EPOCHS: usize = 10;

/// Predictor epochs.
const PREDICTOR_EPOCHS: usize = 12;

fn m2t(name: &str, m: &Matrix) -> NamedTensor {
    NamedTensor::new(
        name,
        vec![m.rows() as u32, m.cols() as u32],
        m.as_slice().to_vec(),
    )
}

fn t2m(tensors: &[NamedTensor], name: &str) -> Option<Matrix> {
    let t = io::find(tensors, name)?;
    if t.shape.len() != 2 {
        return None;
    }
    Some(Matrix::from_vec(
        t.shape[0] as usize,
        t.shape[1] as usize,
        t.data.clone(),
    ))
}

fn v2t(name: &str, v: &[f32]) -> NamedTensor {
    NamedTensor::new(name, vec![v.len() as u32], v.to_vec())
}

fn t2v(tensors: &[NamedTensor], name: &str) -> Option<Vec<f32>> {
    io::find(tensors, name).map(|t| t.data.clone())
}

// ---------------------------------------------------------------------------
// Planner persistence
// ---------------------------------------------------------------------------

/// Serializes a trained planner's weights (used by the bundle cache
/// and `create-core`'s test-deployment cache).
pub fn planner_to_tensors(p: &PlannerModel) -> Vec<NamedTensor> {
    let mut out = vec![
        m2t("embed", &p.embed),
        m2t("pos", &p.pos),
        m2t("head", &p.head.w),
    ];
    for (l, b) in p.blocks.iter().enumerate() {
        out.push(m2t(&format!("b{l}.wq"), &b.attn.wq.w));
        out.push(m2t(&format!("b{l}.wk"), &b.attn.wk.w));
        out.push(m2t(&format!("b{l}.wv"), &b.attn.wv.w));
        out.push(m2t(&format!("b{l}.wo"), &b.attn.wo.w));
        out.push(m2t(&format!("b{l}.wgate"), &b.mlp.wgate.w));
        out.push(m2t(&format!("b{l}.wup"), &b.mlp.wup.w));
        out.push(m2t(&format!("b{l}.wdown"), &b.mlp.wdown.w));
    }
    out
}

/// Rebuilds a planner from [`planner_to_tensors`] output (`None` on a
/// shape/section mismatch).
pub fn planner_from_tensors(
    preset: &PlannerPreset,
    tensors: &[NamedTensor],
) -> Option<PlannerModel> {
    let mut rng = StdRng::seed_from_u64(0);
    let mut model = PlannerModel::new(preset, &mut rng);
    model.embed = t2m(tensors, "embed")?;
    model.pos = t2m(tensors, "pos")?;
    model.head.w = t2m(tensors, "head")?;
    for (l, b) in model.blocks.iter_mut().enumerate() {
        b.attn.wq.w = t2m(tensors, &format!("b{l}.wq"))?;
        b.attn.wk.w = t2m(tensors, &format!("b{l}.wk"))?;
        b.attn.wv.w = t2m(tensors, &format!("b{l}.wv"))?;
        b.attn.wo.w = t2m(tensors, &format!("b{l}.wo"))?;
        b.mlp.wgate.w = t2m(tensors, &format!("b{l}.wgate"))?;
        b.mlp.wup.w = t2m(tensors, &format!("b{l}.wup"))?;
        b.mlp.wdown.w = t2m(tensors, &format!("b{l}.wdown"))?;
    }
    if model.embed.cols() != preset.proxy_hidden {
        return None;
    }
    Some(model)
}

// ---------------------------------------------------------------------------
// Controller persistence
// ---------------------------------------------------------------------------

fn linear_to_tensors(name: &str, l: &Linear, out: &mut Vec<NamedTensor>) {
    out.push(m2t(&format!("{name}.w"), &l.w));
    if let Some(b) = &l.b {
        out.push(v2t(&format!("{name}.b"), b));
    }
}

fn linear_from_tensors(tensors: &[NamedTensor], name: &str, l: &mut Linear) -> Option<()> {
    l.w = t2m(tensors, &format!("{name}.w"))?;
    if l.b.is_some() {
        l.b = Some(t2v(tensors, &format!("{name}.b"))?);
    }
    Some(())
}

/// Serializes a trained controller's weights (used by the bundle cache
/// and `create-core`'s test-deployment cache).
pub fn controller_to_tensors(c: &ControllerModel) -> Vec<NamedTensor> {
    let mut out = vec![m2t("subtask", &c.subtask_embed), m2t("cls", &c.cls)];
    linear_to_tensors("view", &c.view_embed, &mut out);
    linear_to_tensors("stat", &c.stat_embed, &mut out);
    linear_to_tensors("head", &c.head, &mut out);
    for (l, b) in c.blocks.iter().enumerate() {
        out.push(m2t(&format!("b{l}.wq"), &b.attn.wq.w));
        out.push(m2t(&format!("b{l}.wk"), &b.attn.wk.w));
        out.push(m2t(&format!("b{l}.wv"), &b.attn.wv.w));
        out.push(m2t(&format!("b{l}.wo"), &b.attn.wo.w));
        linear_to_tensors(&format!("b{l}.fc1"), &b.mlp.fc1, &mut out);
        linear_to_tensors(&format!("b{l}.fc2"), &b.mlp.fc2, &mut out);
    }
    out
}

/// Rebuilds a controller from [`controller_to_tensors`] output (`None`
/// on a shape/section mismatch).
pub fn controller_from_tensors(
    preset: &ControllerPreset,
    tensors: &[NamedTensor],
) -> Option<ControllerModel> {
    let mut rng = StdRng::seed_from_u64(0);
    let mut model = ControllerModel::new(preset, &mut rng);
    model.subtask_embed = t2m(tensors, "subtask")?;
    model.cls = t2m(tensors, "cls")?;
    linear_from_tensors(tensors, "view", &mut model.view_embed)?;
    linear_from_tensors(tensors, "stat", &mut model.stat_embed)?;
    linear_from_tensors(tensors, "head", &mut model.head)?;
    for (l, b) in model.blocks.iter_mut().enumerate() {
        b.attn.wq.w = t2m(tensors, &format!("b{l}.wq"))?;
        b.attn.wk.w = t2m(tensors, &format!("b{l}.wk"))?;
        b.attn.wv.w = t2m(tensors, &format!("b{l}.wv"))?;
        b.attn.wo.w = t2m(tensors, &format!("b{l}.wo"))?;
        linear_from_tensors(tensors, &format!("b{l}.fc1"), &mut b.mlp.fc1)?;
        linear_from_tensors(tensors, &format!("b{l}.fc2"), &mut b.mlp.fc2)?;
    }
    if model.cls.cols() != preset.proxy_hidden {
        return None;
    }
    Some(model)
}

// ---------------------------------------------------------------------------
// Predictor persistence
// ---------------------------------------------------------------------------

fn predictor_to_tensors(p: &EntropyPredictor) -> Vec<NamedTensor> {
    p.export_tensors()
}

fn predictor_from_tensors(tensors: &[NamedTensor]) -> Option<EntropyPredictor> {
    EntropyPredictor::import_tensors(tensors)
}

// ---------------------------------------------------------------------------
// The trained-agent bundle
// ---------------------------------------------------------------------------

/// Which benchmark's tasks a controller is trained for.
fn controller_tasks(preset: &ControllerPreset) -> Vec<TaskId> {
    if preset.name == "JARVIS-1" {
        TaskId::ALL
            .into_iter()
            .filter(|t| t.benchmark() == Benchmark::Minecraft)
            .collect()
    } else {
        TaskId::ALL
            .into_iter()
            .filter(|t| t.benchmark() != Benchmark::Minecraft)
            .collect()
    }
}

/// A fully trained agent stack for one platform pairing.
#[derive(Debug, Clone)]
pub struct AgentSystem {
    /// The trained f32 planner (with planted outliers).
    pub planner: PlannerModel,
    /// The trained f32 controller.
    pub controller: ControllerModel,
    /// The trained entropy predictor.
    pub predictor: EntropyPredictor,
    /// Planner platform preset.
    pub planner_preset: PlannerPreset,
    /// Controller platform preset.
    pub controller_preset: ControllerPreset,
    /// Planner calibration samples.
    pub plan_samples: Vec<PlanSample>,
    /// Controller calibration samples.
    pub bc_samples: Vec<BcSample>,
}

impl AgentSystem {
    /// Builds (or loads from cache) the primary JARVIS-1 testbed system.
    pub fn jarvis() -> AgentSystem {
        Self::build(PlannerPreset::jarvis(), ControllerPreset::jarvis())
    }

    /// Builds (or loads) an arbitrary planner/controller pairing.
    pub fn build(
        planner_preset: PlannerPreset,
        controller_preset: ControllerPreset,
    ) -> AgentSystem {
        let plan_samples = vocab::training_samples();
        let planner = load_or_train_planner(&planner_preset, &plan_samples);
        let (controller, bc_samples) = load_or_train_controller(&controller_preset);
        let predictor = load_or_train_predictor(&controller_preset, &controller, &bc_samples);
        AgentSystem {
            planner,
            controller,
            predictor,
            planner_preset,
            controller_preset,
            plan_samples,
            bc_samples,
        }
    }

    /// Deploys the planner, optionally with weight rotation (WR).
    pub fn deploy_planner(&self, wr: bool, precision: Precision) -> QuantPlanner {
        if wr {
            let mut rotated = self.planner.clone();
            rotated.rotate_residual(&Rotation::hadamard(self.planner_preset.proxy_hidden));
            rotated.deploy(&self.plan_samples, precision)
        } else {
            self.planner.deploy(&self.plan_samples, precision)
        }
    }

    /// Deploys the controller.
    pub fn deploy_controller(&self, precision: Precision) -> QuantController {
        self.controller.deploy(&self.bc_samples, precision)
    }

    /// The tasks this system's controller was trained for.
    pub fn tasks(&self) -> Vec<TaskId> {
        controller_tasks(&self.controller_preset)
    }
}

fn cache_file(kind: &str, name: &str) -> PathBuf {
    io::cache_dir().join(format!(
        "{kind}_{}_v4.bin",
        name.to_lowercase().replace('-', "")
    ))
}

fn load_or_train_planner(preset: &PlannerPreset, samples: &[PlanSample]) -> PlannerModel {
    let path = cache_file("planner", preset.name);
    if let Ok(tensors) = io::load_tensors(&path) {
        if let Some(model) = planner_from_tensors(preset, &tensors) {
            return model;
        }
    }
    let mut rng = StdRng::seed_from_u64(TRAIN_SEED);
    let mut model = PlannerModel::new(preset, &mut rng);
    let spec = OutlierSpec::default();
    model.train(samples, PLANNER_EPOCHS, 3e-3, Some(spec), &mut rng);
    let acc = model.plan_accuracy(samples);
    assert!(
        acc > 0.99,
        "{} planner failed to memorize plans (accuracy {acc})",
        preset.name
    );
    io::save_tensors(&path, &planner_to_tensors(&model)).ok();
    model
}

fn load_or_train_controller(preset: &ControllerPreset) -> (ControllerModel, Vec<BcSample>) {
    let tasks = controller_tasks(preset);
    // Calibration/BC data is regenerated deterministically (not cached).
    let (seeds, cap) = if preset.name == "JARVIS-1" {
        (3, 500)
    } else {
        (4, 150)
    };
    let samples = datasets::collect_bc(&tasks, seeds, cap, 0.06, TRAIN_SEED ^ 0xBC);
    let path = cache_file("controller", preset.name);
    if let Ok(tensors) = io::load_tensors(&path) {
        if let Some(model) = controller_from_tensors(preset, &tensors) {
            return (model, samples);
        }
    }
    let mut rng = StdRng::seed_from_u64(TRAIN_SEED ^ 0xC0);
    let mut model = ControllerModel::new(preset, &mut rng);
    model.train(&samples, CONTROLLER_EPOCHS, 2e-3, &mut rng);
    let agree = model.agreement(&samples);
    assert!(
        agree > 0.82,
        "{} controller BC agreement too low ({agree})",
        preset.name
    );
    io::save_tensors(&path, &controller_to_tensors(&model)).ok();
    (model, samples)
}

fn load_or_train_predictor(
    preset: &ControllerPreset,
    controller: &ControllerModel,
    bc_samples: &[BcSample],
) -> EntropyPredictor {
    let path = cache_file("predictor", preset.name);
    if let Ok(tensors) = io::load_tensors(&path) {
        if let Some(model) = predictor_from_tensors(&tensors) {
            return model;
        }
    }
    let tasks = controller_tasks(preset);
    let quant = controller.deploy(bc_samples, Precision::Int8);
    let (seeds, cap) = if preset.name == "JARVIS-1" {
        (2, 400)
    } else {
        (2, 120)
    };
    let samples = datasets::collect_entropy(
        &quant,
        &tasks,
        seeds,
        cap,
        ACT_TEMPERATURE,
        TRAIN_SEED ^ 0xE0,
    );
    let mut rng = StdRng::seed_from_u64(TRAIN_SEED ^ 0xED);
    let mut model = EntropyPredictor::new(vocab::N_SUBTASKS, &mut rng);
    model.train(&samples, PREDICTOR_EPOCHS, 1.5e-3, TRAIN_SEED ^ 0xEE);
    io::save_tensors(&path, &predictor_to_tensors(&model)).ok();
    model
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planner_tensor_roundtrip() {
        let preset = PlannerPreset {
            proxy_layers: 2,
            proxy_hidden: 32,
            proxy_mlp: 64,
            proxy_heads: 4,
            ..PlannerPreset::jarvis()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let model = PlannerModel::new(&preset, &mut rng);
        let tensors = planner_to_tensors(&model);
        let restored = planner_from_tensors(&preset, &tensors).expect("roundtrip");
        assert_eq!(model.embed, restored.embed);
        assert_eq!(model.blocks[1].mlp.wdown.w, restored.blocks[1].mlp.wdown.w);
    }

    #[test]
    fn controller_tensor_roundtrip() {
        let preset = ControllerPreset {
            proxy_layers: 1,
            proxy_hidden: 32,
            proxy_mlp: 64,
            proxy_heads: 4,
            ..ControllerPreset::jarvis()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let model = ControllerModel::new(&preset, &mut rng);
        let tensors = controller_to_tensors(&model);
        let restored = controller_from_tensors(&preset, &tensors).expect("roundtrip");
        assert_eq!(model.cls, restored.cls);
        assert_eq!(model.head.b, restored.head.b);
        assert_eq!(model.blocks[0].mlp.fc1.w, restored.blocks[0].mlp.fc1.w);
    }

    #[test]
    fn predictor_tensor_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = EntropyPredictor::new(8, &mut rng);
        let tensors = predictor_to_tensors(&model);
        let restored = predictor_from_tensors(&tensors).expect("roundtrip");
        let img = create_nn::Tensor3::zeros(3, 64, 64);
        assert_eq!(model.predict(&img, 2), restored.predict(&img, 2));
    }

    #[test]
    fn controller_task_split_by_platform() {
        let jarvis = controller_tasks(&ControllerPreset::jarvis());
        assert!(jarvis.iter().all(|t| t.benchmark() == Benchmark::Minecraft));
        let octo = controller_tasks(&ControllerPreset::octo());
        assert!(octo.iter().all(|t| t.benchmark() != Benchmark::Minecraft));
    }

    #[test]
    fn cache_paths_are_distinct_per_platform() {
        let a = cache_file("planner", "JARVIS-1");
        let b = cache_file("planner", "OpenVLA");
        assert_ne!(a, b);
    }
}
