//! The planner's token vocabulary.
//!
//! Layout: `[0, N_TASKS)` task tokens, `[N_TASKS, N_TASKS+N_SUBTASKS)`
//! subtask tokens, then `SEP`, `EOS`, `PAD`. Planner training sequences are
//! `task ++ completed-subtasks ++ SEP ++ remaining-plan ++ EOS`, so the
//! same model both plans from scratch and replans mid-mission (the paper's
//! planner is re-invoked when a subtask stalls, Sec. 2.1).

use create_env::{Subtask, TaskId, SUBTASK_VOCAB};

/// Number of task tokens.
pub const N_TASKS: usize = TaskId::ALL.len();

/// Number of subtask tokens.
pub const N_SUBTASKS: usize = SUBTASK_VOCAB.len();

/// Separator between context and plan.
pub const SEP: usize = N_TASKS + N_SUBTASKS;

/// End-of-plan token.
pub const EOS: usize = SEP + 1;

/// Padding token.
pub const PAD: usize = EOS + 1;

/// Total vocabulary size.
pub const VOCAB: usize = PAD + 1;

/// Longest sequence the planner supports (context + plan + controls).
pub const MAX_SEQ: usize = 28;

/// Maximum plan length the decoder will emit.
pub const MAX_PLAN: usize = 13;

/// Token id of a task.
pub fn task_token(task: TaskId) -> usize {
    task.token_id()
}

/// Token id of a subtask.
///
/// # Panics
///
/// Panics if `s` is not in [`SUBTASK_VOCAB`].
pub fn subtask_token(s: Subtask) -> usize {
    N_TASKS + s.token_id().expect("subtask must be in SUBTASK_VOCAB")
}

/// Decodes a token into a subtask, if it is a subtask token.
pub fn token_to_subtask(tok: usize) -> Option<Subtask> {
    if (N_TASKS..N_TASKS + N_SUBTASKS).contains(&tok) {
        Subtask::from_token_id(tok - N_TASKS)
    } else {
        None
    }
}

/// Builds the planner input context for (re)planning.
pub fn context_tokens(task: TaskId, completed: &[Subtask]) -> Vec<usize> {
    let mut tokens = Vec::with_capacity(completed.len() + 2);
    tokens.push(task_token(task));
    for &s in completed {
        tokens.push(subtask_token(s));
    }
    tokens.push(SEP);
    tokens
}

/// One teacher-forcing training sample: full token sequence and the index
/// of the first target position (everything after `SEP`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanSample {
    /// Full sequence: context ++ remaining plan ++ EOS.
    pub tokens: Vec<usize>,
    /// Index of `SEP` (targets start at `sep_index + 1`).
    pub sep_index: usize,
}

/// Generates the full planner training set: every task × every replanning
/// split point.
pub fn training_samples() -> Vec<PlanSample> {
    let mut samples = Vec::new();
    for task in TaskId::ALL {
        let plan = task.reference_plan();
        for split in 0..=plan.len() {
            let mut tokens = context_tokens(task, &plan[..split]);
            let sep_index = tokens.len() - 1;
            for &s in &plan[split..] {
                tokens.push(subtask_token(s));
            }
            tokens.push(EOS);
            debug_assert!(tokens.len() <= MAX_SEQ, "sample too long: {}", tokens.len());
            samples.push(PlanSample { tokens, sep_index });
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocab_layout_is_consistent() {
        const { assert!(VOCAB > N_TASKS + N_SUBTASKS) };
        assert_eq!(PAD, VOCAB - 1);
        assert!(SEP > task_token(TaskId::Place));
    }

    #[test]
    fn subtask_tokens_roundtrip() {
        for &s in SUBTASK_VOCAB {
            let tok = subtask_token(s);
            assert_eq!(token_to_subtask(tok), Some(s));
        }
        assert_eq!(token_to_subtask(SEP), None);
        assert_eq!(token_to_subtask(0), None, "task tokens are not subtasks");
    }

    #[test]
    fn context_ends_with_sep() {
        let ctx = context_tokens(TaskId::Wooden, &[]);
        assert_eq!(ctx.len(), 2);
        assert_eq!(*ctx.last().unwrap(), SEP);
    }

    #[test]
    fn training_samples_cover_all_splits() {
        let samples = training_samples();
        let expected: usize = TaskId::ALL
            .iter()
            .map(|t| t.reference_plan().len() + 1)
            .sum();
        assert_eq!(samples.len(), expected);
        for s in &samples {
            assert!(s.tokens.len() <= MAX_SEQ);
            assert_eq!(*s.tokens.last().unwrap(), EOS);
            assert_eq!(s.tokens[s.sep_index], SEP);
        }
    }

    #[test]
    fn full_plan_sample_decodes_back() {
        let samples = training_samples();
        // First sample is wooden with empty context.
        let s = &samples[0];
        let plan: Vec<_> = s.tokens[s.sep_index + 1..s.tokens.len() - 1]
            .iter()
            .map(|&t| token_to_subtask(t).expect("subtask token"))
            .collect();
        assert_eq!(plan, TaskId::Wooden.reference_plan());
    }
}
