//! The LLM-based planner: a decoder-only pre-RMSNorm transformer trained to
//! map `task ++ completed-subtasks` to the remaining plan.
//!
//! Two properties of billion-parameter LLM planners are reproduced
//! mechanistically at proxy scale:
//!
//! 1. **Systematic activation outliers.** Real LLMs develop fixed channels
//!    with magnitudes far above the rest (paper Sec. 4.1, Fig. 5i). We
//!    train with an auxiliary loss that pushes one designated residual
//!    channel toward a large mean value — RMSNorm is scale-invariant, so
//!    the objective coexists with the planning loss and yields genuine,
//!    trained-in outliers whose interaction with normalization under bit
//!    flips is exactly the paper's failure mechanism.
//! 2. **Weight rotation (Sec. 5.2).** [`PlannerModel::rotate_residual`]
//!    folds an orthogonal rotation of the residual stream into embeddings,
//!    projections and the head; with a Hadamard rotation this *is*
//!    weight-rotation-enhanced planning: the function is unchanged (tested
//!    to fp tolerance) while outliers disperse and the profiled AD bounds
//!    tighten.

use crate::presets::PlannerPreset;
use crate::vocab::{self, PlanSample, EOS, MAX_PLAN, MAX_SEQ, PAD, SEP, VOCAB};
use create_accel::{Accelerator, Component, LayerCtx, Unit};
use create_env::{Subtask, TaskId};
use create_nn::activation::softmax_rows_in_place;
use create_nn::block::{ActivationTap, PlannerBlock, PlannerBlockGrads, QuantPlannerBlock};
use create_nn::calibrate::{Cal, PlannerBlockCal};
use create_nn::linear::{Linear, QuantLinear};
use create_nn::norm::{rmsnorm, rmsnorm_backward_into, rmsnorm_into, rmsnorm_with_stats_into};
use create_nn::optim::{AdamState, AdamWConfig};
use create_tensor::hadamard::Rotation;
use create_tensor::{Matrix, Precision};
use rand::seq::SliceRandom;
use rand::Rng;

/// Quantization margin applied to profiled maxima (loose enough that clean
/// data never trips anomaly detection, tight enough to keep bounds useful).
pub const QUANT_MARGIN: f32 = 1.25;

/// Auxiliary-loss specification for planting systematic outliers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutlierSpec {
    /// Residual channel to enlarge.
    pub channel: usize,
    /// Target mean magnitude at the deepest block (shallower blocks scale
    /// linearly toward it).
    pub target: f32,
    /// Loss weight.
    pub weight: f32,
}

impl Default for OutlierSpec {
    fn default() -> Self {
        Self {
            channel: 7,
            target: 60.0,
            weight: 1.0,
        }
    }
}

/// Trainable planner.
#[derive(Debug, Clone)]
pub struct PlannerModel {
    /// Token embedding `(VOCAB, d)`.
    pub embed: Matrix,
    /// Learned positional embedding `(MAX_SEQ, d)`.
    pub pos: Matrix,
    /// Transformer blocks.
    pub blocks: Vec<PlannerBlock>,
    /// Output head `(d, VOCAB)`.
    pub head: Linear,
}

/// AdamW state mirroring [`PlannerModel`]'s parameters.
#[derive(Debug, Default)]
struct PlannerOpt {
    embed: AdamState,
    pos: AdamState,
    head: AdamState,
    blocks: Vec<[AdamState; 7]>,
}

impl PlannerOpt {
    /// Zeroes the moments in place, (re)shaped for `model` — the state of
    /// a freshly built optimizer with the heap buffers kept.
    fn reset_for(&mut self, model: &PlannerModel) {
        self.embed.reset(model.embed.len());
        self.pos.reset(model.pos.len());
        self.head.reset(model.head.w.len());
        self.blocks
            .resize_with(model.blocks.len(), Default::default);
        for (so, b) in self.blocks.iter_mut().zip(&model.blocks) {
            so[0].reset(b.attn.wq.w.len());
            so[1].reset(b.attn.wk.w.len());
            so[2].reset(b.attn.wv.w.len());
            so[3].reset(b.attn.wo.w.len());
            so[4].reset(b.mlp.wgate.w.len());
            so[5].reset(b.mlp.wup.w.len());
            so[6].reset(b.mlp.wdown.w.len());
        }
    }
}

/// Accumulated gradients mirroring [`PlannerModel`]'s parameters.
#[derive(Debug, Default)]
struct PlannerGrads {
    embed: Matrix,
    pos: Matrix,
    head: Matrix,
    blocks: Vec<PlannerBlockGrads>,
}

impl PlannerGrads {
    /// Zeroes every buffer in place, (re)shaped for `model` (identical
    /// contents to freshly built zero gradients, storage kept).
    fn reset_for(&mut self, model: &PlannerModel) {
        self.embed
            .reset_zeros(model.embed.rows(), model.embed.cols());
        self.pos.reset_zeros(model.pos.rows(), model.pos.cols());
        self.head
            .reset_zeros(model.head.w.rows(), model.head.w.cols());
        self.blocks
            .resize_with(model.blocks.len(), Default::default);
        for (g, b) in self.blocks.iter_mut().zip(&model.blocks) {
            g.reset_for(b);
        }
    }

    /// Scales every gradient by `s` in place (bit-identical to the
    /// allocating `scale()` copies the optimizer steps used to take).
    fn scale_in_place(&mut self, s: f32) {
        self.embed.scale_in_place(s);
        self.pos.scale_in_place(s);
        self.head.scale_in_place(s);
        for g in &mut self.blocks {
            g.attn.wq.dw.scale_in_place(s);
            g.attn.wk.dw.scale_in_place(s);
            g.attn.wv.dw.scale_in_place(s);
            g.attn.wo.dw.scale_in_place(s);
            g.mlp.wgate.dw.scale_in_place(s);
            g.mlp.wup.dw.scale_in_place(s);
            g.mlp.wdown.dw.scale_in_place(s);
        }
    }
}

/// Per-sample forward/backward buffers for one teacher-forcing step.
/// Fully overwritten before use; one instance serves every sample a
/// worker claims, across every epoch (buffers warm up to the longest
/// token sequence).
#[derive(Debug, Default)]
struct PlannerFwdScratch {
    x: Matrix,
    x_next: Matrix,
    inputs: Vec<Matrix>,
    caches: Vec<create_nn::block::PlannerBlockCache>,
    block: create_nn::BlockTrainScratch,
    normed: Matrix,
    norm_stats: create_nn::norm::NormStats,
    logits: Matrix,
    probs: Matrix,
    dlogits: Matrix,
    dnormed: Matrix,
    dx: Matrix,
    dx_next: Matrix,
}

/// One sample's gradient contribution, captured by a data-parallel
/// worker and folded into the shared [`PlannerGrads`] **in sample
/// order** by the reducing thread.
///
/// The planner's per-sample contributions decompose cleanly (every
/// block projection is bias-free, so each shared weight-gradient
/// element receives exactly one addend per sample): `head_dw` stores
/// the raw head GEMM product, `blocks` the per-sample block gradients
/// accumulated from zero by the unchanged nn kernels (`0.0 + p` vs `p`
/// differs only in zero signs, which cannot change the shared sums —
/// see `ControllerSampleDelta`), and `dx` the final input gradient so
/// the fold can replay the embedding/positional scatter exactly (a
/// token repeated within one sample folds its rows in row order, as
/// the sequential loop does).
#[derive(Debug, Default)]
struct PlannerSampleDelta {
    loss: f32,
    /// Head weight-gradient product `normedᵀ @ dlogits`.
    head_dw: Matrix,
    /// The sample's full input gradient (embed/pos scatter replay).
    dx: Matrix,
    /// Per-block gradients accumulated from zero by the nn kernels.
    blocks: Vec<PlannerBlockGrads>,
}

/// Reusable training state for [`PlannerModel::train_with`]: AdamW
/// moments, accumulated gradients, the shuffled sample order, one
/// forward/backward scratch per worker thread and one gradient delta per
/// minibatch slot.
///
/// All buffers are value-reset at the start of each training run and
/// fully overwritten during it, so reusing one instance is bit-identical
/// to training with fresh buffers — after a warm-up run, a worker's
/// train step performs **no heap allocation** (pinned by
/// `crates/agents/tests/train_alloc.rs` on the inline single-worker
/// path, which runs the identical per-sample code).
#[derive(Debug, Default)]
pub struct PlannerTrainScratch {
    opt: PlannerOpt,
    grads: PlannerGrads,
    order: Vec<usize>,
    workers: Vec<PlannerFwdScratch>,
    deltas: Vec<PlannerSampleDelta>,
}

impl PlannerModel {
    /// Randomly initialized planner for `preset`'s proxy architecture.
    pub fn new(preset: &PlannerPreset, rng: &mut impl Rng) -> Self {
        let d = preset.proxy_hidden;
        Self {
            embed: Matrix::random_uniform(VOCAB, d, 0.5, rng),
            pos: Matrix::random_uniform(MAX_SEQ, d, 0.1, rng),
            blocks: (0..preset.proxy_layers)
                .map(|_| PlannerBlock::new(d, preset.proxy_mlp, preset.proxy_heads, rng))
                .collect(),
            head: Linear::new(d, VOCAB, false, rng),
        }
    }

    /// Model width.
    pub fn width(&self) -> usize {
        self.embed.cols()
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        let block: usize = self
            .blocks
            .iter()
            .map(|b| {
                b.attn.wq.w.len()
                    + b.attn.wk.w.len()
                    + b.attn.wv.w.len()
                    + b.attn.wo.w.len()
                    + b.mlp.wgate.w.len()
                    + b.mlp.wup.w.len()
                    + b.mlp.wdown.w.len()
            })
            .sum();
        self.embed.len() + self.pos.len() + self.head.w.len() + block
    }

    /// Embeds a token sequence (token + positional embeddings).
    fn embed_tokens(&self, tokens: &[usize]) -> Matrix {
        let d = self.width();
        Matrix::from_fn(tokens.len(), d, |r, c| {
            self.embed.get(tokens[r], c) + self.pos.get(r, c)
        })
    }

    /// Full-sequence logits in f32.
    pub fn forward(&self, tokens: &[usize]) -> Matrix {
        let mut x = self.embed_tokens(tokens);
        for block in &self.blocks {
            let (z, _) = block.forward(&x);
            x = z;
        }
        self.head.forward(&rmsnorm(&x))
    }

    /// Embeds a token sequence into a reused matrix (identical values to
    /// [`embed_tokens`](Self::embed_tokens)).
    fn embed_tokens_into(&self, tokens: &[usize], out: &mut Matrix) {
        let d = self.width();
        out.reset_zeros(tokens.len(), d);
        for (r, &tok) in tokens.iter().enumerate() {
            for c in 0..d {
                out.set(r, c, self.embed.get(tok, c) + self.pos.get(r, c));
            }
        }
    }

    /// One teacher-forcing sample: computes the CE loss and captures the
    /// sample's gradient contribution into a [`PlannerSampleDelta`] — the
    /// data-parallel worker half of the train step.
    /// [`fold_sample_delta`](Self::fold_sample_delta) applies the capture
    /// to the shared gradients in sample order; together they are
    /// bit-identical to the historical sequential accumulation (pinned by
    /// the `train_matches_allocating_reference` test below).
    ///
    /// Every temporary lives in `fwd` or `delta` (value-reset before
    /// use), so a warmed-up call allocates nothing.
    fn backprop_sample_delta(
        &self,
        sample: &PlanSample,
        outlier: Option<OutlierSpec>,
        delta: &mut PlannerSampleDelta,
        fwd: &mut PlannerFwdScratch,
    ) {
        let tokens = &sample.tokens;
        let t_len = tokens.len();
        self.embed_tokens_into(tokens, &mut fwd.x);
        fwd.inputs.resize_with(self.blocks.len(), Matrix::default);
        fwd.caches.resize_with(self.blocks.len(), Default::default);
        delta
            .blocks
            .resize_with(self.blocks.len(), Default::default);
        for (g, b) in delta.blocks.iter_mut().zip(&self.blocks) {
            g.reset_for(b);
        }
        {
            let PlannerFwdScratch {
                x,
                x_next,
                inputs,
                caches,
                block,
                ..
            } = fwd;
            for (l, blk) in self.blocks.iter().enumerate() {
                inputs[l].copy_from(x);
                blk.forward_cached(x, &mut caches[l], block, x_next);
                std::mem::swap(x, x_next);
            }
        }
        rmsnorm_with_stats_into(&fwd.x, &mut fwd.normed, &mut fwd.norm_stats);
        self.head.forward_into(&fwd.normed, &mut fwd.logits);
        fwd.probs.copy_from(&fwd.logits);
        softmax_rows_in_place(&mut fwd.probs);

        // CE on target positions: predict tokens[p+1] from position p.
        let first = sample.sep_index;
        let n_targets = (t_len - 1 - first) as f32;
        fwd.dlogits.reset_zeros(t_len, VOCAB);
        let mut loss = 0.0;
        for p in first..t_len - 1 {
            let target = tokens[p + 1];
            loss -= fwd.probs.get(p, target).max(1e-9).ln() / n_targets;
            for vtok in 0..VOCAB {
                let grad =
                    (fwd.probs.get(p, vtok) - if vtok == target { 1.0 } else { 0.0 }) / n_targets;
                fwd.dlogits.set(p, vtok, grad);
            }
        }

        // Backward: head -> final norm -> blocks (+ outlier aux) -> embed.
        // The head is bias-free, so its capture is the raw GEMM product;
        // `dnormed` is the same input gradient `Linear::backward_with`
        // computes.
        fwd.normed.matmul_tn_into(&fwd.dlogits, &mut delta.head_dw);
        fwd.dlogits.matmul_nt_into(&self.head.w, &mut fwd.dnormed);
        rmsnorm_backward_into(&fwd.normed, &fwd.norm_stats, &fwd.dnormed, &mut fwd.dx);
        let mut aux_loss = 0.0;
        for l in (0..self.blocks.len()).rev() {
            {
                let PlannerFwdScratch {
                    dx,
                    dx_next,
                    caches,
                    block,
                    ..
                } = fwd;
                self.blocks[l].backward_with(&caches[l], dx, &mut delta.blocks[l], block, dx_next);
                std::mem::swap(dx, dx_next);
            }
            // Outliers accumulate along the residual stream in real LLMs,
            // so the auxiliary loss targets the inputs of deep blocks only
            // (the embedding level stays outlier-free).
            if let (Some(spec), true) = (outlier, l > 0) {
                // Aux loss on the block *input*, per token row:
                // mean_r (x[r,k] - target_l)² — every token is pushed to
                // carry the outlier channel, which is what makes the
                // outliers *systematic* (fixed channels, all tokens).
                let target_l = spec.target * l as f32 / (self.blocks.len() - 1).max(1) as f32;
                let x_l = &fwd.inputs[l];
                let n = x_l.rows() as f32;
                for r in 0..x_l.rows() {
                    let v = x_l.get(r, spec.channel);
                    aux_loss += spec.weight * (v - target_l) * (v - target_l) / n;
                    let g = spec.weight * 2.0 * (v - target_l) / n;
                    let cur = fwd.dx.get(r, spec.channel);
                    fwd.dx.set(r, spec.channel, cur + g);
                }
            }
        }
        // Embedding/positional gradients scatter from `dx`; keep it for
        // the ordered fold.
        delta.dx.copy_from(&fwd.dx);
        delta.loss = loss + aux_loss;
    }

    /// Folds one captured sample delta into the shared gradients,
    /// replaying the sequential loop's additions addend for addend (see
    /// [`PlannerSampleDelta`]); returns the sample's loss. Called in
    /// sample order by the reducing thread.
    fn fold_sample_delta(
        &self,
        sample: &PlanSample,
        delta: &PlannerSampleDelta,
        grads: &mut PlannerGrads,
    ) -> f32 {
        grads.head.add_assign(&delta.head_dw);
        for l in (0..self.blocks.len()).rev() {
            let g = &delta.blocks[l];
            let sh = &mut grads.blocks[l];
            sh.mlp.wdown.dw.add_assign(&g.mlp.wdown.dw);
            sh.mlp.wgate.dw.add_assign(&g.mlp.wgate.dw);
            sh.mlp.wup.dw.add_assign(&g.mlp.wup.dw);
            sh.attn.wo.dw.add_assign(&g.attn.wo.dw);
            sh.attn.wq.dw.add_assign(&g.attn.wq.dw);
            sh.attn.wk.dw.add_assign(&g.attn.wk.dw);
            sh.attn.wv.dw.add_assign(&g.attn.wv.dw);
        }
        for (r, &tok) in sample.tokens.iter().enumerate() {
            for c in 0..self.width() {
                let g = delta.dx.get(r, c);
                grads.embed.set(tok, c, grads.embed.get(tok, c) + g);
                grads.pos.set(r, c, grads.pos.get(r, c) + g);
            }
        }
        delta.loss
    }

    /// Trains with AdamW on `samples` for `epochs` epochs; returns the
    /// final epoch's mean loss.
    pub fn train(
        &mut self,
        samples: &[PlanSample],
        epochs: usize,
        lr: f32,
        outlier: Option<OutlierSpec>,
        rng: &mut impl Rng,
    ) -> f32 {
        self.train_with(
            samples,
            epochs,
            lr,
            outlier,
            rng,
            &mut PlannerTrainScratch::default(),
        )
    }

    /// [`train`](Self::train) with caller-provided training scratch,
    /// data-parallel over the `CREATE_THREADS` worker pool (see
    /// [`train_with_threads`](Self::train_with_threads)).
    ///
    /// Bit-identical to `train` (the scratch is value-reset up front):
    /// same RNG draw order, same losses, same final weights. Reusing one
    /// scratch across runs keeps the steady-state train step free of heap
    /// allocation — AdamW moments, gradient accumulators and every
    /// forward/backward temporary live in `scratch` and survive across
    /// epochs.
    pub fn train_with(
        &mut self,
        samples: &[PlanSample],
        epochs: usize,
        lr: f32,
        outlier: Option<OutlierSpec>,
        rng: &mut impl Rng,
        scratch: &mut PlannerTrainScratch,
    ) -> f32 {
        self.train_with_threads(
            samples,
            epochs,
            lr,
            outlier,
            rng,
            create_tensor::par::default_threads(),
            scratch,
        )
    }

    /// [`train_with`](Self::train_with) with an explicit worker count.
    ///
    /// Spawns one persistent [`create_tensor::par::WorkerPool`] for the
    /// whole call — workers park on a condvar between minibatch chunks
    /// instead of being spawned and joined per chunk, removing the
    /// ~10%-of-a-train-step thread-churn overhead the committed baselines
    /// measured. With `threads == 1` the pool runs inline on the calling
    /// thread and no threads are spawned.
    pub fn train_with_threads(
        &mut self,
        samples: &[PlanSample],
        epochs: usize,
        lr: f32,
        outlier: Option<OutlierSpec>,
        rng: &mut impl Rng,
        threads: usize,
        scratch: &mut PlannerTrainScratch,
    ) -> f32 {
        let mut pool = create_tensor::par::WorkerPool::new(threads);
        self.train_with_mapper(samples, epochs, lr, outlier, rng, &mut pool, scratch)
    }

    /// [`train_with_threads`](Self::train_with_threads) with an explicit
    /// chunk-fan-out strategy (any [`MinibatchMap`]): the persistent
    /// [`WorkerPool`](create_tensor::par::WorkerPool) in production, or
    /// [`SpawnPerChunk`](create_tensor::par::SpawnPerChunk) when the
    /// `train` bench measures the pool against the old behaviour.
    ///
    /// Each minibatch fans its per-sample forward/backward passes over
    /// the mapper's workers; each worker owns one forward/backward
    /// scratch and writes one [`PlannerSampleDelta`] per sample, and the
    /// deltas are folded into the shared gradients **in sample order**
    /// before the AdamW step. The fold replays the sequential loop's
    /// additions exactly, so losses and final weights are
    /// **bit-identical for every mapper and worker count** (pinned by
    /// the thread-parity test below and by
    /// `train_matches_allocating_reference_bit_for_bit` against the
    /// pre-refactor loop).
    pub fn train_with_mapper(
        &mut self,
        samples: &[PlanSample],
        epochs: usize,
        lr: f32,
        outlier: Option<OutlierSpec>,
        rng: &mut impl Rng,
        mapper: &mut impl create_tensor::par::MinibatchMap,
        scratch: &mut PlannerTrainScratch,
    ) -> f32 {
        let cfg = AdamWConfig {
            lr,
            weight_decay: 1e-4,
            ..AdamWConfig::default()
        };
        let PlannerTrainScratch {
            opt,
            grads,
            order,
            workers,
            deltas,
        } = scratch;
        opt.reset_for(self);
        order.clear();
        order.extend(0..samples.len());
        let batch = 16usize;
        workers.resize_with(mapper.workers(), Default::default);
        deltas.resize_with(batch.min(samples.len().max(1)), Default::default);
        // Shuffling maps samples to different delta slots every epoch, so
        // pre-size the only length-dependent delta buffer to the longest
        // sequence — otherwise a slot could first meet the longest sample
        // after warm-up and reallocate. Contents are fully overwritten
        // before every read.
        let max_t = samples.iter().map(|s| s.tokens.len()).max().unwrap_or(0);
        for delta in deltas.iter_mut() {
            delta.dx.reset_zeros(max_t, self.width());
        }
        let mut step = 0u64;
        let mut last_loss = f32::INFINITY;
        for _epoch in 0..epochs {
            order.shuffle(rng);
            let mut epoch_loss = 0.0;
            for chunk in order.chunks(batch) {
                grads.reset_for(self);
                let model = &*self;
                let slots = &mut deltas[..chunk.len()];
                mapper.map(slots, workers, |pos, delta, fwd| {
                    model.backprop_sample_delta(&samples[chunk[pos]], outlier, delta, fwd);
                });
                for (delta, &i) in slots.iter().zip(chunk) {
                    epoch_loss += model.fold_sample_delta(&samples[i], delta, grads);
                }
                grads.scale_in_place(1.0 / chunk.len() as f32);
                step += 1;
                opt.embed
                    .step_matrix(&mut self.embed, &grads.embed, &cfg, step);
                opt.pos.step_matrix(&mut self.pos, &grads.pos, &cfg, step);
                opt.head
                    .step_matrix(&mut self.head.w, &grads.head, &cfg, step);
                for (l, b) in self.blocks.iter_mut().enumerate() {
                    let g = &grads.blocks[l];
                    let s = &mut opt.blocks[l];
                    s[0].step_matrix(&mut b.attn.wq.w, &g.attn.wq.dw, &cfg, step);
                    s[1].step_matrix(&mut b.attn.wk.w, &g.attn.wk.dw, &cfg, step);
                    s[2].step_matrix(&mut b.attn.wv.w, &g.attn.wv.dw, &cfg, step);
                    s[3].step_matrix(&mut b.attn.wo.w, &g.attn.wo.dw, &cfg, step);
                    s[4].step_matrix(&mut b.mlp.wgate.w, &g.mlp.wgate.dw, &cfg, step);
                    s[5].step_matrix(&mut b.mlp.wup.w, &g.mlp.wup.dw, &cfg, step);
                    s[6].step_matrix(&mut b.mlp.wdown.w, &g.mlp.wdown.dw, &cfg, step);
                }
            }
            last_loss = epoch_loss / samples.len() as f32;
        }
        last_loss
    }

    /// Greedy-decodes a plan in f32 (training-time check).
    pub fn decode_f32(&self, task: TaskId, completed: &[Subtask]) -> Vec<Subtask> {
        let mut tokens = vocab::context_tokens(task, completed);
        let mut plan = Vec::new();
        for _ in 0..MAX_PLAN {
            if tokens.len() >= MAX_SEQ {
                break;
            }
            let logits = self.forward(&tokens);
            let last = logits.row(logits.rows() - 1);
            let tok = argmax(last);
            if tok == EOS || tok == PAD || tok == SEP {
                break;
            }
            tokens.push(tok);
            if let Some(st) = vocab::token_to_subtask(tok) {
                plan.push(st);
            }
        }
        plan
    }

    /// Fraction of training samples whose full remaining plan is decoded
    /// exactly (f32).
    pub fn plan_accuracy(&self, samples: &[PlanSample]) -> f32 {
        let mut correct = 0;
        for s in samples {
            let mut tokens = s.tokens[..=s.sep_index].to_vec();
            let expect = &s.tokens[s.sep_index + 1..];
            let mut ok = true;
            for &want in expect {
                let logits = self.forward(&tokens);
                let got = argmax(logits.row(logits.rows() - 1));
                if got != want {
                    ok = false;
                    break;
                }
                if got == EOS {
                    break;
                }
                tokens.push(got);
            }
            if ok {
                correct += 1;
            }
        }
        correct as f32 / samples.len().max(1) as f32
    }

    /// Folds an orthogonal rotation of the residual stream into all
    /// weights; the network function is unchanged.
    pub fn rotate_residual(&mut self, rot: &Rotation) {
        assert_eq!(rot.dim(), self.width(), "rotation width mismatch");
        self.embed = rot.apply_right(&self.embed);
        self.pos = rot.apply_right(&self.pos);
        for b in &mut self.blocks {
            b.attn.wq.w = rot.fold_into_input(&b.attn.wq.w);
            b.attn.wk.w = rot.fold_into_input(&b.attn.wk.w);
            b.attn.wv.w = rot.fold_into_input(&b.attn.wv.w);
            b.attn.wo.w = rot.fold_into_output(&b.attn.wo.w);
            b.mlp.wgate.w = rot.fold_into_input(&b.mlp.wgate.w);
            b.mlp.wup.w = rot.fold_into_input(&b.mlp.wup.w);
            b.mlp.wdown.w = rot.fold_into_output(&b.mlp.wdown.w);
        }
        self.head.w = rot.fold_into_input(&self.head.w);
    }

    /// Measures the residual-stream outlier ratio: the mean over tokens of
    /// `max|activation| / rms(activation)` within each token vector, across
    /// all block inputs on `samples`.
    ///
    /// Channel outliers live *within* token vectors (fixed channels carry
    /// magnitudes far above the rest), so the per-row peak-to-RMS ratio is
    /// the right spikiness measure: a Gaussian row sits near
    /// `sqrt(2 ln d)`, a single-channel spike approaches `sqrt(d)`, and a
    /// Hadamard rotation provably flattens spikes back toward the Gaussian
    /// level while preserving row norms.
    pub fn outlier_ratio(&self, samples: &[PlanSample]) -> f32 {
        let mut ratio_sum = 0.0f64;
        let mut rows = 0u64;
        let mut record = |x: &Matrix| {
            for r in 0..x.rows() {
                let row = x.row(r);
                let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / x.cols() as f32;
                let peak = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
                if ms > 1e-12 {
                    ratio_sum += (peak / ms.sqrt()) as f64;
                    rows += 1;
                }
            }
        };
        for s in samples {
            let mut x = self.embed_tokens(&s.tokens);
            for (l, block) in self.blocks.iter().enumerate() {
                // Skip the embedding-level input: LLM outliers accumulate
                // along the residual stream, so the paper's pre-norm sites
                // are the deeper block inputs and the final-norm input.
                if l > 0 {
                    record(&x);
                }
                let (z, _) = block.forward(&x);
                x = z;
            }
            record(&x);
        }
        if rows == 0 {
            return 0.0;
        }
        (ratio_sum / rows as f64) as f32
    }

    /// Calibrates on `samples` and quantizes for deployment.
    pub fn deploy(&self, samples: &[PlanSample], precision: Precision) -> QuantPlanner {
        let mut block_cals = vec![PlannerBlockCal::default(); self.blocks.len()];
        let mut head_cal = Cal::default();
        for s in samples {
            let mut x = self.embed_tokens(&s.tokens);
            for (l, block) in self.blocks.iter().enumerate() {
                x = block.forward_calibrate(&x, &mut block_cals[l]);
            }
            let normed = rmsnorm(&x);
            let logits = self.head.forward(&normed);
            head_cal.update(normed.max_abs(), logits.max_abs());
        }
        QuantPlanner {
            embed: self.embed.clone(),
            pos: self.pos.clone(),
            blocks: self
                .blocks
                .iter()
                .zip(&block_cals)
                .map(|(b, cal)| QuantPlannerBlock::from_block_cal(b, cal, QUANT_MARGIN, precision))
                .collect(),
            head: QuantLinear::from_calibrated(
                &self.head,
                head_cal.input,
                head_cal.output,
                QUANT_MARGIN,
                precision,
            ),
        }
    }
}

/// Reusable buffers for the deployed planner's sequential decode loop.
///
/// One instance serves a whole mission (initial plan plus every replan):
/// the sequence buffers grow to the longest decoded context once and are
/// then reused for every token step, so steady-state decoding performs no
/// heap allocation beyond the returned plan. Contents never influence
/// results.
#[derive(Debug, Default)]
pub struct PlannerScratch {
    tokens: Vec<usize>,
    x: Matrix,
    x_next: Matrix,
    block: create_nn::QuantPlannerBlockScratch,
    normed: Matrix,
    last: Matrix,
    logits: Matrix,
}

/// Deployed, quantized planner executing on the accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantPlanner {
    embed: Matrix,
    pos: Matrix,
    blocks: Vec<QuantPlannerBlock>,
    head: QuantLinear,
}

impl QuantPlanner {
    /// Number of transformer blocks.
    pub fn depth(&self) -> usize {
        self.blocks.len()
    }

    /// Visits every stored INT8 weight matrix in deployment order.
    ///
    /// Hook for the memory-resilience extension (see
    /// [`QuantController::visit_weights_mut`](crate::controller::QuantController::visit_weights_mut)).
    pub fn visit_weights_mut(&mut self, mut f: impl FnMut(&mut create_tensor::QuantMatrix)) {
        for b in &mut self.blocks {
            f(b.attn.wq.weight_mut());
            f(b.attn.wk.weight_mut());
            f(b.attn.wv.weight_mut());
            f(b.attn.wo.weight_mut());
            f(b.wgate.weight_mut());
            f(b.wup.weight_mut());
            f(b.wdown.weight_mut());
        }
        f(self.head.weight_mut());
    }

    /// Embeds a token sequence (token + positional) into a reused matrix.
    fn embed_tokens_into(&self, tokens: &[usize], out: &mut Matrix) {
        let d = self.embed.cols();
        out.reset_zeros(tokens.len(), d);
        for (r, &tok) in tokens.iter().enumerate() {
            for c in 0..d {
                out.set(r, c, self.embed.get(tok, c) + self.pos.get(r, c));
            }
        }
    }

    /// Runs the stack and returns the last position's logits; optionally
    /// taps pre-norm residual activations (Fig. 5 i–l).
    pub fn last_logits(
        &self,
        accel: &mut Accelerator,
        tokens: &[usize],
        tap: Option<&mut ActivationTap>,
    ) -> Vec<f32> {
        let mut scratch = PlannerScratch::default();
        self.last_logits_with(accel, tokens, tap, &mut scratch)
    }

    /// [`last_logits`](Self::last_logits) with caller-provided scratch —
    /// bit-identical, allocation-free except for the returned vector.
    pub fn last_logits_with(
        &self,
        accel: &mut Accelerator,
        tokens: &[usize],
        tap: Option<&mut ActivationTap>,
        scratch: &mut PlannerScratch,
    ) -> Vec<f32> {
        self.last_logits_into(accel, tokens, tap, scratch);
        scratch.logits.row(0).to_vec()
    }

    /// Runs the stack, leaving the last position's logits in
    /// `scratch.logits` (1 × `VOCAB`). Everything lives in reused
    /// storage.
    fn last_logits_into(
        &self,
        accel: &mut Accelerator,
        tokens: &[usize],
        mut tap: Option<&mut ActivationTap>,
        scratch: &mut PlannerScratch,
    ) {
        self.embed_tokens_into(tokens, &mut scratch.x);
        let PlannerScratch {
            x, x_next, block, ..
        } = scratch;
        for (l, blk) in self.blocks.iter().enumerate() {
            blk.forward_into(accel, x, l, tap.as_deref_mut(), block, x_next);
            std::mem::swap(x, x_next);
        }
        rmsnorm_into(&scratch.x, &mut scratch.normed);
        scratch.normed.rows_range_into(
            scratch.normed.rows() - 1,
            scratch.normed.rows(),
            &mut scratch.last,
        );
        self.head.forward_into(
            accel,
            &scratch.last,
            LayerCtx::new(Unit::Planner, Component::Head, self.blocks.len()),
            &mut scratch.logits,
        );
    }

    /// Greedy-decodes a plan on the accelerator.
    ///
    /// Non-subtask tokens are skipped; decoding stops at `EOS`/`SEP`/`PAD`,
    /// when the sequence fills, or after [`MAX_PLAN`] tokens. An empty
    /// decode yields `[Idle]` (the agent burns a subtask window, mirroring
    /// a nonsense plan from a corrupted LLM).
    pub fn decode(
        &self,
        accel: &mut Accelerator,
        task: TaskId,
        completed: &[Subtask],
    ) -> Vec<Subtask> {
        let mut scratch = PlannerScratch::default();
        self.decode_with(accel, task, completed, &mut scratch)
    }

    /// [`decode`](Self::decode) with caller-provided scratch — the same
    /// greedy decode, token for token, with every per-step temporary
    /// (embeddings, block activations, logits) in reused storage. Only
    /// the returned plan allocates in steady state.
    pub fn decode_with(
        &self,
        accel: &mut Accelerator,
        task: TaskId,
        completed: &[Subtask],
        scratch: &mut PlannerScratch,
    ) -> Vec<Subtask> {
        let mut tokens = std::mem::take(&mut scratch.tokens);
        tokens.clear();
        tokens.extend_from_slice(&vocab::context_tokens(task, completed));
        let mut plan = Vec::new();
        for _ in 0..MAX_PLAN {
            if tokens.len() >= MAX_SEQ {
                break;
            }
            self.last_logits_into(accel, &tokens, None, scratch);
            let tok = argmax(scratch.logits.row(0));
            if tok == EOS || tok == PAD || tok == SEP {
                break;
            }
            tokens.push(tok);
            if let Some(st) = vocab::token_to_subtask(tok) {
                plan.push(st);
            }
        }
        scratch.tokens = tokens;
        if plan.is_empty() {
            plan.push(Subtask::Idle);
        }
        plan
    }

    /// Pre-sizes `scratch` for this model by running one clean decode of
    /// `task`'s initial plan through a throwaway error-free accelerator,
    /// so a serving worker's first real request pays no buffer growth.
    /// Scratch contents never influence outcomes, so warming cannot
    /// change any subsequent result.
    pub fn warm(&self, task: TaskId, scratch: &mut PlannerScratch) {
        let mut accel = Accelerator::new(create_accel::AccelConfig::default(), 0);
        let _ = self.decode_with(&mut accel, task, &[], scratch);
    }

    /// The AD output bound profiled for a component at block `layer`
    /// (used to demonstrate WR tightening the bounds).
    pub fn ad_bound(&self, layer: usize, component: Component) -> f32 {
        let b = &self.blocks[layer];
        match component {
            Component::Q => b.attn.wq.out_bound(),
            Component::K => b.attn.wk.out_bound(),
            Component::V => b.attn.wv.out_bound(),
            Component::O => b.attn.wo.out_bound(),
            Component::Gate => b.wgate.out_bound(),
            Component::Up => b.wup.out_bound(),
            Component::Down => b.wdown.out_bound(),
            _ => self.head.out_bound(),
        }
    }
}

fn argmax(values: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in values.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A small planner + few-task sample set that trains in seconds.
    fn tiny_setup() -> (PlannerModel, Vec<PlanSample>) {
        let preset = PlannerPreset {
            proxy_layers: 2,
            proxy_hidden: 32,
            proxy_mlp: 64,
            proxy_heads: 4,
            ..PlannerPreset::jarvis()
        };
        let mut rng = StdRng::seed_from_u64(42);
        let model = PlannerModel::new(&preset, &mut rng);
        let samples: Vec<PlanSample> = vocab::training_samples()
            .into_iter()
            .filter(|s| {
                s.tokens[0] == vocab::task_token(TaskId::Wooden)
                    || s.tokens[0] == vocab::task_token(TaskId::Log)
                    || s.tokens[0] == vocab::task_token(TaskId::Button)
            })
            .collect();
        (model, samples)
    }

    /// The pre-refactor *training loop*, kept verbatim as the reference
    /// the scratch-threaded `train_with` must reproduce bit for bit
    /// (same RNG draw order, same losses, same final weights). This pins
    /// the loop-level refactor (scratch reuse, grads reset/scale,
    /// optimizer stepping); the shared nn kernels it calls are pinned
    /// against frozen pre-refactor copies in
    /// `crates/nn/tests/legacy_parity.rs`.
    fn train_allocating_reference(
        model: &mut PlannerModel,
        samples: &[PlanSample],
        epochs: usize,
        lr: f32,
        outlier: Option<OutlierSpec>,
        rng: &mut impl Rng,
    ) -> f32 {
        use create_nn::norm::{rmsnorm_backward, rmsnorm_with_stats};
        use create_nn::softmax_rows;
        let backprop =
            |model: &PlannerModel, sample: &PlanSample, grads: &mut PlannerGrads| -> f32 {
                let tokens = &sample.tokens;
                let t_len = tokens.len();
                let mut x = model.embed_tokens(tokens);
                let mut inputs = Vec::with_capacity(model.blocks.len());
                let mut caches = Vec::with_capacity(model.blocks.len());
                for block in &model.blocks {
                    inputs.push(x.clone());
                    let (z, cache) = block.forward(&x);
                    caches.push(cache);
                    x = z;
                }
                let (normed, norm_stats) = rmsnorm_with_stats(&x);
                let logits = model.head.forward(&normed);
                let probs = softmax_rows(&logits);
                let first = sample.sep_index;
                let n_targets = (t_len - 1 - first) as f32;
                let mut dlogits = Matrix::zeros(t_len, VOCAB);
                let mut loss = 0.0;
                for p in first..t_len - 1 {
                    let target = tokens[p + 1];
                    loss -= probs.get(p, target).max(1e-9).ln() / n_targets;
                    for vtok in 0..VOCAB {
                        let grad = (probs.get(p, vtok) - if vtok == target { 1.0 } else { 0.0 })
                            / n_targets;
                        dlogits.set(p, vtok, grad);
                    }
                }
                let mut head_grads = create_nn::linear::LinearGrads {
                    dw: Matrix::zeros(model.head.w.rows(), model.head.w.cols()),
                    db: None,
                };
                let dnormed = model.head.backward(&normed, &dlogits, &mut head_grads);
                grads.head.add_assign(&head_grads.dw);
                let mut dx = rmsnorm_backward(&normed, &norm_stats, &dnormed);
                let mut aux_loss = 0.0;
                for l in (0..model.blocks.len()).rev() {
                    dx = model.blocks[l].backward(&caches[l], &dx, &mut grads.blocks[l]);
                    if let (Some(spec), true) = (outlier, l > 0) {
                        let target_l =
                            spec.target * l as f32 / (model.blocks.len() - 1).max(1) as f32;
                        let x_l = &inputs[l];
                        let n = x_l.rows() as f32;
                        for r in 0..x_l.rows() {
                            let v = x_l.get(r, spec.channel);
                            aux_loss += spec.weight * (v - target_l) * (v - target_l) / n;
                            let g = spec.weight * 2.0 * (v - target_l) / n;
                            let cur = dx.get(r, spec.channel);
                            dx.set(r, spec.channel, cur + g);
                        }
                    }
                }
                for (r, &tok) in tokens.iter().enumerate() {
                    for c in 0..model.width() {
                        let g = dx.get(r, c);
                        grads.embed.set(tok, c, grads.embed.get(tok, c) + g);
                        grads.pos.set(r, c, grads.pos.get(r, c) + g);
                    }
                }
                loss + aux_loss
            };
        let cfg = AdamWConfig {
            lr,
            weight_decay: 1e-4,
            ..AdamWConfig::default()
        };
        let mut opt = PlannerOpt::default();
        opt.reset_for(model);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let batch = 16usize;
        let mut step = 0u64;
        let mut last_loss = f32::INFINITY;
        for _epoch in 0..epochs {
            order.shuffle(rng);
            let mut epoch_loss = 0.0;
            for chunk in order.chunks(batch) {
                let mut grads = PlannerGrads::default();
                grads.reset_for(model);
                for &i in chunk {
                    epoch_loss += backprop(model, &samples[i], &mut grads);
                }
                let scale = 1.0 / chunk.len() as f32;
                step += 1;
                opt.embed
                    .step_matrix(&mut model.embed, &grads.embed.scale(scale), &cfg, step);
                opt.pos
                    .step_matrix(&mut model.pos, &grads.pos.scale(scale), &cfg, step);
                opt.head
                    .step_matrix(&mut model.head.w, &grads.head.scale(scale), &cfg, step);
                for (l, b) in model.blocks.iter_mut().enumerate() {
                    let g = &grads.blocks[l];
                    let s = &mut opt.blocks[l];
                    s[0].step_matrix(&mut b.attn.wq.w, &g.attn.wq.dw.scale(scale), &cfg, step);
                    s[1].step_matrix(&mut b.attn.wk.w, &g.attn.wk.dw.scale(scale), &cfg, step);
                    s[2].step_matrix(&mut b.attn.wv.w, &g.attn.wv.dw.scale(scale), &cfg, step);
                    s[3].step_matrix(&mut b.attn.wo.w, &g.attn.wo.dw.scale(scale), &cfg, step);
                    s[4].step_matrix(&mut b.mlp.wgate.w, &g.mlp.wgate.dw.scale(scale), &cfg, step);
                    s[5].step_matrix(&mut b.mlp.wup.w, &g.mlp.wup.dw.scale(scale), &cfg, step);
                    s[6].step_matrix(&mut b.mlp.wdown.w, &g.mlp.wdown.dw.scale(scale), &cfg, step);
                }
            }
            last_loss = epoch_loss / samples.len() as f32;
        }
        last_loss
    }

    #[test]
    fn train_matches_allocating_reference_bit_for_bit() {
        let (base, samples) = tiny_setup();
        let spec = OutlierSpec {
            channel: 3,
            target: 20.0,
            weight: 0.5,
        };
        for outlier in [None, Some(spec)] {
            let mut scratch_model = base.clone();
            let mut ref_model = base.clone();
            let mut rng_a = StdRng::seed_from_u64(9);
            let mut rng_b = StdRng::seed_from_u64(9);
            // Reuse one (dirtied) scratch to also pin that scratch reuse
            // cannot leak state between trainings.
            let mut scratch = PlannerTrainScratch::default();
            let _ = base.clone().train_with(
                &samples[..4],
                1,
                3e-3,
                None,
                &mut StdRng::seed_from_u64(1),
                &mut scratch,
            );
            let loss_a =
                scratch_model.train_with(&samples, 3, 3e-3, outlier, &mut rng_a, &mut scratch);
            let loss_b =
                train_allocating_reference(&mut ref_model, &samples, 3, 3e-3, outlier, &mut rng_b);
            assert_eq!(loss_a.to_bits(), loss_b.to_bits(), "losses must match");
            assert_eq!(scratch_model.embed, ref_model.embed);
            assert_eq!(scratch_model.pos, ref_model.pos);
            assert_eq!(scratch_model.head.w, ref_model.head.w);
            for (a, b) in scratch_model.blocks.iter().zip(&ref_model.blocks) {
                assert_eq!(a.attn.wq.w, b.attn.wq.w);
                assert_eq!(a.attn.wk.w, b.attn.wk.w);
                assert_eq!(a.attn.wv.w, b.attn.wv.w);
                assert_eq!(a.attn.wo.w, b.attn.wo.w);
                assert_eq!(a.mlp.wgate.w, b.mlp.wgate.w);
                assert_eq!(a.mlp.wup.w, b.mlp.wup.w);
                assert_eq!(a.mlp.wdown.w, b.mlp.wdown.w);
            }
        }
    }

    #[test]
    fn train_is_bit_identical_across_worker_counts() {
        let (base, samples) = tiny_setup();
        let spec = OutlierSpec {
            channel: 3,
            target: 20.0,
            weight: 0.5,
        };
        for outlier in [None, Some(spec)] {
            let mut runs = Vec::new();
            for threads in [1usize, 2, 4] {
                let mut model = base.clone();
                let mut rng = StdRng::seed_from_u64(9);
                // A dirtied, reused scratch must not change results.
                let mut scratch = PlannerTrainScratch::default();
                let _ = base.clone().train_with_threads(
                    &samples[..4],
                    1,
                    3e-3,
                    None,
                    &mut StdRng::seed_from_u64(1),
                    threads,
                    &mut scratch,
                );
                let loss = model.train_with_threads(
                    &samples,
                    2,
                    3e-3,
                    outlier,
                    &mut rng,
                    threads,
                    &mut scratch,
                );
                runs.push((threads, loss, model));
            }
            let (_, loss_1, model_1) = &runs[0];
            for (threads, loss, model) in &runs[1..] {
                assert_eq!(
                    loss.to_bits(),
                    loss_1.to_bits(),
                    "loss must not depend on threads={threads} (outlier={outlier:?})"
                );
                assert_eq!(model.embed, model_1.embed, "threads={threads}");
                assert_eq!(model.pos, model_1.pos, "threads={threads}");
                assert_eq!(model.head.w, model_1.head.w, "threads={threads}");
                for (a, b) in model.blocks.iter().zip(&model_1.blocks) {
                    assert_eq!(a.attn.wq.w, b.attn.wq.w, "threads={threads}");
                    assert_eq!(a.attn.wk.w, b.attn.wk.w, "threads={threads}");
                    assert_eq!(a.attn.wv.w, b.attn.wv.w, "threads={threads}");
                    assert_eq!(a.attn.wo.w, b.attn.wo.w, "threads={threads}");
                    assert_eq!(a.mlp.wgate.w, b.mlp.wgate.w, "threads={threads}");
                    assert_eq!(a.mlp.wup.w, b.mlp.wup.w, "threads={threads}");
                    assert_eq!(a.mlp.wdown.w, b.mlp.wdown.w, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn pool_training_matches_spawn_per_chunk_bit_for_bit() {
        // The persistent WorkerPool is a pure scheduling change: routed
        // through train_with_mapper, it must reproduce the old
        // spawn-per-chunk run exactly, weights and loss bits included.
        let (base, samples) = tiny_setup();
        let mut spawn_model = base.clone();
        let mut spawn = create_tensor::par::SpawnPerChunk(3);
        let spawn_loss = spawn_model.train_with_mapper(
            &samples,
            2,
            3e-3,
            None,
            &mut StdRng::seed_from_u64(9),
            &mut spawn,
            &mut PlannerTrainScratch::default(),
        );
        let mut pool_model = base.clone();
        let mut pool = create_tensor::par::WorkerPool::new(3);
        let pool_loss = pool_model.train_with_mapper(
            &samples,
            2,
            3e-3,
            None,
            &mut StdRng::seed_from_u64(9),
            &mut pool,
            &mut PlannerTrainScratch::default(),
        );
        assert_eq!(spawn_loss.to_bits(), pool_loss.to_bits());
        assert_eq!(spawn_model.embed, pool_model.embed);
        assert_eq!(spawn_model.pos, pool_model.pos);
        assert_eq!(spawn_model.head.w, pool_model.head.w);
        for (a, b) in spawn_model.blocks.iter().zip(&pool_model.blocks) {
            assert_eq!(a.attn.wq.w, b.attn.wq.w);
            assert_eq!(a.mlp.wgate.w, b.mlp.wgate.w);
            assert_eq!(a.mlp.wdown.w, b.mlp.wdown.w);
        }
    }

    #[test]
    fn training_memorizes_small_plan_set() {
        let (mut model, samples) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(1);
        let loss = model.train(&samples, 220, 3e-3, None, &mut rng);
        assert!(loss < 0.1, "training did not converge: loss {loss}");
        let acc = model.plan_accuracy(&samples);
        assert!(acc > 0.99, "plan accuracy {acc}");
        assert_eq!(
            model.decode_f32(TaskId::Wooden, &[]),
            TaskId::Wooden.reference_plan()
        );
    }

    #[test]
    fn outlier_training_plants_outliers_and_rotation_removes_them() {
        let (mut model, samples) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(2);
        let spec = OutlierSpec {
            channel: 3,
            target: 60.0,
            weight: 1.0,
        };
        model.train(&samples, 260, 3e-3, Some(spec), &mut rng);
        assert!(
            model.plan_accuracy(&samples) > 0.99,
            "accuracy lost to aux loss"
        );
        let ratio_before = model.outlier_ratio(&samples);
        assert!(
            ratio_before > 3.2,
            "outliers should be planted, ratio {ratio_before}"
        );
        let mut rotated = model.clone();
        rotated.rotate_residual(&Rotation::hadamard(32));
        // Function preserved...
        assert_eq!(
            rotated.decode_f32(TaskId::Wooden, &[]),
            model.decode_f32(TaskId::Wooden, &[])
        );
        // ...outliers dispersed...
        let ratio_after = rotated.outlier_ratio(&samples);
        assert!(
            ratio_after < 0.85 * ratio_before,
            "rotation should flatten outliers: {ratio_before} -> {ratio_after}"
        );
        // ...and the profiled AD bound on the vulnerable pre-norm
        // components tightens (the AD+WR synergy of Sec. 6.6).
        let q_plain = model.deploy(&samples, Precision::Int8);
        let q_rot = rotated.deploy(&samples, Precision::Int8);
        let sum_bounds = |q: &QuantPlanner| -> f32 {
            (0..2)
                .map(|l| q.ad_bound(l, Component::Down) + q.ad_bound(l, Component::O))
                .sum()
        };
        let bound_plain = sum_bounds(&q_plain);
        let bound_rot = sum_bounds(&q_rot);
        assert!(
            bound_rot < 0.7 * bound_plain,
            "WR should tighten AD bounds: {bound_plain} -> {bound_rot}"
        );
    }

    #[test]
    fn rotation_preserves_logits_numerically() {
        let (model, samples) = tiny_setup();
        let mut rotated = model.clone();
        rotated.rotate_residual(&Rotation::hadamard(32));
        let tokens = &samples[0].tokens;
        let a = model.forward(tokens);
        let b = rotated.forward(tokens);
        let scale = a.max_abs().max(1.0);
        assert!(
            a.max_abs_diff(&b) / scale < 1e-2,
            "logit drift after rotation"
        );
    }

    #[test]
    fn deployed_planner_matches_f32_decode() {
        let (mut model, samples) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(3);
        model.train(&samples, 220, 3e-3, None, &mut rng);
        let quant = model.deploy(&samples, Precision::Int8);
        let mut accel = Accelerator::ideal(0);
        let plan = quant.decode(&mut accel, TaskId::Wooden, &[]);
        assert_eq!(plan, TaskId::Wooden.reference_plan());
        // Replanning path: decode the remainder after one completed step.
        let done = &TaskId::Wooden.reference_plan()[..1];
        let rest = quant.decode(&mut accel, TaskId::Wooden, done);
        assert_eq!(rest, TaskId::Wooden.reference_plan()[1..].to_vec());
    }

    #[test]
    fn deployed_planner_respects_ad_bounds_on_clean_data() {
        let (mut model, samples) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(4);
        model.train(&samples, 120, 3e-3, None, &mut rng);
        let quant = model.deploy(&samples, Precision::Int8);
        let mut plans = Vec::new();
        for backend in create_accel::GemmBackendKind::ALL {
            let mut accel = Accelerator::new(
                create_accel::AccelConfig {
                    injector: None,
                    ad_enabled: true,
                    backend,
                    ..Default::default()
                },
                0,
            );
            plans.push(quant.decode(&mut accel, TaskId::Log, &[]));
            assert_eq!(
                accel.ad_stats().cleared,
                0,
                "AD fired on a golden run ({backend})"
            );
        }
        for (kind, plan) in create_accel::GemmBackendKind::ALL.iter().zip(&plans) {
            assert_eq!(
                plan, &plans[0],
                "decoded plans must be backend-invariant ({kind})"
            );
        }
    }

    #[test]
    fn scratch_decode_is_bit_identical_to_allocating_decode() {
        let (mut model, samples) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(5);
        model.train(&samples, 220, 3e-3, None, &mut rng);
        let quant = model.deploy(&samples, Precision::Int8);
        let mut accel_a = Accelerator::ideal(0);
        let mut accel_b = Accelerator::ideal(0);
        let mut scratch = PlannerScratch::default();
        // One scratch across several decodes of different context lengths.
        for task in [TaskId::Wooden, TaskId::Log, TaskId::Button] {
            let plan_a = quant.decode(&mut accel_a, task, &[]);
            let plan_b = quant.decode_with(&mut accel_b, task, &[], &mut scratch);
            assert_eq!(plan_a, plan_b, "{task:?}");
            let done = &plan_a[..plan_a.len().min(1)];
            let rest_a = quant.decode(&mut accel_a, task, done);
            let rest_b = quant.decode_with(&mut accel_b, task, done, &mut scratch);
            assert_eq!(rest_a, rest_b, "{task:?} replan");
        }
        assert_eq!(accel_a.macs(), accel_b.macs());
        assert_eq!(accel_a.gemms(), accel_b.gemms());
        // Raw logits agree too.
        let tokens = &samples[0].tokens;
        assert_eq!(
            quant.last_logits(&mut accel_a, tokens, None),
            quant.last_logits_with(&mut accel_b, tokens, None, &mut scratch)
        );
    }

    #[test]
    fn empty_or_garbage_decode_yields_idle() {
        // An untrained planner decodes garbage; the plan must never be
        // empty so the mission runner always has a subtask to burn.
        let (model, samples) = tiny_setup();
        let quant = model.deploy(&samples, Precision::Int8);
        let mut accel = Accelerator::ideal(0);
        let plan = quant.decode(&mut accel, TaskId::Wooden, &[]);
        assert!(!plan.is_empty());
    }
}
