//! Agents for the CREATE reproduction: the LLM planner, the RL controller
//! and the entropy predictor, in trainable and deployed (quantized,
//! accelerator-backed) forms.

pub mod bundle;
pub mod controller;
pub mod datasets;
pub mod io;
pub mod planner;
pub mod predictor;
pub mod presets;
pub mod vocab;

pub use bundle::AgentSystem;
pub use controller::{
    BcSample, ControllerModel, ControllerScratch, ControllerTrainScratch, QuantController,
};
pub use planner::{OutlierSpec, PlannerModel, PlannerScratch, PlannerTrainScratch, QuantPlanner};
pub use predictor::EntropyPredictor;
pub use presets::{ControllerPreset, PlannerPreset, PredictorPreset};
