//! Dataset collection: expert demonstrations for behaviour cloning and
//! (observation → golden entropy) pairs for the entropy predictor.

use crate::controller::{BcSample, QuantController};
use create_accel::Accelerator;
use create_env::{Action, TaskId, World};
use create_nn::Tensor3;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Label smoothing for BC soft targets.
const SMOOTH: f32 = 0.02;

/// Samples an action index from a distribution.
fn sample_dist(probs: &[f32], rng: &mut impl Rng) -> usize {
    let mut r: f32 = rng.random_range(0.0..1.0);
    for (i, &p) in probs.iter().enumerate() {
        if r < p {
            return i;
        }
        r -= p;
    }
    probs.len() - 1
}

/// Collects behaviour-cloning samples by rolling the scripted expert
/// through the reference plans of `tasks`.
///
/// `explore_eps` is the probability of taking a uniformly random action
/// instead of the expert's (visiting off-policy states makes the clone
/// robust, DAgger-style); the recorded target is always the expert's
/// distribution at the visited state.
pub fn collect_bc(
    tasks: &[TaskId],
    seeds_per_task: usize,
    max_steps_per_seed: usize,
    explore_eps: f32,
    seed: u64,
) -> Vec<BcSample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::new();
    for &task in tasks {
        for trial in 0..seeds_per_task {
            let mut world = World::for_task(task, seed ^ (trial as u64) << 17);
            let plan = task.reference_plan();
            let mut plan_idx = 0usize;
            world.set_subtask(plan[0]);
            for _ in 0..max_steps_per_seed {
                while world.subtask_complete() {
                    plan_idx += 1;
                    if plan_idx >= plan.len() {
                        break;
                    }
                    world.set_subtask(plan[plan_idx]);
                }
                if plan_idx >= plan.len() {
                    break;
                }
                let obs = world.observe();
                let expert = world.expert_policy();
                let mut target = [SMOOTH / Action::COUNT as f32; Action::COUNT];
                for (t, &e) in target.iter_mut().zip(&expert) {
                    *t += (1.0 - SMOOTH) * e;
                }
                samples.push(BcSample { obs, target });
                let action = if rng.random_range(0.0..1.0) < explore_eps {
                    rng.random_range(0..Action::COUNT)
                } else {
                    sample_dist(&expert, &mut rng)
                };
                world.step(Action::from_index(action));
            }
        }
    }
    samples
}

/// One entropy-predictor training sample.
#[derive(Debug, Clone)]
pub struct EntropySample {
    /// Rendered 64×64 RGB observation.
    pub image: Tensor3,
    /// Active subtask token (prompt).
    pub subtask_token: usize,
    /// Golden (error-free) controller entropy at this step.
    pub entropy: f32,
}

/// Collects entropy samples by rolling the *deployed golden* controller
/// through the reference plans: the label is the error-free logits entropy
/// (paper Sec. 5.3 derives ground truth from error-free executions).
pub fn collect_entropy(
    controller: &QuantController,
    tasks: &[TaskId],
    seeds_per_task: usize,
    max_steps_per_seed: usize,
    temperature: f32,
    seed: u64,
) -> Vec<EntropySample> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE17);
    let mut accel = Accelerator::ideal(seed);
    let mut samples = Vec::new();
    for &task in tasks {
        for trial in 0..seeds_per_task {
            let mut world = World::for_task(task, seed ^ 0xABCD ^ ((trial as u64) << 13));
            let plan = task.reference_plan();
            let mut plan_idx = 0usize;
            world.set_subtask(plan[0]);
            for _ in 0..max_steps_per_seed {
                while world.subtask_complete() {
                    plan_idx += 1;
                    if plan_idx >= plan.len() {
                        break;
                    }
                    world.set_subtask(plan[plan_idx]);
                }
                if plan_idx >= plan.len() {
                    break;
                }
                let obs = world.observe();
                let (action, entropy) = controller.act(&mut accel, &obs, temperature, &mut rng);
                samples.push(EntropySample {
                    image: obs.render_image(),
                    subtask_token: obs.subtask_token,
                    entropy,
                });
                world.step(action);
            }
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bc_collection_yields_normalized_targets() {
        let samples = collect_bc(&[TaskId::Log], 1, 120, 0.05, 3);
        assert!(samples.len() > 50);
        for s in &samples {
            let sum: f32 = s.target.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
            assert!(s.target.iter().all(|&p| p > 0.0), "smoothing keeps support");
        }
    }

    #[test]
    fn bc_collection_is_deterministic_per_seed() {
        let a = collect_bc(&[TaskId::Seed], 1, 60, 0.1, 5);
        let b = collect_bc(&[TaskId::Seed], 1, 60, 0.1, 5);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].obs, b[0].obs);
        assert_eq!(a.last().unwrap().target, b.last().unwrap().target);
    }

    #[test]
    fn bc_collection_covers_multiple_subtasks() {
        let samples = collect_bc(&[TaskId::Wooden], 1, 400, 0.05, 7);
        let mut tokens: Vec<usize> = samples.iter().map(|s| s.obs.subtask_token).collect();
        tokens.dedup();
        assert!(
            tokens.len() >= 3,
            "expert should progress through the plan, saw {} subtasks",
            tokens.len()
        );
    }
}
