use create_agents::presets::{ControllerPreset, PlannerPreset};
use create_agents::AgentSystem;

fn main() {
    let _ = AgentSystem::build(PlannerPreset::openvla(), ControllerPreset::octo());
    println!("openvla+octo ready");
    let _ = AgentSystem::build(PlannerPreset::roboflamingo(), ControllerPreset::rt1());
    println!("roboflamingo+rt1 ready");
}
