use create_accel::Accelerator;
use create_agents::bundle::{AgentSystem, ACT_TEMPERATURE};
use create_env::{TaskId, World};
use create_tensor::Precision;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let sys = AgentSystem::jarvis();
    println!("build/load took {:.1}s", t0.elapsed().as_secs_f64());
    println!("planner params: {}", sys.planner.param_count());
    println!(
        "planner outlier ratio: {:.2}",
        sys.planner.outlier_ratio(&sys.plan_samples[..20])
    );
    println!(
        "planner accuracy: {:.3}",
        sys.planner.plan_accuracy(&sys.plan_samples)
    );
    println!(
        "controller agreement: {:.3}",
        sys.controller
            .agreement(&sys.bc_samples[..2000.min(sys.bc_samples.len())])
    );

    let planner = sys.deploy_planner(false, Precision::Int8);
    let planner_wr = sys.deploy_planner(true, Precision::Int8);
    let controller = sys.deploy_controller(Precision::Int8);
    let mut accel = Accelerator::ideal(1);
    let plan = planner.decode(&mut accel, TaskId::Wooden, &[]);
    println!(
        "quant plan (wooden): {:?}",
        plan.iter().map(|s| s.to_string()).collect::<Vec<_>>()
    );
    let plan_wr = planner_wr.decode(&mut accel, TaskId::Wooden, &[]);
    println!("WR plan matches: {}", plan == plan_wr);

    // golden missions: run 12 trials of wooden & stone with plan + controller
    for task in [TaskId::Wooden, TaskId::Stone, TaskId::Chicken] {
        let mut success = 0;
        let mut steps_sum = 0u64;
        let t1 = Instant::now();
        for trial in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(trial * 7 + 1);
            let mut world = World::for_task(task, trial * 13 + 5);
            let plan = planner.decode(&mut accel, task, &[]);
            let mut idx = 0usize;
            let mut subtask_steps = 0u32;
            world.set_subtask(plan[0]);
            while world.steps() < 4000 {
                if world.subtask_complete() {
                    idx += 1;
                    subtask_steps = 0;
                    if idx >= plan.len() {
                        break;
                    }
                    world.set_subtask(plan[idx]);
                    continue;
                }
                if subtask_steps > 300 {
                    break;
                } // no replan in smoke test
                let obs = world.observe();
                let (action, _entropy) =
                    controller.act(&mut accel, &obs, ACT_TEMPERATURE, &mut rng);
                world.step(action);
                subtask_steps += 1;
            }
            if world.task_goal_met() {
                success += 1;
                steps_sum += world.steps();
            }
        }
        println!(
            "{task}: {success}/12 golden success, avg steps {} ({:.2}s)",
            steps_sum.checked_div(success).unwrap_or(0),
            t1.elapsed().as_secs_f64()
        );
    }
}
