//! The zero-allocation steady-state contract at the *agent* level: the
//! deployed controller's per-step `act_with` path — the innermost loop of
//! every mission trial — must perform no heap allocation once its scratch
//! is warm. (The accelerator-level counterpart lives in
//! `create-accel/tests/alloc.rs`.)
//!
//! One `#[test]` only, so no concurrent test thread can perturb the
//! counter.

use create_accel::Accelerator;
use create_agents::datasets;
use create_agents::presets::ControllerPreset;
use create_agents::{ControllerModel, ControllerScratch};
use create_env::TaskId;
use create_tensor::Precision;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Smallest allocation delta over several windows of `body` (the minimum
/// shields against rare harness-side allocations; a per-call allocation
/// in the measured path inflates every window and is still caught).
fn min_alloc_delta(windows: usize, mut body: impl FnMut()) -> u64 {
    let mut min = u64::MAX;
    for _ in 0..windows {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        body();
        min = min.min(ALLOCATIONS.load(Ordering::Relaxed) - before);
    }
    min
}

#[test]
fn deployed_controller_act_with_is_allocation_free_after_warm_up() {
    // An untrained tiny controller is enough: allocation behavior does
    // not depend on the weights.
    let mut rng = StdRng::seed_from_u64(1);
    let preset = ControllerPreset {
        proxy_layers: 1,
        proxy_hidden: 32,
        proxy_mlp: 64,
        proxy_heads: 4,
        ..ControllerPreset::jarvis()
    };
    let model = ControllerModel::new(&preset, &mut rng);
    let samples = datasets::collect_bc(&[TaskId::Seed], 1, 40, 0.0, 9);
    let quant = model.deploy(&samples, Precision::Int8);
    let mut accel = Accelerator::ideal(0);
    let mut scratch = ControllerScratch::default();
    let observations: Vec<_> = samples.iter().take(8).map(|s| s.obs.clone()).collect();
    for obs in &observations {
        let _ = quant.act_with(&mut accel, obs, 0.8, &mut rng, &mut scratch);
    }
    let delta = min_alloc_delta(3, || {
        for obs in &observations {
            for _ in 0..20 {
                let _ = quant.act_with(&mut accel, obs, 0.8, &mut rng, &mut scratch);
            }
        }
    });
    assert_eq!(
        delta, 0,
        "the per-step act_with path must not allocate after warm-up"
    );
}
