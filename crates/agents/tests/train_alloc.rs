//! The zero-allocation steady-state contract at the *training* level:
//! once a [`ControllerTrainScratch`] / [`PlannerTrainScratch`] has been
//! warmed up by one training run over a sample set, a subsequent run over
//! the same samples — every forward, backward, gradient capture, ordered
//! fold and AdamW step — must perform **no heap allocation**. (The
//! inference-side counterpart lives in `tests/alloc.rs`; the
//! accelerator-level one in `create-accel/tests/alloc.rs`.)
//!
//! The runs are pinned to one worker (`train_with_threads(.., 1, ..)`):
//! that executes the identical per-sample capture and fold code the
//! data-parallel workers run, inline on this thread, where a global
//! counting allocator can observe it — OS thread spawning (outside any
//! worker's steady state) would otherwise drown the signal on multi-core
//! boxes.
//!
//! One `#[test]` only, so no concurrent test thread can perturb the
//! counter.

use create_agents::presets::{ControllerPreset, PlannerPreset};
use create_agents::{
    datasets, vocab, ControllerModel, ControllerTrainScratch, PlannerModel, PlannerTrainScratch,
};
use create_env::TaskId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Smallest allocation delta over several windows of `body` (the minimum
/// shields against rare harness-side allocations; a per-step allocation
/// in the measured path inflates every window and is still caught).
fn min_alloc_delta(windows: usize, mut body: impl FnMut()) -> u64 {
    let mut min = u64::MAX;
    for _ in 0..windows {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        body();
        min = min.min(ALLOCATIONS.load(Ordering::Relaxed) - before);
    }
    min
}

#[test]
fn train_steps_are_allocation_free_after_warm_up() {
    // Controller: behaviour cloning on a small expert set. Allocation
    // behavior does not depend on convergence, so one epoch per window
    // keeps the test fast.
    let mut rng = StdRng::seed_from_u64(1);
    let preset = ControllerPreset {
        proxy_layers: 1,
        proxy_hidden: 32,
        proxy_mlp: 64,
        proxy_heads: 4,
        ..ControllerPreset::jarvis()
    };
    let mut controller = ControllerModel::new(&preset, &mut rng);
    let bc = datasets::collect_bc(&[TaskId::Seed], 1, 64, 0.0, 9);
    let mut c_scratch = ControllerTrainScratch::default();
    let mut train_rng = StdRng::seed_from_u64(2);
    // Warm-up: sizes every buffer at the shapes this sample set needs.
    let _ = controller.train_with_threads(&bc, 1, 2e-3, &mut train_rng, 1, &mut c_scratch);
    let delta = min_alloc_delta(3, || {
        let _ = controller.train_with_threads(&bc, 1, 2e-3, &mut train_rng, 1, &mut c_scratch);
    });
    assert_eq!(
        delta, 0,
        "controller train step must not allocate once its scratch is warm"
    );

    // Planner: teacher forcing over a few short plans (different sequence
    // lengths per sample — the scratch warms to the longest and reuses).
    let p_preset = PlannerPreset {
        proxy_layers: 2,
        proxy_hidden: 32,
        proxy_mlp: 64,
        proxy_heads: 4,
        ..PlannerPreset::jarvis()
    };
    let mut planner = PlannerModel::new(&p_preset, &mut rng);
    let samples: Vec<_> = vocab::training_samples().into_iter().take(24).collect();
    let mut p_scratch = PlannerTrainScratch::default();
    let _ = planner.train_with_threads(&samples, 1, 3e-3, None, &mut train_rng, 1, &mut p_scratch);
    let delta = min_alloc_delta(3, || {
        let _ =
            planner.train_with_threads(&samples, 1, 3e-3, None, &mut train_rng, 1, &mut p_scratch);
    });
    assert_eq!(
        delta, 0,
        "planner train step must not allocate once its scratch is warm"
    );
}
