//! Resident mission-serving engine for the CREATE testbed.
//!
//! The per-figure harnesses run *batch* experiments: build a grid, fan it
//! over a pool, exit. This crate keeps a deployment **resident** and
//! serves missions on demand — the shape an embodied-AI stack has in
//! deployment, where task requests arrive continuously and the models
//! stay warm between them:
//!
//! * [`MissionEngine::start`] spawns a pool of workers, each owning a
//!   warmed [`MissionSession`] (controller/planner inference buffers
//!   pre-sized before the first request, so there is no first-request
//!   allocation spike);
//! * requests flow through a **bounded** queue
//!   ([`create_tensor::par::BoundedQueue`] — the same parking machinery
//!   as the training `WorkerPool`): when the queue is full,
//!   [`MissionEngine::submit`] rejects immediately with
//!   [`RejectReason::QueueFull`] instead of blocking or growing without
//!   bound — admission control, not back-pressure by stalling;
//! * every admitted request gets a dense id in admission order and a
//!   deterministic seed via [`request_seed`], so any served mission can
//!   be replayed **bit-identically** offline with
//!   [`create_core::run_trial_with`] (or [`MissionSession::run`]) at the
//!   ticket's seed — the replay contract the serve tests pin;
//! * [`MissionEngine::shutdown`] closes admission, drains every request
//!   already accepted, and joins the workers; tickets for drained
//!   requests still resolve.
//!
//! Configuration follows the workspace env contract
//! ([`create_tensor::envcfg`]): `CREATE_SERVE_WORKERS` (default: the
//! engine thread count, i.e. `CREATE_THREADS` / machine parallelism) and
//! `CREATE_SERVE_QUEUE` (default 256), both overridable in code through
//! [`ServeConfig::builder`].
//!
//! # Example
//!
//! ```no_run
//! use create_serve::{MissionEngine, MissionRequest, ServeConfig};
//! use create_core::config::CreateConfig;
//! use std::sync::Arc;
//!
//! // In an application this deployment comes from
//! // `Deployment::new(&AgentSystem::jarvis(), Precision::Int8)`.
//! let (dep, task) = create_core::testutil::tiny_deployment();
//! let engine = MissionEngine::start(Arc::new(dep), ServeConfig::from_env());
//! let ticket = engine
//!     .submit(MissionRequest::new(task, CreateConfig::golden()))
//!     .expect("queue has room");
//! let served = ticket.wait();
//! println!("id={} seed={} success={}", served.request_id, served.seed, served.outcome.success);
//! engine.shutdown();
//! ```

use create_core::config::CreateConfig;
use create_core::mission::{Deployment, MissionOutcome, MissionSession};
use create_env::TaskId;
use create_tensor::par::{BoundedQueue, PushError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One mission to serve: which task, under which technique/error config.
#[derive(Debug, Clone, PartialEq)]
pub struct MissionRequest {
    /// Task to run.
    pub task: TaskId,
    /// Technique/error configuration for the trial.
    pub config: CreateConfig,
}

impl MissionRequest {
    /// A request for `task` under `config`.
    pub fn new(task: TaskId, config: CreateConfig) -> Self {
        MissionRequest { task, config }
    }
}

/// Why [`MissionEngine::submit`] refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded request queue is at capacity; retry later or shed load.
    QueueFull {
        /// The queue's fixed capacity.
        capacity: usize,
    },
    /// The engine is shutting down and no longer admits requests.
    ShuttingDown,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "request queue full (capacity {capacity})")
            }
            RejectReason::ShuttingDown => f.write_str("engine is shutting down"),
        }
    }
}

/// A refused submission: the request comes back to the caller untouched,
/// with the reason, so callers can retry, redirect or drop it.
#[derive(Debug, Clone, PartialEq)]
pub struct Rejected {
    /// The request, returned to the caller.
    pub request: MissionRequest,
    /// Why it was refused.
    pub reason: RejectReason,
}

/// Derives the seed a served request runs at from `(engine base seed,
/// request id)` with the same SplitMix64-style finalizer the batch
/// engine's `derive_seed` uses for `(point, trial)` cells.
///
/// This mapping **is** the replay contract: a [`ServedOutcome`] carries
/// its `request_id` and `seed`, and running
/// [`create_core::run_trial_with`] offline at that seed reproduces the
/// served [`MissionOutcome`] bit for bit.
pub fn request_seed(base_seed: u64, request_id: u64) -> u64 {
    let mut z =
        base_seed.wrapping_add((request_id.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A completed served mission.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedOutcome {
    /// Dense admission-order id of the request.
    pub request_id: u64,
    /// The deterministic seed the mission ran at
    /// ([`request_seed`]`(base_seed, request_id)`).
    pub seed: u64,
    /// The mission outcome — bit-identical to an offline replay at
    /// `seed`.
    pub outcome: MissionOutcome,
    /// Nanoseconds the request waited in the queue before a worker
    /// claimed it.
    pub queue_ns: u64,
    /// Nanoseconds the worker spent running the mission.
    pub service_ns: u64,
}

impl ServedOutcome {
    /// End-to-end latency (queue wait + service) in nanoseconds.
    pub fn latency_ns(&self) -> u64 {
        self.queue_ns + self.service_ns
    }
}

/// One-slot rendezvous between the worker that runs a mission and the
/// ticket holder waiting on it.
#[derive(Debug, Default)]
struct TicketShared {
    slot: Mutex<Option<ServedOutcome>>,
    done: Condvar,
}

impl TicketShared {
    fn fulfill(&self, outcome: ServedOutcome) {
        let mut slot = self.slot.lock().expect("ticket poisoned");
        *slot = Some(outcome);
        self.done.notify_all();
    }
}

/// A claim on one admitted request's future [`ServedOutcome`].
///
/// The id and seed are assigned at admission, so a caller can predict —
/// and later replay — the mission before it even runs.
#[derive(Debug)]
pub struct MissionTicket {
    request_id: u64,
    seed: u64,
    shared: Arc<TicketShared>,
}

impl MissionTicket {
    /// Dense admission-order id of the request.
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// The deterministic seed the mission will run at.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the outcome is already available ([`wait`](Self::wait)
    /// would return without blocking).
    pub fn is_ready(&self) -> bool {
        self.shared.slot.lock().expect("ticket poisoned").is_some()
    }

    /// Blocks until the mission completes and returns its outcome.
    ///
    /// Always returns: shutdown drains every admitted request, so a
    /// ticket can only exist for a mission that will run.
    pub fn wait(self) -> ServedOutcome {
        let mut slot = self.shared.slot.lock().expect("ticket poisoned");
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self.shared.done.wait(slot).expect("ticket poisoned");
        }
    }
}

/// Serving-engine configuration. Build one with [`ServeConfig::builder`]
/// (explicit, validated) or [`ServeConfig::from_env`] (the `CREATE_SERVE_*`
/// environment contract).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each owning one warmed [`MissionSession`].
    pub workers: usize,
    /// Request-queue capacity; submissions beyond it are rejected with
    /// [`RejectReason::QueueFull`]. Zero admits nothing (useful to test
    /// pure rejection paths).
    pub queue: usize,
    /// Base seed mixed into every request's [`request_seed`].
    pub base_seed: u64,
}

impl ServeConfig {
    /// A validated builder; unset knobs fall back to their env-backed
    /// defaults at [`build`](ServeConfigBuilder::build) time.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder::default()
    }

    /// Configuration from `CREATE_SERVE_WORKERS` / `CREATE_SERVE_QUEUE` —
    /// [`builder`](Self::builder) with nothing overridden.
    pub fn from_env() -> Self {
        Self::builder().build()
    }
}

/// Validated builder for [`ServeConfig`], the serving-side counterpart of
/// [`create_core::EngineOptions::builder`]: explicit settings are clamped
/// the same way the env parsers validate, and anything left unset
/// resolves through the `CREATE_SERVE_*` environment at
/// [`build`](Self::build) time.
#[derive(Debug, Clone, Default)]
pub struct ServeConfigBuilder {
    workers: Option<usize>,
    queue: Option<usize>,
    base_seed: Option<u64>,
}

impl ServeConfigBuilder {
    /// Worker-thread count (floored at 1; default `CREATE_SERVE_WORKERS`,
    /// falling back to the batch engine's thread count —
    /// `CREATE_THREADS` / machine parallelism — so batch and serve scale
    /// together unless told otherwise).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Request-queue capacity (default `CREATE_SERVE_QUEUE`, falling back
    /// to 256). Unlike the env knob, an explicit `0` is honored: a
    /// zero-capacity queue rejects every submission, which the saturation
    /// tests rely on.
    pub fn queue(mut self, queue: usize) -> Self {
        self.queue = Some(queue);
        self
    }

    /// Base seed mixed into every request seed (default 0).
    pub fn base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = Some(base_seed);
        self
    }

    /// Resolves unset knobs from the environment and builds the config.
    pub fn build(self) -> ServeConfig {
        ServeConfig {
            workers: self.workers.unwrap_or_else(|| {
                create_tensor::envcfg::read_positive_usize(
                    "CREATE_SERVE_WORKERS",
                    create_core::engine::default_threads(),
                )
            }),
            queue: self.queue.unwrap_or_else(|| {
                create_tensor::envcfg::read_positive_usize("CREATE_SERVE_QUEUE", 256)
            }),
            base_seed: self.base_seed.unwrap_or(0),
        }
    }
}

/// One queued unit of work: the admitted request plus its pre-assigned
/// identity and the ticket to fulfill.
struct Job {
    request_id: u64,
    seed: u64,
    request: MissionRequest,
    shared: Arc<TicketShared>,
    admitted: Instant,
}

/// Shared engine state: the bounded queue plus admission counters.
struct EngineShared {
    queue: BoundedQueue<Job>,
    /// Next request id; incremented under the queue lock (inside
    /// `push_with`), so ids are dense and in admission order.
    next_id: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
}

/// The resident serving engine: a warm worker pool behind a bounded
/// request queue. See the [crate docs](crate) for the full contract.
pub struct MissionEngine {
    shared: Arc<EngineShared>,
    config: ServeConfig,
    workers: Vec<JoinHandle<()>>,
}

impl MissionEngine {
    /// Starts `config.workers` serving threads over `deployment`, each
    /// warming its [`MissionSession`] before accepting work.
    pub fn start(deployment: Arc<Deployment>, config: ServeConfig) -> Self {
        let shared = Arc::new(EngineShared {
            queue: BoundedQueue::new(config.queue),
            next_id: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let dep = Arc::clone(&deployment);
                std::thread::Builder::new()
                    .name(format!("create-serve-{i}"))
                    .spawn(move || Self::worker(&shared, &dep))
                    .expect("spawn serve worker")
            })
            .collect();
        MissionEngine {
            shared,
            config,
            workers,
        }
    }

    /// One worker: a warmed session serving jobs until the queue closes
    /// and drains.
    fn worker(shared: &EngineShared, dep: &Deployment) {
        let mut session = MissionSession::warmed(dep);
        while let Some(job) = shared.queue.pop() {
            let queue_ns = saturating_elapsed_ns(job.admitted);
            let started = Instant::now();
            let outcome = session.run(job.request.task, &job.request.config, job.seed);
            let service_ns = saturating_elapsed_ns(started);
            job.shared.fulfill(ServedOutcome {
                request_id: job.request_id,
                seed: job.seed,
                outcome,
                queue_ns,
                service_ns,
            });
        }
    }

    /// Submits a request. Admission is immediate and non-blocking: either
    /// the request is queued and a [`MissionTicket`] (with its final id
    /// and seed) comes back, or it is refused and handed back in a
    /// [`Rejected`] — never silently dropped, never blocked on a full
    /// queue.
    // The Err variant intentionally carries the whole request back to
    // the caller (retry/redirect without a clone); rejection is the
    // slow path, so its size does not matter.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, request: MissionRequest) -> Result<MissionTicket, Rejected> {
        let mut pending = Some(request);
        let mut ticket = None;
        let pushed = self.shared.queue.push_with(|| {
            // Runs under the queue lock, only on admission: ids are dense,
            // in admission order, with no gaps for rejected requests.
            let request_id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
            let seed = request_seed(self.config.base_seed, request_id);
            let shared = Arc::new(TicketShared::default());
            ticket = Some(MissionTicket {
                request_id,
                seed,
                shared: Arc::clone(&shared),
            });
            Job {
                request_id,
                seed,
                request: pending.take().expect("request consumed once"),
                shared,
                admitted: Instant::now(),
            }
        });
        match pushed {
            Ok(()) => {
                self.shared.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(ticket.expect("admitted request has a ticket"))
            }
            Err(err) => {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                let reason = match err {
                    PushError::Full => RejectReason::QueueFull {
                        capacity: self.shared.queue.capacity(),
                    },
                    PushError::Closed => RejectReason::ShuttingDown,
                };
                Err(Rejected {
                    request: pending.take().expect("rejected request is handed back"),
                    reason,
                })
            }
        }
    }

    /// The configuration the engine started with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Requests currently queued (admitted, not yet claimed by a worker).
    pub fn queued(&self) -> usize {
        self.shared.queue.len()
    }

    /// Requests admitted so far.
    pub fn accepted(&self) -> u64 {
        self.shared.accepted.load(Ordering::Relaxed)
    }

    /// Requests refused so far (queue full or shutting down).
    pub fn rejected(&self) -> u64 {
        self.shared.rejected.load(Ordering::Relaxed)
    }

    /// Stops admitting new requests: every subsequent
    /// [`submit`](Self::submit) is refused with
    /// [`RejectReason::ShuttingDown`]. Requests already accepted are
    /// still drained and their tickets still resolve. Idempotent.
    pub fn close(&self) {
        self.shared.queue.close();
    }

    /// Graceful shutdown: stops admitting ([`close`](Self::close)),
    /// **drains** every request already accepted (their tickets still
    /// resolve), then joins the workers. Dropping the engine does the
    /// same.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            // A worker that panicked mid-mission already poisoned its
            // ticket; propagate rather than hide it.
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

impl Drop for MissionEngine {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Monotonic elapsed nanoseconds, saturated into `u64` (585 years of
/// latency headroom).
fn saturating_elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_seeds_are_deterministic_and_decorrelated() {
        assert_eq!(request_seed(7, 0), request_seed(7, 0));
        assert_ne!(request_seed(7, 0), request_seed(7, 1));
        assert_ne!(request_seed(7, 0), request_seed(8, 0));
        // Dense neighbouring ids must not produce near-identical seeds.
        let a = request_seed(0, 0);
        let b = request_seed(0, 1);
        assert!((a ^ b).count_ones() > 8, "a={a:#x} b={b:#x}");
    }

    #[test]
    fn builder_floors_workers_and_honors_zero_queue() {
        let cfg = ServeConfig::builder()
            .workers(0)
            .queue(0)
            .base_seed(9)
            .build();
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.queue, 0, "explicit zero capacity is honored");
        assert_eq!(cfg.base_seed, 9);
    }

    #[test]
    fn env_defaults_resolve_when_unset() {
        // The test env leaves CREATE_SERVE_* unset.
        if std::env::var("CREATE_SERVE_WORKERS").is_err()
            && std::env::var("CREATE_SERVE_QUEUE").is_err()
        {
            let cfg = ServeConfig::from_env();
            assert_eq!(cfg.workers, create_core::engine::default_threads());
            assert_eq!(cfg.queue, 256);
            assert_eq!(cfg.base_seed, 0);
        }
    }

    #[test]
    fn reject_reasons_render() {
        assert_eq!(
            RejectReason::QueueFull { capacity: 4 }.to_string(),
            "request queue full (capacity 4)"
        );
        assert_eq!(
            RejectReason::ShuttingDown.to_string(),
            "engine is shutting down"
        );
    }
}
