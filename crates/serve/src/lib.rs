//! Resident mission-serving engine for the CREATE testbed.
//!
//! The per-figure harnesses run *batch* experiments: build a grid, fan it
//! over a pool, exit. This crate keeps a deployment **resident** and
//! serves missions on demand — the shape an embodied-AI stack has in
//! deployment, where task requests arrive continuously and the models
//! stay warm between them:
//!
//! * [`MissionEngine::start`] spawns a pool of workers, each owning a
//!   warmed [`MissionSession`] (controller/planner inference buffers
//!   pre-sized before the first request, so there is no first-request
//!   allocation spike);
//! * requests flow through a **bounded** queue
//!   ([`create_tensor::par::BoundedQueue`] — the same parking machinery
//!   as the training `WorkerPool`): when the queue is full,
//!   [`MissionEngine::submit`] rejects immediately with
//!   [`RejectReason::QueueFull`] instead of blocking or growing without
//!   bound — admission control, not back-pressure by stalling;
//! * every admitted request gets a dense id in admission order and a
//!   deterministic seed via [`request_seed`], so any served mission can
//!   be replayed **bit-identically** offline with
//!   [`create_core::run_trial_with`] (or [`MissionSession::run`]) at the
//!   ticket's seed — the replay contract the serve tests pin;
//! * [`MissionEngine::shutdown`] closes admission, drains every request
//!   already accepted, and joins the workers; tickets for drained
//!   requests still resolve.
//!
//! # Failure semantics
//!
//! The engine assumes its own substrate misbehaves, not just the
//! missions':
//!
//! * **Supervision** — each worker's serving loop runs under
//!   `catch_unwind`. A panic mid-mission resolves the in-flight ticket
//!   with [`MissionResult::Failed`]`(`[`ServeFailure::Panicked`]`)`
//!   (structurally: a drop guard on the claimed job fires during the
//!   unwind, so [`MissionTicket::wait`] can never hang on a dead
//!   worker), the worker respawns with a fresh session, and the engine
//!   keeps serving. `CREATE_SERVE_CHAOS` (or
//!   [`ServeConfigBuilder::chaos`]) injects panics with the given
//!   per-mission probability — decided as a pure function of the
//!   mission seed, so the chaos-hit set is identical across worker
//!   counts and runs.
//! * **Deadlines** — a [`RequestPolicy`] deadline expired at admission
//!   is refused with [`RejectReason::DeadlineExpired`]; one that expires
//!   while queued is shed at claim time with a typed
//!   [`ServeFailure::DeadlineExpired`] instead of burning a worker on a
//!   mission nobody is waiting for. `CREATE_SERVE_DEADLINE_MS` sets an
//!   engine-wide default for requests that do not carry their own.
//! * **Retries** — a failed (unsuccessful, not panicked) mission re-runs
//!   up to its [`RequestPolicy::retries`] budget, each attempt at a
//!   *derived deterministic seed* ([`retry_seed`]) after a jittered,
//!   seed-deterministic backoff — so even retried missions replay
//!   bit-identically from the [`ServedOutcome`]'s recorded final seed.
//! * **Priority** — [`Priority::Batch`] submissions are admitted only
//!   below a reduced queue bound, keeping headroom reserved for
//!   [`Priority::Interactive`] traffic when the queue is contended.
//! * **Adaptation** — an optional [`governor`] closes the
//!   energy–reliability loop between missions, switching protection
//!   scheme and controller voltage to hold a success SLO at minimum
//!   energy; its per-mission decision is recorded on the outcome so
//!   governed missions stay replayable.
//!
//! Configuration follows the workspace env contract
//! ([`create_tensor::envcfg`]): `CREATE_SERVE_WORKERS` (default: the
//! engine thread count), `CREATE_SERVE_QUEUE` (default 256),
//! `CREATE_SERVE_CHAOS` (panic probability, default 0),
//! `CREATE_SERVE_DEADLINE_MS` (default: none), `CREATE_SERVE_GOVERNOR`
//! (enable flag) with `CREATE_SERVE_SLO` / `CREATE_SERVE_WINDOW` — all
//! overridable in code through [`ServeConfig::builder`].
//!
//! # Example
//!
//! ```no_run
//! use create_serve::{MissionEngine, MissionRequest, ServeConfig};
//! use create_core::config::CreateConfig;
//! use std::sync::Arc;
//!
//! // In an application this deployment comes from
//! // `Deployment::new(&AgentSystem::jarvis(), Precision::Int8)`.
//! let (dep, task) = create_core::testutil::tiny_deployment();
//! let engine = MissionEngine::start(Arc::new(dep), ServeConfig::from_env());
//! let ticket = engine
//!     .submit(MissionRequest::new(task, CreateConfig::golden()))
//!     .expect("queue has room");
//! let served = ticket.wait();
//! println!("id={} seed={} success={}", served.request_id, served.seed, served.is_success());
//! engine.shutdown();
//! ```

use create_core::config::CreateConfig;
use create_core::mission::{Deployment, MissionOutcome, MissionSession};
use create_env::TaskId;
use create_tensor::par::{BoundedQueue, PushError};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub mod governor;

pub use governor::{default_ladder, Governor, GovernorConfig, GovernorReport, OperatingPoint};

/// Priority class of a request, applied at admission: when the queue is
/// contended, `Batch` traffic is refused first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Latency-sensitive traffic; may use the queue's full capacity.
    #[default]
    Interactive,
    /// Throughput traffic; admitted only while the queue is below
    /// `capacity - interactive_reserve`, so a contended queue always
    /// keeps headroom for interactive requests.
    Batch,
}

/// A request's completion deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deadline {
    /// Relative to admission time.
    Within(Duration),
    /// An absolute instant.
    At(Instant),
}

/// Per-request robustness policy: deadline, priority class and retry
/// budget. [`Default`] is the pre-policy behavior — no deadline,
/// interactive, no retries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestPolicy {
    /// Completion deadline; `None` falls back to the engine's
    /// [`ServeConfig::default_deadline`].
    pub deadline: Option<Deadline>,
    /// Admission priority class.
    pub priority: Priority,
    /// Extra mission attempts after an unsuccessful (not panicked) one,
    /// each at a derived deterministic seed ([`retry_seed`]).
    pub retries: u32,
    /// Base backoff before the first retry; grows exponentially per
    /// attempt with deterministic jitter, capped at one second.
    pub backoff: Duration,
}

impl Default for RequestPolicy {
    fn default() -> Self {
        Self {
            deadline: None,
            priority: Priority::Interactive,
            retries: 0,
            backoff: Duration::from_millis(1),
        }
    }
}

impl RequestPolicy {
    /// Deadline `d` past admission.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(Deadline::Within(d));
        self
    }

    /// Absolute deadline.
    pub fn with_deadline_at(mut self, at: Instant) -> Self {
        self.deadline = Some(Deadline::At(at));
        self
    }

    /// Batch (load-sheddable) priority.
    pub fn batch(mut self) -> Self {
        self.priority = Priority::Batch;
        self
    }

    /// Retry budget: up to `n` extra attempts on unsuccessful missions.
    pub fn with_retries(mut self, n: u32) -> Self {
        self.retries = n;
        self
    }
}

/// One mission to serve: which task, under which technique/error config,
/// with which robustness policy.
#[derive(Debug, Clone, PartialEq)]
pub struct MissionRequest {
    /// Task to run.
    pub task: TaskId,
    /// Technique/error configuration for the trial.
    pub config: CreateConfig,
    /// Deadline / priority / retry policy ([`RequestPolicy::default`] =
    /// the pre-policy behavior).
    pub policy: RequestPolicy,
}

impl MissionRequest {
    /// A request for `task` under `config` with the default policy.
    pub fn new(task: TaskId, config: CreateConfig) -> Self {
        MissionRequest {
            task,
            config,
            policy: RequestPolicy::default(),
        }
    }

    /// The same request under an explicit [`RequestPolicy`].
    pub fn with_policy(mut self, policy: RequestPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// Why [`MissionEngine::submit`] refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded request queue is at capacity (or, for
    /// [`Priority::Batch`], at its reduced batch bound); retry later or
    /// shed load.
    QueueFull {
        /// The queue's fixed capacity.
        capacity: usize,
    },
    /// The engine is shutting down and no longer admits requests.
    ShuttingDown,
    /// The request's deadline had already expired at admission; running
    /// it could only waste a worker.
    DeadlineExpired,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "request queue full (capacity {capacity})")
            }
            RejectReason::ShuttingDown => f.write_str("engine is shutting down"),
            RejectReason::DeadlineExpired => f.write_str("deadline expired before admission"),
        }
    }
}

impl std::error::Error for RejectReason {}

/// A refused submission: the request comes back to the caller untouched,
/// with the reason, so callers can retry, redirect or drop it.
#[derive(Debug, Clone, PartialEq)]
pub struct Rejected {
    /// The request, returned to the caller.
    pub request: MissionRequest,
    /// Why it was refused.
    pub reason: RejectReason,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mission request for task {:?} rejected: {}",
            self.request.task, self.reason
        )
    }
}

impl std::error::Error for Rejected {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.reason)
    }
}

/// Derives the seed a served request runs at from `(engine base seed,
/// request id)` with the same SplitMix64-style finalizer the batch
/// engine's `derive_seed` uses for `(point, trial)` cells.
///
/// This mapping **is** the replay contract: a [`ServedOutcome`] carries
/// its `request_id` and `seed`, and running
/// [`create_core::run_trial_with`] offline at that seed reproduces the
/// served [`MissionOutcome`] bit for bit.
pub fn request_seed(base_seed: u64, request_id: u64) -> u64 {
    let mut z =
        base_seed.wrapping_add((request_id.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed of retry attempt `attempt` (0 = the first run) for a request
/// whose first attempt runs at `first_seed`.
///
/// Attempt 0 is `first_seed` itself — retries never perturb the primary
/// replay contract — and each later attempt re-mixes through
/// [`request_seed`], so retried missions stay deterministic and
/// replayable at the [`ServedOutcome`]'s recorded final seed.
pub fn retry_seed(first_seed: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        first_seed
    } else {
        request_seed(first_seed, attempt as u64)
    }
}

/// Salt decorrelating the chaos-injection decision from the mission's
/// own RNG streams (which hash the raw seed).
const CHAOS_SALT: u64 = 0xC4A0_5A17_0DD5_EED5;

/// Whether the chaos hook fires for a mission attempt at `seed` — a pure
/// function of `(probability, seed)`, so the set of chaos-hit missions
/// is identical across worker counts, scheduling and reruns.
fn chaos_fires(probability: f64, seed: u64) -> bool {
    if probability <= 0.0 {
        return false;
    }
    if probability >= 1.0 {
        return true;
    }
    let z = request_seed(seed ^ CHAOS_SALT, 0);
    ((z >> 11) as f64 / (1u64 << 53) as f64) < probability
}

/// Jittered exponential backoff before retry attempt `attempt` (≥ 1):
/// `base · 2^(attempt-1)`, scaled by a seed-deterministic jitter in
/// `[0.5, 1.5)`, capped at one second.
fn backoff_delay(base: Duration, attempt: u32, first_seed: u64) -> Duration {
    let exp = base.as_secs_f64() * f64::from(1u32 << (attempt - 1).min(10));
    let z = request_seed(first_seed ^ CHAOS_SALT.rotate_left(17), u64::from(attempt));
    let jitter = 0.5 + (z >> 11) as f64 / (1u64 << 53) as f64;
    Duration::from_secs_f64((exp * jitter).min(1.0))
}

/// Typed failure of a served mission (the mission never produced a
/// [`MissionOutcome`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeFailure {
    /// The worker panicked mid-mission; the supervisor resolved the
    /// ticket and respawned the worker.
    Panicked,
    /// The deadline expired while the request was queued; it was shed
    /// without running.
    DeadlineExpired,
}

impl std::fmt::Display for ServeFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ServeFailure::Panicked => "worker panicked mid-mission",
            ServeFailure::DeadlineExpired => "deadline expired while queued",
        })
    }
}

impl std::error::Error for ServeFailure {}

/// How a served request ended: a completed mission (successful or not —
/// see [`MissionOutcome::success`]) or a typed serving-layer failure.
#[derive(Debug, Clone, PartialEq)]
pub enum MissionResult {
    /// The mission ran to completion; bit-identical to an offline replay
    /// at the recorded seed (and recorded governor decision, if any).
    Completed(MissionOutcome),
    /// The serving layer failed the request before a mission outcome
    /// existed.
    Failed(ServeFailure),
}

/// A completed served mission.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedOutcome {
    /// Dense admission-order id of the request.
    pub request_id: u64,
    /// The deterministic seed of the **final** attempt (equal to
    /// [`request_seed`]`(base_seed, request_id)` when no retries ran;
    /// see [`retry_seed`]). This is the seed an offline replay uses.
    pub seed: u64,
    /// Mission attempts executed (1 + retries taken; 0 when the request
    /// was shed or the worker died before completing any attempt).
    pub attempts: u32,
    /// How the request ended.
    pub result: MissionResult,
    /// The governor operating point this mission ran under (`None` on an
    /// ungoverned engine or a non-mission failure). A replay must apply
    /// it: `decision.apply(&request.config)`.
    pub decision: Option<OperatingPoint>,
    /// Nanoseconds the request waited in the queue before a worker
    /// claimed it (for panicked requests: admission until the unwind).
    pub queue_ns: u64,
    /// Nanoseconds the worker spent running the mission.
    pub service_ns: u64,
}

impl ServedOutcome {
    /// End-to-end latency (queue wait + service) in nanoseconds.
    pub fn latency_ns(&self) -> u64 {
        self.queue_ns + self.service_ns
    }

    /// The completed mission outcome, if one exists.
    pub fn outcome(&self) -> Option<&MissionOutcome> {
        match &self.result {
            MissionResult::Completed(outcome) => Some(outcome),
            MissionResult::Failed(_) => None,
        }
    }

    /// Whether a mission completed **and** achieved its goal.
    pub fn is_success(&self) -> bool {
        self.outcome().is_some_and(|o| o.success)
    }

    /// The serving-layer failure, if the request never completed a
    /// mission.
    pub fn failure(&self) -> Option<ServeFailure> {
        match &self.result {
            MissionResult::Completed(_) => None,
            MissionResult::Failed(failure) => Some(*failure),
        }
    }
}

/// One-slot rendezvous between the worker that runs a mission and the
/// ticket holder waiting on it.
#[derive(Debug, Default)]
struct TicketShared {
    slot: Mutex<Option<ServedOutcome>>,
    done: Condvar,
}

impl TicketShared {
    fn fulfill(&self, outcome: ServedOutcome) {
        let mut slot = self.slot.lock().expect("ticket poisoned");
        *slot = Some(outcome);
        self.done.notify_all();
    }
}

/// A claim on one admitted request's future [`ServedOutcome`].
///
/// The id and seed are assigned at admission, so a caller can predict —
/// and later replay — the mission before it even runs.
#[derive(Debug)]
pub struct MissionTicket {
    request_id: u64,
    seed: u64,
    shared: Arc<TicketShared>,
}

impl MissionTicket {
    /// Dense admission-order id of the request.
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// The deterministic seed the mission's first attempt will run at.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the outcome is already available ([`wait`](Self::wait)
    /// would return without blocking).
    pub fn is_ready(&self) -> bool {
        self.shared.slot.lock().expect("ticket poisoned").is_some()
    }

    /// Blocks until the request resolves and returns its outcome.
    ///
    /// Always returns: shutdown drains every admitted request, and a
    /// claimed job resolves its ticket even if its worker panics — a
    /// drop guard on the job fulfills the ticket with
    /// [`ServeFailure::Panicked`] during the unwind, so no worker death
    /// can strand a waiter.
    pub fn wait(self) -> ServedOutcome {
        let mut slot = self.shared.slot.lock().expect("ticket poisoned");
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self.shared.done.wait(slot).expect("ticket poisoned");
        }
    }
}

/// Serving-engine configuration. Build one with [`ServeConfig::builder`]
/// (explicit, validated) or [`ServeConfig::from_env`] (the `CREATE_SERVE_*`
/// environment contract).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each owning one warmed [`MissionSession`].
    pub workers: usize,
    /// Request-queue capacity; submissions beyond it are rejected with
    /// [`RejectReason::QueueFull`]. Zero admits nothing (useful to test
    /// pure rejection paths).
    pub queue: usize,
    /// Base seed mixed into every request's [`request_seed`].
    pub base_seed: u64,
    /// Chaos hook: probability that a mission attempt panics its worker
    /// (test-only fault injection for the supervision path; decided
    /// deterministically per seed). 0 disables.
    pub chaos: f64,
    /// Queue slots reserved for [`Priority::Interactive`] requests:
    /// batch submissions are refused once the queue holds
    /// `queue - interactive_reserve` items.
    pub interactive_reserve: usize,
    /// Default deadline applied to requests whose policy carries none
    /// (`None` = requests without a deadline never expire).
    pub default_deadline: Option<Duration>,
    /// Adaptive reliability governor; `None` serves every request at its
    /// submitted config.
    pub governor: Option<GovernorConfig>,
}

impl ServeConfig {
    /// A validated builder; unset knobs fall back to their env-backed
    /// defaults at [`build`](ServeConfigBuilder::build) time.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder::default()
    }

    /// Configuration from the `CREATE_SERVE_*` environment —
    /// [`builder`](Self::builder) with nothing overridden.
    pub fn from_env() -> Self {
        Self::builder().build()
    }
}

/// Validated builder for [`ServeConfig`], the serving-side counterpart of
/// [`create_core::EngineOptions::builder`]: explicit settings are clamped
/// the same way the env parsers validate, and anything left unset
/// resolves through the `CREATE_SERVE_*` environment at
/// [`build`](Self::build) time.
#[derive(Debug, Clone, Default)]
pub struct ServeConfigBuilder {
    workers: Option<usize>,
    queue: Option<usize>,
    base_seed: Option<u64>,
    chaos: Option<f64>,
    interactive_reserve: Option<usize>,
    default_deadline: Option<Option<Duration>>,
    governor: Option<Option<GovernorConfig>>,
}

impl ServeConfigBuilder {
    /// Worker-thread count (floored at 1; default `CREATE_SERVE_WORKERS`,
    /// falling back to the batch engine's thread count —
    /// `CREATE_THREADS` / machine parallelism — so batch and serve scale
    /// together unless told otherwise).
    pub fn workers(mut self, workers: usize) -> Self {
        if workers == 0 {
            create_tensor::envcfg::warn_adjusted(
                "CREATE_SERVE_WORKERS",
                workers,
                1usize,
                "the serving engine needs at least one worker",
            );
        }
        self.workers = Some(workers.max(1));
        self
    }

    /// Request-queue capacity (default `CREATE_SERVE_QUEUE`, falling back
    /// to 256). Unlike the env knob, an explicit `0` is honored: a
    /// zero-capacity queue rejects every submission, which the saturation
    /// tests rely on.
    pub fn queue(mut self, queue: usize) -> Self {
        self.queue = Some(queue);
        self
    }

    /// Base seed mixed into every request seed (default 0).
    pub fn base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = Some(base_seed);
        self
    }

    /// Chaos-panic probability per mission attempt, clamped to `[0, 1]`
    /// (default `CREATE_SERVE_CHAOS`, falling back to 0). Benches pin
    /// this to 0 so chaos never contaminates measurements.
    pub fn chaos(mut self, probability: f64) -> Self {
        let used = if probability.is_finite() {
            probability.clamp(0.0, 1.0)
        } else {
            0.0
        };
        // `!=` catches NaN too (NaN != NaN), so every adjustment warns.
        if used != probability {
            create_tensor::envcfg::warn_adjusted(
                "CREATE_SERVE_CHAOS",
                probability,
                used,
                "chaos probability must be a fraction in [0, 1]",
            );
        }
        self.chaos = Some(used);
        self
    }

    /// Queue slots reserved for interactive traffic (default: a quarter
    /// of the queue capacity, rounded up; clamped to the capacity).
    pub fn interactive_reserve(mut self, slots: usize) -> Self {
        self.interactive_reserve = Some(slots);
        self
    }

    /// Engine-wide default deadline for requests without one (default
    /// `CREATE_SERVE_DEADLINE_MS`, falling back to none).
    pub fn default_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Enables the adaptive reliability governor (default: enabled iff
    /// the `CREATE_SERVE_GOVERNOR` flag is set, with
    /// [`GovernorConfig::from_env`]).
    pub fn governor(mut self, governor: Option<GovernorConfig>) -> Self {
        self.governor = Some(governor);
        self
    }

    /// Resolves unset knobs from the environment and builds the config.
    pub fn build(self) -> ServeConfig {
        use create_tensor::envcfg;
        let queue = self
            .queue
            .unwrap_or_else(|| envcfg::read_positive_usize("CREATE_SERVE_QUEUE", 256));
        ServeConfig {
            workers: self.workers.unwrap_or_else(|| {
                envcfg::read_positive_usize(
                    "CREATE_SERVE_WORKERS",
                    create_core::engine::default_threads(),
                )
            }),
            queue,
            base_seed: self.base_seed.unwrap_or(0),
            chaos: self
                .chaos
                .unwrap_or_else(|| envcfg::read_fraction("CREATE_SERVE_CHAOS", 0.0)),
            interactive_reserve: self
                .interactive_reserve
                .unwrap_or_else(|| queue.div_ceil(4))
                .min(queue),
            default_deadline: self.default_deadline.unwrap_or_else(default_deadline_env),
            governor: self.governor.unwrap_or_else(|| {
                envcfg::read_flag("CREATE_SERVE_GOVERNOR", false).then(GovernorConfig::from_env)
            }),
        }
    }
}

/// `CREATE_SERVE_DEADLINE_MS` through the shared warn-and-fallback
/// contract: unset/blank → no default deadline; a positive integer →
/// that many milliseconds; zero or garbage → warn and fall back to none.
fn default_deadline_env() -> Option<Duration> {
    /// Display shim so `Option<u64>` fits [`envcfg::parse_validated`]'s
    /// "using default D" message.
    struct MaybeMs(Option<u64>);
    impl std::fmt::Display for MaybeMs {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self.0 {
                Some(ms) => write!(f, "{ms}"),
                None => f.write_str("none"),
            }
        }
    }
    let raw = std::env::var("CREATE_SERVE_DEADLINE_MS").ok();
    create_tensor::envcfg::parse_validated(
        "CREATE_SERVE_DEADLINE_MS",
        raw.as_deref(),
        MaybeMs(None),
        |s| match s.trim().parse::<u64>() {
            Ok(ms) if ms > 0 => Ok(MaybeMs(Some(ms))),
            _ => Err("expected a positive integer (milliseconds)".to_string()),
        },
    )
    .0
    .map(Duration::from_millis)
}

/// One queued unit of work: the admitted request plus its pre-assigned
/// identity and the ticket to fulfill.
///
/// The ticket lives in an `Option` so resolution is linear — and the
/// `Drop` impl is the supervision backstop: if a job is dropped with its
/// ticket still pending (worker panic unwinding through the mission, or
/// a queue torn down with items inside), the ticket resolves with
/// [`ServeFailure::Panicked`] instead of stranding its waiter. This
/// makes "every admitted ticket resolves" a structural property, not a
/// code-path-by-code-path promise.
struct Job {
    request_id: u64,
    first_seed: u64,
    request: MissionRequest,
    deadline_at: Option<Instant>,
    ticket: Option<Arc<TicketShared>>,
    admitted: Instant,
}

impl Job {
    /// Resolves the ticket (first resolution wins; the drop guard then
    /// has nothing left to do).
    fn resolve(&mut self, outcome: ServedOutcome) {
        if let Some(ticket) = self.ticket.take() {
            ticket.fulfill(outcome);
        }
    }
}

impl Drop for Job {
    fn drop(&mut self) {
        if let Some(ticket) = self.ticket.take() {
            ticket.fulfill(ServedOutcome {
                request_id: self.request_id,
                seed: self.first_seed,
                attempts: 0,
                result: MissionResult::Failed(ServeFailure::Panicked),
                decision: None,
                queue_ns: saturating_elapsed_ns(self.admitted),
                service_ns: 0,
            });
        }
    }
}

/// Shared engine state: the bounded queue plus admission counters.
struct EngineShared {
    queue: BoundedQueue<Job>,
    /// Next request id; incremented under the queue lock (inside
    /// `push_with`), so ids are dense and in admission order.
    next_id: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    /// Worker panics caught by the supervisor (each one respawned).
    panics: AtomicU64,
    /// Requests shed at claim time because their deadline expired queued.
    expired: AtomicU64,
    /// Retry attempts executed beyond first attempts.
    retried: AtomicU64,
    governor: Option<Governor>,
}

/// The resident serving engine: a warm worker pool behind a bounded
/// request queue. See the [crate docs](crate) for the full contract.
pub struct MissionEngine {
    shared: Arc<EngineShared>,
    config: ServeConfig,
    workers: Vec<JoinHandle<()>>,
}

impl MissionEngine {
    /// Starts `config.workers` serving threads over `deployment`, each
    /// warming its [`MissionSession`] before accepting work.
    pub fn start(deployment: Arc<Deployment>, config: ServeConfig) -> Self {
        let shared = Arc::new(EngineShared {
            queue: BoundedQueue::new(config.queue),
            next_id: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            governor: config.governor.clone().map(Governor::new),
        });
        let chaos = config.chaos;
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let dep = Arc::clone(&deployment);
                std::thread::Builder::new()
                    .name(format!("create-serve-{i}"))
                    .spawn(move || Self::worker(&shared, &dep, chaos))
                    .expect("spawn serve worker")
            })
            .collect();
        MissionEngine {
            shared,
            config,
            workers,
        }
    }

    /// One worker under supervision: the serving loop runs inside
    /// `catch_unwind`, and a panic — chaos-injected or real — respawns a
    /// fresh warmed session and keeps serving. The panicking mission's
    /// ticket was already resolved by [`Job`]'s drop guard during the
    /// unwind, so nothing waits on the dead iteration.
    fn worker(shared: &Arc<EngineShared>, dep: &Deployment, chaos: f64) {
        loop {
            let mut progressed = false;
            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                Self::mission_loop(shared, dep, chaos, &mut progressed);
            }));
            match caught {
                Ok(()) => return, // queue closed and drained
                Err(payload) => {
                    shared.panics.fetch_add(1, Ordering::Relaxed);
                    if !progressed {
                        // Panicked before claiming a single job (session
                        // warm-up on a broken deployment): respawning
                        // would spin on the same panic forever. Let the
                        // thread die; shutdown propagates the payload.
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    }

    /// The serving loop proper: a warmed session claiming jobs until the
    /// queue closes and drains. Sets `progressed` once it claims work, so
    /// the supervisor can tell a mid-mission panic (respawnable) from a
    /// panic before any job ran (fatal).
    fn mission_loop(shared: &EngineShared, dep: &Deployment, chaos: f64, progressed: &mut bool) {
        let mut session = MissionSession::warmed(dep);
        while let Some(mut job) = shared.queue.pop() {
            *progressed = true;
            let queue_ns = saturating_elapsed_ns(job.admitted);

            // Shed rather than run: nobody is waiting for this anymore.
            if job.deadline_at.is_some_and(|at| Instant::now() >= at) {
                shared.expired.fetch_add(1, Ordering::Relaxed);
                let outcome = ServedOutcome {
                    request_id: job.request_id,
                    seed: job.first_seed,
                    attempts: 0,
                    result: MissionResult::Failed(ServeFailure::DeadlineExpired),
                    decision: None,
                    queue_ns,
                    service_ns: 0,
                };
                job.resolve(outcome);
                continue;
            }

            let decision = shared.governor.as_ref().map(|g| g.decide());
            let config = match &decision {
                Some(point) => point.apply(&job.request.config),
                None => job.request.config.clone(),
            };

            let started = Instant::now();
            let mut attempt = 0u32;
            let (seed, outcome) = loop {
                let seed = retry_seed(job.first_seed, attempt);
                if chaos_fires(chaos, seed) {
                    // `job`'s drop guard resolves the ticket with
                    // `Failed(Panicked)` during this unwind; the
                    // supervisor respawns the worker.
                    panic!(
                        "[create-serve] chaos: injected worker panic (request {})",
                        job.request_id
                    );
                }
                let outcome = session.run(job.request.task, &config, seed);
                attempt += 1;
                let deadline_hit = job.deadline_at.is_some_and(|at| Instant::now() >= at);
                if outcome.success || attempt > job.request.policy.retries || deadline_hit {
                    break (seed, outcome);
                }
                shared.retried.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff_delay(
                    job.request.policy.backoff,
                    attempt,
                    job.first_seed,
                ));
            };
            let service_ns = saturating_elapsed_ns(started);

            if let Some(governor) = &shared.governor {
                governor.observe(&outcome.error_signals(), outcome.energy_j());
            }
            let served = ServedOutcome {
                request_id: job.request_id,
                seed,
                attempts: attempt,
                result: MissionResult::Completed(outcome),
                decision,
                queue_ns,
                service_ns,
            };
            job.resolve(served);
        }
    }

    /// Submits a request. Admission is immediate and non-blocking: either
    /// the request is queued and a [`MissionTicket`] (with its final id
    /// and seed) comes back, or it is refused and handed back in a
    /// [`Rejected`] — never silently dropped, never blocked on a full
    /// queue. An already-expired deadline refuses at the door
    /// ([`RejectReason::DeadlineExpired`]); [`Priority::Batch`] requests
    /// are admitted only below the reduced batch bound.
    // The Err variant intentionally carries the whole request back to
    // the caller (retry/redirect without a clone); rejection is the
    // slow path, so its size does not matter.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, request: MissionRequest) -> Result<MissionTicket, Rejected> {
        let now = Instant::now();
        let deadline_at = match request.policy.deadline {
            Some(Deadline::Within(d)) => Some(now + d),
            Some(Deadline::At(at)) => Some(at),
            None => self.config.default_deadline.map(|d| now + d),
        };
        if deadline_at.is_some_and(|at| at <= now) {
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(Rejected {
                request,
                reason: RejectReason::DeadlineExpired,
            });
        }
        let limit = match request.policy.priority {
            Priority::Interactive => self.config.queue,
            Priority::Batch => self
                .config
                .queue
                .saturating_sub(self.config.interactive_reserve),
        };
        let mut pending = Some(request);
        let mut ticket = None;
        let pushed = self.shared.queue.push_with_limit(limit, || {
            // Runs under the queue lock, only on admission: ids are dense,
            // in admission order, with no gaps for rejected requests.
            let request_id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
            let seed = request_seed(self.config.base_seed, request_id);
            let shared = Arc::new(TicketShared::default());
            ticket = Some(MissionTicket {
                request_id,
                seed,
                shared: Arc::clone(&shared),
            });
            Job {
                request_id,
                first_seed: seed,
                request: pending.take().expect("request consumed once"),
                deadline_at,
                ticket: Some(shared),
                admitted: Instant::now(),
            }
        });
        match pushed {
            Ok(()) => {
                self.shared.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(ticket.expect("admitted request has a ticket"))
            }
            Err(err) => {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                let reason = match err {
                    PushError::Full => RejectReason::QueueFull {
                        capacity: self.shared.queue.capacity(),
                    },
                    PushError::Closed => RejectReason::ShuttingDown,
                };
                Err(Rejected {
                    request: pending.take().expect("rejected request is handed back"),
                    reason,
                })
            }
        }
    }

    /// The configuration the engine started with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Requests currently queued (admitted, not yet claimed by a worker).
    pub fn queued(&self) -> usize {
        self.shared.queue.len()
    }

    /// Requests admitted so far.
    pub fn accepted(&self) -> u64 {
        self.shared.accepted.load(Ordering::Relaxed)
    }

    /// Requests refused so far (queue full, shutting down, or expired at
    /// admission).
    pub fn rejected(&self) -> u64 {
        self.shared.rejected.load(Ordering::Relaxed)
    }

    /// Worker panics caught and recovered by the supervisor so far.
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Requests shed at claim time because their deadline expired while
    /// queued.
    pub fn expired(&self) -> u64 {
        self.shared.expired.load(Ordering::Relaxed)
    }

    /// Retry attempts executed beyond first attempts.
    pub fn retried(&self) -> u64 {
        self.shared.retried.load(Ordering::Relaxed)
    }

    /// Snapshot of the adaptive governor (`None` on ungoverned engines).
    pub fn governor_report(&self) -> Option<GovernorReport> {
        self.shared.governor.as_ref().map(|g| g.report())
    }

    /// Stops admitting new requests: every subsequent
    /// [`submit`](Self::submit) is refused with
    /// [`RejectReason::ShuttingDown`]. Requests already accepted are
    /// still drained and their tickets still resolve. Idempotent.
    pub fn close(&self) {
        self.shared.queue.close();
    }

    /// Graceful shutdown: stops admitting ([`close`](Self::close)),
    /// **drains** every request already accepted (their tickets still
    /// resolve), then joins the workers. Dropping the engine does the
    /// same.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            // Supervised workers only die with a panic payload when they
            // could not even start serving (warm-up panic with no job
            // claimed); propagate rather than hide that.
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

impl Drop for MissionEngine {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Monotonic elapsed nanoseconds, saturated into `u64` (585 years of
/// latency headroom).
fn saturating_elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_seeds_are_deterministic_and_decorrelated() {
        assert_eq!(request_seed(7, 0), request_seed(7, 0));
        assert_ne!(request_seed(7, 0), request_seed(7, 1));
        assert_ne!(request_seed(7, 0), request_seed(8, 0));
        // Dense neighbouring ids must not produce near-identical seeds.
        let a = request_seed(0, 0);
        let b = request_seed(0, 1);
        assert!((a ^ b).count_ones() > 8, "a={a:#x} b={b:#x}");
    }

    #[test]
    fn retry_seeds_preserve_the_first_attempt_and_disperse_the_rest() {
        let first = request_seed(0xC0FFEE, 3);
        assert_eq!(retry_seed(first, 0), first, "attempt 0 is the contract");
        let retries: Vec<u64> = (1..5).map(|a| retry_seed(first, a)).collect();
        for (i, &r) in retries.iter().enumerate() {
            assert_ne!(r, first, "retry {} collides with the first seed", i + 1);
            assert_eq!(r, retry_seed(first, i as u32 + 1), "deterministic");
        }
        let distinct: std::collections::HashSet<_> = retries.iter().collect();
        assert_eq!(distinct.len(), retries.len());
    }

    #[test]
    fn chaos_decision_is_a_pure_function_of_seed() {
        assert!(!chaos_fires(0.0, 42));
        assert!(chaos_fires(1.0, 42));
        // Deterministic per seed at a fixed probability...
        for seed in 0..64u64 {
            assert_eq!(chaos_fires(0.3, seed), chaos_fires(0.3, seed));
        }
        // ...and roughly calibrated: ~30% of seeds fire at p = 0.3.
        let fired = (0..10_000u64).filter(|&s| chaos_fires(0.3, s)).count();
        assert!((2_500..3_500).contains(&fired), "fired {fired}/10000");
    }

    #[test]
    fn backoff_grows_is_jittered_and_caps_at_a_second() {
        let base = Duration::from_millis(10);
        let d1 = backoff_delay(base, 1, 7);
        let d2 = backoff_delay(base, 2, 7);
        assert!(d1 >= base / 2 && d1 < base * 3 / 2, "{d1:?}");
        assert!(d2 > d1, "exponential growth: {d1:?} -> {d2:?}");
        assert_eq!(d1, backoff_delay(base, 1, 7), "deterministic");
        assert_ne!(
            backoff_delay(base, 1, 7),
            backoff_delay(base, 1, 8),
            "jitter decorrelates requests"
        );
        assert!(backoff_delay(Duration::from_secs(30), 9, 7) <= Duration::from_secs(1));
    }

    #[test]
    fn builder_floors_workers_and_honors_zero_queue() {
        let cfg = ServeConfig::builder()
            .workers(0)
            .queue(0)
            .base_seed(9)
            .build();
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.queue, 0, "explicit zero capacity is honored");
        assert_eq!(cfg.base_seed, 9);
        assert_eq!(cfg.interactive_reserve, 0, "reserve clamps to capacity");
    }

    #[test]
    fn builder_clamps_chaos_and_reserve() {
        let cfg = ServeConfig::builder()
            .queue(16)
            .chaos(7.5)
            .interactive_reserve(99)
            .build();
        assert_eq!(cfg.chaos, 1.0);
        assert_eq!(cfg.interactive_reserve, 16, "reserve clamps to capacity");
        let cfg = ServeConfig::builder().queue(16).chaos(f64::NAN).build();
        assert_eq!(cfg.chaos, 0.0);
        assert_eq!(cfg.interactive_reserve, 4, "default reserve is a quarter");
    }

    #[test]
    fn env_defaults_resolve_when_unset() {
        // The test env leaves CREATE_SERVE_* unset.
        if std::env::var("CREATE_SERVE_WORKERS").is_err()
            && std::env::var("CREATE_SERVE_QUEUE").is_err()
            && std::env::var("CREATE_SERVE_CHAOS").is_err()
            && std::env::var("CREATE_SERVE_DEADLINE_MS").is_err()
            && std::env::var("CREATE_SERVE_GOVERNOR").is_err()
        {
            let cfg = ServeConfig::from_env();
            assert_eq!(cfg.workers, create_core::engine::default_threads());
            assert_eq!(cfg.queue, 256);
            assert_eq!(cfg.base_seed, 0);
            assert_eq!(cfg.chaos, 0.0);
            assert_eq!(cfg.interactive_reserve, 64);
            assert_eq!(cfg.default_deadline, None);
            assert!(cfg.governor.is_none());
        }
    }

    #[test]
    fn reject_reasons_render_and_compose_as_errors() {
        assert_eq!(
            RejectReason::QueueFull { capacity: 4 }.to_string(),
            "request queue full (capacity 4)"
        );
        assert_eq!(
            RejectReason::ShuttingDown.to_string(),
            "engine is shutting down"
        );
        assert_eq!(
            RejectReason::DeadlineExpired.to_string(),
            "deadline expired before admission"
        );
        let rejected = Rejected {
            request: MissionRequest::new(create_env::TaskId::Log, CreateConfig::golden()),
            reason: RejectReason::DeadlineExpired,
        };
        let msg = rejected.to_string();
        assert!(msg.contains("deadline expired"), "{msg}");
        // `?`-composability: both types are std errors, with the reason
        // reachable through source().
        let err: Box<dyn std::error::Error> = Box::new(rejected);
        let source = err.source().expect("Rejected exposes its reason");
        assert_eq!(source.to_string(), "deadline expired before admission");
    }

    #[test]
    fn serve_failures_render() {
        assert_eq!(
            ServeFailure::Panicked.to_string(),
            "worker panicked mid-mission"
        );
        assert_eq!(
            ServeFailure::DeadlineExpired.to_string(),
            "deadline expired while queued"
        );
    }

    #[test]
    fn served_outcome_accessors_distinguish_completion_from_failure() {
        let failed = ServedOutcome {
            request_id: 1,
            seed: 2,
            attempts: 0,
            result: MissionResult::Failed(ServeFailure::Panicked),
            decision: None,
            queue_ns: 10,
            service_ns: 5,
        };
        assert_eq!(failed.latency_ns(), 15);
        assert!(failed.outcome().is_none());
        assert!(!failed.is_success());
        assert_eq!(failed.failure(), Some(ServeFailure::Panicked));
    }

    #[test]
    fn policy_builders_compose() {
        let policy = RequestPolicy::default()
            .with_deadline(Duration::from_millis(50))
            .batch()
            .with_retries(2);
        assert_eq!(
            policy.deadline,
            Some(Deadline::Within(Duration::from_millis(50)))
        );
        assert_eq!(policy.priority, Priority::Batch);
        assert_eq!(policy.retries, 2);
        let default = RequestPolicy::default();
        assert_eq!(default.priority, Priority::Interactive);
        assert_eq!(default.retries, 0);
        assert!(default.deadline.is_none());
    }
}
