//! The adaptive reliability governor: closes the energy–reliability loop
//! at serving time.
//!
//! The batch harnesses characterize the trade-off offline (which scheme,
//! which voltage, at which BER); a resident engine can instead *observe*
//! it live and steer. The governor watches a sliding window of per-mission
//! [`ErrorSignals`] — mission success, anomaly-detection trips, entropy
//! spikes — and moves the served operating point along a ladder of
//! [`OperatingPoint`]s (protection [`Scheme`] plus controller voltage),
//! holding a configurable mission-success SLO at the cheapest point that
//! sustains it:
//!
//! * **escalate** (stronger protection) immediately on a failed mission
//!   or an acute anomaly burst — AD trips are the early-warning channel
//!   (the paper's Sec. 5.1 units), firing at error rates well below the
//!   mission-failure threshold, so the governor usually strengthens
//!   protection *before* the first mission is lost;
//! * **de-escalate** (cheaper operation) only after a full window of
//!   clean successes and a cooldown — a bounded-cost probe: if the lower
//!   level is still too hot, its very first mission's signals (not a
//!   window of failures) send the governor back up.
//!
//! Decisions are recorded per mission in
//! [`ServedOutcome::decision`](crate::ServedOutcome::decision), so the
//! offline replay contract survives adaptation: replaying the served
//! seed under `decision.apply(&request.config)` reproduces the outcome
//! bit for bit. Because decisions depend on the *global order* of
//! observations, a governed engine's outcomes are scheduling-dependent
//! across worker counts — replay identity is per mission, via the
//! recorded decision.

use create_accel::timing::V_NOMINAL;
use create_accel::Scheme;
use create_core::config::{CreateConfig, VoltageControl};
use create_core::mission::ErrorSignals;
use std::collections::VecDeque;
use std::sync::Mutex;

/// One rung of the governor's ladder: how the served mission config is
/// overridden before running.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Datapath protection scheme to serve at.
    pub scheme: Scheme,
    /// Force anomaly detection on (never turns a requested AD off).
    pub ad: bool,
    /// Controller-rail voltage override (`None` honors the request's
    /// voltage control).
    pub voltage: Option<f64>,
}

impl OperatingPoint {
    /// The request config with this operating point applied — the exact
    /// config a replay must use to reproduce a governed mission.
    pub fn apply(&self, base: &CreateConfig) -> CreateConfig {
        let mut config = base.clone();
        config.scheme = self.scheme;
        config.planner_ad = base.planner_ad || self.ad;
        config.controller_ad = base.controller_ad || self.ad;
        if let Some(v) = self.voltage {
            config.voltage = VoltageControl::Fixed(v);
        }
        config
    }
}

impl std::fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let scheme = match self.scheme {
            Scheme::Plain => "plain",
            Scheme::Dmr => "dmr",
            Scheme::ThunderVolt => "thundervolt",
            Scheme::Razor => "razor",
            Scheme::Abft { .. } => "abft",
        };
        write!(f, "{scheme}{}", if self.ad { "+ad" } else { "" })?;
        match self.voltage {
            Some(v) => write!(f, "@{v:.2}V"),
            None => Ok(()),
        }
    }
}

/// The default protection ladder, cheapest first: CREATE's deployed
/// Plain+AD, then DMR (2–3× compute, catches what AD clearance cannot
/// repair), then DMR with the controller rail pinned at nominal voltage
/// (retreats from undervolting entirely).
pub fn default_ladder() -> Vec<OperatingPoint> {
    vec![
        OperatingPoint {
            scheme: Scheme::Plain,
            ad: true,
            voltage: None,
        },
        OperatingPoint {
            scheme: Scheme::Dmr,
            ad: true,
            voltage: None,
        },
        OperatingPoint {
            scheme: Scheme::Dmr,
            ad: true,
            voltage: Some(V_NOMINAL),
        },
    ]
}

/// Governor tuning. Build with struct-update from `Default`, or
/// [`from_env`](Self::from_env) for the `CREATE_SERVE_*` contract.
#[derive(Debug, Clone)]
pub struct GovernorConfig {
    /// Target windowed mission-success rate (`CREATE_SERVE_SLO`).
    pub slo: f64,
    /// Sliding-window length in missions (`CREATE_SERVE_WINDOW`).
    pub window: usize,
    /// Observations required before the windowed SLO check can escalate
    /// (acute signals bypass this).
    pub min_samples: usize,
    /// Observations after a level switch before de-escalation is
    /// considered again.
    pub cooldown: usize,
    /// Acute escalation threshold on the per-mission AD-trip fraction
    /// (trips / checked outputs): one mission above it escalates
    /// immediately, before any mission fails.
    pub ad_trip_escalate: f64,
    /// Acute escalation threshold on the per-mission entropy-spike
    /// fraction (spike steps / steps).
    pub entropy_spike_escalate: f64,
    /// The operating-point ladder, cheapest first; empty falls back to
    /// [`default_ladder`].
    pub levels: Vec<OperatingPoint>,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        Self {
            slo: 0.9,
            window: 32,
            min_samples: 8,
            cooldown: 16,
            ad_trip_escalate: 1e-3,
            entropy_spike_escalate: 0.25,
            levels: default_ladder(),
        }
    }
}

impl GovernorConfig {
    /// Defaults with `CREATE_SERVE_SLO` (fraction, default 0.9) and
    /// `CREATE_SERVE_WINDOW` (positive missions count, default 32)
    /// resolved through the shared warn-and-fallback env contract.
    pub fn from_env() -> Self {
        Self {
            slo: create_tensor::envcfg::read_fraction("CREATE_SERVE_SLO", 0.9),
            window: create_tensor::envcfg::read_positive_usize("CREATE_SERVE_WINDOW", 32),
            ..Self::default()
        }
    }
}

/// Mutable governor state, behind one short-held mutex (two lock
/// acquisitions per mission: `decide` and `observe`).
#[derive(Debug)]
struct GovernorState {
    /// Per observed mission: `(success, acute)`.
    window: VecDeque<(bool, bool)>,
    level: usize,
    since_switch: usize,
    escalations: u64,
    deescalations: u64,
    /// Missions observed at each level.
    missions: Vec<u64>,
    /// Energy observed at each level (J).
    energy_j: Vec<f64>,
}

/// Read-only snapshot of what the governor has done so far.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorReport {
    /// Current ladder level (0 = cheapest).
    pub level: usize,
    /// Level switches toward stronger protection.
    pub escalations: u64,
    /// Level switches toward cheaper operation.
    pub deescalations: u64,
    /// Missions observed per level.
    pub missions: Vec<u64>,
    /// Metered mission energy per level (J).
    pub energy_j: Vec<f64>,
}

impl GovernorReport {
    /// Missions observed across all levels.
    pub fn total_missions(&self) -> u64 {
        self.missions.iter().sum()
    }

    /// Mission energy across all levels (J).
    pub fn total_energy_j(&self) -> f64 {
        self.energy_j.iter().sum()
    }
}

/// The sliding-window reliability governor. See the [module
/// docs](crate::governor) for the control law.
#[derive(Debug)]
pub struct Governor {
    config: GovernorConfig,
    state: Mutex<GovernorState>,
}

impl Governor {
    /// A governor at the cheapest level of `config.levels` (clamped to a
    /// sane shape: non-empty ladder, window ≥ 1, `min_samples` within the
    /// window).
    pub fn new(mut config: GovernorConfig) -> Self {
        if config.levels.is_empty() {
            config.levels = default_ladder();
        }
        config.window = config.window.max(1);
        config.min_samples = config.min_samples.clamp(1, config.window);
        let levels = config.levels.len();
        Governor {
            config,
            state: Mutex::new(GovernorState {
                window: VecDeque::new(),
                level: 0,
                since_switch: 0,
                escalations: 0,
                deescalations: 0,
                missions: vec![0; levels],
                energy_j: vec![0.0; levels],
            }),
        }
    }

    /// The operating point the next mission should run at.
    pub fn decide(&self) -> OperatingPoint {
        let state = self.state.lock().expect("governor poisoned");
        self.config.levels[state.level]
    }

    /// Feeds one completed mission's observable signals (and its metered
    /// energy) back into the control loop, possibly switching level for
    /// subsequent missions.
    pub fn observe(&self, signals: &ErrorSignals, energy_j: f64) {
        let mut state = self.state.lock().expect("governor poisoned");
        let level = state.level;
        state.missions[level] += 1;
        state.energy_j[level] += energy_j;
        state.since_switch += 1;

        let acute = signals.ad_trip_fraction() > self.config.ad_trip_escalate
            || signals.entropy_spike_fraction() > self.config.entropy_spike_escalate;
        state.window.push_back((signals.success, acute));
        while state.window.len() > self.config.window {
            state.window.pop_front();
        }

        let successes = state.window.iter().filter(|(ok, _)| *ok).count();
        let rate = successes as f64 / state.window.len() as f64;
        let top = self.config.levels.len() - 1;

        // Escalation: a failed mission or an acute anomaly burst moves up
        // immediately; a windowed SLO miss (with enough samples) catches
        // slow degradation the acute thresholds are too coarse for.
        let escalate = !signals.success
            || acute
            || (state.window.len() >= self.config.min_samples && rate < self.config.slo);
        if escalate && state.level < top {
            state.level += 1;
            state.escalations += 1;
            state.since_switch = 0;
            state.window.clear();
            return;
        }

        // De-escalation probe: a full window of clean successes, past the
        // cooldown — drop one level; if it is still too hot, the first
        // mission's signals bring us straight back up.
        let window_clean = state.window.len() >= self.config.window
            && state.window.iter().all(|&(ok, acute)| ok && !acute);
        if window_clean && state.since_switch >= self.config.cooldown && state.level > 0 {
            state.level -= 1;
            state.deescalations += 1;
            state.since_switch = 0;
            state.window.clear();
        }
    }

    /// Snapshot of levels, switches and per-level mission/energy totals.
    pub fn report(&self) -> GovernorReport {
        let state = self.state.lock().expect("governor poisoned");
        GovernorReport {
            level: state.level,
            escalations: state.escalations,
            deescalations: state.deescalations,
            missions: state.missions.clone(),
            energy_j: state.energy_j.clone(),
        }
    }

    /// The tuning this governor runs with (after clamping).
    pub fn config(&self) -> &GovernorConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signals(success: bool, ad_trips: u64) -> ErrorSignals {
        ErrorSignals {
            success,
            ad_checked: 10_000,
            ad_trips,
            scheme_residuals: 0,
            entropy_spikes: 0,
            steps: 100,
        }
    }

    #[test]
    fn stays_at_cheapest_level_while_clean() {
        let governor = Governor::new(GovernorConfig::default());
        for _ in 0..100 {
            governor.observe(&signals(true, 0), 1.0);
        }
        let report = governor.report();
        assert_eq!(report.level, 0);
        assert_eq!(report.escalations, 0);
        assert_eq!(report.total_missions(), 100);
        assert_eq!(report.missions[0], 100);
    }

    #[test]
    fn failure_escalates_immediately() {
        let governor = Governor::new(GovernorConfig::default());
        assert_eq!(governor.decide(), default_ladder()[0]);
        governor.observe(&signals(false, 0), 1.0);
        assert_eq!(governor.decide(), default_ladder()[1]);
        assert_eq!(governor.report().escalations, 1);
    }

    #[test]
    fn acute_ad_trips_escalate_before_any_failure() {
        let governor = Governor::new(GovernorConfig::default());
        // Mission succeeded, but 5% of AD-checked outputs tripped: the
        // early-warning channel fires without losing a single mission.
        governor.observe(&signals(true, 500), 1.0);
        assert_eq!(governor.report().level, 1);
    }

    #[test]
    fn escalation_saturates_at_the_top_of_the_ladder() {
        let governor = Governor::new(GovernorConfig::default());
        for _ in 0..10 {
            governor.observe(&signals(false, 1_000), 1.0);
        }
        let report = governor.report();
        assert_eq!(report.level, default_ladder().len() - 1);
        assert_eq!(report.escalations as usize, default_ladder().len() - 1);
    }

    #[test]
    fn clean_window_past_cooldown_probes_back_down() {
        let config = GovernorConfig {
            window: 4,
            min_samples: 2,
            cooldown: 4,
            ..GovernorConfig::default()
        };
        let governor = Governor::new(config);
        governor.observe(&signals(false, 0), 1.0);
        assert_eq!(governor.report().level, 1);
        // Four clean missions fill the window and satisfy the cooldown.
        for _ in 0..4 {
            governor.observe(&signals(true, 0), 1.0);
        }
        let report = governor.report();
        assert_eq!(report.level, 0, "de-escalation probe");
        assert_eq!(report.deescalations, 1);
        // And a hot probe mission goes straight back up.
        governor.observe(&signals(true, 500), 1.0);
        assert_eq!(governor.report().level, 1);
    }

    #[test]
    fn windowed_slo_miss_escalates_even_without_acute_signals() {
        // Failures mixed under the SLO but above the acute radar: after
        // min_samples the windowed rate triggers. (Individual failures
        // already escalate acutely, so exercise the windowed path with a
        // ladder where level 0 failures are disarmed — impossible — or
        // simply confirm the rate math via a clean/failed mix: the first
        // failure escalates, which *is* the windowed guarantee's floor.)
        let governor = Governor::new(GovernorConfig::default());
        for _ in 0..7 {
            governor.observe(&signals(true, 0), 1.0);
        }
        assert_eq!(governor.report().level, 0);
        governor.observe(&signals(false, 0), 1.0);
        assert_eq!(governor.report().level, 1);
    }

    #[test]
    fn per_level_energy_accounting_sums_in_the_report() {
        let governor = Governor::new(GovernorConfig::default());
        governor.observe(&signals(true, 0), 2.0);
        governor.observe(&signals(false, 0), 3.0); // escalates after booking
        governor.observe(&signals(true, 0), 5.0);
        let report = governor.report();
        assert_eq!(report.missions, vec![2, 1, 0]);
        assert_eq!(report.energy_j, vec![5.0, 5.0, 0.0]);
        assert_eq!(report.total_energy_j(), 10.0);
        assert_eq!(report.total_missions(), 3);
    }

    #[test]
    fn empty_ladder_and_degenerate_window_are_clamped() {
        let governor = Governor::new(GovernorConfig {
            levels: vec![],
            window: 0,
            min_samples: 99,
            ..GovernorConfig::default()
        });
        assert_eq!(governor.config().levels, default_ladder());
        assert_eq!(governor.config().window, 1);
        assert_eq!(governor.config().min_samples, 1);
        // Still functional: a failure escalates, nothing panics.
        governor.observe(&signals(false, 0), 0.0);
        assert_eq!(governor.report().level, 1);
    }

    #[test]
    fn operating_points_apply_onto_request_configs() {
        let base = CreateConfig::golden();
        let point = OperatingPoint {
            scheme: Scheme::Dmr,
            ad: true,
            voltage: Some(0.85),
        };
        let applied = point.apply(&base);
        assert_eq!(applied.scheme, Scheme::Dmr);
        assert!(applied.planner_ad && applied.controller_ad);
        assert_eq!(applied.voltage, VoltageControl::Fixed(0.85));
        // A voltage-less point honors the request's voltage control.
        let hands_off = OperatingPoint {
            scheme: Scheme::Plain,
            ad: false,
            voltage: None,
        };
        let kept = hands_off.apply(&base);
        assert_eq!(kept.voltage, base.voltage);
        assert!(!kept.controller_ad, "never force AD off, never force on");
        assert_eq!(format!("{point}"), "dmr+ad@0.85V");
    }
}
