//! Supervision tests: the engine must survive worker panics. Chaos
//! injection (`ServeConfigBuilder::chaos`) panics workers with a
//! seed-deterministic probability; these tests pin the three guarantees
//! that make that survivable — every admitted ticket resolves, panicked
//! workers respawn and keep serving, and missions that complete after a
//! recovery still replay bit-identically offline.

use create_core::config::CreateConfig;
use create_core::mission::MissionSession;
use create_core::testutil::tiny_deployment;
use create_serve::{
    MissionEngine, MissionRequest, MissionResult, ServeConfig, ServeFailure, ServedOutcome,
};
use std::sync::Arc;

fn request(task: create_env::TaskId) -> MissionRequest {
    MissionRequest::new(task, CreateConfig::golden())
}

/// The supervisor increments the panic counter *after* the unwinding
/// job's drop guard has already resolved the ticket, so a waiter can
/// observe the outcome a beat before the count. Spin briefly for the
/// expected count instead of racing it.
fn await_panics(engine: &MissionEngine, expected: u64) {
    for _ in 0..2000 {
        if engine.panics() >= expected {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert_eq!(engine.panics(), expected);
}

/// Satellite regression: `MissionTicket::wait` must never hang when the
/// worker serving it dies. With chaos pinned to 1.0 every claimed job
/// panics its worker mid-mission; the drop guard resolves the ticket
/// with a typed `Failed(Panicked)` during the unwind, so this `wait`
/// returns instead of blocking forever on a dead thread.
#[test]
fn ticket_wait_returns_a_typed_failure_when_the_worker_dies() {
    let (dep, task) = tiny_deployment();
    let engine = MissionEngine::start(
        Arc::new(dep),
        ServeConfig::builder()
            .workers(1)
            .queue(4)
            .chaos(1.0)
            .build(),
    );
    let ticket = engine.submit(request(task)).expect("queue has room");
    let served = ticket.wait(); // would hang forever without the drop guard
    assert_eq!(served.result, MissionResult::Failed(ServeFailure::Panicked));
    assert_eq!(served.failure(), Some(ServeFailure::Panicked));
    assert_eq!(served.attempts, 0, "no attempt completed");
    assert!(!served.is_success());
    engine.shutdown();
}

/// Forced chaos (probability 1.0): every admitted ticket still resolves,
/// each panic is counted, and the worker pool respawns through every
/// single one — the engine never wedges even when *all* missions kill
/// their workers.
#[test]
fn every_ticket_resolves_under_total_chaos() {
    let (dep, task) = tiny_deployment();
    let engine = MissionEngine::start(
        Arc::new(dep),
        ServeConfig::builder()
            .workers(2)
            .queue(16)
            .chaos(1.0)
            .build(),
    );
    let tickets: Vec<_> = (0..12)
        .map(|_| engine.submit(request(task)).expect("queue has room"))
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let served = ticket.wait();
        assert_eq!(served.request_id, i as u64);
        assert_eq!(served.result, MissionResult::Failed(ServeFailure::Panicked));
    }
    await_panics(&engine, 12); // one caught panic per mission
    engine.shutdown();
}

/// Partial chaos: survivors and casualties are decided per seed (a pure
/// function, so the split is deterministic), workers respawn after every
/// casualty, the engine keeps serving afterwards, and every mission that
/// completed replays bit-identically offline — recovery does not leak
/// state into subsequent missions.
#[test]
fn survivors_of_partial_chaos_replay_bit_identically() {
    let (dep, task) = tiny_deployment();
    let dep = Arc::new(dep);
    let chaos = 0.4;
    let base_seed = 0xDECAF;
    let serve_round = |count: usize| -> Vec<ServedOutcome> {
        let engine = MissionEngine::start(
            Arc::clone(&dep),
            ServeConfig::builder()
                .workers(3)
                .queue(count)
                .base_seed(base_seed)
                .chaos(chaos)
                .build(),
        );
        let tickets: Vec<_> = (0..count)
            .map(|_| engine.submit(request(task)).expect("queue sized to burst"))
            .collect();
        let served: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
        let panicked = served.iter().filter(|s| s.failure().is_some()).count();
        await_panics(&engine, panicked as u64);
        engine.shutdown();
        served
    };

    let served = serve_round(20);
    let panicked = served.iter().filter(|s| s.failure().is_some()).count();
    let completed = served.iter().filter(|s| s.outcome().is_some()).count();
    assert!(
        panicked > 0 && completed > 0,
        "p=0.4 over 20 seeds must mix"
    );

    // Post-recovery correctness: everything that completed — including
    // missions served by respawned workers — replays bit-identically.
    let mut session = MissionSession::new(&dep);
    for s in &served {
        if let MissionResult::Completed(outcome) = &s.result {
            let replayed = session.run(task, &CreateConfig::golden(), s.seed);
            assert_eq!(outcome, &replayed, "id={}", s.request_id);
        }
    }

    // The chaos decision is a pure function of the seed: a second engine
    // at the same base seed panics exactly the same requests and
    // completes exactly the same outcomes.
    let rerun = serve_round(20);
    let results: Vec<_> = served.iter().map(|s| s.result.clone()).collect();
    let rerun_results: Vec<_> = rerun.iter().map(|s| s.result.clone()).collect();
    assert_eq!(results, rerun_results, "chaos must be deterministic");
}

/// A panicked worker's replacement keeps serving: after total chaos has
/// killed (and respawned) the only worker, a fresh engine-level wave of
/// chaos-free traffic would still need that worker alive. Chaos is
/// engine-wide, so emulate "recovery" by checking the *same* engine keeps
/// claiming jobs after every panic — 6 sequential missions through one
/// worker require 6 successful respawns.
#[test]
fn a_single_worker_respawns_repeatedly_and_keeps_claiming() {
    let (dep, task) = tiny_deployment();
    let engine = MissionEngine::start(
        Arc::new(dep),
        ServeConfig::builder()
            .workers(1)
            .queue(1)
            .chaos(1.0)
            .build(),
    );
    for i in 0..6u64 {
        let ticket = engine.submit(request(task)).expect("queue drained");
        let served = ticket.wait();
        assert_eq!(served.request_id, i);
        assert_eq!(served.result, MissionResult::Failed(ServeFailure::Panicked));
    }
    await_panics(&engine, 6);
    engine.shutdown();
}
