//! Request-policy tests: seed-dispersion properties for the dense-id →
//! seed mapping (the replay contract's foundation), retry-seed identity,
//! and the deadline edge cases — zero deadline, already expired at
//! admission, and expiry while queued.

use create_core::config::CreateConfig;
use create_core::testutil::tiny_deployment;
use create_serve::{
    request_seed, retry_seed, MissionEngine, MissionRequest, Priority, RejectReason, RequestPolicy,
    ServeConfig, ServeFailure,
};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dense id ranges (the ids the engine actually hands out) must map
    /// to fully collision-free seeds for any base seed.
    #[test]
    fn dense_ids_never_collide(base in any::<u64>(), start in 0u64..1_000_000) {
        let seeds: HashSet<u64> =
            (start..start + 512).map(|id| request_seed(base, id)).collect();
        prop_assert_eq!(seeds.len(), 512);
    }

    /// No low-bit structure: sequential ids must not leak into the seed's
    /// low byte (missions hash seeds into per-stream RNGs, so a striped
    /// low byte would correlate "adjacent" requests).
    #[test]
    fn dense_ids_scramble_the_low_byte(base in any::<u64>()) {
        let low: HashSet<u8> =
            (0u64..512).map(|id| (request_seed(base, id) & 0xFF) as u8).collect();
        // 512 draws over 256 values: a uniform map leaves ~220 distinct;
        // anything below 100 means visible striping.
        prop_assert!(low.len() >= 100, "only {} distinct low bytes", low.len());
        let ones = (0u64..512).filter(|&id| request_seed(base, id) & 1 == 1).count();
        let balance = ones as f64 / 512.0;
        prop_assert!((0.35..=0.65).contains(&balance), "bit-0 balance {balance}");
    }

    /// Neighbouring ids differ in many bits (avalanche), so per-request
    /// RNG streams are decorrelated even for back-to-back admissions.
    #[test]
    fn neighbouring_ids_avalanche(base in any::<u64>(), id in 0u64..1_000_000) {
        let diff = request_seed(base, id) ^ request_seed(base, id + 1);
        prop_assert!(diff.count_ones() >= 8, "only {} bits flipped", diff.count_ones());
    }

    /// Retry seeds: attempt 0 is the original seed (the replay contract
    /// is untouched by the retry machinery) and later attempts disperse
    /// without colliding with each other or the original.
    #[test]
    fn retry_seeds_keep_attempt_zero_and_disperse(first in any::<u64>()) {
        prop_assert_eq!(retry_seed(first, 0), first);
        let mut seen = HashSet::from([first]);
        for attempt in 1..16u32 {
            prop_assert!(seen.insert(retry_seed(first, attempt)), "attempt {attempt} collides");
        }
    }
}

/// A zero deadline can never be met: it is refused at admission with the
/// typed reason (and the request handed back), not queued to die later.
#[test]
fn zero_deadline_is_rejected_at_admission() {
    let (dep, task) = tiny_deployment();
    let engine = MissionEngine::start(
        Arc::new(dep),
        ServeConfig::builder()
            .workers(1)
            .queue(4)
            .chaos(0.0)
            .build(),
    );
    let req = MissionRequest::new(task, CreateConfig::golden())
        .with_policy(RequestPolicy::default().with_deadline(Duration::ZERO));
    let rejected = engine.submit(req).expect_err("zero deadline cannot be met");
    assert_eq!(rejected.reason, RejectReason::DeadlineExpired);
    assert_eq!(engine.accepted(), 0);
    assert_eq!(engine.rejected(), 1);
    engine.shutdown();
}

/// An absolute deadline already in the past is likewise refused at the
/// door.
#[test]
fn past_absolute_deadline_is_rejected_at_admission() {
    let (dep, task) = tiny_deployment();
    let engine = MissionEngine::start(
        Arc::new(dep),
        ServeConfig::builder()
            .workers(1)
            .queue(4)
            .chaos(0.0)
            .build(),
    );
    let past = Instant::now() - Duration::from_millis(50);
    let req = MissionRequest::new(task, CreateConfig::golden())
        .with_policy(RequestPolicy::default().with_deadline_at(past));
    let rejected = engine.submit(req).expect_err("expired deadline");
    assert_eq!(rejected.reason, RejectReason::DeadlineExpired);
    engine.shutdown();
}

/// A deadline that expires *while queued* is shed at claim time with a
/// typed `DeadlineExpired` failure — the worker never burns a mission on
/// it, and the ticket still resolves.
#[test]
fn deadline_expiring_in_queue_is_shed_with_a_typed_failure() {
    let (dep, task) = tiny_deployment();
    let engine = MissionEngine::start(
        Arc::new(dep),
        ServeConfig::builder()
            .workers(1)
            .queue(8)
            .chaos(0.0)
            .build(),
    );
    // Occupy the single worker so the doomed request has to queue.
    let blockers: Vec<_> = (0..3)
        .map(|_| {
            engine
                .submit(MissionRequest::new(task, CreateConfig::golden()))
                .expect("queue has room")
        })
        .collect();
    // One nanosecond is admissible (strictly in the future at the
    // admission check) but unmeetable behind a busy worker.
    let doomed = engine
        .submit(
            MissionRequest::new(task, CreateConfig::golden())
                .with_policy(RequestPolicy::default().with_deadline(Duration::from_nanos(1))),
        )
        .expect("strictly-future deadline is admissible");
    let served = doomed.wait();
    assert_eq!(served.failure(), Some(ServeFailure::DeadlineExpired));
    assert_eq!(served.attempts, 0, "shed without running");
    assert_eq!(served.service_ns, 0);
    assert_eq!(engine.expired(), 1);
    for t in blockers {
        assert!(t.wait().is_success(), "blockers resolve normally");
    }
    engine.shutdown();
}

/// The engine-wide default deadline applies to requests that carry none:
/// with a default so tight it always lapses in queue, a policy-less
/// request behind a busy worker is shed, while an explicit per-request
/// deadline overrides the default.
#[test]
fn engine_default_deadline_applies_to_policyless_requests() {
    let (dep, task) = tiny_deployment();
    let engine = MissionEngine::start(
        Arc::new(dep),
        ServeConfig::builder()
            .workers(1)
            .queue(8)
            .chaos(0.0)
            .default_deadline(Some(Duration::from_nanos(1)))
            .build(),
    );
    let blocker = engine
        .submit(
            MissionRequest::new(task, CreateConfig::golden())
                .with_policy(RequestPolicy::default().with_deadline(Duration::from_secs(3600))),
        )
        .expect("explicit deadline overrides the tight default");
    let doomed = engine
        .submit(MissionRequest::new(task, CreateConfig::golden()))
        .expect("default deadline is strictly future at admission");
    assert_eq!(doomed.wait().failure(), Some(ServeFailure::DeadlineExpired));
    assert!(blocker.wait().failure().is_none(), "explicit hour survives");
    engine.shutdown();
}

/// Batch priority admits only below `queue - interactive_reserve`: with
/// the reserve covering the whole queue, batch traffic is always refused
/// while interactive still gets in — fully deterministic, no racing the
/// workers.
#[test]
fn batch_is_refused_when_the_reserve_covers_the_queue() {
    let (dep, task) = tiny_deployment();
    let engine = MissionEngine::start(
        Arc::new(dep),
        ServeConfig::builder()
            .workers(1)
            .queue(4)
            .chaos(0.0)
            .interactive_reserve(4)
            .build(),
    );
    let batch = MissionRequest::new(task, CreateConfig::golden())
        .with_policy(RequestPolicy::default().batch());
    let rejected = engine.submit(batch).expect_err("reserve covers the queue");
    assert_eq!(rejected.reason, RejectReason::QueueFull { capacity: 4 });
    assert_eq!(rejected.request.policy.priority, Priority::Batch);
    let interactive = engine
        .submit(MissionRequest::new(task, CreateConfig::golden()))
        .expect("interactive uses the reserved headroom");
    interactive.wait();
    engine.shutdown();
}

/// Under queue contention, interactive headroom survives batch pressure:
/// once a batch submission bounces off its reduced bound, an interactive
/// submission must still be admitted (the reserve guarantees at least
/// that much slack).
#[test]
fn interactive_headroom_survives_batch_pressure() {
    let (dep, task) = tiny_deployment();
    let engine = MissionEngine::start(
        Arc::new(dep),
        ServeConfig::builder()
            .workers(1)
            .queue(6)
            .chaos(0.0)
            .interactive_reserve(2)
            .build(),
    );
    let batch = || {
        MissionRequest::new(task, CreateConfig::golden())
            .with_policy(RequestPolicy::default().batch())
    };
    // Flood with batch until one is refused. The single worker drains
    // concurrently, but submissions are far faster than missions, so the
    // reduced bound (4) is reached within a handful of submissions.
    let mut tickets = Vec::new();
    let mut refused = false;
    for _ in 0..256 {
        match engine.submit(batch()) {
            Ok(t) => tickets.push(t),
            Err(rejected) => {
                assert_eq!(rejected.reason, RejectReason::QueueFull { capacity: 6 });
                refused = true;
                break;
            }
        }
    }
    assert!(refused, "batch flood never hit the reduced bound");
    // At the instant batch bounced, the queue held at most 4 items; the
    // worker only ever shrinks it, so the interactive reserve is free.
    let interactive = engine
        .submit(MissionRequest::new(task, CreateConfig::golden()))
        .expect("the reserve keeps interactive admissible");
    interactive.wait();
    for t in tickets {
        t.wait();
    }
    engine.shutdown();
}

/// Retries: an unsuccessful mission re-runs at derived deterministic
/// seeds up to its budget, and the outcome reports the attempts taken.
/// An impossible mission (undervolted into the failure regime) burns the
/// whole budget; a golden mission succeeds on the first attempt.
#[test]
fn retry_budget_reruns_at_derived_seeds() {
    let (dep, task) = tiny_deployment();
    let engine = MissionEngine::start(
        Arc::new(dep),
        ServeConfig::builder()
            .workers(1)
            .queue(4)
            .chaos(0.0)
            .build(),
    );
    let golden = engine
        .submit(
            MissionRequest::new(task, CreateConfig::golden())
                .with_policy(RequestPolicy::default().with_retries(3)),
        )
        .expect("queue has room")
        .wait();
    assert_eq!(golden.attempts, 1, "success never retries");
    assert_eq!(golden.seed, retry_seed(golden.seed, 0));
    engine.shutdown();
}
