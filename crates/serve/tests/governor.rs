//! Engine-level governor tests: under injected faults the adaptive
//! governor must actually escalate protection, and governed missions —
//! whose configs the governor rewrote — must still replay bit-identically
//! offline through the recorded per-mission decision.

use create_accel::Scheme;
use create_core::config::{CreateConfig, ErrorSpec};
use create_core::mission::MissionSession;
use create_core::testutil::tiny_deployment;
use create_serve::{GovernorConfig, MissionEngine, MissionRequest, MissionResult, ServeConfig};
use std::sync::Arc;

/// A config whose controller datapath sees a raw injected BER high
/// enough that Plain serving trips anomaly detection (and loses
/// missions), while DMR absorbs it.
fn faulty_config(ber: f64) -> CreateConfig {
    let mut config = CreateConfig::golden();
    config.controller_error = Some(ErrorSpec::uniform(ber));
    config
}

/// Sequential governed serving under a hot error rate: the governor must
/// leave the cheapest (Plain) level — via acute AD-trip signals or lost
/// missions — and record the escalation.
#[test]
fn governor_escalates_under_injected_faults() {
    let (dep, task) = tiny_deployment();
    let engine = MissionEngine::start(
        Arc::new(dep),
        ServeConfig::builder()
            .workers(1)
            .queue(64)
            .chaos(0.0)
            .governor(Some(GovernorConfig::default()))
            .build(),
    );
    // One request at a time so escalation from mission k governs k+1.
    for _ in 0..8 {
        let ticket = engine
            .submit(MissionRequest::new(task, faulty_config(1e-2)))
            .expect("queue has room");
        ticket.wait();
    }
    let report = engine.governor_report().expect("governed engine");
    assert!(
        report.escalations >= 1,
        "a 1e-2 BER under Plain must escalate: {report:?}"
    );
    assert!(report.level > 0, "must not still serve Plain: {report:?}");
    assert_eq!(report.total_missions(), 8);
    assert!(report.total_energy_j() > 0.0, "energy is metered");
    engine.shutdown();
}

/// The governed replay contract: every completed mission records the
/// operating point it actually ran under, and replaying the served seed
/// with `decision.apply(&request.config)` reproduces the outcome bit for
/// bit — adaptation never breaks offline reproducibility.
#[test]
fn governed_missions_replay_through_the_recorded_decision() {
    let (dep, task) = tiny_deployment();
    let dep = Arc::new(dep);
    let engine = MissionEngine::start(
        Arc::clone(&dep),
        ServeConfig::builder()
            .workers(2)
            .queue(64)
            .chaos(0.0)
            .base_seed(0xBEEF)
            .governor(Some(GovernorConfig::default()))
            .build(),
    );
    let config = faulty_config(5e-3);
    let served: Vec<_> = (0..10)
        .map(|_| {
            engine
                .submit(MissionRequest::new(task, config.clone()))
                .expect("queue has room")
                .wait()
        })
        .collect();
    engine.shutdown();

    let mut session = MissionSession::new(&dep);
    let mut governed = 0;
    for s in &served {
        let decision = s.decision.expect("governed engines record decisions");
        let MissionResult::Completed(outcome) = &s.result else {
            panic!("no chaos: every mission completes");
        };
        let replayed = session.run(task, &decision.apply(&config), s.seed);
        assert_eq!(outcome, &replayed, "id={}", s.request_id);
        if decision.scheme != Scheme::Plain {
            governed += 1;
        }
    }
    assert!(
        governed > 0,
        "5e-3 BER over 10 missions must push some onto the DMR rungs"
    );
}

/// An ungoverned engine records no decision and serves the request's
/// config untouched.
#[test]
fn ungoverned_engines_record_no_decision() {
    let (dep, task) = tiny_deployment();
    let engine = MissionEngine::start(
        Arc::new(dep),
        ServeConfig::builder()
            .workers(1)
            .queue(4)
            .chaos(0.0)
            .governor(None)
            .build(),
    );
    let served = engine
        .submit(MissionRequest::new(task, CreateConfig::golden()))
        .expect("queue has room")
        .wait();
    assert!(served.decision.is_none());
    assert!(engine.governor_report().is_none());
    engine.shutdown();
}
