//! Contract tests for the resident serving engine: admission control on
//! the bounded queue, graceful shutdown with requests in flight, and the
//! served-vs-offline bit-identical replay guarantee at every tested
//! worker count.

use create_core::config::CreateConfig;
use create_core::mission::MissionSession;
use create_core::testutil::tiny_deployment;
use create_serve::{
    request_seed, MissionEngine, MissionRequest, MissionResult, RejectReason, ServeConfig,
    ServeFailure,
};
use std::sync::Arc;

fn request(dep_task: create_env::TaskId) -> MissionRequest {
    MissionRequest::new(dep_task, CreateConfig::golden())
}

/// Whether the ambient environment injects chaos panics (the CI
/// chaos-smoke job runs this suite with `CREATE_SERVE_CHAOS` set); the
/// contract tests then tolerate `Failed(Panicked)` outcomes — which stay
/// deterministic per seed — while everything else must hold unchanged.
fn ambient_chaos() -> bool {
    std::env::var("CREATE_SERVE_CHAOS")
        .map(|v| !v.trim().is_empty())
        .unwrap_or(false)
}

/// A zero-capacity queue admits nothing: every submission is refused
/// immediately with `QueueFull`, nothing deadlocks, and shutdown is
/// clean even though the workers never see a job.
#[test]
fn zero_capacity_queue_rejects_every_request() {
    let (dep, task) = tiny_deployment();
    let engine = MissionEngine::start(
        Arc::new(dep),
        ServeConfig::builder().workers(1).queue(0).build(),
    );
    for _ in 0..5 {
        let rejected = engine
            .submit(request(task))
            .expect_err("capacity 0 admits nothing");
        assert_eq!(rejected.reason, RejectReason::QueueFull { capacity: 0 });
        assert_eq!(rejected.request, request(task), "request is handed back");
    }
    assert_eq!(engine.accepted(), 0);
    assert_eq!(engine.rejected(), 5);
    engine.shutdown();
}

/// The replay contract, at every tested concurrency level: a served
/// mission is **bit-identical** to an offline `MissionSession` replay of
/// the same `(task, config, seed)` — ids are dense in admission order
/// and seeds derive from `(base_seed, request_id)` alone, so neither
/// worker count nor scheduling can leak into outcomes.
#[test]
fn served_missions_replay_bit_identically_offline() {
    let (dep, task) = tiny_deployment();
    let dep = Arc::new(dep);
    let base_seed = 0xC0FFEE;
    let configs = [
        CreateConfig::golden(),
        CreateConfig::undervolted(0.84),
        CreateConfig::golden(),
        CreateConfig::undervolted(0.9),
        CreateConfig::golden(),
        CreateConfig::undervolted(0.84),
    ];
    let mut reference: Option<Vec<_>> = None;
    for workers in [1usize, 2, 4] {
        let engine = MissionEngine::start(
            Arc::clone(&dep),
            ServeConfig::builder()
                .workers(workers)
                .queue(configs.len())
                .base_seed(base_seed)
                .build(),
        );
        let tickets: Vec<_> = configs
            .iter()
            .map(|config| {
                engine
                    .submit(MissionRequest::new(task, config.clone()))
                    .expect("queue sized to the burst")
            })
            .collect();
        for (i, ticket) in tickets.iter().enumerate() {
            assert_eq!(
                ticket.request_id(),
                i as u64,
                "ids are dense, admission order"
            );
            assert_eq!(ticket.seed(), request_seed(base_seed, i as u64));
        }
        let served: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
        engine.shutdown();

        // Offline replay through the same session path. Under ambient
        // chaos (CI chaos-smoke) some missions resolve as Panicked —
        // deterministically per seed — and are skipped here; everything
        // that completed must still replay bit-identically.
        let mut session = MissionSession::new(&dep);
        for (config, s) in configs.iter().zip(&served) {
            match &s.result {
                MissionResult::Completed(outcome) => {
                    let replayed = session.run(task, config, s.seed);
                    assert_eq!(outcome, &replayed, "workers={workers} id={}", s.request_id);
                }
                MissionResult::Failed(failure) => {
                    assert!(
                        ambient_chaos() && *failure == ServeFailure::Panicked,
                        "unexpected failure without chaos: {failure:?}"
                    );
                }
            }
        }
        // And identical across worker counts, not just within one run —
        // including which requests the chaos hook panicked, since that
        // decision is a pure function of the seed.
        let results: Vec<_> = served.iter().map(|s| s.result.clone()).collect();
        match &reference {
            None => reference = Some(results),
            Some(reference) => assert_eq!(&results, reference, "workers={workers}"),
        }
    }
}

/// Shutdown with requests still in flight drains them: every admitted
/// ticket resolves, none are dropped.
#[test]
fn shutdown_drains_requests_in_flight() {
    let (dep, task) = tiny_deployment();
    let engine = MissionEngine::start(
        Arc::new(dep),
        ServeConfig::builder().workers(1).queue(16).build(),
    );
    let tickets: Vec<_> = (0..8)
        .map(|_| engine.submit(request(task)).expect("queue has room"))
        .collect();
    // Most of these are still queued behind the single worker.
    engine.shutdown();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let served = ticket.wait();
        assert_eq!(served.request_id, i as u64);
    }
}

/// After `close`, submission is refused with `ShuttingDown` (and the
/// request handed back), while previously admitted requests still
/// resolve.
#[test]
fn close_refuses_new_requests_but_resolves_admitted_ones() {
    let (dep, task) = tiny_deployment();
    let engine = MissionEngine::start(
        Arc::new(dep),
        ServeConfig::builder().workers(2).queue(8).build(),
    );
    let admitted: Vec<_> = (0..4)
        .map(|_| engine.submit(request(task)).expect("queue has room"))
        .collect();
    engine.close();
    let rejected = engine
        .submit(request(task))
        .expect_err("closed engine admits nothing");
    assert_eq!(rejected.reason, RejectReason::ShuttingDown);
    assert_eq!(rejected.request, request(task));
    for ticket in admitted {
        ticket.wait();
    }
    assert_eq!(engine.accepted(), 4);
    assert_eq!(engine.rejected(), 1);
    engine.shutdown();
}

/// Saturation: a burst far beyond capacity is refused at the door, not
/// buffered — the queue never exceeds its capacity, nothing blocks, and
/// every admitted ticket still resolves.
#[test]
fn burst_beyond_capacity_is_rejected_not_buffered() {
    let (dep, task) = tiny_deployment();
    let capacity = 2usize;
    let engine = MissionEngine::start(
        Arc::new(dep),
        ServeConfig::builder().workers(1).queue(capacity).build(),
    );
    let burst = 64;
    let mut tickets = Vec::new();
    let mut rejections = 0u64;
    for _ in 0..burst {
        match engine.submit(request(task)) {
            Ok(ticket) => tickets.push(ticket),
            Err(rejected) => {
                assert_eq!(rejected.reason, RejectReason::QueueFull { capacity });
                rejections += 1;
            }
        }
        assert!(engine.queued() <= capacity, "queue must stay bounded");
    }
    assert!(
        rejections > 0,
        "a 64-deep instant burst into a 2-deep queue behind one worker must shed load"
    );
    assert_eq!(engine.accepted() + engine.rejected(), burst);
    assert_eq!(engine.rejected(), rejections);
    // Ids of admitted requests are dense even with rejections in between.
    for (i, ticket) in tickets.iter().enumerate() {
        assert_eq!(ticket.request_id(), i as u64);
    }
    for ticket in tickets {
        let served = ticket.wait();
        assert_eq!(served.latency_ns(), served.queue_ns + served.service_ns);
    }
    engine.shutdown();
}
