//! Property-based tests for the tensor substrate.

use create_tensor::hadamard::{fwht_normalized, hadamard_matrix, Rotation};
use create_tensor::stats::{r2_score, wilson_interval, Histogram, OnlineStats};
use create_tensor::{FloatGemmBackend, Matrix, Precision, QuantMatrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn matrix(rows: usize, cols: usize, seed: u64, scale: f32) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::random_uniform(rows, cols, scale, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (A @ B) @ C == A @ (B @ C) within floating tolerance.
    #[test]
    fn matmul_is_associative(seed in 0u64..500, m in 1usize..5, k in 1usize..5, n in 1usize..5, p in 1usize..5) {
        let a = matrix(m, k, seed, 1.0);
        let b = matrix(k, n, seed ^ 1, 1.0);
        let c = matrix(n, p, seed ^ 2, 1.0);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-3);
    }

    /// A @ (B + C) == A@B + A@C.
    #[test]
    fn matmul_distributes_over_addition(seed in 0u64..500, m in 1usize..5, k in 1usize..6, n in 1usize..5) {
        let a = matrix(m, k, seed, 1.0);
        let b = matrix(k, n, seed ^ 3, 1.0);
        let c = matrix(k, n, seed ^ 4, 1.0);
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-4);
    }

    /// Transpose reverses matmul order: (A @ B)^T == B^T @ A^T.
    #[test]
    fn transpose_reverses_products(seed in 0u64..500, m in 1usize..5, k in 1usize..5, n in 1usize..5) {
        let a = matrix(m, k, seed, 1.0);
        let b = matrix(k, n, seed ^ 5, 1.0);
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.max_abs_diff(&right) < 1e-5);
    }

    /// FWHT equals dense Hadamard multiplication for all valid sizes.
    #[test]
    fn fwht_equals_dense_hadamard(seed in 0u64..200, log_n in 1u32..7) {
        let n = 1usize << log_n;
        let x = matrix(1, n, seed, 3.0);
        let dense = x.matmul(&hadamard_matrix(n));
        let mut fast = x.as_slice().to_vec();
        fwht_normalized(&mut fast);
        for (a, b) in dense.as_slice().iter().zip(&fast) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    /// Composition of rotations is a rotation (norm-preserving).
    #[test]
    fn rotation_composition_preserves_norms(seed in 0u64..200, log_n in 2u32..6) {
        let n = 1usize << log_n;
        let h = Rotation::hadamard(n);
        let mut v = vec![0.0f32; n];
        v[0] = 1.0;
        v[n - 1] = -2.0;
        let hh = Rotation::householder_concentrate(&v, n / 2);
        let composed = h.then(&hh);
        let x = matrix(2, n, seed, 2.0);
        let y = composed.apply_right(&x);
        prop_assert!((x.frobenius_norm() - y.frobenius_norm()).abs() < 1e-2);
    }

    /// INT4 quantization error is at most the INT8 step ratio worse.
    #[test]
    fn int4_error_is_bounded_relative_to_int8(values in prop::collection::vec(-10.0f32..10.0, 2..64)) {
        let m = Matrix::from_vec(1, values.len(), values);
        let q8 = QuantMatrix::quantize(&m, Precision::Int8);
        let q4 = QuantMatrix::quantize(&m, Precision::Int4);
        prop_assert!(q4.rounding_error_bound() >= q8.rounding_error_bound());
        let e4 = m.max_abs_diff(&q4.dequantize());
        prop_assert!(e4 <= q4.rounding_error_bound() + 1e-5);
    }

    /// Online stats agree with direct formulas for any sample set.
    #[test]
    fn online_stats_match_batch(values in prop::collection::vec(-100.0f64..100.0, 2..64)) {
        let mut s = OnlineStats::new();
        s.extend(values.iter().copied());
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.std_dev() - var.sqrt()).abs() < 1e-6 * (1.0 + var.sqrt()));
    }

    /// Histogram conserves mass: bins + underflow + overflow == pushes.
    #[test]
    fn histogram_conserves_mass(values in prop::collection::vec(-50.0f32..50.0, 0..128)) {
        let mut h = Histogram::new(-10.0, 10.0, 8);
        for &v in &values {
            h.push(v);
        }
        prop_assert_eq!(h.total() as usize, values.len());
    }

    /// Wilson interval is a valid, ordered sub-interval of [0, 1] that
    /// contains the point estimate.
    #[test]
    fn wilson_interval_is_sane(successes in 0u64..200, extra in 0u64..200) {
        let n = successes + extra;
        let (lo, hi) = wilson_interval(successes, n);
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!((0.0..=1.0).contains(&hi));
        prop_assert!(lo <= hi);
        if n > 0 {
            let p = successes as f64 / n as f64;
            prop_assert!(lo <= p + 1e-12 && p <= hi + 1e-12);
        }
    }

    /// The buffer-reuse quantization path is bit-identical to the
    /// allocating one over random shapes, including zero-dimension edges,
    /// regardless of what the scratch previously held.
    #[test]
    fn quantize_with_into_is_bit_identical(
        seed in 0u64..500,
        rows in 0usize..7,
        cols in 0usize..40,
        prev_rows in 0usize..7,
        prev_cols in 0usize..40,
        max_abs in 0.1f32..8.0,
    ) {
        let params = create_tensor::QuantParams::from_max_abs(max_abs, Precision::Int8);
        let m = matrix(rows, cols, seed, 4.0);
        // Pre-dirty the scratch with an unrelated quantization.
        let mut scratch = QuantMatrix::quantize_with(&matrix(prev_rows, prev_cols, seed ^ 7, 4.0), params);
        QuantMatrix::quantize_with_into(&m, params, &mut scratch);
        prop_assert_eq!(scratch, QuantMatrix::quantize_with(&m, params));
    }

    /// The in-place matrix helpers are bit-identical to their allocating
    /// counterparts on random shapes (the nn scratch paths rely on this).
    #[test]
    fn matrix_into_helpers_are_bit_identical(
        seed in 0u64..500,
        m in 1usize..5,
        k in 1usize..6,
        n in 1usize..5,
        s in -2.0f32..2.0,
    ) {
        let a = matrix(m, k, seed, 1.0);
        let b = matrix(k, n, seed ^ 1, 1.0);
        let bt = matrix(n, k, seed ^ 2, 1.0);
        let mut out = matrix(m.max(2), n.max(3), seed ^ 3, 1.0); // dirty scratch
        a.matmul_into(&b, &mut out);
        prop_assert_eq!(&out, &a.matmul(&b));
        a.matmul_nt_into(&bt, &mut out);
        prop_assert_eq!(&out, &a.matmul_nt(&bt));
        let mut scaled = a.clone();
        scaled.scale_in_place(s);
        prop_assert_eq!(&scaled, &a.scale(s));
        a.rows_range_into(0, m, &mut out);
        prop_assert_eq!(&out, &a.rows_range(0, m));
    }

    /// Every f32 GEMM backend is bit-identical to the scalar reference on
    /// random shapes — including zero dimensions and matrices salted with
    /// exact zeros, which exercise the `a == 0.0` zero-skip path the
    /// one-hot featurizers and ReLU activations hit constantly during
    /// training. This is the contract that makes training results
    /// independent of `CREATE_F32_BACKEND`.
    #[test]
    fn f32_backends_are_bit_identical(
        seed in 0u64..500,
        m in 0usize..6,
        k in 0usize..40,
        n in 0usize..160,
        zero_frac in 0.0f32..0.9,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut salted = |rows: usize, cols: usize| {
            Matrix::from_fn(rows, cols, |_, _| {
                if rng.random_range(0.0f32..1.0) < zero_frac {
                    0.0
                } else {
                    rng.random_range(-2.0f32..2.0)
                }
            })
        };
        let a = salted(m, k);
        let b = salted(k, n);
        let bt = salted(n, k);
        let c = salted(m, n);
        let reference = create_tensor::ScalarF32Backend;
        let mut want = Matrix::default();
        let mut got = Matrix::default();
        for kind in create_tensor::FloatBackendKind::ALL {
            let backend = kind.backend();
            reference.matmul_into(&a, &b, &mut want);
            backend.matmul_into(&a, &b, &mut got);
            prop_assert_eq!(&got, &want);
            reference.matmul_nt_into(&a, &bt, &mut want);
            backend.matmul_nt_into(&a, &bt, &mut got);
            prop_assert_eq!(&got, &want);
            reference.matmul_tn_into(&a, &c, &mut want);
            backend.matmul_tn_into(&a, &c, &mut got);
            prop_assert_eq!(&got, &want);
        }
    }

    /// Short-k (below any unroll/lane width) and lane-ragged shapes with
    /// NaN/∞ planted in `b` behind zeroed `a` positions: the `a == 0.0`
    /// zero-skip must shield the poison on every backend (a backend that
    /// multiplied-then-discarded skipped terms would leak NaN), and the
    /// unshielded columns must still agree bit for bit. This pins the
    /// wide backend's per-lane select semantics for the skip.
    #[test]
    fn f32_zero_skip_shields_nan_on_every_backend(
        seed in 0u64..400,
        m in 1usize..4,
        k in 1usize..7,   // < F32_LANES and < any k-unroll width
        n in 1usize..20,  // exercises ragged lane tails
        poison_row in 0usize..7,
    ) {
        let poison_row = poison_row % k;
        let mut rng = StdRng::seed_from_u64(seed);
        // Column `poison_row` of `a` is exactly zero; the matching row of
        // `b` is poisoned.
        let a = Matrix::from_fn(m, k, |_, c| {
            if c == poison_row { 0.0 } else { rng.random_range(-2.0f32..2.0) }
        });
        let b = Matrix::from_fn(k, n, |r, c| {
            if r == poison_row {
                if c % 2 == 0 { f32::NAN } else { f32::INFINITY }
            } else {
                rng.random_range(-2.0f32..2.0)
            }
        });
        let reference = create_tensor::ScalarF32Backend;
        let mut want = Matrix::default();
        let mut got = Matrix::default();
        reference.matmul_into(&a, &b, &mut want);
        prop_assert!(
            want.as_slice().iter().all(|v| v.is_finite()),
            "reference zero-skip must shield the poison"
        );
        for kind in create_tensor::FloatBackendKind::ALL {
            kind.backend().matmul_into(&a, &b, &mut got);
            prop_assert_eq!(&got, &want, "backend {} diverged", kind);
        }
        // Same shield through the tn kernel (aᵀ zero-skips on `a` too):
        // poison column `poison_row` of the tn input's rows.
        let at = Matrix::from_fn(k, m, |r, c| a.get(c, r));
        reference.matmul_tn_into(&at, &b, &mut want);
        prop_assert!(want.as_slice().iter().all(|v| v.is_finite()));
        for kind in create_tensor::FloatBackendKind::ALL {
            kind.backend().matmul_tn_into(&at, &b, &mut got);
            prop_assert_eq!(&got, &want, "tn backend {} diverged", kind);
        }
    }

    /// `matmul_tn_into` matches the allocating `matmul_tn` bit-for-bit on
    /// a dirty scratch (the weight-gradient GEMM of every backward pass).
    #[test]
    fn matmul_tn_into_is_bit_identical(
        seed in 0u64..500,
        m in 1usize..6,
        k in 1usize..8,
        n in 1usize..6,
    ) {
        let a = matrix(k, m, seed, 1.0);
        let b = matrix(k, n, seed ^ 11, 1.0);
        let mut out = matrix(m + 1, n + 2, seed ^ 12, 1.0); // dirty scratch
        a.matmul_tn_into(&b, &mut out);
        prop_assert_eq!(&out, &a.matmul_tn(&b));
    }

    /// R² of a prediction equal to the truth is 1; adding noise lowers it.
    #[test]
    fn r2_ordering(values in prop::collection::vec(-10.0f32..10.0, 8..64), noise in 0.5f32..5.0) {
        // Skip degenerate (constant) targets.
        let spread = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
            - values.iter().cloned().fold(f32::INFINITY, f32::min);
        prop_assume!(spread > 1.0);
        let perfect = r2_score(&values, &values);
        prop_assert!((perfect - 1.0).abs() < 1e-6);
        let noisy: Vec<f32> = values
            .iter()
            .enumerate()
            .map(|(i, v)| v + if i % 2 == 0 { noise } else { -noise })
            .collect();
        prop_assert!(r2_score(&values, &noisy) < perfect);
    }
}
