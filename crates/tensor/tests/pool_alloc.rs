//! The persistent pool's zero-allocation steady-state contract, enforced
//! with a counting global allocator.
//!
//! [`WorkerPool::run`] must perform **no heap allocation** once the pool
//! is spawned: the per-chunk job closure lives on the submitter's stack
//! and is published to the parked workers by pointer, and the chunk
//! barrier is a condvar wait — that is the entire point of replacing the
//! spawn-per-chunk `scoped_map` in the training loops. A regression that
//! reintroduces a per-chunk allocation (boxing the job, collecting
//! handles, growing a queue) fails this test immediately.
//!
//! One `#[test]` per file so no concurrent test thread can perturb the
//! allocation counter (same harness as `create-accel/tests/alloc.rs`).

use create_tensor::par::WorkerPool;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Smallest allocation delta over several measurement windows of `body`
/// (the minimum shields against rare harness-side allocations; a
/// per-chunk allocation in the pool would inflate every window).
fn min_alloc_delta(windows: usize, mut body: impl FnMut()) -> u64 {
    let mut min = u64::MAX;
    for _ in 0..windows {
        let before = allocations();
        body();
        min = min.min(allocations() - before);
    }
    min
}

#[test]
fn pool_chunks_are_allocation_free_after_spawn() {
    for threads in [1usize, 2, 4] {
        let mut pool = WorkerPool::new(threads);
        let mut items: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let mut workers: Vec<u64> = vec![0; pool.threads()];
        // Warm up: first chunks touch lazy per-thread state (unwind
        // tables, TLS), which is exactly what steady state excludes.
        for _ in 0..3 {
            pool.run(&mut items, &mut workers, |i, item, w| {
                *item = (i as f32).sqrt() + *item * 0.5;
                *w += 1;
            });
        }
        let delta = min_alloc_delta(3, || {
            for _ in 0..100 {
                pool.run(&mut items, &mut workers, |i, item, w| {
                    *item = (i as f32).sqrt() + *item * 0.5;
                    *w += 1;
                });
            }
        });
        assert_eq!(
            delta, 0,
            "WorkerPool::run must not allocate per chunk (threads={threads})"
        );
        assert!(workers.iter().sum::<u64>() > 0, "work actually ran");
    }
}
