//! Dense numeric building blocks for the CREATE reproduction.
//!
//! This crate provides the small, self-contained math substrate that the
//! rest of the workspace builds on:
//!
//! * [`Matrix`] — a row-major `f32` matrix with the handful of operations
//!   the planner/controller stacks need (GEMM, transpose, map/zip, slicing).
//! * [`fgemm`] — pluggable `f32` GEMM backends behind the `Matrix`
//!   multiply entry points (`CREATE_F32_BACKEND=scalar|blocked|wide|auto`,
//!   bit-identical by contract); the training-stack twin of
//!   `create-accel`'s INT8 `GemmBackend`.
//! * [`dispatch`] — the shape-bucketed dispatch tables behind both
//!   traits' `auto` backends: size-class buckets, the JSON table format
//!   (static, autotuned-and-cached under `target/`, or user-supplied via
//!   `auto:<table.json>`), and the one-shot autotune helpers.
//! * [`envcfg`] — the shared validated environment-variable helper every
//!   `CREATE_*` knob parses through (silent default when unset/blank,
//!   warn-and-fallback on garbage).
//! * [`atomicfile`] — crash-safe write-temp-fsync-rename file replacement
//!   shared by every on-disk cache and results artifact in the workspace.
//! * [`crc`] — the CRC32 shared by the sweep journals' and the network
//!   front-end's `[len][crc][payload]` framing.
//! * [`par`] — the scoped worker-pool primitive (`CREATE_THREADS`-sized
//!   [`par::scoped_map`]) shared by the experiment engine in
//!   `create-core` and the data-parallel training loops in
//!   `create-agents`; it lives here, at the bottom of the crate graph,
//!   so both can reach it.
//! * [`quant`] — per-tensor symmetric INT8/INT4 quantization, mirroring the
//!   accelerator datapath of the paper (8-bit multipliers, 24-bit
//!   accumulators, offline-profiled scales).
//! * [`hadamard`] — Hadamard matrices (via the Kronecker/Sylvester
//!   construction), the fast Walsh–Hadamard transform, and general
//!   orthogonal [`hadamard::Rotation`]s used both to *plant* systematic
//!   activation outliers (Householder concentration) and to *remove* them
//!   (weight-rotation-enhanced planning, Sec. 5.2 of the paper).
//! * [`stats`] — summary statistics, histograms, correlation/R², used by the
//!   characterization experiments (Figs. 4, 5, 8, 14).
//!
//! # Example
//!
//! ```
//! use create_tensor::{Matrix, hadamard};
//!
//! // Rotating by a Hadamard matrix preserves the L2 norm of every row,
//! // which is exactly why it can be folded across RMSNorm.
//! let x = Matrix::from_fn(1, 8, |_, j| j as f32);
//! let h = hadamard::Rotation::hadamard(8);
//! let y = h.apply_right(&x);
//! let n0: f32 = x.as_slice().iter().map(|v| v * v).sum();
//! let n1: f32 = y.as_slice().iter().map(|v| v * v).sum();
//! assert!((n0 - n1).abs() < 1e-3);
//! ```

pub mod atomicfile;
pub mod crc;
pub mod dispatch;
pub mod envcfg;
pub mod fgemm;
pub mod hadamard;
pub mod matrix;
pub mod par;
pub mod quant;
pub mod stats;

pub use fgemm::{
    BlockedF32Backend, DispatchF32Backend, FloatBackendKind, FloatGemmBackend, ScalarF32Backend,
    WideF32Backend,
};
pub use matrix::Matrix;
pub use quant::{Precision, QuantMatrix, QuantParams};
