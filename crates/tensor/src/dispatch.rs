//! Shape-bucketed dispatch tables for the pluggable GEMM backends.
//!
//! The committed baselines (`results/baseline/BENCH_kernels.json`,
//! `BENCH_train.json`) show no single GEMM backend dominates: `wide` wins
//! the small/sparse INT8 shapes and every f32 `matmul_nt`, `blocked`
//! keeps the rank-1-update kernels, and `scalar` still wins the one-hot
//! featurizer's zero-heavy products. This module is the shared substrate
//! for the `auto` backends (`create_tensor::fgemm::DispatchF32Backend`,
//! `create_accel::gemm::DispatchBackend`) that route every call to the
//! measured-fastest concrete backend by **size class** instead of one
//! global choice:
//!
//! * each GEMM dimension is bucketed into a coarse [`Band`]
//!   (`lo`/`mid`/`hi`, thresholds below), giving 27 buckets per op —
//!   coarse on purpose: the tables stay tiny, lookups are three integer
//!   compares, and a band either has a clear winner in the bench data or
//!   the backends are within noise of each other;
//! * a [`RawTable`] is an ordered list of first-match-wins [`RawRule`]s
//!   (op + optional band constraints → concrete backend name), stored as
//!   a small JSON document so autotuned tables can be cached under
//!   `target/` and hand-written tables can be passed via
//!   `CREATE_GEMM_BACKEND=auto:<table.json>`;
//! * consumers resolve a table into a flat 27-entry lookup table per op
//!   ([`RawTable::resolve`]) **once**, so steady-state dispatch performs
//!   no allocation and no string work.
//!
//! Everything here follows the `envcfg` warn-and-fallback contract: a
//! malformed or truncated table file (including a corrupt autotune cache
//! under `target/`) must never abort a run — callers warn once on stderr
//! and fall back to their compiled-in static table.

use std::path::{Path, PathBuf};

/// Version stamp for on-disk dispatch tables. Bumped if the bucket
/// thresholds or the JSON schema change, so a stale autotune cache from
/// an older build is rejected (and falls back) instead of silently
/// misrouting.
pub const TABLE_VERSION: u64 = 1;

/// Number of size-class buckets per op: three [`Band`]s per dimension.
pub const N_BUCKETS: usize = 27;

/// Coarse size class of one GEMM dimension.
///
/// The thresholds (see [`band_m`], [`band_k`], [`band_n`]) were chosen to
/// separate the workspace's recorded bench shapes wherever the committed
/// baselines show different winners, while keeping each band wide enough
/// that an autotune pass with a handful of probe shapes covers the
/// buckets that matter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Band {
    /// Degenerate-to-tiny (single output row, vector-like).
    Lo,
    /// Small — the bread-and-butter training shapes.
    Mid,
    /// Large — reduction- or bandwidth-bound.
    Hi,
}

impl Band {
    /// All bands, in ascending order (index order of [`bucket`]).
    pub const ALL: [Band; 3] = [Band::Lo, Band::Mid, Band::Hi];

    /// Stable lower-case name, as written in table JSON.
    pub fn name(self) -> &'static str {
        match self {
            Band::Lo => "lo",
            Band::Mid => "mid",
            Band::Hi => "hi",
        }
    }

    /// Parses a band name or the `"*"` wildcard (`None`).
    pub fn parse_spec(s: &str) -> Result<Option<Band>, String> {
        match s.trim() {
            "*" => Ok(None),
            "lo" => Ok(Some(Band::Lo)),
            "mid" => Ok(Some(Band::Mid)),
            "hi" => Ok(Some(Band::Hi)),
            other => Err(format!(
                "unknown band {other:?}: expected \"lo\", \"mid\", \"hi\" or \"*\""
            )),
        }
    }

    fn index(self) -> usize {
        match self {
            Band::Lo => 0,
            Band::Mid => 1,
            Band::Hi => 2,
        }
    }
}

/// Size class of the output-row dimension `m` (lo ≤ 2, mid ≤ 8, hi above).
pub fn band_m(m: usize) -> Band {
    if m <= 2 {
        Band::Lo
    } else if m <= 8 {
        Band::Mid
    } else {
        Band::Hi
    }
}

/// Size class of the reduction dimension `k` (lo ≤ 8, mid ≤ 128, hi above).
pub fn band_k(k: usize) -> Band {
    if k <= 8 {
        Band::Lo
    } else if k <= 128 {
        Band::Mid
    } else {
        Band::Hi
    }
}

/// Size class of the output-column dimension `n` (lo ≤ 16, mid ≤ 48, hi
/// above). The mid/hi boundary sits between 32 and 64 because the
/// committed `matmul_tn` baselines flip winners exactly there.
pub fn band_n(n: usize) -> Band {
    if n <= 16 {
        Band::Lo
    } else if n <= 48 {
        Band::Mid
    } else {
        Band::Hi
    }
}

/// Flat bucket index of a canonical `(m, k, n)` GEMM shape, in
/// `0..N_BUCKETS`. `m`/`k`/`n` are always *output rows*, *reduction
/// length* and *output columns* — transposed ops canonicalize before
/// calling this.
pub fn bucket(m: usize, k: usize, n: usize) -> usize {
    band_m(m).index() * 9 + band_k(k).index() * 3 + band_n(n).index()
}

/// The `(m, k, n)` bands of a flat bucket index (inverse of [`bucket`]).
pub fn bucket_bands(idx: usize) -> (Band, Band, Band) {
    (
        Band::ALL[(idx / 9) % 3],
        Band::ALL[(idx / 3) % 3],
        Band::ALL[idx % 3],
    )
}

/// One dispatch rule: route `op` calls whose bands match the (optional,
/// `None` = wildcard) constraints to the named concrete backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawRule {
    /// Operation name (`"gemm_i8"`, `"matmul"`, `"matmul_nt"`,
    /// `"matmul_tn"`).
    pub op: String,
    /// Output-row band constraint (`None` matches every band).
    pub m: Option<Band>,
    /// Reduction band constraint.
    pub k: Option<Band>,
    /// Output-column band constraint.
    pub n: Option<Band>,
    /// Concrete backend name (`"auto"` is rejected at resolution — a
    /// table cell must not recurse into the dispatcher).
    pub backend: String,
}

impl RawRule {
    fn matches(&self, op: &str, bands: (Band, Band, Band)) -> bool {
        self.op == op
            && self.m.is_none_or(|b| b == bands.0)
            && self.k.is_none_or(|b| b == bands.1)
            && self.n.is_none_or(|b| b == bands.2)
    }
}

/// An ordered, first-match-wins dispatch table, the unit of storage and
/// exchange (static tables, autotune caches, `auto:<table.json>` files).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawTable {
    /// Schema/threshold version; must equal [`TABLE_VERSION`] to resolve.
    pub version: u64,
    /// Rules, tried in order; buckets no rule matches keep the caller's
    /// base value.
    pub rules: Vec<RawRule>,
}

impl RawTable {
    /// Resolves `op`'s rules into a flat per-bucket lookup table, overlaid
    /// on `base` (buckets no rule matches keep their `base` entry — for
    /// the autotune path `base` is the compiled-in static table, so
    /// unmeasured buckets keep the committed defaults).
    ///
    /// `parse_backend` maps a backend name to the caller's concrete
    /// backend handle; returning `None` (unknown name, or `"auto"`
    /// nesting) fails the **whole** table so callers fall back to their
    /// static table rather than mixing a half-applied one.
    pub fn resolve<B: Copy>(
        &self,
        op: &str,
        base: [B; N_BUCKETS],
        parse_backend: impl Fn(&str) -> Option<B>,
    ) -> Result<[B; N_BUCKETS], String> {
        if self.version != TABLE_VERSION {
            return Err(format!(
                "table version {} does not match supported version {TABLE_VERSION}",
                self.version
            ));
        }
        let mut lut = base;
        for (idx, slot) in lut.iter_mut().enumerate() {
            let bands = bucket_bands(idx);
            if let Some(rule) = self.rules.iter().find(|r| r.matches(op, bands)) {
                *slot = parse_backend(&rule.backend).ok_or_else(|| {
                    format!(
                        "rule for op {op:?} names unusable backend {:?}",
                        rule.backend
                    )
                })?;
            }
        }
        Ok(lut)
    }

    /// Parses the JSON form produced by [`render`](Self::render).
    pub fn parse(json: &str) -> Result<RawTable, String> {
        let value = json::parse(json)?;
        let obj = value.as_object().ok_or("top level must be an object")?;
        let version = json::get(obj, "version")
            .and_then(json::Value::as_u64)
            .ok_or("missing integer \"version\"")?;
        let rules_val = json::get(obj, "rules").ok_or("missing \"rules\" array")?;
        let rules_arr = rules_val.as_array().ok_or("\"rules\" must be an array")?;
        let mut rules = Vec::with_capacity(rules_arr.len());
        for (i, rule_val) in rules_arr.iter().enumerate() {
            let rule = rule_val
                .as_object()
                .ok_or_else(|| format!("rule {i} must be an object"))?;
            let field = |name: &str| -> Result<Option<Band>, String> {
                match json::get(rule, name) {
                    None => Ok(None),
                    Some(v) => {
                        let s = v
                            .as_str()
                            .ok_or_else(|| format!("rule {i}: {name:?} must be a string"))?;
                        Band::parse_spec(s).map_err(|e| format!("rule {i}: {e}"))
                    }
                }
            };
            let text = |name: &str| -> Result<String, String> {
                json::get(rule, name)
                    .and_then(json::Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("rule {i}: missing string {name:?}"))
            };
            rules.push(RawRule {
                op: text("op")?,
                m: field("m")?,
                k: field("k")?,
                n: field("n")?,
                backend: text("backend")?,
            });
        }
        Ok(RawTable { version, rules })
    }

    /// Renders the table as JSON (the exact form [`parse`](Self::parse)
    /// accepts; band wildcards are written as `"*"`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"version\": {},\n  \"rules\": [\n",
            self.version
        ));
        for (i, r) in self.rules.iter().enumerate() {
            let spec = |b: Option<Band>| b.map_or("*", Band::name);
            out.push_str(&format!(
                "    {{\"op\": \"{}\", \"m\": \"{}\", \"k\": \"{}\", \"n\": \"{}\", \"backend\": \"{}\"}}{}\n",
                r.op,
                spec(r.m),
                spec(r.k),
                spec(r.n),
                r.backend,
                if i + 1 < self.rules.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Builds a dispatch table from autotune measurements: one sample per
/// `(op, bucket, backend)` triple with its measured ns; total ns are
/// accumulated per backend within each `(op, bucket)` and the fastest
/// backend wins the bucket's rule. Buckets with no samples get no rule
/// (resolution keeps the static base there).
pub fn table_from_measurements(samples: &[(&str, usize, &str, f64)]) -> RawTable {
    // Per-backend accumulated ns within one `(op, bucket)` group.
    type BackendTotals<'a> = Vec<(&'a str, f64)>;
    let mut rules = Vec::new();
    // Keyed accumulation without hashing: the sample lists are tiny.
    let mut groups: Vec<(&str, usize, BackendTotals)> = Vec::new();
    for &(op, idx, backend, ns) in samples {
        let group = match groups.iter_mut().find(|(o, i, _)| *o == op && *i == idx) {
            Some(g) => &mut g.2,
            None => {
                groups.push((op, idx, Vec::new()));
                &mut groups.last_mut().expect("just pushed").2
            }
        };
        match group.iter_mut().find(|(b, _)| *b == backend) {
            Some(slot) => slot.1 += ns,
            None => group.push((backend, ns)),
        }
    }
    for (op, idx, totals) in groups {
        let winner = totals
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|&(b, _)| b);
        if let Some(backend) = winner {
            let (m, k, n) = bucket_bands(idx);
            rules.push(RawRule {
                op: op.to_string(),
                m: Some(m),
                k: Some(k),
                n: Some(n),
                backend: backend.to_string(),
            });
        }
    }
    RawTable {
        version: TABLE_VERSION,
        rules,
    }
}

/// Loads and parses a dispatch table file; every failure mode (missing,
/// unreadable, malformed) is a `String` so callers can warn-and-fallback.
pub fn load_table(path: &Path) -> Result<RawTable, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    RawTable::parse(&text)
}

/// Writes a dispatch table to `path` (creating parent directories)
/// through [`crate::atomicfile::write_atomic`] — temp file, fsync,
/// atomic rename — so neither a concurrent reader nor a crash mid-write
/// can ever observe a truncated table: at worst they see the old file or
/// none at all, both of which the warn-and-fallback loader handles.
pub fn store_table(path: &Path, table: &RawTable) -> Result<(), String> {
    crate::atomicfile::write_atomic(path, table.render().as_bytes())
        .map_err(|e| format!("cannot write {path:?}: {e}"))
}

/// Default location of the one-shot autotune cache for `file_name`
/// (e.g. `f32.json`): `$CREATE_AUTOTUNE_DIR` when set, otherwise
/// `<target dir>/create-autotune/` of this workspace — deliberately under
/// `target/` so `cargo clean` clears stale measurements.
pub fn autotune_cache_path(file_name: &str) -> PathBuf {
    let dir = match std::env::var_os("CREATE_AUTOTUNE_DIR") {
        Some(d) => PathBuf::from(d),
        None => std::env::var_os("CARGO_TARGET_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target"))
            .join("create-autotune"),
    };
    dir.join(file_name)
}

/// Whether `CREATE_GEMM_AUTOTUNE` requests the one-shot autotune
/// (`1`/`true`; `0`/`false`/unset disable; garbage warns and falls back
/// to off). Cached for the life of the process — both GEMM traits consult
/// it on their first `auto` dispatch.
pub fn autotune_requested() -> bool {
    static CACHE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| crate::envcfg::read_flag("CREATE_GEMM_AUTOTUNE", false))
}

/// Best-of-three ns-per-call timing for an autotune candidate: each
/// repetition scales the iteration count until the window exceeds 500 µs,
/// and the minimum over repetitions is reported (robust against
/// scheduling noise, same policy as the bench harness's measurement
/// loop). Total cost per candidate is a couple of milliseconds, keeping
/// the whole one-shot autotune well under a second.
pub fn measure_ns(mut f: impl FnMut()) -> f64 {
    f(); // warm caches and any lazy init outside the timed window
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut iters: u64 = 1;
        loop {
            let start = std::time::Instant::now();
            for _ in 0..iters {
                f();
            }
            let elapsed = start.elapsed();
            if elapsed >= std::time::Duration::from_micros(500) || iters >= 1 << 24 {
                best = best.min(elapsed.as_nanos() as f64 / iters as f64);
                break;
            }
            iters *= 2;
        }
    }
    best
}

/// A deliberately minimal JSON reader for dispatch tables: objects,
/// arrays, strings (no escapes beyond `\" \\ \/ \n \t \r`), and
/// non-negative integers — exactly the grammar [`RawTable::render`]
/// emits. Anything else is a parse error, which the callers' fallback
/// contract turns into "use the static table".
mod json {
    pub enum Value {
        Object(Vec<(String, Value)>),
        Array(Vec<Value>),
        Str(String),
        Num(u64),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(fields) => Some(fields),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
    }

    pub fn get<'a>(obj: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
        obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&ch) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", ch as char, *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => parse_string(bytes, pos).map(Value::Str),
            Some(c) if c.is_ascii_digit() => parse_number(bytes, pos),
            Some(c) => Err(format!("unexpected {:?} at byte {}", *c as char, *pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            fields.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {}", *pos));
        }
        *pos += 1;
        let mut out = String::new();
        while let Some(&c) = bytes.get(*pos) {
            *pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = bytes.get(*pos).copied().ok_or("unterminated escape")?;
                    *pos += 1;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => {
                            return Err(format!("unsupported escape \\{}", other as char));
                        }
                    });
                }
                other => out.push(other as char),
            }
        }
        Err("unterminated string".to_string())
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> RawTable {
        RawTable {
            version: TABLE_VERSION,
            rules: vec![
                RawRule {
                    op: "matmul".to_string(),
                    m: Some(Band::Lo),
                    k: Some(Band::Hi),
                    n: None,
                    backend: "scalar".to_string(),
                },
                RawRule {
                    op: "matmul".to_string(),
                    m: None,
                    k: None,
                    n: None,
                    backend: "blocked".to_string(),
                },
            ],
        }
    }

    #[test]
    fn bucket_round_trips_through_bands() {
        for idx in 0..N_BUCKETS {
            let (m, k, n) = bucket_bands(idx);
            let probe = |b: Band, lo: usize, mid: usize, hi: usize| match b {
                Band::Lo => lo,
                Band::Mid => mid,
                Band::Hi => hi,
            };
            let got = bucket(
                probe(m, 1, 5, 100),
                probe(k, 2, 64, 500),
                probe(n, 8, 32, 256),
            );
            assert_eq!(got, idx);
        }
    }

    #[test]
    fn band_thresholds_separate_the_recorded_bench_shapes() {
        // The committed baselines flip winners across exactly these
        // boundaries; a threshold change that merges them would make the
        // static tables unrepresentable.
        assert_eq!(band_m(1), Band::Lo);
        assert_eq!(band_m(4), Band::Mid);
        assert_eq!(band_m(16), Band::Hi);
        assert_eq!(band_k(4), Band::Lo);
        assert_eq!(band_k(64), Band::Mid);
        assert_eq!(band_k(686), Band::Hi);
        assert_eq!(band_n(16), Band::Lo);
        assert_eq!(band_n(32), Band::Mid);
        assert_eq!(band_n(64), Band::Hi);
    }

    #[test]
    fn render_parse_round_trips() {
        let table = sample_table();
        let parsed = RawTable::parse(&table.render()).expect("round trip");
        assert_eq!(parsed, table);
    }

    #[test]
    fn resolve_applies_first_match_and_overlay_base() {
        let table = sample_table();
        let lut = table
            .resolve("matmul", ["base"; N_BUCKETS], |s| match s {
                "scalar" => Some("scalar"),
                "blocked" => Some("blocked"),
                _ => None,
            })
            .expect("resolves");
        let sparse = bucket(1, 686, 32);
        assert_eq!(lut[sparse], "scalar", "specific rule wins over catch-all");
        assert_eq!(lut[bucket(28, 32, 32)], "blocked");
        // A different op keeps the base everywhere.
        let other = table
            .resolve("matmul_nt", ["base"; N_BUCKETS], |_| Some("rule"))
            .expect("resolves");
        assert!(other.iter().all(|b| *b == "base"));
    }

    #[test]
    fn resolve_rejects_unknown_backends_and_versions() {
        let mut table = sample_table();
        table.rules[0].backend = "auto".to_string();
        let err = table
            .resolve("matmul", [0u8; N_BUCKETS], |s| match s {
                "blocked" => Some(1u8),
                _ => None,
            })
            .expect_err("auto nesting must fail the table");
        assert!(err.contains("auto"), "{err}");
        let mut stale = sample_table();
        stale.version = TABLE_VERSION + 1;
        assert!(stale
            .resolve("matmul", [0u8; N_BUCKETS], |_| Some(0u8))
            .is_err());
    }

    #[test]
    fn malformed_json_is_an_error_not_a_panic() {
        for text in [
            "",
            "{",
            "not json",
            "{\"version\": 1}",
            "{\"version\": 1, \"rules\": [{\"op\": \"matmul\"",
            "{\"version\": 1, \"rules\": [{\"op\": 3, \"backend\": \"x\"}]}",
            "{\"version\": 1, \"rules\": [{\"op\": \"matmul\", \"m\": \"huge\", \"backend\": \"x\"}]}",
            "{\"version\": 1, \"rules\": 7}",
            "{\"version\": 1, \"rules\": []} trailing",
        ] {
            assert!(RawTable::parse(text).is_err(), "{text:?} must be rejected");
        }
    }

    #[test]
    fn measurements_fold_into_per_bucket_winners() {
        let b = bucket(28, 32, 32);
        let table = table_from_measurements(&[
            ("matmul", b, "blocked", 10.0),
            ("matmul", b, "wide", 4.0),
            ("matmul", b, "wide", 9.0), // totals: blocked 10, wide 13
            ("matmul_nt", b, "wide", 1.0),
        ]);
        assert_eq!(table.rules.len(), 2);
        let nn = &table.rules[0];
        assert_eq!((nn.op.as_str(), nn.backend.as_str()), ("matmul", "blocked"));
        assert_eq!(nn.m, Some(Band::Hi));
        assert_eq!(table.rules[1].backend, "wide");
        // The emitted table survives its own render/parse/resolve cycle.
        let lut = RawTable::parse(&table.render())
            .expect("parses")
            .resolve("matmul", ["base"; N_BUCKETS], |s| match s {
                "blocked" => Some("blocked"),
                "wide" => Some("wide"),
                _ => None,
            })
            .expect("resolves");
        assert_eq!(lut[b], "blocked");
    }

    #[test]
    fn store_and_load_round_trip_through_disk() {
        let dir = std::env::temp_dir().join(format!("create-dispatch-{}", std::process::id()));
        let path = dir.join("table.json");
        let table = sample_table();
        store_table(&path, &table).expect("store");
        assert_eq!(load_table(&path).expect("load"), table);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_failures_are_errors_not_panics() {
        assert!(load_table(Path::new("/definitely/not/a/table.json")).is_err());
    }
}
