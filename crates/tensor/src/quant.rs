//! Symmetric per-tensor quantization.
//!
//! The paper deploys both planner and controller on a systolic-array
//! accelerator in INT8 (Sec. 2.2), with GEMM outputs re-quantized by an
//! *offline-determined scaling factor* (Sec. 5.1). This module provides that
//! scheme plus the INT4 variant used by the quantization-sensitivity study
//! (Table 6).

use crate::Matrix;

/// Datapath precision for quantized GEMM operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// 8-bit signed integers in `[-127, 127]` (the paper's default).
    #[default]
    Int8,
    /// 4-bit signed integers in `[-7, 7]` (Sec. 6.9 sensitivity study).
    Int4,
}

impl Precision {
    /// Largest representable magnitude for this precision.
    pub fn qmax(self) -> i32 {
        match self {
            Precision::Int8 => 127,
            Precision::Int4 => 7,
        }
    }

    /// Bits per operand value.
    pub fn bits(self) -> u32 {
        match self {
            Precision::Int8 => 8,
            Precision::Int4 => 4,
        }
    }
}

/// Per-tensor symmetric quantization parameters.
///
/// `real = quantized as f32 * scale`. The scale is determined offline by
/// profiling the maximum absolute value of the tensor (Sec. 5.1), which is
/// also what the anomaly-detection bound is derived from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    scale: f32,
    precision: Precision,
}

impl QuantParams {
    /// Builds parameters so that `max_abs` maps onto the largest code.
    ///
    /// A zero or non-finite `max_abs` falls back to a scale of 1 so that an
    /// all-zero tensor round-trips exactly.
    pub fn from_max_abs(max_abs: f32, precision: Precision) -> Self {
        let qmax = precision.qmax() as f32;
        let scale = if max_abs.is_finite() && max_abs > 0.0 {
            max_abs / qmax
        } else {
            1.0
        };
        Self { scale, precision }
    }

    /// Builds parameters from an explicit scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    pub fn from_scale(scale: f32, precision: Precision) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "quantization scale must be positive and finite, got {scale}"
        );
        Self { scale, precision }
    }

    /// The real-value step represented by one integer code.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The operand precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Quantizes one value to the integer grid (clamped).
    #[inline]
    pub fn quantize_value(&self, v: f32) -> i8 {
        let qmax = self.precision.qmax();
        let q = (v / self.scale).round();
        q.clamp(-(qmax as f32), qmax as f32) as i8
    }

    /// Recovers the real value of one integer code.
    #[inline]
    pub fn dequantize_value(&self, q: i8) -> f32 {
        q as f32 * self.scale
    }
}

/// A quantized row-major matrix: integer codes plus their [`QuantParams`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuantMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    params: QuantParams,
}

impl QuantMatrix {
    /// Quantizes `m` with a scale derived from its own max-abs value.
    pub fn quantize(m: &Matrix, precision: Precision) -> Self {
        let params = QuantParams::from_max_abs(m.max_abs(), precision);
        Self::quantize_with(m, params)
    }

    /// Quantizes `m` with externally profiled parameters.
    ///
    /// This is the deployment path: scales are profiled offline on
    /// calibration data, and runtime tensors are clamped into that grid.
    pub fn quantize_with(m: &Matrix, params: QuantParams) -> Self {
        let data = m
            .as_slice()
            .iter()
            .map(|&v| params.quantize_value(v))
            .collect();
        Self {
            rows: m.rows(),
            cols: m.cols(),
            data,
            params,
        }
    }

    /// An empty (0×0) quantized matrix — the seed state for scratch
    /// buffers that are later filled by
    /// [`quantize_with_into`](Self::quantize_with_into).
    pub fn empty(params: QuantParams) -> Self {
        Self {
            rows: 0,
            cols: 0,
            data: Vec::new(),
            params,
        }
    }

    /// [`quantize_with`](Self::quantize_with) into a caller-provided
    /// quantized matrix, reusing its code buffer.
    ///
    /// Produces bit-identical codes to the allocating form (same
    /// per-element rounding); after a warm-up call at the largest input
    /// shape, no heap allocation occurs. This is what keeps the
    /// accelerator's per-GEMM input quantization allocation-free in
    /// steady state.
    pub fn quantize_with_into(m: &Matrix, params: QuantParams, out: &mut QuantMatrix) {
        out.rows = m.rows();
        out.cols = m.cols();
        out.params = params;
        out.data.clear();
        out.data
            .extend(m.as_slice().iter().map(|&v| params.quantize_value(v)));
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The quantization parameters.
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// Integer codes, row-major.
    pub fn as_slice(&self) -> &[i8] {
        &self.data
    }

    /// Heap capacity of the code buffer (for the allocation-stability
    /// checks guarding the zero-allocation steady-state contract).
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Mutable integer codes, row-major.
    ///
    /// Exists for fault-injection studies that perturb *stored* weights
    /// (e.g. the SRAM retention-fault extension); the quantization
    /// parameters are deliberately left untouched, exactly as a hardware
    /// bit flip would leave the offline scale.
    pub fn as_mut_slice(&mut self) -> &mut [i8] {
        &mut self.data
    }

    /// Row `r` of integer codes.
    #[inline]
    pub fn row(&self, r: usize) -> &[i8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reconstructs the real-valued matrix.
    pub fn dequantize(&self) -> Matrix {
        let data = self
            .data
            .iter()
            .map(|&q| self.params.dequantize_value(q))
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Worst-case absolute rounding error for in-range values.
    pub fn rounding_error_bound(&self) -> f32 {
        self.params.scale() * 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn precision_limits() {
        assert_eq!(Precision::Int8.qmax(), 127);
        assert_eq!(Precision::Int4.qmax(), 7);
        assert_eq!(Precision::Int8.bits(), 8);
        assert_eq!(Precision::Int4.bits(), 4);
    }

    #[test]
    fn roundtrip_error_is_bounded_by_half_scale() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = Matrix::random_uniform(8, 8, 3.0, &mut rng);
        for precision in [Precision::Int8, Precision::Int4] {
            let q = QuantMatrix::quantize(&m, precision);
            let back = q.dequantize();
            let bound = q.rounding_error_bound() + 1e-6;
            assert!(
                m.max_abs_diff(&back) <= bound,
                "{precision:?}: error {} > bound {}",
                m.max_abs_diff(&back),
                bound
            );
        }
    }

    #[test]
    fn zero_matrix_roundtrips_exactly() {
        let m = Matrix::zeros(4, 4);
        let q = QuantMatrix::quantize(&m, Precision::Int8);
        assert_eq!(q.dequantize(), m);
    }

    #[test]
    fn out_of_range_values_are_clamped() {
        let params = QuantParams::from_scale(0.1, Precision::Int8);
        assert_eq!(params.quantize_value(1e9), 127);
        assert_eq!(params.quantize_value(-1e9), -127);
    }

    #[test]
    fn int4_codes_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(8);
        let m = Matrix::random_uniform(16, 16, 10.0, &mut rng);
        let q = QuantMatrix::quantize(&m, Precision::Int4);
        assert!(q.as_slice().iter().all(|&v| (-7..=7).contains(&v)));
    }

    #[test]
    fn max_abs_value_maps_to_qmax() {
        let m = Matrix::from_vec(1, 2, vec![2.54, -1.0]);
        let q = QuantMatrix::quantize(&m, Precision::Int8);
        assert_eq!(q.as_slice()[0], 127);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn from_scale_rejects_zero() {
        let _ = QuantParams::from_scale(0.0, Precision::Int8);
    }

    #[test]
    fn quantize_with_into_matches_allocating_form_and_reuses_capacity() {
        let mut rng = StdRng::seed_from_u64(9);
        let params = QuantParams::from_max_abs(2.0, Precision::Int8);
        let mut scratch = QuantMatrix::empty(params);
        // Warm up at the largest shape, then requantize smaller inputs:
        // the code buffer must be reused (stable pointer, no realloc) and
        // every code must match the allocating form bit-for-bit.
        let warm = Matrix::random_uniform(8, 16, 3.0, &mut rng);
        QuantMatrix::quantize_with_into(&warm, params, &mut scratch);
        let ptr = scratch.data.as_ptr();
        for (rows, cols) in [(4usize, 4usize), (1, 7), (0, 3), (8, 16)] {
            let m = Matrix::random_uniform(rows, cols, 3.0, &mut rng);
            QuantMatrix::quantize_with_into(&m, params, &mut scratch);
            assert_eq!(scratch, QuantMatrix::quantize_with(&m, params));
            assert_eq!(scratch.data.as_ptr(), ptr, "buffer must be reused");
        }
    }
}
