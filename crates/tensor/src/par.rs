//! Scoped worker-pool primitives shared across the workspace.
//!
//! Two consumers fan work over a `CREATE_THREADS`-sized pool: the
//! experiment engine in `create-core` (trials of a sweep grid) and the
//! data-parallel training loops in `create-agents` (per-sample
//! forward/backward of a minibatch). `create-core` depends on
//! `create-agents`, so the shared primitive lives here, at the bottom of
//! the crate graph; `create_core::engine` re-exports it.
//!
//! [`scoped_map`] is deliberately minimal: it runs one closure over a
//! slice of disjoint `&mut` item slots, giving each worker thread its own
//! `&mut` worker state, and guarantees that **which thread processes
//! which item can never influence the result** as long as the closure
//! writes only through its two `&mut` arguments (the usual scratch-buffer
//! contract: fully overwritten before use). Determinism then comes for
//! free — callers fold the item slots afterwards in slice order.

use std::sync::Mutex;

/// Worker threads the process defaults to: `CREATE_THREADS` when set to a
/// positive integer (validated, warn-and-fallback), otherwise the
/// machine's available parallelism.
///
/// The resolution is cached for the life of the process — it sits on the
/// per-train-step hot path, `available_parallelism` reads procfs/cgroups
/// (allocating) on Linux, and the fallback warning should print once, not
/// once per call (the same once-per-run contract as the backend kinds).
pub fn default_threads() -> usize {
    static CACHE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| crate::envcfg::read_positive_usize("CREATE_THREADS", available_threads()))
}

/// The machine's available parallelism (4 when it cannot be queried).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

/// Runs `f(index, &mut items[index], &mut worker_state)` exactly once per
/// item, fanned over `workers.len()` threads.
///
/// * Items are claimed dynamically (a shared iterator), so a slow item
///   cannot serialize the rest behind a static partition.
/// * Each spawned thread owns one element of `workers` for its whole
///   lifetime — per-worker scratch buffers are reused across the items
///   that worker claims and never shared.
/// * With a single worker (or zero/one items) the loop runs inline on the
///   calling thread: no threads are spawned and **no heap allocation** is
///   performed by the dispatch itself, which is what keeps warmed-up
///   single-threaded callers allocation-free.
///
/// The assignment of items to workers is scheduling-dependent; results
/// are deterministic if and only if `f`'s output for item `i` depends
/// only on `i`, the item slot and state the closure fully overwrites —
/// the contract every caller in this workspace already pins with
/// scratch-reuse parity tests.
///
/// # Panics
///
/// Panics if `workers` is empty (a pool needs at least one worker), or
/// propagates the first panic of `f`.
pub fn scoped_map<I, W, F>(items: &mut [I], workers: &mut [W], f: F)
where
    I: Send,
    W: Send,
    F: Fn(usize, &mut I, &mut W) + Sync,
{
    assert!(!workers.is_empty(), "scoped_map needs at least one worker");
    if workers.len() == 1 || items.len() <= 1 {
        let worker = &mut workers[0];
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item, worker);
        }
        return;
    }
    // Never park more threads than there are items to claim.
    let n_workers = workers.len().min(items.len());
    let queue = Mutex::new(items.iter_mut().enumerate());
    let (queue, f) = (&queue, &f);
    std::thread::scope(|scope| {
        for worker in workers[..n_workers].iter_mut() {
            scope.spawn(move || loop {
                let claimed = queue.lock().expect("scoped_map queue poisoned").next();
                match claimed {
                    Some((i, item)) => f(i, item, worker),
                    None => break,
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn maps_every_item_exactly_once_at_any_worker_count() {
        for threads in [1usize, 2, 4, 9] {
            let mut items: Vec<(usize, usize)> = (0..23).map(|i| (i, 0)).collect();
            let mut workers: Vec<u64> = vec![0; threads];
            scoped_map(&mut items, &mut workers, |idx, item, w| {
                assert_eq!(idx, item.0);
                item.1 += idx * 2 + 1;
                *w += 1;
            });
            for (i, (idx, val)) in items.iter().enumerate() {
                assert_eq!(*idx, i);
                assert_eq!(*val, i * 2 + 1, "threads={threads}");
            }
            let total: u64 = workers.iter().sum();
            assert_eq!(total, 23, "each item claimed exactly once");
        }
    }

    #[test]
    fn single_worker_runs_inline_in_order() {
        let mut items = [(); 5];
        let mut workers = [()];
        let tid = std::thread::current().id();
        let order = Mutex::new(Vec::new());
        scoped_map(&mut items, &mut workers, |i, _, _| {
            assert_eq!(std::thread::current().id(), tid, "must not spawn");
            order.lock().unwrap().push(i);
        });
        assert_eq!(order.into_inner().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_items_are_a_no_op() {
        let mut items: [u8; 0] = [];
        let mut workers = [0u8; 3];
        let calls = AtomicUsize::new(0);
        scoped_map(&mut items, &mut workers, |_, _, _| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_worker_set_panics() {
        let mut items = [0u8; 2];
        let mut workers: [u8; 0] = [];
        scoped_map(&mut items, &mut workers, |_, _, _| {});
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
        assert!(available_threads() >= 1);
    }
}
