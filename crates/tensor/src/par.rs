//! Scoped worker-pool primitives shared across the workspace.
//!
//! Two consumers fan work over a `CREATE_THREADS`-sized pool: the
//! experiment engine in `create-core` (trials of a sweep grid) and the
//! data-parallel training loops in `create-agents` (per-sample
//! forward/backward of a minibatch). `create-core` depends on
//! `create-agents`, so the shared primitive lives here, at the bottom of
//! the crate graph; `create_core::engine` re-exports it.
//!
//! [`scoped_map`] is deliberately minimal: it runs one closure over a
//! slice of disjoint `&mut` item slots, giving each worker thread its own
//! `&mut` worker state, and guarantees that **which thread processes
//! which item can never influence the result** as long as the closure
//! writes only through its two `&mut` arguments (the usual scratch-buffer
//! contract: fully overwritten before use). Determinism then comes for
//! free — callers fold the item slots afterwards in slice order.
//!
//! [`WorkerPool`] is the persistent variant of the same contract: the
//! training loops fan out one chunk per minibatch, and spawning/joining
//! OS threads per chunk costs ~10% of a train step on the committed
//! baselines. A pool is spawned once per training run, its workers park
//! on a condvar between chunks, and [`WorkerPool::run`] is a drop-in
//! replacement for [`scoped_map`] — same claiming, same scratch
//! ownership, same bit-identical results, zero steady-state allocation.
//! The [`MinibatchMap`] trait abstracts over both so benches can measure
//! one against the other.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Worker threads the process defaults to: `CREATE_THREADS` when set to a
/// positive integer (validated, warn-and-fallback), otherwise the
/// machine's available parallelism.
///
/// The resolution is cached for the life of the process — it sits on the
/// per-train-step hot path, `available_parallelism` reads procfs/cgroups
/// (allocating) on Linux, and the fallback warning should print once, not
/// once per call (the same once-per-run contract as the backend kinds).
pub fn default_threads() -> usize {
    static CACHE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| crate::envcfg::read_positive_usize("CREATE_THREADS", available_threads()))
}

/// The machine's available parallelism (4 when it cannot be queried).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

/// Runs `f(index, &mut items[index], &mut worker_state)` exactly once per
/// item, fanned over `workers.len()` threads.
///
/// * Items are claimed dynamically (a shared iterator), so a slow item
///   cannot serialize the rest behind a static partition.
/// * Each spawned thread owns one element of `workers` for its whole
///   lifetime — per-worker scratch buffers are reused across the items
///   that worker claims and never shared.
/// * With a single worker (or zero/one items) the loop runs inline on the
///   calling thread: no threads are spawned and **no heap allocation** is
///   performed by the dispatch itself, which is what keeps warmed-up
///   single-threaded callers allocation-free.
///
/// The assignment of items to workers is scheduling-dependent; results
/// are deterministic if and only if `f`'s output for item `i` depends
/// only on `i`, the item slot and state the closure fully overwrites —
/// the contract every caller in this workspace already pins with
/// scratch-reuse parity tests.
///
/// # Panics
///
/// Panics if `workers` is empty (a pool needs at least one worker), or
/// propagates the first panic of `f`.
pub fn scoped_map<I, W, F>(items: &mut [I], workers: &mut [W], f: F)
where
    I: Send,
    W: Send,
    F: Fn(usize, &mut I, &mut W) + Sync,
{
    assert!(!workers.is_empty(), "scoped_map needs at least one worker");
    if workers.len() == 1 || items.len() <= 1 {
        let worker = &mut workers[0];
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item, worker);
        }
        return;
    }
    // Never park more threads than there are items to claim.
    let n_workers = workers.len().min(items.len());
    let queue = Mutex::new(items.iter_mut().enumerate());
    let (queue, f) = (&queue, &f);
    std::thread::scope(|scope| {
        for worker in workers[..n_workers].iter_mut() {
            scope.spawn(move || loop {
                let claimed = queue.lock().expect("scoped_map queue poisoned").next();
                match claimed {
                    Some((i, item)) => f(i, item, worker),
                    None => break,
                }
            });
        }
    });
}

/// How a training loop fans one minibatch chunk over its workers.
///
/// Both implementations share [`scoped_map`]'s exact contract — `f(i,
/// &mut items[i], &mut worker_state)` exactly once per item, dynamic
/// claiming, per-worker scratch ownership — so they are interchangeable
/// without affecting results:
///
/// * [`SpawnPerChunk`] spawns and joins scoped OS threads per chunk (the
///   pre-pool behaviour, kept for benchmarking the win);
/// * [`WorkerPool`] parks persistent workers on a condvar between
///   chunks — one wake + one barrier per chunk, no thread churn and no
///   steady-state allocation.
pub trait MinibatchMap {
    /// Worker-state slots the caller must provide (`workers.len()` in
    /// [`map`](Self::map) must be at least this).
    fn workers(&self) -> usize;

    /// Runs `f` exactly once per item, exactly like [`scoped_map`].
    fn map<I, W, F>(&mut self, items: &mut [I], workers: &mut [W], f: F)
    where
        I: Send,
        W: Send,
        F: Fn(usize, &mut I, &mut W) + Sync;
}

/// The spawn-per-chunk strategy: delegates to [`scoped_map`] with the
/// given worker count. Exists so the `train` bench can measure the
/// persistent pool against the old behaviour.
#[derive(Debug, Clone, Copy)]
pub struct SpawnPerChunk(pub usize);

impl MinibatchMap for SpawnPerChunk {
    fn workers(&self) -> usize {
        self.0.max(1)
    }

    fn map<I, W, F>(&mut self, items: &mut [I], workers: &mut [W], f: F)
    where
        I: Send,
        W: Send,
        F: Fn(usize, &mut I, &mut W) + Sync,
    {
        scoped_map(items, workers, f)
    }
}

/// A persistent worker pool: OS threads are spawned once (at
/// [`WorkerPool::new`]) and parked on a condvar between
/// [`run`](WorkerPool::run) calls, so a training loop that fans out
/// hundreds of minibatch chunks pays one spawn/join per *training run*
/// instead of per chunk (~10% of a train step on the committed
/// baselines).
///
/// Semantics are identical to [`scoped_map`] — same dynamic item
/// claiming, same per-worker scratch ownership, same inline path for a
/// single worker or ≤ 1 items — so the bit-identical-for-any-thread-count
/// training contract carries over unchanged: which thread processes
/// which item still cannot influence the result, and callers still fold
/// per-item deltas in slice order afterwards.
///
/// Steady state allocates nothing: `run` publishes a raw pointer to a
/// stack-allocated closure, wakes the workers, and waits on a condvar
/// for the chunk barrier. Dropping the pool signals shutdown and joins
/// every worker (no leak, no deadlock — pinned by tests).
#[derive(Debug)]
pub struct WorkerPool {
    /// `None` for single-threaded pools: `run` then executes inline and
    /// no threads, shared state or allocations exist at all.
    inner: Option<PoolInner>,
    threads: usize,
}

#[derive(Debug)]
struct PoolInner {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<PoolState>,
    /// Workers park here between chunks (woken by a new epoch or shutdown).
    work: Condvar,
    /// The submitting thread parks here until `active` drains to zero.
    done: Condvar,
}

#[derive(Debug)]
struct PoolState {
    /// Monotonic chunk counter; a worker runs one job per epoch bump.
    epoch: u64,
    /// Type-erased pointer to the current chunk's stack-allocated job
    /// closure; valid exactly while `active > 0` (the submitter keeps the
    /// closure alive until the barrier clears).
    job: Option<Job>,
    /// Workers still running the current epoch's job.
    active: usize,
    shutdown: bool,
    /// First panic payload out of a job, re-thrown on the submitter.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Raw pointer to the submitter's stack-held `dyn Fn(usize)` job. Safety:
/// the submitter blocks until every worker finished the epoch, so the
/// pointee outlives every dereference; the closure is `Sync`, so calling
/// it from several workers at once is sound.
#[derive(Debug, Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

unsafe impl Send for Job {}

/// Raw base pointer into the items/workers slices, smuggled into the
/// `Sync` job closure. Safety argument at the use site: disjoint indices.
struct SendPtr<T>(*mut T);

// Manual impls: derive would bound them on `T: Copy`, but a raw pointer
// is always Copy.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for SendPtr<T> {}

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper — edition-2021 disjoint capture would otherwise
    /// capture the bare raw pointer, which is not `Sync`.
    fn get(self) -> *mut T {
        self.0
    }
}

impl WorkerPool {
    /// Spawns a pool of `threads.max(1)` workers. A single-threaded pool
    /// spawns nothing (and allocates nothing): [`run`](Self::run)
    /// executes inline, exactly like [`scoped_map`] with one worker.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        if threads == 1 {
            return WorkerPool {
                inner: None,
                threads,
            };
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
                panic: None,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("create-pool-{slot}"))
                    .spawn(move || worker_loop(&shared, slot))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            inner: Some(PoolInner { shared, handles }),
            threads,
        }
    }

    /// The pool's worker count (the minimum `workers.len()` for
    /// [`run`](Self::run)).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(index, &mut items[index], &mut worker_state)` exactly once
    /// per item over the persistent workers — [`scoped_map`]'s contract
    /// (dynamic claiming, per-worker scratch, inline single-worker path)
    /// without the per-call thread spawn/join.
    ///
    /// After the pool is warm this performs **no heap allocation**: the
    /// job closure lives on this call's stack and is published to the
    /// workers by pointer.
    ///
    /// # Panics
    ///
    /// Panics if `workers` has fewer slots than [`threads`](Self::threads)
    /// (each persistent worker owns one slot for the whole call), or
    /// propagates the first panic of `f`.
    pub fn run<I, W, F>(&mut self, items: &mut [I], workers: &mut [W], f: F)
    where
        I: Send,
        W: Send,
        F: Fn(usize, &mut I, &mut W) + Sync,
    {
        assert!(
            !workers.is_empty(),
            "WorkerPool::run needs at least one worker slot"
        );
        let inner = match &self.inner {
            // Single-worker pools and degenerate chunks run inline on the
            // calling thread, exactly like scoped_map's inline path.
            None => {
                let worker = &mut workers[0];
                for (i, item) in items.iter_mut().enumerate() {
                    f(i, item, worker);
                }
                return;
            }
            Some(inner) => inner,
        };
        if items.len() <= 1 {
            let worker = &mut workers[0];
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item, worker);
            }
            return;
        }
        assert!(
            workers.len() >= self.threads,
            "WorkerPool::run needs one worker slot per pool thread ({} < {})",
            workers.len(),
            self.threads
        );
        let cursor = AtomicUsize::new(0);
        let n_items = items.len();
        let items_base = SendPtr(items.as_mut_ptr());
        let workers_base = SendPtr(workers.as_mut_ptr());
        let (cursor_ref, f_ref) = (&cursor, &f);
        let job_fn = move |slot: usize| {
            // Safety: `fetch_add` hands out each item index exactly once,
            // and each worker thread owns the single `slot` it was
            // spawned with — so every `&mut` below is to memory no other
            // thread touches during this epoch, and the submitter keeps
            // both slices alive until the barrier clears.
            loop {
                let i = cursor_ref.fetch_add(1, Ordering::Relaxed);
                if i >= n_items {
                    break;
                }
                let item = unsafe { &mut *items_base.get().add(i) };
                let worker = unsafe { &mut *workers_base.get().add(slot) };
                f_ref(i, item, worker);
            }
        };
        let job: &(dyn Fn(usize) + Sync) = &job_fn;
        // Safety: erases the borrow and trait-object lifetimes so the job
        // can sit in the shared state. The submitter blocks below until
        // `active == 0`, i.e. until no worker will ever dereference it
        // again, so the pointee strictly outlives every use.
        let job: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(job) };
        {
            let mut state = inner.shared.state.lock().expect("pool state poisoned");
            state.job = Some(Job(job as *const _));
            state.epoch += 1;
            state.active = self.threads;
            drop(state);
            inner.shared.work.notify_all();
        }
        let mut state = inner.shared.state.lock().expect("pool state poisoned");
        while state.active > 0 {
            state = inner.shared.done.wait(state).expect("pool state poisoned");
        }
        state.job = None;
        let panic = state.panic.take();
        drop(state);
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
    }
}

impl MinibatchMap for WorkerPool {
    fn workers(&self) -> usize {
        self.threads
    }

    fn map<I, W, F>(&mut self, items: &mut [I], workers: &mut [W], f: F)
    where
        I: Send,
        W: Send,
        F: Fn(usize, &mut I, &mut W) + Sync,
    {
        self.run(items, workers, f)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            {
                let mut state = inner.shared.state.lock().expect("pool state poisoned");
                state.shutdown = true;
            }
            inner.shared.work.notify_all();
            for handle in inner.handles {
                let _ = handle.join();
            }
        }
    }
}

fn worker_loop(shared: &Shared, slot: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool state poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    break state.job.expect("epoch bumped without a job");
                }
                state = shared.work.wait(state).expect("pool state poisoned");
            }
        };
        // Safety: see `Job` — the submitter keeps the closure alive until
        // this worker (and every other) has decremented `active`.
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| (unsafe { &*job.0 })(slot)));
        let mut state = shared.state.lock().expect("pool state poisoned");
        if let Err(payload) = result {
            if state.panic.is_none() {
                state.panic = Some(payload);
            }
        }
        state.active -= 1;
        if state.active == 0 {
            shared.done.notify_all();
        }
    }
}

/// Why [`BoundedQueue`] refused an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue holds `capacity` items; admitting another would grow it.
    Full,
    /// The queue was closed; no new items are admitted.
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PushError::Full => "queue full",
            PushError::Closed => "queue closed",
        })
    }
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue with condvar-parked
/// consumers — the serving-side sibling of [`WorkerPool`]'s parking
/// machinery (same `Mutex` + `Condvar` + shutdown-flag shape, same
/// "park between work, wake on publish" discipline).
///
/// The contract is built for admission control, not buffering:
///
/// * [`push_with`](Self::push_with) **never blocks and never grows the
///   queue past `capacity`** — when full (or closed) it refuses with a
///   [`PushError`] and the item constructor is never run, so a saturated
///   producer learns immediately instead of stalling or allocating;
/// * [`pop`](Self::pop) parks the consumer until an item or close
///   arrives; after [`close`](Self::close) consumers drain the remaining
///   items and then observe `None`, so accepted work is never dropped;
/// * a zero-capacity queue admits nothing (every push is
///   [`PushError::Full`]) — the degenerate end of the admission dial.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    /// Consumers park here between items (woken by a push or a close).
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// An empty queue admitting at most `capacity` undelivered items.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// The admission bound this queue was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (admitted, not yet popped).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether no items are currently queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking admission: runs `make` (under the queue lock) and
    /// enqueues its item only if there is room and the queue is open —
    /// side effects of constructing the item (ticket registration, id
    /// assignment) therefore happen **iff** the item was admitted, with
    /// no id gaps from rejected attempts.
    pub fn push_with<F: FnOnce() -> T>(&self, make: F) -> Result<(), PushError> {
        self.push_with_limit(self.capacity, make)
    }

    /// [`push_with`](Self::push_with) against a tighter bound: the item
    /// is admitted only while the queue holds fewer than
    /// `min(limit, capacity)` items. This is the priority-admission
    /// primitive — low-priority producers push with a reduced limit, so
    /// the headroom between `limit` and `capacity` stays reserved for
    /// full-limit producers when the queue is contended.
    pub fn push_with_limit<F: FnOnce() -> T>(
        &self,
        limit: usize,
        make: F,
    ) -> Result<(), PushError> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.items.len() >= limit.min(self.capacity) {
            return Err(PushError::Full);
        }
        state.items.push_back(make());
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Non-blocking admission of an already-built item; on refusal the
    /// item is handed back alongside the reason.
    pub fn push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut slot = Some(item);
        self.push_with(|| slot.take().expect("push_with runs make at most once"))
            .map_err(|e| (slot.take().expect("refused item handed back"), e))
    }

    /// Blocks (condvar-parked) until an item is available and delivers
    /// it; returns `None` once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue poisoned");
        }
    }

    /// Removes an item without parking: `None` means "nothing queued
    /// right now" (the queue may still be open).
    pub fn try_pop(&self) -> Option<T> {
        self.state.lock().expect("queue poisoned").items.pop_front()
    }

    /// Closes the queue: subsequent pushes refuse with
    /// [`PushError::Closed`], and parked consumers wake to drain the
    /// remaining items before observing `None`.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue poisoned");
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue poisoned").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_every_item_exactly_once_at_any_worker_count() {
        for threads in [1usize, 2, 4, 9] {
            let mut items: Vec<(usize, usize)> = (0..23).map(|i| (i, 0)).collect();
            let mut workers: Vec<u64> = vec![0; threads];
            scoped_map(&mut items, &mut workers, |idx, item, w| {
                assert_eq!(idx, item.0);
                item.1 += idx * 2 + 1;
                *w += 1;
            });
            for (i, (idx, val)) in items.iter().enumerate() {
                assert_eq!(*idx, i);
                assert_eq!(*val, i * 2 + 1, "threads={threads}");
            }
            let total: u64 = workers.iter().sum();
            assert_eq!(total, 23, "each item claimed exactly once");
        }
    }

    #[test]
    fn single_worker_runs_inline_in_order() {
        let mut items = [(); 5];
        let mut workers = [()];
        let tid = std::thread::current().id();
        let order = Mutex::new(Vec::new());
        scoped_map(&mut items, &mut workers, |i, _, _| {
            assert_eq!(std::thread::current().id(), tid, "must not spawn");
            order.lock().unwrap().push(i);
        });
        assert_eq!(order.into_inner().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_items_are_a_no_op() {
        let mut items: [u8; 0] = [];
        let mut workers = [0u8; 3];
        let calls = AtomicUsize::new(0);
        scoped_map(&mut items, &mut workers, |_, _, _| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_worker_set_panics() {
        let mut items = [0u8; 2];
        let mut workers: [u8; 0] = [];
        scoped_map(&mut items, &mut workers, |_, _, _| {});
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
        assert!(available_threads() >= 1);
    }

    #[test]
    fn pool_maps_every_item_exactly_once_at_any_worker_count() {
        for threads in [1usize, 2, 4, 9] {
            let mut pool = WorkerPool::new(threads);
            let mut workers: Vec<u64> = vec![0; pool.threads()];
            // Several chunks through the same pool, including a repeat of
            // the same size (steady state) and a degenerate chunk.
            for items_len in [23usize, 23, 5, 1, 0] {
                let mut items: Vec<(usize, usize)> = (0..items_len).map(|i| (i, 0)).collect();
                pool.run(&mut items, &mut workers, |idx, item, w| {
                    assert_eq!(idx, item.0);
                    item.1 = idx * 2 + 1;
                    *w += 1;
                });
                for (i, (idx, val)) in items.iter().enumerate() {
                    assert_eq!(*idx, i);
                    assert_eq!(*val, i * 2 + 1, "threads={threads} len={items_len}");
                }
            }
            let total: u64 = workers.iter().sum();
            assert_eq!(total, 23 + 23 + 5 + 1, "each item claimed exactly once");
        }
    }

    #[test]
    fn pool_matches_scoped_map_results_bit_for_bit() {
        // Same fold inputs whichever strategy ran the chunk: the pool is
        // a drop-in for scoped_map.
        let mut a: Vec<f32> = (0..31).map(|i| i as f32).collect();
        let mut b = a.clone();
        let mut wa = vec![0u8; 3];
        let mut wb = vec![0u8; 3];
        scoped_map(&mut a, &mut wa, |i, item, _| *item = (i as f32).sin());
        WorkerPool::new(3).run(&mut b, &mut wb, |i, item, _| *item = (i as f32).sin());
        assert_eq!(a, b);
    }

    #[test]
    fn single_worker_pool_runs_inline_without_spawning() {
        let pool = WorkerPool::new(1);
        assert!(pool.inner.is_none(), "one worker must not spawn threads");
        let mut pool = pool;
        let tid = std::thread::current().id();
        let mut items = [(); 5];
        let mut workers = [()];
        let order = Mutex::new(Vec::new());
        pool.run(&mut items, &mut workers, |i, _, _| {
            assert_eq!(std::thread::current().id(), tid, "must not spawn");
            order.lock().unwrap().push(i);
        });
        assert_eq!(order.into_inner().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pool_propagates_job_panics_and_survives_them() {
        let mut pool = WorkerPool::new(2);
        let mut workers = [0u8; 2];
        let mut items = [0u8; 8];
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&mut items, &mut workers, |i, _, _| {
                if i == 3 {
                    panic!("job failure");
                }
            });
        }));
        let payload = caught.expect_err("panic must propagate to the submitter");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"job failure"));
        // The pool stays usable after a panicked chunk.
        let mut items = [0usize; 6];
        pool.run(&mut items, &mut workers, |i, item, _| *item = i);
        assert_eq!(items, [0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn drop_joins_workers_without_deadlock() {
        // Idle pool: drop must wake the parked workers and join them.
        let pool = WorkerPool::new(4);
        let handles: Vec<_> = pool
            .inner
            .as_ref()
            .expect("multi-threaded pool has workers")
            .handles
            .iter()
            .map(|h| h.thread().id())
            .collect();
        assert_eq!(handles.len(), 4);
        drop(pool);
        // Pool that has run work: same.
        let mut pool = WorkerPool::new(2);
        let mut items = [0u8; 4];
        let mut workers = [0u8; 2];
        pool.run(&mut items, &mut workers, |_, _, _| {});
        drop(pool);
        // Dropping a never-used single-thread pool is trivially fine.
        drop(WorkerPool::new(1));
    }

    #[test]
    #[should_panic(expected = "one worker slot per pool thread")]
    fn pool_rejects_too_few_worker_slots() {
        let mut items = [0u8; 8];
        let mut workers = [0u8; 1];
        WorkerPool::new(3).run(&mut items, &mut workers, |_, _, _| {});
    }

    #[test]
    fn spawn_per_chunk_reports_workers_and_maps() {
        let mut mapper = SpawnPerChunk(4);
        assert_eq!(mapper.workers(), 4);
        assert_eq!(SpawnPerChunk(0).workers(), 1);
        let mut items = [0usize; 9];
        let mut workers = vec![(); mapper.workers()];
        mapper.map(&mut items, &mut workers, |i, item, _| *item = i + 1);
        assert_eq!(items, [1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn queue_refuses_beyond_capacity_without_blocking_or_growing() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.capacity(), 2);
        assert!(q.is_empty());
        assert_eq!(q.push(1), Ok(()));
        assert_eq!(q.push(2), Ok(()));
        // Full: the item comes back with the reason, the queue stays at
        // capacity, and nothing blocked.
        assert_eq!(q.push(3), Err((3, PushError::Full)));
        assert_eq!(q.len(), 2);
        // Draining one slot re-opens admission.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push(4), Ok(()));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(4));
        assert!(q.is_empty());
    }

    #[test]
    fn zero_capacity_queue_admits_nothing() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.push(7u8), Err((7, PushError::Full)));
        assert_eq!(q.try_pop(), None);
        q.close();
        assert_eq!(q.push(8u8), Err((8, PushError::Closed)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_with_limit_reserves_headroom_for_full_limit_producers() {
        let q = BoundedQueue::new(4);
        // A limited producer stops at its reduced bound...
        assert_eq!(q.push_with_limit(2, || 1), Ok(()));
        assert_eq!(q.push_with_limit(2, || 2), Ok(()));
        assert_eq!(q.push_with_limit(2, || 3), Err(PushError::Full));
        // ...while full-limit pushes still use the reserved headroom.
        assert_eq!(q.push(4), Ok(()));
        assert_eq!(q.push(5), Ok(()));
        assert_eq!(q.push(6), Err((6, PushError::Full)));
        // A limit beyond capacity clamps to capacity.
        assert_eq!(q.push_with_limit(usize::MAX, || 7), Err(PushError::Full));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push_with_limit(usize::MAX, || 7), Ok(()));
        q.close();
        assert_eq!(q.push_with_limit(2, || 8), Err(PushError::Closed));
    }

    #[test]
    fn push_with_runs_the_constructor_only_on_admission() {
        let q = BoundedQueue::new(1);
        let built = AtomicUsize::new(0);
        let make = || {
            built.fetch_add(1, Ordering::Relaxed);
            42u8
        };
        assert_eq!(q.push_with(make), Ok(()));
        assert_eq!(q.push_with(make), Err(PushError::Full));
        assert_eq!(built.load(Ordering::Relaxed), 1, "refusals never build");
        q.close();
        assert_eq!(q.push_with(make), Err(PushError::Closed));
        assert_eq!(built.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn close_wakes_parked_consumers_and_drains_first() {
        let q = Arc::new(BoundedQueue::new(8));
        q.push(1u32).unwrap();
        q.push(2u32).unwrap();
        // Two parked consumers plus the queued items: after close, every
        // queued item is delivered exactly once and both consumers
        // observe the end of the stream.
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        q.push(3u32).unwrap();
        q.close();
        assert!(q.is_closed());
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|h| h.join().expect("consumer panicked"))
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3], "drained exactly once, none lost");
    }

    #[test]
    fn queue_delivers_across_producer_and_consumer_threads() {
        let q = Arc::new(BoundedQueue::new(4));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut rejected = 0usize;
                for v in 0..100u32 {
                    // Spin on admission: bounded queue + slow consumer
                    // means some pushes get refused, never blocked.
                    loop {
                        match q.push(v) {
                            Ok(()) => break,
                            Err((_, PushError::Full)) => {
                                rejected += 1;
                                std::thread::yield_now();
                            }
                            Err((_, PushError::Closed)) => unreachable!("not closed"),
                        }
                    }
                    assert!(q.len() <= q.capacity(), "bounded at all times");
                }
                q.close();
                rejected
            })
        };
        let mut got = Vec::new();
        while let Some(v) = q.pop() {
            got.push(v);
        }
        producer.join().expect("producer panicked");
        assert_eq!(got, (0..100).collect::<Vec<_>>(), "FIFO, exactly once");
    }
}
