//! Summary statistics used by the characterization experiments.
//!
//! The resilience study reports activation means and standard deviations
//! (Fig. 5 i–l), value histograms (Figs. 4b and 8a), predictor R² (Fig. 14)
//! and success-rate confidence intervals (Sec. 6.9). These helpers keep all
//! of that in one dependency-free place.

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use create_tensor::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     s.push(v);
/// }
/// assert_eq!(s.mean(), 2.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Adds many observations.
    pub fn extend(&mut self, values: impl IntoIterator<Item = f64>) {
        for v in values {
            self.push(v);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 when fewer than 2 samples).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Mean of a slice (0 for empty input).
pub fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f32>() / values.len() as f32
}

/// Population standard deviation of a slice.
pub fn std_dev(values: &[f32]) -> f32 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / values.len() as f32;
    var.sqrt()
}

/// Pearson correlation coefficient between two equal-length slices.
///
/// Returns 0 when either input is degenerate (constant or empty).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "pearson inputs must have equal length");
    if a.len() < 2 {
        return 0.0;
    }
    let ma = mean(a);
    let mb = mean(b);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Coefficient of determination of `predicted` against `actual`.
///
/// `R² = 1 - SS_res / SS_tot`; returns 0 when `actual` is constant.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn r2_score(actual: &[f32], predicted: &[f32]) -> f32 {
    assert_eq!(
        actual.len(),
        predicted.len(),
        "r2 inputs must have equal length"
    );
    if actual.is_empty() {
        return 0.0;
    }
    let m = mean(actual);
    let ss_tot: f32 = actual.iter().map(|v| (v - m) * (v - m)).sum();
    if ss_tot <= 0.0 {
        return 0.0;
    }
    let ss_res: f32 = actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p) * (a - p))
        .sum();
    1.0 - ss_res / ss_tot
}

/// A fixed-width histogram over `[lo, hi)` with out-of-range counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f32,
    hi: f32,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f32, hi: f32, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one value.
    pub fn push(&mut self, v: f32) {
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (v - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f32) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Bin counts (excluding under/overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Values below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Values at or above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded values, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f32 {
        let width = (self.hi - self.lo) / self.bins.len() as f32;
        self.lo + width * (i as f32 + 0.5)
    }

    /// Fraction of in-range mass at or below bin `i` (0 when empty).
    pub fn cumulative_fraction(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let upto: u64 = self.underflow + self.bins[..=i].iter().sum::<u64>();
        upto as f64 / total as f64
    }
}

/// Wilson score interval for a binomial proportion at ~95% confidence.
///
/// Returns `(low, high)`; degenerates to `(0, 1)` when `n == 0`.
pub fn wilson_interval(successes: u64, n: u64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let z = 1.96f64;
    let n_f = n as f64;
    let p = successes as f64 / n_f;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_f;
    let center = (p + z2 / (2.0 * n_f)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n_f + z2 / (4.0 * n_f * n_f)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_match_direct_formulas() {
        let vals = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        s.extend(vals.iter().copied());
        assert!((s.mean() - 5.0).abs() < 1e-9);
        assert!((s.std_dev() - 2.0).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-6);
        let c = [-2.0, -4.0, -6.0, -8.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn r2_of_perfect_prediction_is_one() {
        let a = [1.0, 2.0, 3.0];
        assert!((r2_score(&a, &a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let a = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        assert!(r2_score(&a, &p).abs() < 1e-6);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for v in [0.5, 1.5, 9.99, -1.0, 10.0, 100.0] {
            h.push(v);
        }
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_bin_centers() {
        let h = Histogram::new(0.0, 10.0, 10);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-6);
        assert!((h.bin_center(9) - 9.5).abs() < 1e-6);
    }

    #[test]
    fn wilson_interval_contains_point_estimate() {
        let (lo, hi) = wilson_interval(90, 100);
        assert!(lo < 0.9 && 0.9 < hi);
        assert!(hi - lo < 0.15, "CI should be tight at n=100");
    }

    #[test]
    fn wilson_interval_degenerate_cases() {
        assert_eq!(wilson_interval(0, 0), (0.0, 1.0));
        let (lo, _) = wilson_interval(0, 50);
        assert!(lo >= 0.0);
        let (_, hi) = wilson_interval(50, 50);
        assert!(hi <= 1.0);
    }
}
