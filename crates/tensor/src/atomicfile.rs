//! Crash-safe file replacement: write-temp, fsync, atomic rename.
//!
//! Every on-disk cache and results artifact in the workspace (the
//! autotune dispatch tables, the trained testutil bundles, the
//! schema-versioned results store, the sweep fabric's sealed journal
//! segments) is replaced through this one primitive, so a process killed
//! mid-write can never leave a half-written file behind for the
//! warn-and-fallback readers to chew on: a reader observes either the
//! old complete file, the new complete file, or no file at all.
//!
//! The recipe is the standard POSIX one:
//!
//! 1. write the full contents to a sibling temp file (unique per process,
//!    so concurrent writers never clobber each other's temp),
//! 2. `fsync` the temp file, so the *data* is durable before the name is,
//! 3. `rename` it over the destination (atomic on POSIX),
//! 4. best-effort `fsync` the parent directory, so the rename itself
//!    survives a power cut (ignored on platforms/filesystems where
//!    directories cannot be opened).

use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Atomically replaces `path` with `bytes`, creating parent directories.
///
/// On success the destination contains exactly `bytes`; on any error the
/// destination is untouched (the temp file is cleaned up best-effort).
///
/// # Errors
///
/// Propagates filesystem errors from the write, fsync or rename. The
/// parent-directory fsync is best-effort and never fails the call.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let parent = path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map(Path::to_path_buf)
        .unwrap_or_else(|| Path::new(".").to_path_buf());
    fs::create_dir_all(&parent)?;
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = parent.join(format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let write_and_sync = (|| -> io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()
    })();
    if let Err(e) = write_and_sync {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    // Make the rename itself durable. Directories cannot be fsync'd on
    // every platform, so failures here are ignored: the data is already
    // safely either old-or-new, never torn.
    if let Ok(dir) = fs::File::open(&parent) {
        let _ = dir.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("create-atomic-{}-{name}", std::process::id()))
    }

    #[test]
    fn writes_and_replaces_contents() {
        let path = tmp_path("replace.bin");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer contents").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer contents");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn creates_missing_parent_directories() {
        let dir = tmp_path("nested-dir");
        let path = dir.join("a/b/c.txt");
        write_atomic(&path, b"deep").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"deep");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn leaves_no_temp_file_behind() {
        let dir = tmp_path("clean-dir");
        let path = dir.join("out.json");
        write_atomic(&path, b"{}").unwrap();
        let extras: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "out.json")
            .collect();
        assert!(extras.is_empty(), "stray files: {extras:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_write_leaves_destination_untouched() {
        let dir = tmp_path("err-dir");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kept.txt");
        write_atomic(&path, b"original").unwrap();
        // A destination whose name collides with an existing *directory*
        // makes the rename fail; the original must survive.
        let blocked = dir.join("blocked");
        fs::create_dir_all(blocked.join("sub")).unwrap();
        assert!(write_atomic(&blocked, b"clobber").is_err());
        assert_eq!(fs::read(&path).unwrap(), b"original");
        fs::remove_dir_all(&dir).ok();
    }
}
