//! CRC32 (IEEE 802.3, reflected) — hand-rolled, the build environment
//! has no registry crates.
//!
//! Hoisted here, at the bottom of the crate graph, because two framing
//! layers share it: the sweep fabric's checkpoint journals
//! (`create_sweep::journal`) and the serving front-end's wire protocol
//! (`create_net::wire`) both frame records as
//! `[payload len: u32 LE][CRC32 of payload: u32 LE][payload]` and rely on
//! the checksum to tell a torn or corrupted frame from a valid one.

/// CRC32 of `bytes` (IEEE 802.3 polynomial, reflected, init/final xor
/// `!0` — the same checksum `zip`/`png`/Ethernet use).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard check value for the IEEE CRC32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_any_single_byte_change() {
        let base = b"the quick brown fox";
        let reference = crc32(base);
        let mut copy = base.to_vec();
        for i in 0..copy.len() {
            copy[i] ^= 0x5A;
            assert_ne!(crc32(&copy), reference, "flip at {i} undetected");
            copy[i] ^= 0x5A;
        }
    }
}
