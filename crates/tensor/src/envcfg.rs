//! Shared validated environment-variable parsing.
//!
//! Every tuning knob in the workspace follows the same contract
//! (`CREATE_REPS`, `CREATE_THREADS`, `CREATE_TRIAL_BATCH`,
//! `CREATE_GEMM_BACKEND`, `CREATE_F32_BACKEND`):
//!
//! * unset, empty or whitespace-only selects the default **silently**;
//! * a non-empty value that fails to parse or validate warns once on
//!   stderr and falls back to the default rather than silently
//!   misbehaving or aborting.
//!
//! The pattern used to be re-implemented at each site; this module is the
//! single home for it. `create-tensor` sits at the bottom of the crate
//! graph, so every crate can reach it.

use std::fmt::Display;

/// Resolves a raw environment value (`None` = unset) against `parse`.
///
/// `parse` receives the raw (untrimmed) value and returns either the
/// parsed setting or a human-readable reason for rejecting it, which is
/// reported as `[create] ignoring NAME="raw": reason; using default D`.
/// Exposed with the raw value as an argument (rather than reading the
/// environment itself) so tests can cover parsing without racing on the
/// process environment.
pub fn parse_validated<T, F>(name: &str, raw: Option<&str>, default: T, parse: F) -> T
where
    T: Display,
    F: FnOnce(&str) -> Result<T, String>,
{
    match raw {
        None => default,
        Some(s) if s.trim().is_empty() => default,
        Some(s) => match parse(s) {
            Ok(v) => v,
            Err(err) => {
                eprintln!("[create] ignoring {name}={s:?}: {err}; using default {default}");
                default
            }
        },
    }
}

/// [`parse_validated`] over the live process environment.
pub fn read_validated<T, F>(name: &str, default: T, parse: F) -> T
where
    T: Display,
    F: FnOnce(&str) -> Result<T, String>,
{
    parse_validated(name, std::env::var(name).ok().as_deref(), default, parse)
}

/// Parses a positive integer setting, rejecting `0` and garbage with the
/// shared warn-and-fallback contract (the `CREATE_REPS` /
/// `CREATE_THREADS` / `CREATE_TRIAL_BATCH` shape).
pub fn positive_usize(name: &str, raw: Option<&str>, default: usize) -> usize {
    parse_validated(name, raw, default, |s| match s.trim().parse::<usize>() {
        Ok(v) if v > 0 => Ok(v),
        _ => Err("expected a positive integer".to_string()),
    })
}

/// [`positive_usize`] over the live process environment.
pub fn read_positive_usize(name: &str, default: usize) -> usize {
    positive_usize(name, std::env::var(name).ok().as_deref(), default)
}

/// Parses a non-negative integer setting — zero is a valid value, not a
/// rejection (indices like `CREATE_SWEEP_SHARD`, where shard 0 is the
/// first shard) — with the shared warn-and-fallback contract.
pub fn nonneg_usize(name: &str, raw: Option<&str>, default: usize) -> usize {
    parse_validated(name, raw, default, |s| {
        s.trim()
            .parse::<usize>()
            .map_err(|_| "expected a non-negative integer".to_string())
    })
}

/// [`nonneg_usize`] over the live process environment.
pub fn read_nonneg_usize(name: &str, default: usize) -> usize {
    nonneg_usize(name, std::env::var(name).ok().as_deref(), default)
}

/// Parses an on/off switch (`1`/`true` on, `0`/`false` off,
/// case-insensitive) with the shared warn-and-fallback contract — the
/// `CREATE_GEMM_AUTOTUNE` shape.
pub fn flag(name: &str, raw: Option<&str>, default: bool) -> bool {
    parse_validated(name, raw, default, |s| {
        match s.trim().to_ascii_lowercase().as_str() {
            "1" | "true" => Ok(true),
            "0" | "false" => Ok(false),
            _ => Err("expected 0/1 or true/false".to_string()),
        }
    })
}

/// [`flag`] over the live process environment.
pub fn read_flag(name: &str, default: bool) -> bool {
    flag(name, std::env::var(name).ok().as_deref(), default)
}

/// Parses a fraction in `[0, 1]` (probabilities, rates, SLO targets —
/// the `CREATE_SERVE_CHAOS` / `CREATE_SERVE_SLO` shape) with the shared
/// warn-and-fallback contract.
pub fn fraction(name: &str, raw: Option<&str>, default: f64) -> f64 {
    parse_validated(name, raw, default, |s| match s.trim().parse::<f64>() {
        Ok(v) if v.is_finite() && (0.0..=1.0).contains(&v) => Ok(v),
        _ => Err("expected a fraction in [0, 1]".to_string()),
    })
}

/// [`fraction`] over the live process environment.
pub fn read_fraction(name: &str, default: f64) -> f64 {
    fraction(name, std::env::var(name).ok().as_deref(), default)
}

/// Reports an out-of-range **explicit builder setting** that was clamped
/// or floored, through the same stderr channel the env parsers use —
/// so `ServeConfig::builder().workers(0)` surfaces exactly like
/// `CREATE_SERVE_WORKERS=0` does: a warning and a safe value, never a
/// panic and never a silent adjustment.
///
/// `name` is the knob's env-contract name (the builder is the code-side
/// face of the same setting), `given` the value the caller passed,
/// `used` the value actually applied.
pub fn warn_adjusted(name: &str, given: impl Display, used: impl Display, why: &str) {
    eprintln!("[create] adjusting {name}={given}: {why}; using {used}");
}

/// Parses a positive milliseconds setting into a `Duration` with the
/// shared warn-and-fallback contract (the `CREATE_SERVE_DEADLINE_MS` /
/// `CREATE_NET_*_MS` shape: zero and garbage warn and fall back).
pub fn positive_ms(name: &str, raw: Option<&str>, default_ms: u64) -> std::time::Duration {
    let ms = parse_validated(name, raw, default_ms, |s| match s.trim().parse::<u64>() {
        Ok(v) if v > 0 => Ok(v),
        _ => Err("expected a positive integer (milliseconds)".to_string()),
    });
    std::time::Duration::from_millis(ms)
}

/// [`positive_ms`] over the live process environment.
pub fn read_positive_ms(name: &str, default_ms: u64) -> std::time::Duration {
    positive_ms(name, std::env::var(name).ok().as_deref(), default_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_and_blank_select_default_silently() {
        assert_eq!(positive_usize("CREATE_TEST_X", None, 7), 7);
        assert_eq!(positive_usize("CREATE_TEST_X", Some(""), 7), 7);
        assert_eq!(positive_usize("CREATE_TEST_X", Some("  \t"), 7), 7);
    }

    #[test]
    fn valid_values_parse() {
        assert_eq!(positive_usize("CREATE_TEST_X", Some("12"), 7), 12);
        assert_eq!(positive_usize("CREATE_TEST_X", Some(" 3 "), 7), 3);
    }

    #[test]
    fn zero_and_garbage_fall_back() {
        assert_eq!(positive_usize("CREATE_TEST_X", Some("0"), 7), 7);
        assert_eq!(positive_usize("CREATE_TEST_X", Some("-4"), 7), 7);
        assert_eq!(positive_usize("CREATE_TEST_X", Some("lots"), 7), 7);
    }

    #[test]
    fn nonneg_accepts_zero_but_not_garbage() {
        assert_eq!(nonneg_usize("CREATE_TEST_IDX", None, 3), 3);
        assert_eq!(nonneg_usize("CREATE_TEST_IDX", Some("0"), 3), 0);
        assert_eq!(nonneg_usize("CREATE_TEST_IDX", Some(" 5 "), 3), 5);
        assert_eq!(nonneg_usize("CREATE_TEST_IDX", Some("-1"), 3), 3);
        assert_eq!(nonneg_usize("CREATE_TEST_IDX", Some("first"), 3), 3);
    }

    #[test]
    fn flags_parse_with_fallback() {
        assert!(!flag("CREATE_TEST_FLAG", None, false));
        assert!(flag("CREATE_TEST_FLAG", None, true));
        assert!(flag("CREATE_TEST_FLAG", Some("1"), false));
        assert!(flag("CREATE_TEST_FLAG", Some(" TRUE "), false));
        assert!(!flag("CREATE_TEST_FLAG", Some("0"), true));
        assert!(!flag("CREATE_TEST_FLAG", Some("false"), true));
        assert!(!flag("CREATE_TEST_FLAG", Some("yes-please"), false));
    }

    #[test]
    fn fractions_parse_and_clamp_garbage_to_default() {
        assert_eq!(fraction("CREATE_TEST_P", None, 0.25), 0.25);
        assert_eq!(fraction("CREATE_TEST_P", Some("0"), 0.25), 0.0);
        assert_eq!(fraction("CREATE_TEST_P", Some("1"), 0.25), 1.0);
        assert_eq!(fraction("CREATE_TEST_P", Some(" 0.5 "), 0.25), 0.5);
        assert_eq!(fraction("CREATE_TEST_P", Some("1.5"), 0.25), 0.25);
        assert_eq!(fraction("CREATE_TEST_P", Some("-0.1"), 0.25), 0.25);
        assert_eq!(fraction("CREATE_TEST_P", Some("NaN"), 0.25), 0.25);
        assert_eq!(fraction("CREATE_TEST_P", Some("chaos"), 0.25), 0.25);
    }

    #[test]
    fn positive_ms_parses_durations_with_fallback() {
        use std::time::Duration;
        assert_eq!(
            positive_ms("CREATE_TEST_MS", None, 250),
            Duration::from_millis(250)
        );
        assert_eq!(
            positive_ms("CREATE_TEST_MS", Some(" 40 "), 250),
            Duration::from_millis(40)
        );
        assert_eq!(
            positive_ms("CREATE_TEST_MS", Some("0"), 250),
            Duration::from_millis(250)
        );
        assert_eq!(
            positive_ms("CREATE_TEST_MS", Some("soon"), 250),
            Duration::from_millis(250)
        );
    }

    #[test]
    fn custom_parse_and_validation_compose() {
        let parse = |s: &str| match s.trim() {
            "on" => Ok(true),
            "off" => Ok(false),
            other => Err(format!("unknown flag {other:?}")),
        };
        assert!(parse_validated("CREATE_TEST_F", Some("on"), false, parse));
        assert!(!parse_validated(
            "CREATE_TEST_F",
            Some("maybe"),
            false,
            parse
        ));
    }
}
