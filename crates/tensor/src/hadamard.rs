//! Hadamard matrices and orthogonal rotations of the residual stream.
//!
//! Weight-rotation-enhanced planning (Sec. 5.2 of the paper) multiplies LLM
//! activations by a normalized Hadamard matrix `H` folded offline into the
//! weights; because `H` is orthogonal, RMSNorm denominators (L2 norms) are
//! preserved and the network function is unchanged, while activation
//! outliers are dispersed across dimensions.
//!
//! This module also provides the *inverse* tool used by the reproduction: a
//! Householder [`Rotation`] that **concentrates** activation energy into a
//! single channel. Applying it to a trained planner plants the systematic,
//! fixed-channel activation outliers that billion-parameter LLMs exhibit
//! (Sec. 4.1) without changing the network function — so the paper's
//! characterization and WR mitigation can be studied mechanistically on a
//! proxy-scale model.

use crate::Matrix;

/// Returns the unnormalized Sylvester–Hadamard entry `±1` at `(i, j)`.
///
/// `H[i][j] = (-1)^popcount(i & j)`, equivalent to the recursive Kronecker
/// construction `H_{2^k} = H_2 ⊗ H_{2^{k-1}}` from the paper.
#[inline]
pub fn hadamard_sign(i: usize, j: usize) -> f32 {
    if (i & j).count_ones().is_multiple_of(2) {
        1.0
    } else {
        -1.0
    }
}

/// Builds the normalized `n × n` Hadamard matrix (`n` must be a power of two).
///
/// The result is orthogonal: `H @ H.T = I`.
///
/// # Panics
///
/// Panics if `n` is zero or not a power of two.
pub fn hadamard_matrix(n: usize) -> Matrix {
    assert!(
        n.is_power_of_two(),
        "Hadamard size must be a power of two, got {n}"
    );
    let norm = 1.0 / (n as f32).sqrt();
    Matrix::from_fn(n, n, |i, j| hadamard_sign(i, j) * norm)
}

/// In-place fast Walsh–Hadamard transform with `1/sqrt(n)` normalization.
///
/// Equivalent to multiplying the vector by [`hadamard_matrix`] in
/// `O(n log n)` time.
///
/// # Panics
///
/// Panics if `data.len()` is zero or not a power of two.
pub fn fwht_normalized(data: &mut [f32]) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "FWHT length must be a power of two, got {n}"
    );
    let mut h = 1;
    while h < n {
        let mut i = 0;
        while i < n {
            for j in i..i + h {
                let x = data[j];
                let y = data[j + h];
                data[j] = x + y;
                data[j + h] = x - y;
            }
            i += h * 2;
        }
        h *= 2;
    }
    let norm = 1.0 / (n as f32).sqrt();
    for v in data.iter_mut() {
        *v *= norm;
    }
}

/// An orthogonal rotation of a `dim`-dimensional activation space.
///
/// Rotations compose, invert (by transpose) and can be folded into adjacent
/// weight matrices; all constructors guarantee orthogonality up to `f32`
/// rounding.
///
/// # Example
///
/// ```
/// use create_tensor::{Matrix, hadamard::Rotation};
/// let r = Rotation::hadamard(16);
/// let x = Matrix::from_fn(2, 16, |r, c| (r + c) as f32);
/// let back = r.inverse().apply_right(&r.apply_right(&x));
/// assert!(x.max_abs_diff(&back) < 1e-4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rotation {
    matrix: Matrix,
}

impl Rotation {
    /// The identity rotation.
    pub fn identity(dim: usize) -> Self {
        Self {
            matrix: Matrix::identity(dim),
        }
    }

    /// The normalized Hadamard rotation (requires power-of-two `dim`).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not a power of two.
    pub fn hadamard(dim: usize) -> Self {
        Self {
            matrix: hadamard_matrix(dim),
        }
    }

    /// Wraps an explicit orthogonal matrix.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not square or deviates from orthogonality by more
    /// than `1e-3` in max-abs terms.
    pub fn from_orthogonal(m: Matrix) -> Self {
        assert_eq!(m.rows(), m.cols(), "rotation matrix must be square");
        let gram = m.matmul_nt(&m);
        let dev = gram.max_abs_diff(&Matrix::identity(m.rows()));
        assert!(dev < 1e-3, "matrix is not orthogonal (deviation {dev})");
        Self { matrix: m }
    }

    /// Householder reflection that maps the direction of `v` onto basis axis
    /// `axis`, concentrating any component along `v` into that channel.
    ///
    /// Used to plant systematic activation outliers: if runtime activations
    /// share a dominant mean direction `v`, the rotated activations carry
    /// most of that energy in channel `axis` — a fixed-channel outlier, just
    /// like the ones large LLMs produce.
    ///
    /// # Panics
    ///
    /// Panics if `v` is (numerically) zero or `axis >= v.len()`.
    pub fn householder_concentrate(v: &[f32], axis: usize) -> Self {
        let dim = v.len();
        assert!(axis < dim, "axis {axis} out of range for dim {dim}");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!(norm > 1e-12, "cannot concentrate a zero direction");
        // u = normalize(v) - e_axis; Q = I - 2 u u^T / |u|^2 maps v̂ -> e_axis.
        let mut u: Vec<f32> = v.iter().map(|x| x / norm).collect();
        u[axis] -= 1.0;
        let u_norm_sq: f32 = u.iter().map(|x| x * x).sum();
        if u_norm_sq < 1e-12 {
            // v already points along the axis.
            return Self::identity(dim);
        }
        let coef = 2.0 / u_norm_sq;
        let matrix = Matrix::from_fn(dim, dim, |i, j| {
            let delta = if i == j { 1.0 } else { 0.0 };
            delta - coef * u[i] * u[j]
        });
        Self { matrix }
    }

    /// Dimension of the rotated space.
    pub fn dim(&self) -> usize {
        self.matrix.rows()
    }

    /// The underlying orthogonal matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// The inverse rotation (transpose, by orthogonality).
    pub fn inverse(&self) -> Self {
        Self {
            matrix: self.matrix.transpose(),
        }
    }

    /// Rotates row-activations: `x @ R`.
    pub fn apply_right(&self, x: &Matrix) -> Matrix {
        x.matmul(&self.matrix)
    }

    /// Folds into a weight used as `x @ W`: returns `W @ R` so the *output*
    /// of the layer is rotated.
    pub fn fold_into_output(&self, w: &Matrix) -> Matrix {
        w.matmul(&self.matrix)
    }

    /// Folds into a weight used as `x @ W` whose *input* arrives rotated:
    /// returns `R.T @ W` so `(x R) (R.T W) = x W`.
    pub fn fold_into_input(&self, w: &Matrix) -> Matrix {
        self.matrix.matmul_tn(w)
    }

    /// Composition `self` followed by `other` (as row-vector right actions).
    pub fn then(&self, other: &Rotation) -> Rotation {
        Rotation {
            matrix: self.matrix.matmul(&other.matrix),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hadamard_is_orthogonal() {
        for n in [2usize, 4, 8, 32] {
            let h = hadamard_matrix(n);
            let gram = h.matmul_nt(&h);
            assert!(
                gram.max_abs_diff(&Matrix::identity(n)) < 1e-4,
                "H_{n} not orthogonal"
            );
        }
    }

    #[test]
    fn hadamard_matches_kronecker_recursion() {
        // H_4 = H_2 ⊗ H_2 (both normalized).
        let h2 = hadamard_matrix(2);
        let h4 = hadamard_matrix(4);
        for i in 0..4 {
            for j in 0..4 {
                let expect =
                    h2.get(i / 2, j / 2) * h2.get(i % 2, j % 2) * 2.0f32.sqrt() / 2.0f32.sqrt();
                assert!((h4.get(i, j) - expect).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn fwht_matches_dense_multiply() {
        let mut rng = StdRng::seed_from_u64(11);
        let x = Matrix::random_uniform(1, 16, 2.0, &mut rng);
        let dense = x.matmul(&hadamard_matrix(16));
        let mut fast = x.as_slice().to_vec();
        fwht_normalized(&mut fast);
        for (a, b) in dense.as_slice().iter().zip(&fast) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn fwht_twice_is_identity() {
        let mut data: Vec<f32> = (0..32).map(|i| (i as f32).sin()).collect();
        let orig = data.clone();
        fwht_normalized(&mut data);
        fwht_normalized(&mut data);
        for (a, b) in orig.iter().zip(&data) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn householder_sends_direction_to_axis() {
        let v = vec![1.0, 2.0, -3.0, 0.5];
        let rot = Rotation::householder_concentrate(&v, 2);
        let x = Matrix::from_vec(1, 4, v.clone());
        let y = rot.apply_right(&x);
        let norm: f32 = v.iter().map(|a| a * a).sum::<f32>().sqrt();
        // All the energy lands in channel 2.
        assert!((y.get(0, 2).abs() - norm).abs() < 1e-4);
        for j in [0usize, 1, 3] {
            assert!(
                y.get(0, j).abs() < 1e-4,
                "channel {j} leaked {}",
                y.get(0, j)
            );
        }
    }

    #[test]
    fn householder_is_orthogonal_and_self_inverse() {
        let v = vec![0.3, -0.7, 0.2, 0.9, 0.1, 0.4, -0.2, 0.8];
        let rot = Rotation::householder_concentrate(&v, 0);
        let gram = rot.matrix().matmul_nt(rot.matrix());
        assert!(gram.max_abs_diff(&Matrix::identity(8)) < 1e-4);
        // A Householder reflection is its own inverse.
        assert!(rot.matrix().max_abs_diff(rot.inverse().matrix()) < 1e-5);
    }

    #[test]
    fn fold_input_then_output_preserves_function() {
        let mut rng = StdRng::seed_from_u64(12);
        let x = Matrix::random_uniform(3, 8, 1.0, &mut rng);
        let w1 = Matrix::random_uniform(8, 8, 1.0, &mut rng);
        let w2 = Matrix::random_uniform(8, 8, 1.0, &mut rng);
        let rot = Rotation::hadamard(8);
        // Original two-layer product.
        let y = x.matmul(&w1).matmul(&w2);
        // Rotate the hidden space between the layers.
        let w1r = rot.fold_into_output(&w1);
        let w2r = rot.fold_into_input(&w2);
        let yr = x.matmul(&w1r).matmul(&w2r);
        assert!(y.max_abs_diff(&yr) < 1e-3);
    }

    #[test]
    fn rotation_preserves_row_norms() {
        let mut rng = StdRng::seed_from_u64(13);
        let x = Matrix::random_uniform(4, 16, 3.0, &mut rng);
        let rot = Rotation::hadamard(16);
        let y = rot.apply_right(&x);
        for r in 0..4 {
            let n0: f32 = x.row(r).iter().map(|v| v * v).sum();
            let n1: f32 = y.row(r).iter().map(|v| v * v).sum();
            assert!((n0 - n1).abs() / n0.max(1e-6) < 1e-4);
        }
    }

    #[test]
    fn hadamard_disperses_a_spike() {
        // One huge channel becomes uniformly spread after rotation.
        let mut x = vec![0.0f32; 64];
        x[17] = 64.0;
        let spike = Matrix::from_vec(1, 64, x);
        let rot = Rotation::hadamard(64);
        let y = rot.apply_right(&spike);
        let max = y.max_abs();
        assert!(max < 9.0, "rotated spike should spread out, max {max}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn hadamard_rejects_non_power_of_two() {
        let _ = hadamard_matrix(12);
    }
}
