//! Row-major `f32` matrices.
//!
//! [`Matrix`] is deliberately small: it carries exactly the operations the
//! neural-network stack and the experiment harnesses need, with panics on
//! shape mismatches (shape errors are programming errors in this workspace,
//! not recoverable conditions).

use rand::Rng;
use std::fmt;

/// A dense row-major matrix of `f32` values.
///
/// # Example
///
/// ```
/// use create_tensor::Matrix;
/// let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// let b = a.transpose();
/// assert_eq!(b.shape(), (3, 2));
/// assert_eq!(b.get(2, 1), 5.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Default for Matrix {
    /// An empty 0×0 matrix — the seed state for reusable scratch buffers
    /// that are later filled by the `_into` operations.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Reshapes `self` to `rows × cols` with every element zeroed,
    /// **reusing the existing heap allocation** when its capacity
    /// suffices.
    ///
    /// This is the in-place counterpart of [`Matrix::zeros`], used by the
    /// inference scratch buffers: after a warm-up call at the largest
    /// shape, subsequent calls perform no heap allocation. Values are
    /// identical to a freshly constructed zero matrix.
    pub fn reset_zeros(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Makes `self` a copy of `src`, reusing the existing allocation when
    /// capacity suffices (the in-place counterpart of `clone`).
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Creates a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from a row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Fills a matrix with samples from `U(-limit, limit)`.
    pub fn random_uniform(rows: usize, cols: usize, limit: f32, rng: &mut impl Rng) -> Self {
        Self::from_fn(rows, cols, |_, _| rng.random_range(-limit..limit))
    }

    /// Kaiming-style initialization for a layer with `fan_in` inputs.
    pub fn kaiming(rows: usize, cols: usize, fan_in: usize, rng: &mut impl Rng) -> Self {
        let limit = (6.0 / fan_in as f32).sqrt();
        Self::random_uniform(rows, cols, limit, rng)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The full backing slice, row-major.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The full backing slice, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Matrix product `self @ other`.
    ///
    /// Dispatches through the process-wide [`FloatGemmBackend`]
    /// (`CREATE_F32_BACKEND`); every backend is bit-identical, including
    /// the zero-skip (`self` entries equal to `0.0` contribute nothing).
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    ///
    /// [`FloatGemmBackend`]: crate::fgemm::FloatGemmBackend
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_into(other, &mut out);
        out
    }

    /// [`matmul`](Self::matmul) into a caller-provided output matrix.
    ///
    /// Bit-identical to the allocating form (same accumulation order);
    /// `out`'s storage is reused, so steady-state callers allocate
    /// nothing.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        crate::fgemm::active().matmul_into(self, other, out);
    }

    /// Matrix product `self @ other.T` without materializing the
    /// transpose (backend-dispatched like [`matmul`](Self::matmul); no
    /// zero-skip — every product participates).
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// [`matmul_nt`](Self::matmul_nt) into a caller-provided output matrix
    /// (bit-identical, storage reused).
    ///
    /// # Panics
    ///
    /// Panics if the shared inner dimensions disagree.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        crate::fgemm::active().matmul_nt_into(self, other, out);
    }

    /// Matrix product `self.T @ other` without materializing the
    /// transpose (backend-dispatched like [`matmul`](Self::matmul),
    /// zero-skip on `self` entries).
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_tn_into(other, &mut out);
        out
    }

    /// [`matmul_tn`](Self::matmul_tn) into a caller-provided output matrix
    /// (bit-identical, storage reused) — the backward pass's
    /// weight-gradient GEMM, so the training scratch paths run it every
    /// step.
    ///
    /// # Panics
    ///
    /// Panics if the shared outer dimensions disagree.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) {
        crate::fgemm::active().matmul_tn_into(self, other, out);
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Element-wise sum; shapes must match.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place element-wise sum.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise difference; shapes must match.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Returns a copy scaled by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        let data = self.data.iter().map(|v| v * s).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scales every element by `s` in place (bit-identical to
    /// [`scale`](Self::scale), no allocation).
    pub fn scale_in_place(&mut self, s: f32) {
        for v in self.data.iter_mut() {
            *v *= s;
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&v| f(v)).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Largest absolute value, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute element-wise difference with `other`.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0f32, |m, (a, b)| m.max((a - b).abs()))
    }

    /// Horizontal concatenation of rows.
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hcat row mismatch");
        Matrix::from_fn(self.rows, self.cols + other.cols, |r, c| {
            if c < self.cols {
                self.get(r, c)
            } else {
                other.get(r, c - self.cols)
            }
        })
    }

    /// Stacks `self` above `other`.
    pub fn vcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vcat col mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Extracts rows `range.start..range.end` as a new matrix.
    pub fn rows_range(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "row range out of bounds");
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// [`rows_range`](Self::rows_range) into a caller-provided matrix
    /// (storage reused, values identical).
    pub fn rows_range_into(&self, start: usize, end: usize, out: &mut Matrix) {
        assert!(start <= end && end <= self.rows, "row range out of bounds");
        out.rows = end - start;
        out.cols = self.cols;
        out.data.clear();
        out.data
            .extend_from_slice(&self.data[start * self.cols..end * self.cols]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::random_uniform(3, 4, 1.0, &mut rng);
        let i = Matrix::identity(4);
        let out = a.matmul(&i);
        assert!(a.max_abs_diff(&out) < 1e-6);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::random_uniform(3, 5, 1.0, &mut rng);
        let b = Matrix::random_uniform(4, 5, 1.0, &mut rng);
        let direct = a.matmul_nt(&b);
        let explicit = a.matmul(&b.transpose());
        assert!(direct.max_abs_diff(&explicit) < 1e-5);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Matrix::random_uniform(5, 3, 1.0, &mut rng);
        let b = Matrix::random_uniform(5, 4, 1.0, &mut rng);
        let direct = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        assert!(direct.max_abs_diff(&explicit) < 1e-5);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Matrix::random_uniform(3, 7, 2.0, &mut rng);
        assert_eq!(a, a.transpose().transpose());
    }

    #[test]
    fn hcat_and_vcat_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        assert_eq!(a.hcat(&b).shape(), (2, 5));
        let c = Matrix::zeros(4, 3);
        assert_eq!(a.vcat(&c).shape(), (6, 3));
    }

    #[test]
    fn rows_range_extracts_rows() {
        let a = Matrix::from_fn(4, 2, |r, _| r as f32);
        let mid = a.rows_range(1, 3);
        assert_eq!(mid.shape(), (2, 2));
        assert_eq!(mid.get(0, 0), 1.0);
        assert_eq!(mid.get(1, 1), 2.0);
    }

    #[test]
    fn max_abs_and_norm() {
        let a = Matrix::from_vec(1, 3, vec![-3.0, 1.0, 2.0]);
        assert_eq!(a.max_abs(), 3.0);
        assert!((a.frobenius_norm() - 14.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_panics_on_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn into_variants_are_bit_identical_and_reuse_storage() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut out = Matrix::zeros(8, 8); // warm scratch
        let ptr = out.as_slice().as_ptr();
        for (m, k, n) in [(3usize, 4usize, 5usize), (1, 8, 2), (2, 1, 1)] {
            let a = Matrix::random_uniform(m, k, 1.0, &mut rng);
            let b = Matrix::random_uniform(k, n, 1.0, &mut rng);
            let bt = Matrix::random_uniform(n, k, 1.0, &mut rng);
            a.matmul_into(&b, &mut out);
            assert_eq!(out, a.matmul(&b));
            assert_eq!(out.as_slice().as_ptr(), ptr, "matmul_into must reuse");
            a.matmul_nt_into(&bt, &mut out);
            assert_eq!(out, a.matmul_nt(&bt));
            assert_eq!(out.as_slice().as_ptr(), ptr, "matmul_nt_into must reuse");
        }
    }

    #[test]
    fn reset_zeros_copy_from_and_rows_range_into_match_allocating_forms() {
        let mut rng = StdRng::seed_from_u64(8);
        let src = Matrix::random_uniform(5, 6, 2.0, &mut rng);
        let mut buf = Matrix::zeros(6, 6);
        let ptr = buf.as_slice().as_ptr();
        buf.reset_zeros(4, 3);
        assert_eq!(buf, Matrix::zeros(4, 3));
        buf.copy_from(&src);
        assert_eq!(buf, src);
        src.rows_range_into(1, 4, &mut buf);
        assert_eq!(buf, src.rows_range(1, 4));
        assert_eq!(buf.as_slice().as_ptr(), ptr, "storage must be reused");
        let mut scaled = src.clone();
        scaled.scale_in_place(0.37);
        assert_eq!(scaled, src.scale(0.37));
    }
}
