//! Pluggable `f32` GEMM backends for the training stack.
//!
//! The trainable models (`create-nn` / `create-agents`) run every forward
//! and backward matrix product through [`Matrix::matmul`],
//! [`Matrix::matmul_nt`] and [`Matrix::matmul_tn`] (and their `_into`
//! forms). Those entry points dispatch through a [`FloatGemmBackend`], so
//! faster implementations can slot in under the unchanged training loops
//! — the f32 twin of the INT8 `GemmBackend` story in `create-accel`.
//! Four backends ship:
//!
//! * [`ScalarF32Backend`] — the original triple loops, kept as the
//!   bit-exact reference;
//! * [`BlockedF32Backend`] — a column-tiled, k-unrolled rewrite that is
//!   **bit-identical** to the reference for every input;
//! * [`WideF32Backend`] — a lane-parallel rewrite that computes
//!   [`F32_LANES`] *independent output columns* at once in a fixed-size
//!   `[f32; F32_LANES]` register block, also **bit-identical** (each lane
//!   owns one output and accumulates in the reference's k-order);
//! * [`DispatchF32Backend`] (`auto`, the default) — not a kernel but a
//!   router: each call is bucketed by size class
//!   ([`crate::dispatch`]) and forwarded to the measured-fastest
//!   concrete backend for that `(op, m, k, n)` bucket. The committed
//!   bench baselines show `wide` winning every `matmul_nt`, `scalar`
//!   winning the one-hot featurizer's sparse products, and `blocked`
//!   the rest — `auto` takes each bucket's winner. Since every concrete
//!   backend is bit-identical, routing cannot change results.
//!
//! # Why the parity guarantee holds for floats
//!
//! `f32` addition is *not* associative, so unlike the integer path the
//! fast backend must not reassociate reductions. It doesn't: for every
//! output element the contributions are added **in the same sequential
//! k-order as the reference**, including the reference's zero-skip
//! (`a == 0.0` terms contribute nothing and are skipped — observable
//! through signed zeros, so it is part of the contract). The rewrite only
//! changes *which* outputs are in flight at once:
//!
//! * `matmul` / `matmul_tn` (blocked): the k-loop is unrolled 4-wide with
//!   the four products added one after another in k-order
//!   (register-resident partial, one load/store of the output tile per 4
//!   k-steps instead of per k-step), and output columns are tiled for
//!   locality;
//! * `matmul_nt` (blocked): four output columns are computed per pass,
//!   giving four *independent* sequential dot-product chains — the
//!   reference's single latency-bound chain becomes 4-way
//!   instruction-level parallelism with each chain's order untouched;
//! * all three kernels (wide): [`F32_LANES`] output columns are carried as
//!   one `[f32; F32_LANES]` accumulator array across the *entire* k-loop,
//!   so the output is written exactly once per lane group and the inner
//!   `acc[l] += a * b[l]` statement maps onto a single vector FMA-free
//!   multiply-add per lane; the zero-skip test (`a == 0.0`) is a scalar
//!   branch shared by every lane, because the skipped multiplier is the
//!   same for all columns of a lane group — so skipping acts as a
//!   uniform per-lane select and no lane ever sees a contribution the
//!   reference would not have added.
//!
//! Rust/LLVM does not fuse `a * b + c` into an FMA or apply fast-math
//! reassociation by default, so products and sums round exactly as the
//! reference's do. Property tests (`tensor/tests/props.rs`) pin the
//! bit-parity on random, zero-dimension and zero-laden inputs, and the CI
//! backend matrix runs the whole workspace under both values of
//! `CREATE_F32_BACKEND`.
//!
//! # Selecting a backend
//!
//! `Matrix`'s multiply entry points read the process-wide backend from
//! the `CREATE_F32_BACKEND` environment variable (`scalar`, `blocked`,
//! `wide`, `auto` or `auto:<table.json>`, case-insensitive) once, on
//! first use. Unset or empty selects
//! [the default](FloatBackendKind::default) (`auto`); any other value
//! warns on stderr and falls back to the default — the same validated
//! fallback contract as `CREATE_GEMM_BACKEND` / `CREATE_REPS`
//! (see [`crate::envcfg`]). With `CREATE_GEMM_AUTOTUNE=1` the `auto`
//! backend measures the concrete candidates on the actual host at first
//! use and caches the winning table under `target/create-autotune/`; a
//! malformed cache or table file warns and falls back to the
//! compiled-in static table, never aborting the run.
//!
//! [`Matrix::matmul`]: crate::Matrix::matmul
//! [`Matrix::matmul_nt`]: crate::Matrix::matmul_nt
//! [`Matrix::matmul_tn`]: crate::Matrix::matmul_tn

use crate::dispatch;
use crate::envcfg;
use crate::matrix::Matrix;
use std::fmt;
use std::path::Path;
use std::str::FromStr;

/// An `f32` GEMM implementation for the training datapath.
///
/// Implementations must be **bit-identical** to [`ScalarF32Backend`] for
/// every input: same per-output accumulation order (sequential in k),
/// same zero-skip semantics (`matmul`/`matmul_tn` skip `a == 0.0`
/// contributions; `matmul_nt` skips nothing), and the standard shape
/// mismatch panics. Training results across backends must match to the
/// last weight bit, so any deviation would silently change experiment
/// semantics.
///
/// All three methods fully overwrite `out` (resizing it in place), so a
/// warmed-up output buffer makes the call allocation-free.
pub trait FloatGemmBackend: fmt::Debug + Send + Sync {
    /// Stable lower-case identifier (`"scalar"`, `"blocked"`, `"wide"`).
    fn name(&self) -> &'static str;

    /// `out = a @ b`.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    fn matmul_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix);

    /// `out = a @ bᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.cols()`.
    fn matmul_nt_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix);

    /// `out = aᵀ @ b` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `a.rows() != b.rows()`.
    fn matmul_tn_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix);
}

fn check_nn(a: &Matrix, b: &Matrix) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul shape mismatch: {}x{} @ {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
}

fn check_nt(a: &Matrix, b: &Matrix) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt shape mismatch: {}x{} @ ({}x{}).T",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
}

fn check_tn(a: &Matrix, b: &Matrix) {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_tn shape mismatch: ({}x{}).T @ {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
}

/// The reference backend: the original scalar loops. Slowest, simplest,
/// and the definition of correct.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScalarF32Backend;

impl FloatGemmBackend for ScalarF32Backend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn matmul_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        check_nn(a, b);
        out.reset_zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            let a_row = a.row(i);
            let out_row = out.row_mut(i);
            for (k, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = b.row(k);
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }

    fn matmul_nt_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        check_nt(a, b);
        out.reset_zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            let a_row = a.row(i);
            for j in 0..b.rows() {
                let b_row = b.row(j);
                let mut acc = 0.0;
                for (&av, &bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                out.set(i, j, acc);
            }
        }
    }

    fn matmul_tn_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        check_tn(a, b);
        out.reset_zeros(a.cols(), b.cols());
        for k in 0..a.rows() {
            let a_row = a.row(k);
            let b_row = b.row(k);
            for (i, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// Output-column tile width (f32 elements): one out tile plus `K_UNROLL`
/// matching b-row slices stay L1-resident while a k-block streams
/// through.
const N_TILE: usize = 128;

/// k-loop unroll width for the rank-1-update kernels (`matmul`,
/// `matmul_tn`): four updates fuse into one read-modify-write of the out
/// tile, with the four adds kept sequential in k-order for bit parity.
const K_UNROLL: usize = 4;

/// Independent output-column chains per pass in `matmul_nt`: four
/// sequential dot products advance in lockstep, turning the reference's
/// single dependent add chain into 4-way ILP without touching any
/// chain's internal order.
const NT_LANES: usize = 4;

/// The fast backend: column-tiled and k-unrolled, bit-identical to
/// [`ScalarF32Backend`] (see the module docs for why reordering never
/// happens within an output's reduction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockedF32Backend;

impl BlockedF32Backend {
    /// Shared rank-1-update kernel: `out[i_out] += col(kk..kk+len_k) ⊗
    /// b_rows`, k-sequential with zero-skip. `a_at(k)` fetches the
    /// multiplier for absolute k-index `k`.
    #[inline]
    fn rank1_tile(
        out_tile: &mut [f32],
        b_data: &[f32],
        n: usize,
        j0: usize,
        kk: usize,
        k_end: usize,
        a_at: impl Fn(usize) -> f32,
    ) {
        let len = out_tile.len();
        let mut k = kk;
        while k + K_UNROLL <= k_end {
            let a0 = a_at(k);
            let a1 = a_at(k + 1);
            let a2 = a_at(k + 2);
            let a3 = a_at(k + 3);
            if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                // Whole group skipped — one-hot featurizer inputs are
                // mostly long runs of zeros.
                k += K_UNROLL;
                continue;
            }
            if a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0 {
                let w0 = &b_data[k * n + j0..][..len];
                let w1 = &b_data[(k + 1) * n + j0..][..len];
                let w2 = &b_data[(k + 2) * n + j0..][..len];
                let w3 = &b_data[(k + 3) * n + j0..][..len];
                for jj in 0..len {
                    // Sequential adds in k-order: bit-identical to the
                    // reference's four separate passes over the tile.
                    let v = out_tile[jj] + a0 * w0[jj];
                    let v = v + a1 * w1[jj];
                    let v = v + a2 * w2[jj];
                    out_tile[jj] = v + a3 * w3[jj];
                }
            } else {
                for (dk, av) in [a0, a1, a2, a3].into_iter().enumerate() {
                    if av != 0.0 {
                        let w = &b_data[(k + dk) * n + j0..][..len];
                        for (o, &bv) in out_tile.iter_mut().zip(w) {
                            *o += av * bv;
                        }
                    }
                }
            }
            k += K_UNROLL;
        }
        while k < k_end {
            let av = a_at(k);
            if av != 0.0 {
                let w = &b_data[k * n + j0..][..len];
                for (o, &bv) in out_tile.iter_mut().zip(w) {
                    *o += av * bv;
                }
            }
            k += 1;
        }
    }
}

impl FloatGemmBackend for BlockedF32Backend {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn matmul_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        check_nn(a, b);
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        out.reset_zeros(m, n);
        if n == 0 {
            return;
        }
        let b_data = b.as_slice();
        for i in 0..m {
            let a_row = a.row(i);
            let out_row = out.row_mut(i);
            for j0 in (0..n).step_by(N_TILE) {
                let j1 = (j0 + N_TILE).min(n);
                Self::rank1_tile(&mut out_row[j0..j1], b_data, n, j0, 0, k, |kk| a_row[kk]);
            }
        }
    }

    fn matmul_nt_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        check_nt(a, b);
        let (m, k, p) = (a.rows(), a.cols(), b.rows());
        out.reset_zeros(m, p);
        for i in 0..m {
            let a_row = a.row(i);
            let mut j = 0;
            while j + NT_LANES <= p {
                let b0 = b.row(j);
                let b1 = b.row(j + 1);
                let b2 = b.row(j + 2);
                let b3 = b.row(j + 3);
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for kk in 0..k {
                    let av = a_row[kk];
                    // Four independent chains; each one accumulates in
                    // the reference's sequential k-order.
                    s0 += av * b0[kk];
                    s1 += av * b1[kk];
                    s2 += av * b2[kk];
                    s3 += av * b3[kk];
                }
                out.set(i, j, s0);
                out.set(i, j + 1, s1);
                out.set(i, j + 2, s2);
                out.set(i, j + 3, s3);
                j += NT_LANES;
            }
            while j < p {
                let b_row = b.row(j);
                let mut acc = 0.0;
                for (&av, &bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                out.set(i, j, acc);
                j += 1;
            }
        }
    }

    fn matmul_tn_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        check_tn(a, b);
        let (kdim, m, n) = (a.rows(), a.cols(), b.cols());
        // With few shared rows there is nothing to unroll and the
        // reference's k-outer loop (one zero test per `a` element, `b`
        // row streamed once) is strictly better — e.g. the one-hot view
        // featurizer's weight gradient has kdim == 1. Both paths are
        // bit-identical, so this is purely a performance heuristic.
        if kdim < 2 * K_UNROLL {
            ScalarF32Backend.matmul_tn_into(a, b, out);
            return;
        }
        out.reset_zeros(m, n);
        if n == 0 {
            return;
        }
        let a_data = a.as_slice();
        let b_data = b.as_slice();
        // The reference iterates k outer / i inner; flipping to i outer
        // keeps every output's contributions in ascending k-order (the
        // only order that matters for bit parity) while exposing the
        // k-unrolled tile kernel.
        for i in 0..m {
            let out_row = out.row_mut(i);
            for j0 in (0..n).step_by(N_TILE) {
                let j1 = (j0 + N_TILE).min(n);
                Self::rank1_tile(&mut out_row[j0..j1], b_data, n, j0, 0, kdim, |kk| {
                    a_data[kk * m + i]
                });
            }
        }
    }
}

/// Lane width of [`WideF32Backend`]: one `[f32; F32_LANES]` accumulator
/// block covers eight output columns — a full 256-bit vector register —
/// and LLVM autovectorizes the fixed-size lane loops without intrinsics.
pub const F32_LANES: usize = 8;

/// The lane-parallel backend: every kernel computes [`F32_LANES`]
/// *independent* output columns per pass, carrying them in a fixed-size
/// `[f32; F32_LANES]` accumulator array across the whole k-loop.
///
/// Bit-identical to [`ScalarF32Backend`] by construction: each lane owns
/// exactly one output element and receives its contributions in the
/// reference's sequential k-order (lanes never exchange or reassociate
/// partial sums), and the `a == 0.0` zero-skip is a scalar branch on the
/// shared multiplier, so it selects the same contributions per lane that
/// the reference adds per element. Compared to [`BlockedF32Backend`]'s
/// tile-update scheme, the output is read and written once per lane group
/// instead of once per k-unroll step, which is what pays off at the small
/// row counts (`m` ∈ 1..28) the training loops actually run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WideF32Backend;

impl WideF32Backend {
    /// Shared lane kernel: `out_group[l] = Σ_k a_at(k) · b[k·n + j0 + l]`
    /// for `out_group.len() ≤ F32_LANES` columns, accumulated in register
    /// lanes in ascending k-order with the reference's zero-skip.
    #[inline]
    fn lane_group(
        out_group: &mut [f32],
        b_data: &[f32],
        n: usize,
        j0: usize,
        k_end: usize,
        a_at: impl Fn(usize) -> f32,
    ) {
        if out_group.len() == F32_LANES {
            let mut acc = [0.0f32; F32_LANES];
            for k in 0..k_end {
                let av = a_at(k);
                if av == 0.0 {
                    continue;
                }
                let b_row = &b_data[k * n + j0..][..F32_LANES];
                for l in 0..F32_LANES {
                    acc[l] += av * b_row[l];
                }
            }
            out_group.copy_from_slice(&acc);
        } else {
            // Ragged tail (< F32_LANES columns): same per-element k-order,
            // variable lane count.
            let len = out_group.len();
            for v in out_group.iter_mut() {
                *v = 0.0;
            }
            for k in 0..k_end {
                let av = a_at(k);
                if av == 0.0 {
                    continue;
                }
                let b_row = &b_data[k * n + j0..][..len];
                for (o, &bv) in out_group.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }
}

impl FloatGemmBackend for WideF32Backend {
    fn name(&self) -> &'static str {
        "wide"
    }

    fn matmul_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        check_nn(a, b);
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        out.reset_zeros(m, n);
        if n == 0 {
            return;
        }
        let b_data = b.as_slice();
        for i in 0..m {
            let a_row = a.row(i);
            let out_row = out.row_mut(i);
            for j0 in (0..n).step_by(F32_LANES) {
                let j1 = (j0 + F32_LANES).min(n);
                Self::lane_group(&mut out_row[j0..j1], b_data, n, j0, k, |kk| a_row[kk]);
            }
        }
    }

    fn matmul_nt_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        check_nt(a, b);
        let (m, k, p) = (a.rows(), a.cols(), b.rows());
        out.reset_zeros(m, p);
        let b_data = b.as_slice();
        for i in 0..m {
            let a_row = a.row(i);
            let mut j = 0;
            // F32_LANES independent dot-product chains advance in
            // lockstep; each chain's internal order is the reference's
            // (no zero-skip in `matmul_nt`, matching the reference).
            while j + F32_LANES <= p {
                let mut acc = [0.0f32; F32_LANES];
                let rows: [&[f32]; F32_LANES] =
                    std::array::from_fn(|l| &b_data[(j + l) * k..][..k]);
                for (kk, &av) in a_row.iter().enumerate() {
                    for l in 0..F32_LANES {
                        acc[l] += av * rows[l][kk];
                    }
                }
                out.row_mut(i)[j..j + F32_LANES].copy_from_slice(&acc);
                j += F32_LANES;
            }
            while j < p {
                let b_row = b.row(j);
                let mut acc = 0.0;
                for (&av, &bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                out.set(i, j, acc);
                j += 1;
            }
        }
    }

    fn matmul_tn_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        check_tn(a, b);
        let (kdim, m, n) = (a.rows(), a.cols(), b.cols());
        // Same heuristic as the blocked backend: with almost no shared
        // rows the reference's k-outer loop (one zero test per `a`
        // element) is strictly better — the one-hot featurizer's weight
        // gradient has kdim == 1. Both paths are bit-identical, so this
        // is purely a performance choice.
        if kdim < 2 {
            ScalarF32Backend.matmul_tn_into(a, b, out);
            return;
        }
        out.reset_zeros(m, n);
        if n == 0 {
            return;
        }
        let a_data = a.as_slice();
        let b_data = b.as_slice();
        for i in 0..m {
            let out_row = out.row_mut(i);
            for j0 in (0..n).step_by(F32_LANES) {
                let j1 = (j0 + F32_LANES).min(n);
                Self::lane_group(&mut out_row[j0..j1], b_data, n, j0, kdim, |kk| {
                    a_data[kk * m + i]
                });
            }
        }
    }
}

/// The `auto` backend: a per-shape router over the concrete backends.
///
/// Holds one flat [`dispatch::N_BUCKETS`]-entry lookup table per op
/// (`matmul`, `matmul_nt`, `matmul_tn`), indexed by the size-class
/// bucket of the canonical `(m, k, n)` — output rows, reduction length,
/// output columns. Dispatch is three integer compares plus an array
/// index; no allocation, no string work, so the steady-state
/// allocation-free training contract is untouched.
///
/// Every cell is a *concrete* kind (validated at construction — `auto`
/// inside a table is rejected), and every concrete backend is
/// bit-identical to the reference, so routing can change speed but never
/// a single output bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchF32Backend {
    nn: [FloatBackendKind; dispatch::N_BUCKETS],
    nt: [FloatBackendKind; dispatch::N_BUCKETS],
    tn: [FloatBackendKind; dispatch::N_BUCKETS],
}

/// File name of the f32 autotune cache under the autotune directory.
pub const F32_AUTOTUNE_FILE: &str = "f32.json";

impl DispatchF32Backend {
    /// The compiled-in static dispatch table, derived from the committed
    /// `results/baseline/BENCH_train.json`: `wide` wins every
    /// `matmul_nt` shape; `scalar` wins the one-hot featurizer's sparse
    /// `matmul` (single row, huge k, mostly zeros) and the mid-width
    /// `matmul_tn` weight gradients; `blocked` keeps the rest. To
    /// regenerate after re-benching, compare per-shape winners in
    /// `BENCH_train.json` (see README § Performance).
    pub fn built_in_table() -> dispatch::RawTable {
        let rule = |op: &str,
                    m: Option<dispatch::Band>,
                    k: Option<dispatch::Band>,
                    n: Option<dispatch::Band>,
                    backend: &str| dispatch::RawRule {
            op: op.to_string(),
            m,
            k,
            n,
            backend: backend.to_string(),
        };
        use dispatch::Band::{Hi, Lo, Mid};
        dispatch::RawTable {
            version: dispatch::TABLE_VERSION,
            rules: vec![
                rule("matmul_nt", None, None, None, "wide"),
                rule("matmul", Some(Lo), Some(Hi), None, "scalar"),
                rule("matmul", None, None, None, "blocked"),
                rule("matmul_tn", Some(Hi), Some(Mid), Some(Mid), "scalar"),
                rule("matmul_tn", None, None, None, "blocked"),
            ],
        }
    }

    /// The router resolved from the compiled-in static table.
    pub fn built_in() -> Self {
        Self::from_table(&Self::built_in_table()).expect("static table must resolve")
    }

    /// Resolves a raw dispatch table, overlaying it on the static table
    /// (buckets the table does not cover keep the committed defaults).
    ///
    /// Fails — so callers can fall back to [`built_in`](Self::built_in) —
    /// if the table's version is unsupported or any rule names an
    /// unknown backend or nests `auto`.
    pub fn from_table(table: &dispatch::RawTable) -> Result<Self, String> {
        let parse = |s: &str| match FloatBackendKind::from_str(s) {
            Ok(FloatBackendKind::Auto) | Err(_) => None,
            Ok(kind) => Some(kind),
        };
        // The static table itself resolves against an all-blocked base;
        // it covers every bucket of every op via its catch-all rules.
        let base = [FloatBackendKind::Blocked; dispatch::N_BUCKETS];
        let static_table = Self::built_in_table();
        let overlay = |op: &str| -> Result<[FloatBackendKind; dispatch::N_BUCKETS], String> {
            let built_in = static_table.resolve(op, base, parse)?;
            table.resolve(op, built_in, parse)
        };
        Ok(DispatchF32Backend {
            nn: overlay("matmul")?,
            nt: overlay("matmul_nt")?,
            tn: overlay("matmul_tn")?,
        })
    }

    /// Full resolution policy for the `auto` backend, with every failure
    /// mode falling back (with a stderr warning) to the static table:
    ///
    /// 1. an explicit table path (`CREATE_F32_BACKEND=auto:<path>`) is
    ///    loaded and used, static on parse/resolve failure;
    /// 2. else with autotune requested (`CREATE_GEMM_AUTOTUNE=1`): a
    ///    readable cache at `cache` is used; a *corrupt* cache warns and
    ///    falls back to static (never aborts); a missing cache triggers
    ///    the one-shot measurement, whose table is written back to
    ///    `cache` for later processes;
    /// 3. else the compiled-in static table.
    ///
    /// Exposed with explicit arguments so tests can exercise every path
    /// without racing on the process environment.
    pub fn resolve(explicit_table: Option<&Path>, autotune: bool, cache: &Path) -> Self {
        if let Some(path) = explicit_table {
            return match dispatch::load_table(path).and_then(|t| Self::from_table(&t)) {
                Ok(backend) => backend,
                Err(err) => {
                    eprintln!(
                        "[create] ignoring f32 dispatch table {}: {err}; using built-in table",
                        path.display()
                    );
                    Self::built_in()
                }
            };
        }
        if autotune {
            if cache.exists() {
                return match dispatch::load_table(cache).and_then(|t| Self::from_table(&t)) {
                    Ok(backend) => backend,
                    Err(err) => {
                        eprintln!(
                            "[create] ignoring corrupt f32 autotune cache {}: {err}; \
                             using built-in table",
                            cache.display()
                        );
                        Self::built_in()
                    }
                };
            }
            let table = Self::autotune();
            if let Err(err) = dispatch::store_table(cache, &table) {
                eprintln!(
                    "[create] cannot cache f32 autotune table at {}: {err}",
                    cache.display()
                );
            }
            return match Self::from_table(&table) {
                Ok(backend) => backend,
                Err(err) => {
                    eprintln!("[create] f32 autotune produced an unusable table: {err}");
                    Self::built_in()
                }
            };
        }
        Self::built_in()
    }

    /// One-shot autotune: times every concrete backend on the
    /// representative training shapes (the `train` bench's shape set)
    /// and emits per-bucket winners. Buckets no probe shape covers are
    /// left to the static table by the [`from_table`](Self::from_table)
    /// overlay.
    pub fn autotune() -> dispatch::RawTable {
        // (m, k, n) probe shapes: transformer block/MLP/head products at
        // the planner sequence length, the controller's token GEMMs, and
        // the sparse one-hot view featurizer.
        const SHAPES: [(usize, usize, usize); 5] = [
            (28, 32, 32),
            (28, 32, 64),
            (28, 64, 32),
            (4, 32, 32),
            (1, 686, 32),
        ];
        let candidates = [
            FloatBackendKind::Scalar,
            FloatBackendKind::Blocked,
            FloatBackendKind::Wide,
        ];
        let mut samples: Vec<(&str, usize, &str, f64)> = Vec::new();
        let mut out = Matrix::default();
        for &(m, k, n) in &SHAPES {
            // The one-hot probe keeps the featurizer's ~93% zero density
            // so the zero-skip paths are measured realistically.
            let density = if k > 512 { 0.07 } else { 1.0 };
            let a = probe_matrix(m, k, 1, density);
            let b = probe_matrix(k, n, 2, 1.0);
            let bt = probe_matrix(n, k, 3, 1.0);
            let c = probe_matrix(m, n, 4, 1.0);
            for kind in candidates {
                let backend = kind.backend();
                samples.push((
                    "matmul",
                    dispatch::bucket(a.rows(), a.cols(), b.cols()),
                    kind.name(),
                    dispatch::measure_ns(|| backend.matmul_into(&a, &b, &mut out)),
                ));
                samples.push((
                    "matmul_nt",
                    dispatch::bucket(a.rows(), a.cols(), bt.rows()),
                    kind.name(),
                    dispatch::measure_ns(|| backend.matmul_nt_into(&a, &bt, &mut out)),
                ));
                samples.push((
                    "matmul_tn",
                    dispatch::bucket(a.cols(), a.rows(), c.cols()),
                    kind.name(),
                    dispatch::measure_ns(|| backend.matmul_tn_into(&a, &c, &mut out)),
                ));
            }
        }
        dispatch::table_from_measurements(&samples)
    }

    /// The process-wide `auto` router, resolved once from the
    /// environment (`CREATE_F32_BACKEND=auto:<path>` /
    /// `CREATE_GEMM_AUTOTUNE`).
    fn from_env() -> &'static DispatchF32Backend {
        static AUTO: std::sync::OnceLock<DispatchF32Backend> = std::sync::OnceLock::new();
        AUTO.get_or_init(|| {
            let raw = std::env::var("CREATE_F32_BACKEND").ok();
            let explicit = raw
                .as_deref()
                .and_then(|s| s.trim().strip_prefix("auto:"))
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(Path::new);
            Self::resolve(
                explicit,
                dispatch::autotune_requested(),
                &dispatch::autotune_cache_path(F32_AUTOTUNE_FILE),
            )
        })
    }

    fn pick(
        &self,
        lut: &[FloatBackendKind; dispatch::N_BUCKETS],
        idx: usize,
    ) -> &'static dyn FloatGemmBackend {
        match lut[idx] {
            FloatBackendKind::Scalar => &ScalarF32Backend,
            FloatBackendKind::Blocked => &BlockedF32Backend,
            FloatBackendKind::Wide => &WideF32Backend,
            // Unreachable by construction (from_table rejects nesting);
            // route to the default concrete backend rather than recurse.
            FloatBackendKind::Auto => &BlockedF32Backend,
        }
    }
}

impl FloatGemmBackend for DispatchF32Backend {
    fn name(&self) -> &'static str {
        "auto"
    }

    fn matmul_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        self.pick(&self.nn, dispatch::bucket(a.rows(), a.cols(), b.cols()))
            .matmul_into(a, b, out)
    }

    fn matmul_nt_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        self.pick(&self.nt, dispatch::bucket(a.rows(), a.cols(), b.rows()))
            .matmul_nt_into(a, b, out)
    }

    fn matmul_tn_into(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        self.pick(&self.tn, dispatch::bucket(a.cols(), a.rows(), b.cols()))
            .matmul_tn_into(a, b, out)
    }
}

/// Deterministic autotune probe data: an LCG fill (no RNG dependency,
/// identical across runs) with `density` fraction non-zero.
fn probe_matrix(rows: usize, cols: usize, seed: u64, density: f64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (state >> 11) as f64 / (1u64 << 53) as f64;
        if u >= density {
            0.0
        } else {
            (u / density.max(f64::MIN_POSITIVE) * 4.0 - 2.0) as f32
        }
    })
}

/// Which [`FloatGemmBackend`] the process multiplies with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FloatBackendKind {
    /// [`ScalarF32Backend`] — the bit-exact reference loops.
    Scalar,
    /// [`BlockedF32Backend`] — tiled/unrolled, bit-identical, faster.
    Blocked,
    /// [`WideF32Backend`] — lane-parallel output columns, bit-identical.
    Wide,
    /// [`DispatchF32Backend`] — per-shape routing to the measured-fastest
    /// concrete backend, bit-identical because every route is.
    Auto,
}

impl Default for FloatBackendKind {
    /// `Auto`: the committed baselines prove per-shape routing matches or
    /// beats every single backend, and parity is bit-exact, so everyone
    /// gets per-shape dispatch unless `CREATE_F32_BACKEND` opts out.
    fn default() -> Self {
        FloatBackendKind::Auto
    }
}

impl fmt::Display for FloatBackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FloatBackendKind {
    type Err = String;

    /// Case-insensitive, whitespace-tolerant parse of a backend name.
    /// `auto:<table.json>` selects `Auto` with an explicit dispatch
    /// table (the path is read back from the raw environment value by
    /// the router, preserving its case).
    fn from_str(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Ok(FloatBackendKind::Scalar),
            "blocked" => Ok(FloatBackendKind::Blocked),
            "wide" => Ok(FloatBackendKind::Wide),
            "auto" => Ok(FloatBackendKind::Auto),
            other if other.starts_with("auto:") => Ok(FloatBackendKind::Auto),
            other => Err(format!(
                "unknown f32 backend {other:?}: expected \"scalar\", \"blocked\", \"wide\", \
                 \"auto\" or \"auto:<table.json>\""
            )),
        }
    }
}

impl FloatBackendKind {
    /// Every shipped backend, in reference-first order. Parity tests and
    /// the `train` bench harness iterate this list.
    pub const ALL: [FloatBackendKind; 4] = [
        FloatBackendKind::Scalar,
        FloatBackendKind::Blocked,
        FloatBackendKind::Wide,
        FloatBackendKind::Auto,
    ];

    /// The backend's stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            FloatBackendKind::Scalar => ScalarF32Backend.name(),
            FloatBackendKind::Blocked => BlockedF32Backend.name(),
            FloatBackendKind::Wide => WideF32Backend.name(),
            FloatBackendKind::Auto => "auto",
        }
    }

    /// The selected implementation (the concrete kernels are zero-sized
    /// and the `auto` router is resolved once into a process-wide
    /// static, so a static borrow suffices — no boxing).
    pub fn backend(self) -> &'static dyn FloatGemmBackend {
        match self {
            FloatBackendKind::Scalar => &ScalarF32Backend,
            FloatBackendKind::Blocked => &BlockedF32Backend,
            FloatBackendKind::Wide => &WideF32Backend,
            FloatBackendKind::Auto => DispatchF32Backend::from_env(),
        }
    }

    /// Resolves a raw `CREATE_F32_BACKEND` value (`None` = unset) with
    /// the shared warn-and-fallback contract ([`envcfg::parse_validated`]).
    pub fn parse_env(raw: Option<&str>) -> Self {
        envcfg::parse_validated("CREATE_F32_BACKEND", raw, Self::default(), str::parse)
    }

    /// The backend selected by the `CREATE_F32_BACKEND` environment
    /// variable, with validated fallback (see [`parse_env`](Self::parse_env)).
    ///
    /// The parse is cached for the life of the process — the multiply
    /// entry points are the innermost training hot path, and the fallback
    /// warning should print once, not once per GEMM. Tests that need to
    /// exercise parsing call [`parse_env`](Self::parse_env) directly.
    pub fn from_env() -> Self {
        static FROM_ENV: std::sync::OnceLock<FloatBackendKind> = std::sync::OnceLock::new();
        *FROM_ENV
            .get_or_init(|| Self::parse_env(std::env::var("CREATE_F32_BACKEND").ok().as_deref()))
    }
}

/// The process-wide active backend ([`FloatBackendKind::from_env`]); this
/// is what [`Matrix`]'s multiply entry points dispatch through.
pub fn active() -> &'static dyn FloatGemmBackend {
    FloatBackendKind::from_env().backend()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_with_zeros(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| {
            if rng.random_range(0.0..1.0) < 0.3 {
                0.0
            } else {
                rng.random_range(-2.0f32..2.0)
            }
        })
    }

    /// Every non-reference backend (including the static-table `auto`
    /// router), asserted bit-equal to the scalar reference on the same
    /// inputs.
    fn fast_backends() -> Vec<Box<dyn FloatGemmBackend>> {
        vec![
            Box::new(BlockedF32Backend),
            Box::new(WideF32Backend),
            Box::new(DispatchF32Backend::built_in()),
        ]
    }

    #[test]
    fn backends_agree_bitwise_on_random_and_zero_laden_inputs() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut s = Matrix::default();
        let mut f = Matrix::default();
        for _ in 0..30 {
            let m = rng.random_range(1usize..7);
            let k = rng.random_range(1usize..40);
            let n = rng.random_range(1usize..200);
            let a = random_with_zeros(m, k, &mut rng);
            let b = random_with_zeros(k, n, &mut rng);
            let bt = random_with_zeros(n, k, &mut rng);
            let c = random_with_zeros(m, n, &mut rng);
            for fast in fast_backends() {
                ScalarF32Backend.matmul_into(&a, &b, &mut s);
                fast.matmul_into(&a, &b, &mut f);
                assert_eq!(s, f, "{} nn {m}x{k}x{n}", fast.name());
                ScalarF32Backend.matmul_nt_into(&a, &bt, &mut s);
                fast.matmul_nt_into(&a, &bt, &mut f);
                assert_eq!(s, f, "{} nt {m}x{k}x{n}", fast.name());
                ScalarF32Backend.matmul_tn_into(&a, &c, &mut s);
                fast.matmul_tn_into(&a, &c, &mut f);
                assert_eq!(s, f, "{} tn {m}x{k}x{n}", fast.name());
            }
        }
    }

    #[test]
    fn backends_agree_on_zero_dimension_edges() {
        let mut s = Matrix::default();
        let mut f = Matrix::default();
        for fast in fast_backends() {
            for (m, k, n) in [(0usize, 5usize, 3usize), (2, 0, 3), (2, 5, 0), (0, 0, 0)] {
                let a = Matrix::zeros(m, k);
                let b = Matrix::zeros(k, n);
                ScalarF32Backend.matmul_into(&a, &b, &mut s);
                fast.matmul_into(&a, &b, &mut f);
                assert_eq!(s.shape(), (m, n));
                assert_eq!(s, f, "{} nn {m}x{k}x{n}", fast.name());
            }
        }
    }

    #[test]
    fn wide_agrees_on_short_k_and_ragged_lane_tails() {
        // k below any unroll width, and n not a multiple of F32_LANES, so
        // both the ragged-tail lane path and the short-k cases are hit.
        let mut rng = StdRng::seed_from_u64(22);
        let mut s = Matrix::default();
        let mut f = Matrix::default();
        for (m, k, n) in [(1usize, 1usize, 1usize), (3, 2, 7), (2, 3, 13), (5, 1, 9)] {
            let a = random_with_zeros(m, k, &mut rng);
            let b = random_with_zeros(k, n, &mut rng);
            ScalarF32Backend.matmul_into(&a, &b, &mut s);
            WideF32Backend.matmul_into(&a, &b, &mut f);
            assert_eq!(s, f, "nn {m}x{k}x{n}");
            let bt = random_with_zeros(n, k, &mut rng);
            ScalarF32Backend.matmul_nt_into(&a, &bt, &mut s);
            WideF32Backend.matmul_nt_into(&a, &bt, &mut f);
            assert_eq!(s, f, "nt {m}x{k}x{n}");
            let c = random_with_zeros(m, n, &mut rng);
            ScalarF32Backend.matmul_tn_into(&a, &c, &mut s);
            WideF32Backend.matmul_tn_into(&a, &c, &mut f);
            assert_eq!(s, f, "tn {m}x{k}x{n}");
        }
    }

    #[test]
    fn zero_skip_is_observable_and_preserved() {
        // -0.0 rows must be skipped (not added): 0.0 + -0.0*1.0 would
        // still be -0.0-free, but the skip also protects NaN/inf in b.
        let a = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let b = Matrix::from_vec(2, 1, vec![f32::NAN, 2.0]);
        let mut s = Matrix::default();
        ScalarF32Backend.matmul_into(&a, &b, &mut s);
        assert_eq!(s.get(0, 0), 2.0, "zero-skip must shield the NaN");
        for fast in fast_backends() {
            let mut f = Matrix::default();
            fast.matmul_into(&a, &b, &mut f);
            assert_eq!(f.get(0, 0), 2.0, "{}", fast.name());
        }
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn blocked_nn_shape_mismatch_panics_like_the_reference() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        BlockedF32Backend.matmul_into(&a, &b, &mut Matrix::default());
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn wide_nn_shape_mismatch_panics_like_the_reference() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        WideF32Backend.matmul_into(&a, &b, &mut Matrix::default());
    }

    #[test]
    fn kind_parses_case_insensitively_and_round_trips() {
        assert_eq!("scalar".parse(), Ok(FloatBackendKind::Scalar));
        assert_eq!(" BLOCKED\n".parse(), Ok(FloatBackendKind::Blocked));
        assert_eq!("Wide".parse(), Ok(FloatBackendKind::Wide));
        assert_eq!("auto".parse(), Ok(FloatBackendKind::Auto));
        assert_eq!(
            "Auto:/some/table.json".parse(),
            Ok(FloatBackendKind::Auto),
            "auto with an explicit table path still selects Auto"
        );
        assert!("simd".parse::<FloatBackendKind>().is_err());
        for kind in FloatBackendKind::ALL {
            assert_eq!(kind.name().parse(), Ok(kind));
            assert_eq!(kind.backend().name(), kind.name());
            assert_eq!(kind.to_string(), kind.name());
        }
    }

    #[test]
    fn dispatch_static_table_routes_by_size_class() {
        let auto = DispatchF32Backend::built_in();
        // nt → wide everywhere; sparse one-hot nn → scalar; the
        // mid-width tn weight gradient → scalar; everything else blocked.
        assert_eq!(
            auto.nt[dispatch::bucket(28, 32, 32)],
            FloatBackendKind::Wide
        );
        assert_eq!(
            auto.nt[dispatch::bucket(1, 686, 32)],
            FloatBackendKind::Wide
        );
        assert_eq!(
            auto.nn[dispatch::bucket(1, 686, 32)],
            FloatBackendKind::Scalar
        );
        assert_eq!(
            auto.nn[dispatch::bucket(28, 32, 32)],
            FloatBackendKind::Blocked
        );
        assert_eq!(
            auto.tn[dispatch::bucket(32, 28, 32)],
            FloatBackendKind::Scalar
        );
        assert_eq!(
            auto.tn[dispatch::bucket(32, 28, 64)],
            FloatBackendKind::Blocked
        );
        assert_eq!(
            auto.tn[dispatch::bucket(32, 4, 32)],
            FloatBackendKind::Blocked
        );
    }

    #[test]
    fn dispatch_rejects_auto_nesting_but_overlays_partial_tables() {
        let mut table = DispatchF32Backend::built_in_table();
        table.rules[0].backend = "auto".to_string();
        assert!(DispatchF32Backend::from_table(&table).is_err());
        // A partial table only overrides what it names.
        let partial = dispatch::RawTable {
            version: dispatch::TABLE_VERSION,
            rules: vec![dispatch::RawRule {
                op: "matmul_nt".to_string(),
                m: None,
                k: None,
                n: None,
                backend: "scalar".to_string(),
            }],
        };
        let auto = DispatchF32Backend::from_table(&partial).expect("resolves");
        assert_eq!(
            auto.nt[dispatch::bucket(28, 32, 32)],
            FloatBackendKind::Scalar
        );
        assert_eq!(
            auto.nn[dispatch::bucket(1, 686, 32)],
            FloatBackendKind::Scalar,
            "uncovered ops keep the static table"
        );
    }

    #[test]
    fn dispatch_resolve_falls_back_on_missing_and_corrupt_tables() {
        let dir = std::env::temp_dir().join(format!("create-f32-dispatch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let corrupt = dir.join("corrupt.json");
        std::fs::write(&corrupt, "{\"version\": 1, \"rules\": [{\"op\": tru").expect("write");
        let cache = dir.join("unused-cache.json");
        // Explicit-but-corrupt table → static, never a panic.
        assert_eq!(
            DispatchF32Backend::resolve(Some(&corrupt), false, &cache),
            DispatchF32Backend::built_in()
        );
        // Missing explicit table → static.
        assert_eq!(
            DispatchF32Backend::resolve(Some(&dir.join("missing.json")), false, &cache),
            DispatchF32Backend::built_in()
        );
        // Autotune with a corrupt *cache* → static (never aborts).
        assert_eq!(
            DispatchF32Backend::resolve(None, true, &corrupt),
            DispatchF32Backend::built_in()
        );
        assert!(corrupt.exists(), "fallback must not delete the evidence");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn autotune_measures_writes_cache_and_reloads_identically() {
        let dir = std::env::temp_dir().join(format!("create-f32-autotune-{}", std::process::id()));
        let cache = dir.join("f32.json");
        let first = DispatchF32Backend::resolve(None, true, &cache);
        assert!(cache.exists(), "one-shot autotune must persist its table");
        let reloaded = DispatchF32Backend::resolve(None, true, &cache);
        assert_eq!(first, reloaded, "cache reload must reproduce the router");
        // The cached table is valid JSON in the documented schema.
        let table = dispatch::load_table(&cache).expect("cache parses");
        assert_eq!(table.version, dispatch::TABLE_VERSION);
        assert!(!table.rules.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dispatch_agrees_bitwise_with_scalar_under_any_table() {
        // Route-flipping cannot change bits: run the same inputs under
        // the static router and an adversarial all-scalar/all-wide mix.
        let mut rng = StdRng::seed_from_u64(23);
        let weird = dispatch::RawTable {
            version: dispatch::TABLE_VERSION,
            rules: vec![
                dispatch::RawRule {
                    op: "matmul".to_string(),
                    m: None,
                    k: None,
                    n: Some(dispatch::Band::Lo),
                    backend: "wide".to_string(),
                },
                dispatch::RawRule {
                    op: "matmul_tn".to_string(),
                    m: None,
                    k: None,
                    n: None,
                    backend: "scalar".to_string(),
                },
            ],
        };
        let routers = [
            DispatchF32Backend::built_in(),
            DispatchF32Backend::from_table(&weird).expect("resolves"),
        ];
        let mut s = Matrix::default();
        let mut f = Matrix::default();
        for _ in 0..10 {
            let m = rng.random_range(1usize..7);
            let k = rng.random_range(1usize..40);
            let n = rng.random_range(1usize..200);
            let a = random_with_zeros(m, k, &mut rng);
            let b = random_with_zeros(k, n, &mut rng);
            let c = random_with_zeros(m, n, &mut rng);
            for auto in &routers {
                ScalarF32Backend.matmul_into(&a, &b, &mut s);
                auto.matmul_into(&a, &b, &mut f);
                assert_eq!(s, f, "nn {m}x{k}x{n}");
                ScalarF32Backend.matmul_tn_into(&a, &c, &mut s);
                auto.matmul_tn_into(&a, &c, &mut f);
                assert_eq!(s, f, "tn {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn parse_env_falls_back_with_validation() {
        assert_eq!(
            FloatBackendKind::parse_env(None),
            FloatBackendKind::default()
        );
        assert_eq!(
            FloatBackendKind::parse_env(Some("")),
            FloatBackendKind::default()
        );
        assert_eq!(
            FloatBackendKind::parse_env(Some("definitely-not-a-backend")),
            FloatBackendKind::default()
        );
        assert_eq!(
            FloatBackendKind::parse_env(Some("sCaLaR")),
            FloatBackendKind::Scalar
        );
        assert_eq!(
            FloatBackendKind::parse_env(Some("blocked")),
            FloatBackendKind::Blocked
        );
        assert_eq!(
            FloatBackendKind::parse_env(Some(" wide ")),
            FloatBackendKind::Wide
        );
    }
}
