//! The zero-allocation steady-state contract, enforced with a counting
//! global allocator.
//!
//! `Accelerator::linear_into` must perform **no heap allocation** after a
//! warm-up call at the layer's shape — the quantized input, accumulator,
//! redundancy replicas and output all live in reused storage. `linear`
//! (the allocating convenience wrapper) must allocate only the returned
//! output matrix. A regression that reintroduces a per-call allocation on
//! either path fails this test immediately.
//!
//! All scenarios run inside one `#[test]` so no concurrent test thread
//! can perturb the allocation counter.

use create_accel::{
    AccelConfig, Accelerator, Component, ErrorModel, InjectionTarget, Injector, LayerCtx, Scheme,
    Unit,
};
use create_tensor::{Matrix, Precision, QuantMatrix, QuantParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Smallest allocation delta over several measurement windows of `body`.
///
/// A per-call allocation in the measured path inflates *every* window, so
/// the minimum still catches it; taking the minimum merely shields the
/// assertion from rare allocations made concurrently by the test harness
/// itself.
fn min_alloc_delta(windows: usize, mut body: impl FnMut()) -> u64 {
    let mut min = u64::MAX;
    for _ in 0..windows {
        let before = allocations();
        body();
        min = min.min(allocations() - before);
    }
    min
}

fn setup(seed: u64) -> (Matrix, QuantMatrix, QuantParams) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = Matrix::from_fn(4, 32, |_, _| rng.random_range(-1.0..1.0));
    let w_f = Matrix::from_fn(32, 16, |_, _| rng.random_range(-0.5..0.5));
    let w = QuantMatrix::quantize(&w_f, Precision::Int8);
    let params = QuantParams::from_max_abs(1.0, Precision::Int8);
    (x, w, params)
}

fn ctx() -> LayerCtx {
    LayerCtx::new(Unit::Controller, Component::Fc1, 0)
}

#[test]
fn linear_into_is_allocation_free_after_warm_up() {
    let (x, w, params) = setup(7);

    // Clean path (the characterization campaigns' golden runs).
    let mut clean = Accelerator::ideal(0);
    let mut out = Matrix::zeros(0, 0);
    clean.linear_into(&x, &w, params, 4.0, ctx(), &mut out);
    clean.linear_into(&x, &w, params, 4.0, ctx(), &mut out);
    let delta = min_alloc_delta(3, || {
        for _ in 0..200 {
            clean.linear_into(&x, &w, params, 4.0, ctx(), &mut out);
        }
    });
    assert_eq!(
        delta, 0,
        "clean linear_into must not allocate after warm-up"
    );

    // Injection under a redundant-execution scheme (worst case: DMR
    // recomputes draw two extra replicas per mismatching GEMM).
    let injector = Injector::new(ErrorModel::Uniform { ber: 1e-2 }, InjectionTarget::All, 1.0);
    let mut faulty = Accelerator::new(
        AccelConfig {
            injector: Some(injector),
            ad_enabled: true,
            scheme: Scheme::Dmr,
            ..Default::default()
        },
        9,
    );
    for _ in 0..3 {
        faulty.linear_into(&x, &w, params, 4.0, ctx(), &mut out);
    }
    let delta = min_alloc_delta(3, || {
        for _ in 0..200 {
            faulty.linear_into(&x, &w, params, 4.0, ctx(), &mut out);
        }
    });
    assert_eq!(
        delta, 0,
        "injected DMR linear_into must not allocate after warm-up"
    );

    // The allocating wrapper allocates exactly one buffer per call: the
    // returned output matrix.
    let mut wrapper = Accelerator::ideal(0);
    let _ = wrapper.linear(&x, &w, params, 4.0, ctx());
    let reps = 50u64;
    let delta = min_alloc_delta(3, || {
        for _ in 0..reps {
            let y = wrapper.linear(&x, &w, params, 4.0, ctx());
            assert_eq!(y.rows(), 4);
        }
    });
    assert_eq!(
        delta, reps,
        "linear must allocate only the returned matrix per call"
    );
}
