//! Property-based tests for the accelerator substrate.

use create_accel::array;
use create_accel::ecc::{Codeword, Decoded, CODE_BITS};
use create_accel::gemm::{GemmBackend, GemmBackendKind, ScalarBackend};
use create_accel::inject::{sample_poisson, ErrorModel, InjectionTarget, Injector};
use create_accel::scheme::{apply_scheme, Scheme};
use create_accel::sram::{MemoryFaultModel, Protection, SramBuffer};
use create_accel::timing::{TimingModel, ACC_BITS, V_NOMINAL};
use create_tensor::{Matrix, Precision, QuantMatrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The 24-bit wrap is periodic with period 2^24 and the identity
    /// inside the representable range.
    #[test]
    fn wrap_acc24_is_periodic(v in -8_388_608i64..=8_388_607) {
        prop_assert_eq!(array::wrap_acc24(v), v as i32);
        prop_assert_eq!(array::wrap_acc24(v + (1 << 24)), v as i32);
        prop_assert_eq!(array::wrap_acc24(v - (1 << 24)), v as i32);
    }

    /// GEMM is linear in its input: gemm(a1 + a2, w) == gemm(a1, w) +
    /// gemm(a2, w) in exact integer arithmetic (no wrap for small values).
    #[test]
    fn gemm_is_linear_in_integer_domain(seed in 0u64..300, m in 1usize..4, k in 1usize..8, n in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let small = |rng: &mut StdRng| {
            Matrix::from_fn(m, k, |_, _| (rng.random_range(-20i32..20)) as f32)
        };
        let a1 = small(&mut rng);
        let a2 = small(&mut rng);
        let w = Matrix::from_fn(k, n, |_, _| (rng.random_range(-20i32..20)) as f32);
        use rand::Rng;
        let _ = &mut rng;
        let quant = |m: &Matrix| QuantMatrix::quantize_with(
            m,
            create_tensor::QuantParams::from_scale(1.0, Precision::Int8),
        );
        let wq = quant(&w);
        let y1 = array::gemm_i8_acc(&quant(&a1), &wq);
        let y2 = array::gemm_i8_acc(&quant(&a2), &wq);
        let ysum = array::gemm_i8_acc(&quant(&a1.add(&a2)), &wq);
        for i in 0..y1.len() {
            prop_assert_eq!(ysum[i], y1[i] + y2[i]);
        }
    }

    /// Every shipped GEMM backend produces accumulators bit-identical to
    /// the scalar reference across random shapes — including zero-row,
    /// zero-inner-dim and zero-col edges — and saturated codes large
    /// enough to exercise the 24-bit wrap.
    #[test]
    fn gemm_backends_are_bit_identical(
        seed in 0u64..400,
        m in 0usize..5,
        k in 0usize..70,
        n in 0usize..20,
        saturated in any::<bool>(),
        zero_frac in 0.0f32..0.9,
    ) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        // `n` below/around the wide lane width exercises the ragged lane
        // tail; `k` below the blocked unroll width exercises short-k; the
        // zero salting exercises every backend's zero-multiplier skip
        // (one-hot featurizer rows are mostly zeros).
        let fill = |rows: usize, cols: usize, rng: &mut StdRng| {
            QuantMatrix::quantize_with(
                &Matrix::from_fn(rows, cols, |_, _| {
                    if saturated {
                        127.0
                    } else if rng.random_range(0.0f32..1.0) < zero_frac {
                        0.0
                    } else {
                        rng.random_range(-127i32..=127) as f32
                    }
                }),
                create_tensor::QuantParams::from_scale(1.0, Precision::Int8),
            )
        };
        let a = fill(m, k, &mut rng);
        let w = fill(k, n, &mut rng);
        let reference = ScalarBackend.gemm_i8_acc(&a, &w);
        prop_assert_eq!(reference.len(), m * n);
        for kind in GemmBackendKind::ALL {
            let out = kind.instantiate().gemm_i8_acc(&a, &w);
            prop_assert_eq!(&out, &reference, "backend {} diverged", kind);
        }
    }

    /// Element corruption probability is monotone in BER and in scale, and
    /// always a valid probability.
    #[test]
    fn corruption_probability_is_monotone(ber in 1e-9f64..1e-2, scale in 1.0f64..1e4) {
        let p = |b: f64, s: f64| {
            Injector::new(ErrorModel::Uniform { ber: b }, InjectionTarget::All, s)
                .element_corruption_prob(0.9)
        };
        let base = p(ber, scale);
        prop_assert!((0.0..=1.0).contains(&base));
        prop_assert!(p(ber * 2.0, scale) >= base);
        prop_assert!(p(ber, scale * 2.0) >= base);
    }

    /// Poisson samples are non-negative and have roughly the right mean.
    #[test]
    fn poisson_sampler_mean(lambda in 0.1f64..50.0, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 400;
        let sum: u64 = (0..n).map(|_| sample_poisson(lambda, &mut rng)).sum();
        let mean = sum as f64 / n as f64;
        // 6-sigma band for the sample mean.
        let tol = 6.0 * (lambda / n as f64).sqrt() + 0.05;
        prop_assert!((mean - lambda).abs() < tol, "lambda {lambda}, mean {mean}");
    }

    /// DMR with clean replicas always restores the clean result; the
    /// execution count is 2 or 3.
    #[test]
    fn dmr_with_clean_replicas_recovers(clean in prop::collection::vec(-1000i32..1000, 1..64), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut corrupted = clean.clone();
        if !corrupted.is_empty() {
            corrupted[0] ^= 0x10;
        }
        let (out, outcome) = apply_scheme(
            Scheme::Dmr,
            &clean,
            corrupted,
            |_| clean.clone(),
            &mut rng,
        );
        prop_assert_eq!(out, clean);
        prop_assert!(outcome.executions == 2 || outcome.executions == 3);
        prop_assert!(!outcome.residual_corruption);
    }

    /// ThUnderVolt output is always either the clean value or zero.
    #[test]
    fn thundervolt_outputs_clean_or_zero(
        clean in prop::collection::vec(-1000i32..1000, 1..64),
        flips in prop::collection::vec(any::<bool>(), 1..64),
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let corrupted: Vec<i32> = clean
            .iter()
            .zip(flips.iter().chain(std::iter::repeat(&false)))
            .map(|(&v, &f)| if f { v ^ 0x40 } else { v })
            .collect();
        let (out, _) = apply_scheme(
            Scheme::ThunderVolt,
            &clean,
            corrupted,
            |_| clean.clone(),
            &mut rng,
        );
        for (o, c) in out.iter().zip(&clean) {
            prop_assert!(o == c || *o == 0);
        }
    }

    /// Razor never invents values: every output element is either the
    /// clean value (replay recovered it) or the corrupted original (the
    /// shadow FF missed it) — unlike ThUnderVolt it never zeroes.
    #[test]
    fn razor_outputs_are_clean_or_original(
        clean in prop::collection::vec(-1000i32..1000, 1..64),
        flips in prop::collection::vec(any::<bool>(), 1..64),
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let corrupted: Vec<i32> = clean
            .iter()
            .zip(flips.iter().chain(std::iter::repeat(&false)))
            .map(|(&v, &f)| if f { v ^ 0x20_0000 } else { v })
            .collect();
        let (out, outcome) = apply_scheme(
            Scheme::Razor,
            &clean,
            corrupted.clone(),
            |_| clean.clone(),
            &mut rng,
        );
        for ((o, c), orig) in out.iter().zip(&clean).zip(&corrupted) {
            prop_assert!(o == c || o == orig);
        }
        prop_assert!(outcome.extra_mac_fraction >= 0.0);
        prop_assert!(outcome.extra_mac_fraction <= 12.0 + 1e-9);
    }

    /// ABFT never exceeds 1 + max_retries executions.
    #[test]
    fn abft_bounds_recomputes(
        clean in prop::collection::vec(-1000i32..1000, 1..32),
        retries in 0u32..6,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut corrupted = clean.clone();
        if !corrupted.is_empty() {
            corrupted[0] ^= 0x80;
        }
        let bad = corrupted.clone();
        let (_, outcome) = apply_scheme(
            Scheme::Abft { max_retries: retries },
            &clean,
            corrupted,
            |_| bad.clone(),
            &mut rng,
        );
        prop_assert!(outcome.executions <= 1 + retries);
    }

    /// Per-bit error probabilities integrate to the aggregate BER at any
    /// voltage (within numerical tolerance).
    #[test]
    fn bit_probs_integrate_to_aggregate(v in 0.62f64..0.90) {
        let t = TimingModel::new();
        let sum: f64 = t.bit_error_probs(v).iter().sum();
        let expect = t.aggregate_ber(v) * ACC_BITS as f64;
        // min-capping at 0.5 can shave mass at extreme undervolt.
        prop_assert!(sum <= expect * 1.01 + 1e-12);
        prop_assert!(sum >= expect * 0.5);
    }

    /// SECDED corrects every single-bit flip of every data word.
    #[test]
    fn secded_corrects_any_single_flip(data in any::<u64>(), pos in 0u32..CODE_BITS) {
        let (out, outcome) = Codeword::encode(data).with_flipped_bit(pos).decode();
        prop_assert_eq!(out, data);
        prop_assert_eq!(outcome, Decoded::Corrected);
    }

    /// SECDED detects (never miscorrects or silently passes) every
    /// double-bit flip of every data word.
    #[test]
    fn secded_detects_any_double_flip(
        data in any::<u64>(),
        a in 0u32..CODE_BITS,
        offset in 1u32..CODE_BITS,
    ) {
        let b = (a + offset) % CODE_BITS;
        prop_assume!(a != b);
        let (_, outcome) = Codeword::encode(data)
            .with_flipped_bit(a)
            .with_flipped_bit(b)
            .decode();
        prop_assert_eq!(outcome, Decoded::Detected);
    }

    /// An SRAM snapshot at nominal voltage is the identity for any buffer
    /// content, length and protection.
    #[test]
    fn sram_nominal_snapshot_is_identity(
        data in prop::collection::vec(any::<i8>(), 0..200),
        secded in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let protection = if secded { Protection::Secded } else { Protection::None };
        let buf = SramBuffer::store(&data, protection, MemoryFaultModel::new());
        let (read, stats) = buf.snapshot(V_NOMINAL, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(read, data);
        prop_assert_eq!(stats.bits_upset, 0);
    }

    /// At any voltage, a SECDED snapshot never has *more* corrupt words
    /// than an unprotected snapshot of the same buffer under the same
    /// fault process intensity, and its length always matches.
    #[test]
    fn sram_secded_never_hurts(
        data in prop::collection::vec(any::<i8>(), 1..400),
        v in 0.60f64..0.90,
        seed in 0u64..500,
    ) {
        let model = MemoryFaultModel::new();
        let plain = SramBuffer::store(&data, Protection::None, model);
        let ecc = SramBuffer::store(&data, Protection::Secded, model);
        let (read_p, stats_p) = plain.snapshot(v, &mut StdRng::seed_from_u64(seed));
        let (read_e, stats_e) = ecc.snapshot(v, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(read_p.len(), data.len());
        prop_assert_eq!(read_e.len(), data.len());
        // Identical seeds draw comparable fault processes; SECDED has 12.5%
        // more bits exposed but corrects singles, so across the sweep its
        // corrupt fraction is bounded by the unprotected one plus a small
        // double-fault term.
        prop_assert!(
            stats_e.corrupt_fraction() <= stats_p.corrupt_fraction() + 0.15,
            "ecc {:?} plain {:?}", stats_e, stats_p
        );
    }

    /// The buffer-reuse scheme executor is bit-identical to the
    /// allocating one — same outputs, same outcome, same RNG consumption —
    /// for every scheme, with arbitrary pre-existing garbage in the
    /// replica buffers.
    #[test]
    fn apply_scheme_into_matches_apply_scheme(
        clean in prop::collection::vec(-5000i32..5000, 0..80),
        flips in prop::collection::vec(any::<bool>(), 0..80),
        garbage in prop::collection::vec(-9i32..9, 0..20),
        scheme_sel in 0usize..5,
        seed in 0u64..500,
    ) {
        use create_accel::scheme::{apply_scheme_into, SchemeBuffers};
        let scheme = [
            Scheme::Plain,
            Scheme::Dmr,
            Scheme::ThunderVolt,
            Scheme::Razor,
            Scheme::Abft { max_retries: 3 },
        ][scheme_sel];
        let first: Vec<i32> = clean
            .iter()
            .zip(flips.iter().chain(std::iter::repeat(&false)))
            .map(|(&v, &f)| if f { v ^ 0x40_0000 } else { v })
            .collect();
        // A corrupt process that actually consumes RNG, so divergent draw
        // order between the two forms would be caught.
        let corrupt = |clean: &[i32], rng: &mut StdRng| -> Vec<i32> {
            clean
                .iter()
                .map(|&v| {
                    if rng.random_range(0.0..1.0) < 0.3 {
                        v ^ (1 << rng.random_range(0..24u32))
                    } else {
                        v
                    }
                })
                .collect()
        };
        let mut rng_a = StdRng::seed_from_u64(seed);
        let (out_a, outcome_a) = apply_scheme(
            scheme,
            &clean,
            first.clone(),
            |rng| corrupt(&clean, rng),
            &mut rng_a,
        );
        let mut rng_b = StdRng::seed_from_u64(seed);
        let mut out_b = first;
        let mut bufs = SchemeBuffers::default();
        // Pre-dirty the replica buffers through a throwaway run.
        if !garbage.is_empty() {
            let mut pre_rng = StdRng::seed_from_u64(seed ^ 1);
            let mut pre_out = garbage.clone();
            let _ = apply_scheme_into(
                Scheme::Dmr,
                &garbage,
                &mut pre_out,
                &mut bufs,
                |buf, rng| *buf = corrupt(&garbage, rng),
                &mut pre_rng,
            );
        }
        let outcome_b = apply_scheme_into(
            scheme,
            &clean,
            &mut out_b,
            &mut bufs,
            |buf, rng| *buf = corrupt(&clean, rng),
            &mut rng_b,
        );
        prop_assert_eq!(out_a, out_b);
        prop_assert_eq!(outcome_a, outcome_b);
        // Same RNG consumption: the next draw must agree.
        prop_assert_eq!(rng_a.random_range(0..u64::MAX), rng_b.random_range(0..u64::MAX));
    }

    /// `linear_into` is bit-identical to `linear` across random shapes
    /// (including empty operands), backends, schemes and AD settings —
    /// outputs, counters, fault statistics and subsequent RNG state.
    #[test]
    fn accelerator_linear_into_matches_linear(
        seed in 0u64..400,
        m in 0usize..5,
        k in 0usize..40,
        n in 0usize..48,
        backend_sel in 0usize..GemmBackendKind::ALL.len(),
        scheme_sel in 0usize..5,
        ad in any::<bool>(),
        inject in any::<bool>(),
    ) {
        use create_accel::{AccelConfig, Accelerator};
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Matrix::from_fn(m, k, |_, _| rng.random_range(-1.0f32..1.0));
        let w = QuantMatrix::quantize(
            &Matrix::from_fn(k, n, |_, _| rng.random_range(-0.5f32..0.5)),
            Precision::Int8,
        );
        let params = create_tensor::QuantParams::from_max_abs(1.0, Precision::Int8);
        let scheme = [
            Scheme::Plain,
            Scheme::Dmr,
            Scheme::ThunderVolt,
            Scheme::Razor,
            Scheme::Abft { max_retries: 2 },
        ][scheme_sel];
        let config = AccelConfig {
            injector: inject.then(|| {
                Injector::new(ErrorModel::Uniform { ber: 5e-3 }, InjectionTarget::All, 1.0)
            }),
            ad_enabled: ad,
            scheme,
            backend: GemmBackendKind::ALL[backend_sel],
            ..Default::default()
        };
        let ctx = create_accel::LayerCtx::new(
            create_accel::Unit::Controller,
            create_accel::Component::Fc1,
            0,
        );
        let mut a = Accelerator::new(config.clone(), seed ^ 0xAB);
        let mut b = Accelerator::new(config, seed ^ 0xAB);
        let mut out = Matrix::zeros(2, 2); // dirty output buffer
        for _ in 0..2 {
            let ya = a.linear(&x, &w, params, 3.0, ctx);
            b.linear_into(&x, &w, params, 3.0, ctx, &mut out);
            prop_assert_eq!(&ya, &out);
        }
        prop_assert_eq!(a.macs(), b.macs());
        prop_assert_eq!(a.logical_macs(), b.logical_macs());
        prop_assert_eq!(a.ad_stats(), b.ad_stats());
        prop_assert_eq!(a.injection_stats(), b.injection_stats());
    }

    /// The memory fault model is monotone in voltage and its inverse is
    /// consistent.
    #[test]
    fn memory_model_monotone_and_invertible(v in 0.60f64..0.90) {
        let m = MemoryFaultModel::new();
        let p = m.upset_prob(v);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(m.upset_prob(v - 0.01) >= p);
        let back = m.voltage_for_upset(p);
        // Inverse is exact away from the saturation floor.
        if p < m.upset_prob(0.68) {
            prop_assert!((back - v).abs() < 0.01, "v {v} -> p {p} -> {back}");
        }
    }
}
