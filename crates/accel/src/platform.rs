//! Full-accelerator platform description (paper Fig. 12, Tables 2–3).
//!
//! Area and power figures follow the paper's post-layout breakdown of the
//! 22 nm design: the AD units and distributed LDOs each add ≈0.1% area and
//! power, which is the quantitative basis of the "negligible overhead"
//! claim (Sec. 6.2).

use crate::cycles::ArrayConfig;
use crate::ldo::{self, Ldo};
use crate::timing::{V_MIN, V_NOMINAL};

/// One block of the chip-level area/power breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockBudget {
    /// Block name.
    pub name: &'static str,
    /// Area in mm².
    pub area_mm2: f64,
    /// Minimum power in watts (lowest-activity corner).
    pub power_w_min: f64,
    /// Maximum power in watts.
    pub power_w_max: f64,
}

/// The assembled platform: arrays, SRAM, LDOs and AD units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Platform {
    /// Array geometry/clock.
    pub array: ArrayConfig,
    /// Total on-chip SRAM bytes (142 × 512 KB in the paper).
    pub sram_bytes: u64,
}

impl Default for Platform {
    fn default() -> Self {
        Self {
            array: ArrayConfig::default(),
            sram_bytes: 142 * 512 * 1024,
        }
    }
}

impl Platform {
    /// The paper's Fig. 12(c) block budgets.
    pub fn block_budgets(&self) -> Vec<BlockBudget> {
        vec![
            BlockBudget {
                name: "LDO",
                area_mm2: 0.43,
                power_w_min: 0.03,
                power_w_max: 0.03,
            },
            BlockBudget {
                name: "AD Unit",
                area_mm2: 0.25,
                power_w_min: 0.02,
                power_w_max: 0.02,
            },
            BlockBudget {
                name: "PE Array",
                area_mm2: 195.50,
                power_w_min: 6.93,
                power_w_max: 15.39,
            },
            BlockBudget {
                name: "SRAM",
                area_mm2: 85.96,
                power_w_min: 0.84,
                power_w_max: 0.84,
            },
        ]
    }

    /// Total die area (mm²), including inter-block overhead to match the
    /// reported 322.5 mm² figure.
    pub fn total_area_mm2(&self) -> f64 {
        322.50
    }

    /// Fractional area overhead of the AD units.
    pub fn ad_area_overhead(&self) -> f64 {
        0.25 / self.total_area_mm2()
    }

    /// Fractional area overhead of the distributed LDOs.
    pub fn ldo_area_overhead(&self) -> f64 {
        0.43 / self.total_area_mm2()
    }

    /// Fractional power overhead of the AD units at peak power.
    pub fn ad_power_overhead(&self) -> f64 {
        let peak: f64 = self.block_budgets().iter().map(|b| b.power_w_max).sum();
        0.02 / peak
    }

    /// Fractional power overhead of the LDOs at peak power.
    pub fn ldo_power_overhead(&self) -> f64 {
        let peak: f64 = self.block_budgets().iter().map(|b| b.power_w_max).sum();
        0.03 / peak
    }

    /// Whether a controller invoked at `hz` leaves real-time slack given
    /// its inference latency plus a worst-case voltage switch.
    pub fn meets_realtime(&self, inference_latency_s: f64, hz: f64) -> bool {
        inference_latency_s + Ldo::worst_case_latency() < 1.0 / hz
    }

    /// Formats the Table 2 LDO specification block.
    pub fn ldo_spec_lines(&self) -> Vec<String> {
        vec![
            format!("V_out            {:.1}-{:.1} V", V_MIN, V_NOMINAL),
            format!("V_step           {:.0} mV", ldo::V_STEP * 1e3),
            format!(
                "t_resp           {:.0} ns / 50 mV",
                ldo::SLEW_S_PER_V * 0.050 * 1e9
            ),
            format!("eta_peak         {:.1}%", ldo::PEAK_EFFICIENCY * 100.0),
            format!("I_load,max       {:.1} A", ldo::I_LOAD_MAX),
            format!(
                "switch latency   {:.0} ns (full 0.9->0.6 V swing)",
                Ldo::worst_case_latency() * 1e9
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ad_and_ldo_overheads_are_negligible() {
        let p = Platform::default();
        assert!(p.ad_area_overhead() < 0.002, "AD area should be ~0.08%");
        assert!(p.ldo_area_overhead() < 0.002, "LDO area should be ~0.13%");
        assert!(p.ad_power_overhead() < 0.005);
        assert!(p.ldo_power_overhead() < 0.005);
    }

    #[test]
    fn sram_capacity_is_71_mb() {
        let p = Platform::default();
        let mb = p.sram_bytes as f64 / (1024.0 * 1024.0);
        assert!((mb - 71.0).abs() < 0.1, "got {mb} MB");
    }

    #[test]
    fn realtime_budget_holds_at_30hz() {
        let p = Platform::default();
        // Controller latency ~942 µs (Table 3) at 30 Hz leaves ample slack.
        assert!(p.meets_realtime(942e-6, 30.0));
        assert!(!p.meets_realtime(40e-3, 30.0));
    }

    #[test]
    fn ldo_spec_mentions_key_numbers() {
        let p = Platform::default();
        let text = p.ldo_spec_lines().join("\n");
        assert!(text.contains("10 mV"));
        assert!(text.contains("90 ns"));
        assert!(text.contains("540 ns"));
    }
}
