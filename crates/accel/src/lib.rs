//! Simulated systolic-array accelerator with voltage-underscaling faults.
//!
//! This crate is the hardware substrate of the CREATE reproduction. It
//! models, functionally and analytically, everything the paper's 22 nm
//! platform provides:
//!
//! * [`array`](mod@array) — the INT8 × INT8 → 24-bit-accumulator GEMM datapath,
//!   bit-exact so flips land on real accumulator state.
//! * [`gemm`] — pluggable [`GemmBackend`] implementations of that datapath
//!   (scalar reference + blocked fast path, bit-identical, selected via
//!   `CREATE_GEMM_BACKEND` / [`AccelConfig::backend`]).
//! * [`timing`] — the voltage→per-bit timing-error model calibrated to the
//!   paper's PrimeTime/HSPICE characterization (Fig. 4a).
//! * [`inject`] — uniform and hardware-derived bit-flip injection into
//!   accumulator outputs (Sec. 3.2), with the reference-scale model
//!   described in DESIGN.md.
//! * [`ad`] — anomaly detection and clearance at the array output stage
//!   (Sec. 5.1).
//! * [`ldo`] — the digital LDO that implements autonomy-adaptive voltage
//!   scaling (Sec. 5.3, Table 2).
//! * [`sram`]/[`ecc`] — the memory-resilience extension the paper leaves
//!   as future work: a voltage-dependent SRAM retention-fault model and
//!   the SECDED (72,64) code the paper assumes makes memory faults a
//!   non-issue (Sec. 2.3).
//! * [`energy`]/[`cycles`]/[`platform`] — energy, latency and area/power
//!   book-keeping at the reference scale (Figs. 12, 18; Table 3).
//! * [`backend`] — the [`Accelerator`] facade all models execute through.
//!
//! # Example
//!
//! ```
//! use create_accel::timing::TimingModel;
//!
//! let timing = TimingModel::new();
//! // Undervolting from 0.9 V to 0.75 V raises BER by orders of magnitude.
//! assert!(timing.aggregate_ber(0.75) > 1e4 * timing.aggregate_ber(0.9));
//! ```

pub mod ad;
pub mod array;
pub mod backend;
pub mod ctx;
pub mod cycles;
pub mod ecc;
pub mod energy;
pub mod gemm;
pub mod inject;
pub mod ldo;
pub mod platform;
pub mod scheme;
pub mod sram;
pub mod timing;

pub use backend::{AccelConfig, Accelerator, OutputProfiler};
pub use ctx::{Component, LayerCtx, Unit};
pub use energy::{EnergyMeter, InferenceCost};
pub use gemm::{BlockedBackend, GemmBackend, GemmBackendKind, ScalarBackend, WideBackend};
pub use inject::{ErrorModel, InjectionTarget, Injector};
pub use ldo::Ldo;
pub use scheme::{Scheme, SchemeStats};
pub use sram::{MemoryFaultModel, Protection, SramBuffer};
pub use timing::TimingModel;
