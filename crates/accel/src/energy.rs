//! Energy accounting (paper Secs. 6.1, 6.8; Figs. 16, 18).
//!
//! Computational energy scales quadratically with supply voltage
//! (`E ∝ C·V²`); memory stays at a safe nominal voltage (the paper scopes
//! voltage scaling to logic only). Per-inference costs are derived from the
//! *reference* architectures of Table 4 — the proxy models execute the
//! mathematics, but joules are book-kept at paper scale so that breakdowns
//! (Fig. 18) and savings (Figs. 16/17) are directly comparable.
//!
//! Calibration (22 nm-class constants):
//! * INT8 MAC at nominal 0.9 V: 0.25 pJ (INT4: 0.11 pJ)
//! * on-chip SRAM access: 1.0 pJ/byte
//! * off-chip HBM2 access: 40 pJ/byte (5 pJ/bit)
//!
//! With the Table 4 workloads these reproduce the paper's chip-level
//! splits: computation ≈ 62–67% of planner energy and ≈ 77–79% of
//! controller energy.
//!
//! Energy is billed per *modeled* MAC (the `Accelerator`'s logical/
//! physical MAC counters), never per host instruction, so swapping the
//! software [`GemmBackend`](crate::gemm::GemmBackend) changes wall-clock
//! simulation time but not one joule of accounted energy.

use crate::ctx::Unit;
use crate::timing::V_NOMINAL;
use create_tensor::Precision;
use std::collections::HashMap;

/// Energy of one INT8 MAC at nominal voltage (J).
pub const E_MAC_INT8_NOM: f64 = 0.25e-12;

/// Energy of one INT4 MAC at nominal voltage (J).
pub const E_MAC_INT4_NOM: f64 = 0.11e-12;

/// Energy per byte of on-chip SRAM traffic (J).
pub const E_SRAM_BYTE: f64 = 1.0e-12;

/// Energy per byte of off-chip HBM2 traffic (J).
pub const E_DRAM_BYTE: f64 = 40.0e-12;

/// Per-inference workload of a model at reference (paper Table 4) scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceCost {
    /// Multiply-accumulate operations per inference.
    pub macs: f64,
    /// Bytes moved from off-chip DRAM per inference (planner weight
    /// streaming; zero for SRAM-resident controllers).
    pub dram_bytes: f64,
    /// Bytes of on-chip SRAM traffic per inference.
    pub sram_bytes: f64,
}

impl InferenceCost {
    /// Builds the cost from MAC count, weight residency and reuse.
    ///
    /// `weight_bytes` stream from DRAM when `weights_offchip`; SRAM traffic
    /// is `2·macs/reuse` operand bytes (each operand byte is reused `reuse`
    /// times inside the array) plus one output byte per `reuse` MACs.
    pub fn from_workload(macs: f64, weight_bytes: f64, weights_offchip: bool, reuse: f64) -> Self {
        assert!(reuse >= 1.0, "reuse factor must be >= 1");
        let sram_bytes = 2.0 * macs / reuse + macs / reuse + weight_bytes;
        InferenceCost {
            macs,
            dram_bytes: if weights_offchip { weight_bytes } else { 0.0 },
            sram_bytes,
        }
    }

    /// Computational energy at voltage `v` (J).
    pub fn compute_energy(&self, v: f64, precision: Precision) -> f64 {
        let e_mac = match precision {
            Precision::Int8 => E_MAC_INT8_NOM,
            Precision::Int4 => E_MAC_INT4_NOM,
        };
        let ratio = v / V_NOMINAL;
        self.macs * e_mac * ratio * ratio
    }

    /// Memory energy (voltage-independent: memory stays at nominal) (J).
    pub fn memory_energy(&self) -> f64 {
        self.dram_bytes * E_DRAM_BYTE + self.sram_bytes * E_SRAM_BYTE
    }

    /// Total energy at voltage `v` (J).
    pub fn total_energy(&self, v: f64, precision: Precision) -> f64 {
        self.compute_energy(v, precision) + self.memory_energy()
    }
}

/// Accumulated energy for one unit (J).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UnitEnergy {
    /// Compute joules (voltage-scaled).
    pub compute_j: f64,
    /// On-chip SRAM joules.
    pub sram_j: f64,
    /// Off-chip DRAM joules.
    pub dram_j: f64,
    /// Inferences recorded.
    pub inferences: u64,
    /// Σ MACs · V² used to derive the effective voltage.
    weighted_v2: f64,
    /// Σ MACs.
    macs: f64,
}

impl UnitEnergy {
    /// Total joules for this unit.
    pub fn total_j(&self) -> f64 {
        self.compute_j + self.sram_j + self.dram_j
    }

    /// Fraction of energy spent on computation.
    pub fn compute_fraction(&self) -> f64 {
        let t = self.total_j();
        if t <= 0.0 {
            0.0
        } else {
            self.compute_j / t
        }
    }

    /// The constant voltage that would have consumed the same compute
    /// energy over the same work (paper Sec. 6.1's *effective voltage*).
    pub fn effective_voltage(&self) -> f64 {
        if self.macs <= 0.0 {
            V_NOMINAL
        } else {
            (self.weighted_v2 / self.macs).sqrt()
        }
    }
}

/// Energy meter attributing per-inference costs to units.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyMeter {
    units: HashMap<Unit, UnitEnergy>,
    ldo_j: f64,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one inference of `unit` with `cost` at voltage `v`.
    pub fn record(&mut self, unit: Unit, cost: &InferenceCost, v: f64, precision: Precision) {
        let e = self.units.entry(unit).or_default();
        e.compute_j += cost.compute_energy(v, precision);
        e.sram_j += cost.sram_bytes * E_SRAM_BYTE;
        e.dram_j += cost.dram_bytes * E_DRAM_BYTE;
        e.inferences += 1;
        e.weighted_v2 += cost.macs * v * v;
        e.macs += cost.macs;
    }

    /// Adds LDO switching energy (J).
    pub fn record_ldo(&mut self, joules: f64) {
        self.ldo_j += joules;
    }

    /// Per-unit accumulated energy.
    pub fn unit(&self, unit: Unit) -> UnitEnergy {
        self.units.get(&unit).copied().unwrap_or_default()
    }

    /// LDO switching joules.
    pub fn ldo_j(&self) -> f64 {
        self.ldo_j
    }

    /// Total joules across all units plus LDO switching.
    pub fn total_j(&self) -> f64 {
        self.units.values().map(UnitEnergy::total_j).sum::<f64>() + self.ldo_j
    }

    /// Total compute joules across all units.
    pub fn compute_j(&self) -> f64 {
        self.units.values().map(|u| u.compute_j).sum()
    }

    /// Merges another meter into this one.
    pub fn merge(&mut self, other: &EnergyMeter) {
        for (unit, e) in &other.units {
            let mine = self.units.entry(*unit).or_default();
            mine.compute_j += e.compute_j;
            mine.sram_j += e.sram_j;
            mine.dram_j += e.dram_j;
            mine.inferences += e.inferences;
            mine.weighted_v2 += e.weighted_v2;
            mine.macs += e.macs;
        }
        self.ldo_j += other.ldo_j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planner_cost() -> InferenceCost {
        // JARVIS-1 planner, Table 4: 5344 GOps = 2672 GMACs, 7.87 GB weights.
        InferenceCost::from_workload(2.672e12, 7.869e9, true, 128.0)
    }

    fn controller_cost() -> InferenceCost {
        // JARVIS-1 controller: 102 GOps = 51 GMACs, 61 MB weights on-chip.
        InferenceCost::from_workload(51e9, 61e6, false, 48.0)
    }

    #[test]
    fn energy_scales_quadratically_with_voltage() {
        let c = planner_cost();
        let e_nom = c.compute_energy(0.9, Precision::Int8);
        let e_low = c.compute_energy(0.45, Precision::Int8);
        assert!((e_nom / e_low - 4.0).abs() < 1e-9);
    }

    #[test]
    fn planner_compute_fraction_matches_paper_band() {
        let c = planner_cost();
        let frac = c.compute_energy(0.9, Precision::Int8) / c.total_energy(0.9, Precision::Int8);
        assert!(
            (0.55..0.75).contains(&frac),
            "planner compute fraction {frac} outside Fig. 18 band"
        );
    }

    #[test]
    fn controller_compute_fraction_matches_paper_band() {
        let c = controller_cost();
        let frac = c.compute_energy(0.9, Precision::Int8) / c.total_energy(0.9, Precision::Int8);
        assert!(
            (0.70..0.85).contains(&frac),
            "controller compute fraction {frac} outside Fig. 18 band"
        );
    }

    #[test]
    fn int4_macs_are_cheaper() {
        let c = controller_cost();
        assert!(
            c.compute_energy(0.9, Precision::Int4) < 0.6 * c.compute_energy(0.9, Precision::Int8)
        );
    }

    #[test]
    fn effective_voltage_averages_mac_weighted() {
        let mut meter = EnergyMeter::new();
        let cost = InferenceCost {
            macs: 1e9,
            dram_bytes: 0.0,
            sram_bytes: 0.0,
        };
        meter.record(Unit::Controller, &cost, 0.9, Precision::Int8);
        meter.record(Unit::Controller, &cost, 0.7, Precision::Int8);
        let v_eff = meter.unit(Unit::Controller).effective_voltage();
        let expect = ((0.9f64 * 0.9 + 0.7 * 0.7) / 2.0).sqrt();
        assert!((v_eff - expect).abs() < 1e-9);
    }

    #[test]
    fn meter_merge_adds_everything() {
        let mut a = EnergyMeter::new();
        let mut b = EnergyMeter::new();
        let cost = controller_cost();
        a.record(Unit::Controller, &cost, 0.9, Precision::Int8);
        b.record(Unit::Controller, &cost, 0.8, Precision::Int8);
        b.record_ldo(1e-9);
        a.merge(&b);
        assert_eq!(a.unit(Unit::Controller).inferences, 2);
        assert!(a.ldo_j() > 0.0);
        assert!(a.total_j() > 0.0);
    }

    #[test]
    fn memory_energy_is_voltage_independent() {
        let c = planner_cost();
        let t_high = c.total_energy(0.9, Precision::Int8);
        let t_low = c.total_energy(0.6, Precision::Int8);
        let mem = c.memory_energy();
        assert!((t_high - c.compute_energy(0.9, Precision::Int8) - mem).abs() < 1e-15);
        assert!(t_low > mem, "total always includes memory");
    }
}
