//! SECDED error-correcting code for on-chip weight buffers.
//!
//! The paper scopes CREATE to *computational* timing errors on the grounds
//! that "memory faults can be effectively mitigated by ECC" (Sec. 2.3) and
//! names the extension of the resilience study to memory components as
//! future work (Sec. 3.1). This module supplies that substrate: the
//! industry-standard extended Hamming (72,64) single-error-correcting,
//! double-error-detecting code used by SRAM macros and HBM-class DRAM —
//! 64 data bits plus 7 Hamming parity bits plus one overall parity bit.
//!
//! Together with [`crate::sram`] it lets the memory-resilience experiment
//! (`ext_memory` bench target) quantify what the paper asserts: voltage
//! scaling on *memory* rails is only safe behind SECDED, at a fixed 12.5%
//! storage overhead.
//!
//! # Example
//!
//! ```
//! use create_accel::ecc::{Codeword, Decoded};
//!
//! let cw = Codeword::encode(0xDEAD_BEEF_0BAD_F00D);
//! // Any single bit flip is corrected transparently.
//! let (data, outcome) = cw.with_flipped_bit(17).decode();
//! assert_eq!(data, 0xDEAD_BEEF_0BAD_F00D);
//! assert_eq!(outcome, Decoded::Corrected);
//! ```

/// Number of data bits per codeword.
pub const DATA_BITS: u32 = 64;

/// Total codeword bits (64 data + 7 Hamming parity + 1 overall parity).
pub const CODE_BITS: u32 = 72;

/// Storage overhead of the code: 8 check bits per 64 data bits.
pub const OVERHEAD: f64 = (CODE_BITS - DATA_BITS) as f64 / DATA_BITS as f64;

/// Outcome of decoding one codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decoded {
    /// No error was present.
    Clean,
    /// A single-bit error was present and has been corrected.
    Corrected,
    /// A double-bit error was detected; the returned data is unreliable
    /// and the word must be re-fetched (or the fault reported).
    Detected,
}

impl Decoded {
    /// Whether the returned data bits can be trusted.
    pub fn data_valid(self) -> bool {
        !matches!(self, Decoded::Detected)
    }
}

/// A 72-bit extended-Hamming codeword.
///
/// Bit `i` of the inner `u128` is codeword position `i`: position 0 holds
/// the overall parity bit, positions that are powers of two hold the seven
/// Hamming parity bits, and the remaining 64 positions hold data bits in
/// ascending order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Codeword(u128);

/// Whether codeword position `pos` holds a parity bit.
#[inline]
fn is_parity_position(pos: u32) -> bool {
    pos == 0 || pos.is_power_of_two()
}

impl Codeword {
    /// Encodes 64 data bits into a SECDED codeword.
    pub fn encode(data: u64) -> Self {
        let mut word: u128 = 0;
        // Scatter data bits into non-parity positions.
        let mut bit = 0u32;
        for pos in 1..CODE_BITS {
            if is_parity_position(pos) {
                continue;
            }
            if (data >> bit) & 1 == 1 {
                word |= 1u128 << pos;
            }
            bit += 1;
        }
        debug_assert_eq!(bit, DATA_BITS);
        // Hamming parity bits: parity bit at position p covers every
        // position with the p bit set in its index.
        for log2 in 0..7u32 {
            let p = 1u32 << log2;
            let mut parity = 0u32;
            for pos in 1..CODE_BITS {
                if pos & p != 0 && (word >> pos) & 1 == 1 {
                    parity ^= 1;
                }
            }
            if parity == 1 {
                word |= 1u128 << p;
            }
        }
        // Overall parity over the whole codeword (even parity).
        if (word.count_ones() & 1) == 1 {
            word |= 1;
        }
        Self(word)
    }

    /// Reconstructs a codeword from raw storage bits (no validation — the
    /// whole point is that storage may be corrupted).
    pub fn from_raw(raw: u128) -> Self {
        Self(raw & ((1u128 << CODE_BITS) - 1))
    }

    /// The raw 72 storage bits.
    pub fn to_raw(self) -> u128 {
        self.0
    }

    /// Returns a copy with codeword bit `pos` flipped.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= 72`.
    pub fn with_flipped_bit(self, pos: u32) -> Self {
        assert!(pos < CODE_BITS, "codeword bit {pos} out of range");
        Self(self.0 ^ (1u128 << pos))
    }

    /// Extracts the data bits without any checking.
    fn data_bits(self) -> u64 {
        let mut data = 0u64;
        let mut bit = 0u32;
        for pos in 1..CODE_BITS {
            if is_parity_position(pos) {
                continue;
            }
            if (self.0 >> pos) & 1 == 1 {
                data |= 1u64 << bit;
            }
            bit += 1;
        }
        data
    }

    /// Decodes the codeword, correcting a single-bit error and detecting
    /// double-bit errors.
    ///
    /// Returns the (possibly corrected) data together with the decode
    /// outcome. On [`Decoded::Detected`] the data is the best-effort raw
    /// extraction and must not be trusted.
    pub fn decode(self) -> (u64, Decoded) {
        // Syndrome: XOR of the positions of all set bits (excluding the
        // overall parity at position 0).
        let mut syndrome = 0u32;
        for pos in 1..CODE_BITS {
            if (self.0 >> pos) & 1 == 1 {
                syndrome ^= pos;
            }
        }
        let overall_even = (self.0.count_ones() & 1) == 0;
        match (syndrome, overall_even) {
            (0, true) => (self.data_bits(), Decoded::Clean),
            (0, false) => {
                // The overall parity bit itself flipped; data unaffected.
                (self.data_bits(), Decoded::Corrected)
            }
            (s, false) => {
                // Single-bit error at position `s`.
                let fixed = if s < CODE_BITS {
                    self.with_flipped_bit(s)
                } else {
                    self
                };
                (fixed.data_bits(), Decoded::Corrected)
            }
            (_, true) => {
                // Non-zero syndrome with even overall parity: double error.
                (self.data_bits(), Decoded::Detected)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn clean_roundtrip_preserves_data() {
        for data in [0u64, u64::MAX, 0xAAAA_AAAA_AAAA_AAAA, 0x0123_4567_89AB_CDEF] {
            let (out, outcome) = Codeword::encode(data).decode();
            assert_eq!(out, data);
            assert_eq!(outcome, Decoded::Clean);
        }
    }

    #[test]
    fn every_single_bit_flip_is_corrected() {
        let data = 0x5A5A_F00D_1234_8765u64;
        let cw = Codeword::encode(data);
        for pos in 0..CODE_BITS {
            let (out, outcome) = cw.with_flipped_bit(pos).decode();
            assert_eq!(outcome, Decoded::Corrected, "bit {pos}");
            assert_eq!(out, data, "bit {pos} should be repaired");
        }
    }

    #[test]
    fn every_double_bit_flip_is_detected() {
        let data = 0xC0FF_EE00_DEAD_BEEFu64;
        let cw = Codeword::encode(data);
        for a in 0..CODE_BITS {
            for b in (a + 1)..CODE_BITS {
                let (_, outcome) = cw.with_flipped_bit(a).with_flipped_bit(b).decode();
                assert_eq!(outcome, Decoded::Detected, "bits {a},{b}");
                assert!(!outcome.data_valid());
            }
        }
    }

    #[test]
    fn parity_positions_are_powers_of_two_plus_overall() {
        let parities: Vec<u32> = (0..CODE_BITS).filter(|&p| is_parity_position(p)).collect();
        assert_eq!(parities, vec![0, 1, 2, 4, 8, 16, 32, 64]);
        assert_eq!(CODE_BITS - parities.len() as u32, DATA_BITS);
    }

    #[test]
    fn overhead_is_12_5_percent() {
        assert!((OVERHEAD - 0.125).abs() < 1e-12);
    }

    #[test]
    fn raw_roundtrip_masks_to_72_bits() {
        let cw = Codeword::encode(42);
        let raw = cw.to_raw();
        assert_eq!(Codeword::from_raw(raw), cw);
        // Garbage above bit 71 is ignored.
        assert_eq!(Codeword::from_raw(raw | (1u128 << 100)), cw);
    }

    #[test]
    fn random_words_survive_random_single_flips() {
        let mut rng = StdRng::seed_from_u64(0xECC);
        for _ in 0..200 {
            let data: u64 = rng.random();
            let pos = rng.random_range(0..CODE_BITS);
            let (out, outcome) = Codeword::encode(data).with_flipped_bit(pos).decode();
            assert_eq!(out, data);
            assert_eq!(outcome, Decoded::Corrected);
        }
    }

    #[test]
    fn triple_flips_are_not_silently_accepted_as_clean() {
        // SECDED cannot correct triples; it may miscorrect (alias to a
        // single-bit syndrome) but must never report Clean.
        let data = 0x0F0F_0F0F_0F0F_0F0Fu64;
        let cw = Codeword::encode(data);
        let mut rng = StdRng::seed_from_u64(0x3F);
        for _ in 0..100 {
            let mut bits = [0u32; 3];
            loop {
                for b in bits.iter_mut() {
                    *b = rng.random_range(0..CODE_BITS);
                }
                if bits[0] != bits[1] && bits[1] != bits[2] && bits[0] != bits[2] {
                    break;
                }
            }
            let corrupted = cw
                .with_flipped_bit(bits[0])
                .with_flipped_bit(bits[1])
                .with_flipped_bit(bits[2]);
            let (_, outcome) = corrupted.decode();
            assert_ne!(outcome, Decoded::Clean, "bits {bits:?}");
        }
    }
}
