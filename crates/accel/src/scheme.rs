//! Datapath protection schemes for the baseline comparison (paper
//! Sec. 6.10, Fig. 20).
//!
//! Each scheme transforms the (possibly corrupted) accumulator buffer of
//! one GEMM and reports how much redundant compute it spent:
//!
//! * **DMR** — dual modular redundancy: execute twice, compare, recompute
//!   on mismatch and take the per-element majority. ≥2× compute.
//! * **ThUnderVolt-style skip** — per-PE timing detection with result
//!   skipping: corrupted outputs are detected and forced to zero (the
//!   paper's "excessive neuron pruning"); ~6% overhead.
//! * **Razor-style timing borrowing** — shadow-FF detection with pipeline
//!   replay: detected values are *recovered* (not zeroed), at a replay
//!   cost per detection plus the heaviest static overhead. The paper
//!   cites this class ([43–45]) as lacking accelerator scalability but
//!   does not evaluate it; we add it as an extension contender.
//! * **ABFT** — checksum-based detection with recompute-based recovery:
//!   detection is cheap (~4%) but every detected error forces a full
//!   recompute, which at low voltage is itself likely corrupted — the
//!   recovery storms that confine ABFT above ~0.85 V.

use rand::Rng;

/// Razor shadow-FF detection coverage (late transitions caught).
pub const RAZOR_COVERAGE: f64 = 0.99;

/// Pipeline replay cost per detected timing error, in MAC-equivalents:
/// each detection flushes and replays a short pipeline segment.
pub const RAZOR_REPLAY_PENALTY: f64 = 12.0;

/// Protection scheme applied at the array output stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheme {
    /// No redundancy (optionally AD, which is configured separately).
    #[default]
    Plain,
    /// Dual modular redundancy with recompute-on-mismatch.
    Dmr,
    /// Timing-error detection with output skipping.
    ThunderVolt,
    /// Razor-style timing borrowing: shadow-FF detection with pipeline
    /// replay ([`RAZOR_COVERAGE`], [`RAZOR_REPLAY_PENALTY`]).
    Razor,
    /// Algorithm-based fault tolerance with bounded recompute retries.
    Abft {
        /// Maximum recompute attempts per GEMM.
        max_retries: u32,
    },
}

impl Scheme {
    /// Fixed per-GEMM compute overhead factor (redundant executions are
    /// accounted separately by the executor).
    pub fn static_overhead(&self) -> f64 {
        match self {
            Scheme::Plain => 0.0,
            Scheme::Dmr => 0.02,         // comparator tree
            Scheme::ThunderVolt => 0.06, // shadow FFs + bypass muxes
            Scheme::Razor => 0.08,       // shadow FFs + replay control
            Scheme::Abft { .. } => 0.04, // checksum rows/columns
        }
    }

    /// ABFT checksum detection coverage (some multi-flip patterns cancel).
    pub fn abft_coverage(&self) -> f64 {
        0.995
    }
}

/// Cumulative scheme telemetry across GEMMs — the observable redundancy
/// activity a runtime policy (e.g. the serving governor) can watch
/// without peeking at ground truth: how often the scheme ran, how much
/// redundant compute it spent, and how often corruption survived it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchemeStats {
    /// GEMMs that went through a non-[`Plain`](Scheme::Plain) scheme.
    pub applications: u64,
    /// Redundant executions beyond the first (DMR recomputes, ABFT
    /// retries), summed over all applications.
    pub redundant_executions: u64,
    /// Applications where corruption survived into the final output.
    pub residuals: u64,
}

impl SchemeStats {
    /// Folds one GEMM's [`SchemeOutcome`] into the counters.
    pub fn record(&mut self, outcome: &SchemeOutcome) {
        self.applications += 1;
        self.redundant_executions += u64::from(outcome.executions.saturating_sub(1));
        self.residuals += u64::from(outcome.residual_corruption);
    }

    /// Accumulates another unit's counters into this one.
    pub fn merge(&mut self, other: SchemeStats) {
        self.applications += other.applications;
        self.redundant_executions += other.redundant_executions;
        self.residuals += other.residuals;
    }
}

/// Outcome of applying a scheme to one GEMM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeOutcome {
    /// Total executions of the GEMM (1 = no redundancy).
    pub executions: u32,
    /// Whether any corruption survived into the final output.
    pub residual_corruption: bool,
    /// Additional compute charged as a fraction of one execution (Razor
    /// pipeline replays; zero for all other schemes).
    pub extra_mac_fraction: f64,
}

/// Reusable replica buffers for [`apply_scheme_into`].
///
/// DMR needs up to two extra replicas per GEMM and ABFT one per retry;
/// holding them here (the accelerator keeps one set in its persistent
/// scratch) means the redundant-execution schemes allocate nothing in
/// steady state — today's equivalent of the old per-replica `clone()`.
#[derive(Debug, Default)]
pub struct SchemeBuffers {
    second: Vec<i32>,
    third: Vec<i32>,
}

/// Applies `scheme` given the clean accumulator and independently corrupted
/// replicas produced by `corrupt` (a closure that clones the clean buffer
/// and injects a fresh error pattern).
///
/// Allocating convenience wrapper over [`apply_scheme_into`]; both draw
/// from the RNG in the same order and return bit-identical results.
pub fn apply_scheme<R: Rng>(
    scheme: Scheme,
    clean: &[i32],
    first: Vec<i32>,
    mut corrupt: impl FnMut(&mut R) -> Vec<i32>,
    rng: &mut R,
) -> (Vec<i32>, SchemeOutcome) {
    let mut out = first;
    let mut bufs = SchemeBuffers::default();
    let outcome = apply_scheme_into(
        scheme,
        clean,
        &mut out,
        &mut bufs,
        |buf, rng| *buf = corrupt(rng),
        rng,
    );
    (out, outcome)
}

/// Buffer-reuse form of [`apply_scheme`].
///
/// On entry `out` holds the first (possibly corrupted) execution; on exit
/// it holds the scheme's final output. `corrupt_into` must refill its
/// buffer with a freshly corrupted replica of the clean accumulator
/// (overwriting whatever it held). Replica storage comes from `bufs`, so
/// a warmed-up caller performs no heap allocation on any scheme path.
pub fn apply_scheme_into<R: Rng>(
    scheme: Scheme,
    clean: &[i32],
    out: &mut Vec<i32>,
    bufs: &mut SchemeBuffers,
    mut corrupt_into: impl FnMut(&mut Vec<i32>, &mut R),
    rng: &mut R,
) -> SchemeOutcome {
    match scheme {
        Scheme::Plain => SchemeOutcome {
            executions: 1,
            residual_corruption: out[..] != *clean,
            extra_mac_fraction: 0.0,
        },
        Scheme::Dmr => {
            corrupt_into(&mut bufs.second, rng);
            if *out == bufs.second {
                return SchemeOutcome {
                    executions: 2,
                    residual_corruption: out[..] != *clean,
                    extra_mac_fraction: 0.0,
                };
            }
            // Mismatch: recompute and take the per-element majority.
            corrupt_into(&mut bufs.third, rng);
            let mut residual = false;
            for i in 0..out.len() {
                let first = out[i];
                let v = if first == bufs.second[i] || first == bufs.third[i] {
                    first
                } else if bufs.second[i] == bufs.third[i] {
                    bufs.second[i]
                } else {
                    // Three-way disagreement: keep the recomputed value.
                    bufs.third[i]
                };
                if v != clean[i] {
                    residual = true;
                }
                out[i] = v;
            }
            SchemeOutcome {
                executions: 3,
                residual_corruption: residual,
                extra_mac_fraction: 0.0,
            }
        }
        Scheme::ThunderVolt => {
            // Per-output timing detection: corrupted outputs are zeroed.
            let mut residual = false;
            for (o, &c) in out.iter_mut().zip(clean) {
                if *o != c {
                    *o = 0;
                    residual = true; // the dropped value is still a loss
                }
            }
            SchemeOutcome {
                executions: 1,
                residual_corruption: residual,
                extra_mac_fraction: 0.0,
            }
        }
        Scheme::Razor => {
            // Shadow-FF detection with pipeline replay: detected values are
            // recovered exactly (time borrowing re-evaluates the late
            // path), at a replay cost per detection; misses stay corrupt.
            let mut residual = false;
            let mut detected = 0u64;
            for (o, &c) in out.iter_mut().zip(clean) {
                if *o != c {
                    if rng.random_range(0.0..1.0) < RAZOR_COVERAGE {
                        *o = c;
                        detected += 1;
                    } else {
                        residual = true;
                    }
                }
            }
            let extra = if out.is_empty() {
                0.0
            } else {
                RAZOR_REPLAY_PENALTY * detected as f64 / out.len() as f64
            };
            SchemeOutcome {
                executions: 1,
                residual_corruption: residual,
                extra_mac_fraction: extra,
            }
        }
        Scheme::Abft { max_retries } => {
            let coverage = scheme.abft_coverage();
            let mut executions = 1u32;
            for _ in 0..max_retries {
                let corrupted = out[..] != *clean;
                let detected = corrupted && rng.random_range(0.0..1.0) < coverage;
                if !detected {
                    break;
                }
                corrupt_into(&mut bufs.second, rng);
                std::mem::swap(out, &mut bufs.second);
                executions += 1;
            }
            SchemeOutcome {
                executions,
                residual_corruption: out[..] != *clean,
                extra_mac_fraction: 0.0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clean() -> Vec<i32> {
        vec![10, -20, 30, -40]
    }

    #[test]
    fn plain_passes_corruption_through() {
        let mut rng = StdRng::seed_from_u64(1);
        let bad = vec![10, 999, 30, -40];
        let (out, res) = apply_scheme(
            Scheme::Plain,
            &clean(),
            bad.clone(),
            |_| bad.clone(),
            &mut rng,
        );
        assert_eq!(out, bad);
        assert!(res.residual_corruption);
        assert_eq!(res.executions, 1);
    }

    #[test]
    fn dmr_agreement_costs_two_executions() {
        let mut rng = StdRng::seed_from_u64(2);
        let (out, res) = apply_scheme(Scheme::Dmr, &clean(), clean(), |_| clean(), &mut rng);
        assert_eq!(out, clean());
        assert_eq!(res.executions, 2);
        assert!(!res.residual_corruption);
    }

    #[test]
    fn dmr_mismatch_recovers_via_majority() {
        let mut rng = StdRng::seed_from_u64(3);
        let bad = vec![10, 999, 30, -40];
        // First run corrupted, replicas clean: majority restores the truth.
        let (out, res) = apply_scheme(Scheme::Dmr, &clean(), bad, |_| clean(), &mut rng);
        assert_eq!(out, clean());
        assert_eq!(res.executions, 3);
        assert!(!res.residual_corruption);
    }

    #[test]
    fn thundervolt_zeroes_corrupted_outputs() {
        let mut rng = StdRng::seed_from_u64(4);
        let bad = vec![10, 999, 30, 77];
        let (out, res) = apply_scheme(Scheme::ThunderVolt, &clean(), bad, |_| clean(), &mut rng);
        assert_eq!(out, vec![10, 0, 30, 0], "corrupted outputs become zero");
        assert!(res.residual_corruption);
        assert_eq!(res.executions, 1);
    }

    #[test]
    fn abft_retries_until_clean() {
        let mut rng = StdRng::seed_from_u64(5);
        let bad = vec![11, -20, 30, -40];
        let mut attempts = 0;
        let (out, res) = apply_scheme(
            Scheme::Abft { max_retries: 4 },
            &clean(),
            bad.clone(),
            |_| {
                attempts += 1;
                if attempts >= 2 {
                    clean()
                } else {
                    bad.clone()
                }
            },
            &mut rng,
        );
        assert_eq!(out, clean());
        assert!(!res.residual_corruption);
        assert!(res.executions >= 3, "initial + 2 recomputes");
    }

    #[test]
    fn abft_gives_up_after_max_retries() {
        let mut rng = StdRng::seed_from_u64(6);
        let bad = vec![11, -20, 30, -40];
        let (out, res) = apply_scheme(
            Scheme::Abft { max_retries: 2 },
            &clean(),
            bad.clone(),
            |_| bad.clone(),
            &mut rng,
        );
        assert_eq!(out, bad, "persistent corruption leaks through");
        assert!(res.residual_corruption);
        assert_eq!(res.executions, 3);
    }

    #[test]
    fn overheads_are_ranked_sensibly() {
        assert!(Scheme::Plain.static_overhead() < Scheme::Dmr.static_overhead());
        assert!(Scheme::Dmr.static_overhead() < Scheme::Abft { max_retries: 3 }.static_overhead());
        assert!(
            Scheme::Abft { max_retries: 3 }.static_overhead()
                < Scheme::ThunderVolt.static_overhead()
        );
        assert!(
            Scheme::ThunderVolt.static_overhead() < Scheme::Razor.static_overhead(),
            "replay control tops the per-PE overhead ladder"
        );
    }

    #[test]
    fn razor_recovers_detected_values_exactly() {
        let mut rng = StdRng::seed_from_u64(7);
        // Corrupt half the elements; coverage 0.99 should recover nearly
        // all of them to the *clean* value (not zero, unlike ThUnderVolt).
        let clean: Vec<i32> = (0..2000).collect();
        let bad: Vec<i32> = clean
            .iter()
            .map(|&v| if v % 2 == 0 { v ^ 0x40_0000 } else { v })
            .collect();
        let (out, res) = apply_scheme(Scheme::Razor, &clean, bad, |_| clean.clone(), &mut rng);
        let recovered = out.iter().zip(&clean).filter(|(a, b)| a == b).count();
        // 1000 corrupt elements recovered with p = 0.99: mean 990 of them
        // (σ ≈ 3.1), plus the 1000 untouched ones. Allow 5σ like the
        // coverage test below rather than pinning the mean.
        assert!(recovered >= 1974, "recovered {recovered}/2000");
        assert_eq!(res.executions, 1);
        assert!(res.extra_mac_fraction > 0.0, "replays must be charged");
        // ~1000 detections × penalty 12 / 2000 elements ≈ 6.
        assert!((res.extra_mac_fraction - 6.0).abs() < 1.0);
    }

    #[test]
    fn razor_misses_a_coverage_fraction() {
        let mut rng = StdRng::seed_from_u64(8);
        let clean = vec![0i32; 50_000];
        let bad = vec![1i32; 50_000];
        let (out, res) = apply_scheme(Scheme::Razor, &clean, bad, |_| clean.clone(), &mut rng);
        let missed = out.iter().filter(|&&v| v != 0).count();
        let expect = 50_000.0 * (1.0 - RAZOR_COVERAGE);
        assert!(res.residual_corruption);
        assert!(
            (missed as f64 - expect).abs() < 5.0 * expect.sqrt() + 10.0,
            "missed {missed}, expected ~{expect}"
        );
    }

    #[test]
    fn razor_is_free_when_nothing_is_corrupt() {
        let mut rng = StdRng::seed_from_u64(9);
        let (out, res) = apply_scheme(Scheme::Razor, &clean(), clean(), |_| clean(), &mut rng);
        assert_eq!(out, clean());
        assert!(!res.residual_corruption);
        assert_eq!(res.extra_mac_fraction, 0.0);
        assert_eq!(res.executions, 1);
    }
}
