//! Pluggable GEMM backends for the systolic-array clean-compute path.
//!
//! [`Accelerator::linear`](crate::Accelerator::linear) computes the *clean*
//! (pre-injection) accumulator buffer through a [`GemmBackend`] trait
//! object, so alternative implementations can slot in under the unchanged
//! injection, anomaly-detection, requantization and MAC/energy-accounting
//! stages. Four backends ship:
//!
//! * [`ScalarBackend`] — the original triple loop from
//!   [`array::gemm_i8_acc`], kept as the bit-exact reference;
//! * [`BlockedBackend`] — a cache-blocked, 4-way k-unrolled rewrite that
//!   accumulates in `i32` lanes (autovectorization-friendly) and is
//!   **bit-identical** to the reference for every input;
//! * [`WideBackend`] — a lane-parallel rewrite carrying [`I8_LANES`]
//!   independent output columns in a fixed-size `[i32; I8_LANES]`
//!   register block across the whole k-loop (one output write per lane
//!   group instead of one read-modify-write per k-step), equally
//!   bit-identical;
//! * [`DispatchBackend`] (`auto`, the default) — a per-shape router:
//!   each call's `(m, k, n)` is bucketed by size class
//!   ([`create_tensor::dispatch`]) and forwarded to the
//!   measured-fastest concrete backend for that bucket (the committed
//!   `BENCH_kernels.json` shows `wide` winning narrow and
//!   long-reduction shapes, `blocked` the rest). Routing between
//!   bit-identical kernels is itself bit-identical.
//!
//! The parity guarantee is not approximate: integer addition is exact and
//! associative, and the final 24-bit wrap only depends on the low 32 bits
//! of the exact sum, so reassociating the reduction cannot change a single
//! accumulator bit. Property tests (`tests/props.rs`) and the CI backend
//! matrix (`CREATE_GEMM_BACKEND=scalar|blocked`) pin this down.
//!
//! # Selecting a backend
//!
//! The backend is part of [`AccelConfig`](crate::AccelConfig); its default
//! comes from the `CREATE_GEMM_BACKEND` environment variable (`scalar`,
//! `blocked`, `wide`, `auto` or `auto:<table.json>`, case-insensitive).
//! Unset or empty selects [the default](GemmBackendKind::default)
//! (`auto`); any other value warns on stderr and falls back to the
//! default, mirroring `CREATE_REPS` / `CREATE_THREADS` validation. With
//! `CREATE_GEMM_AUTOTUNE=1` the `auto` router measures the candidates on
//! the actual host at first use and caches the winning table under
//! `target/create-autotune/`; a malformed table or cache file warns and
//! falls back to the compiled-in static table, never aborting.
//!
//! # Adding another backend
//!
//! 1. Implement [`GemmBackend`] (delegate the shape check to
//!    [`array::check_gemm_shapes`] so mismatch panics stay uniform, and
//!    wrap accumulators with [`array::wrap_acc24`] /
//!    [`array::wrap_acc24_i32`] semantics);
//! 2. add a [`GemmBackendKind`] variant, its `instantiate`/`FromStr`/
//!    `name` arms, and list it in [`GemmBackendKind::ALL`];
//! 3. the parity property tests and the `kernels`/`fig08_gemm_profile`
//!    harnesses iterate [`GemmBackendKind::ALL`], so the new backend is
//!    automatically held to the bit-parity bar.

use crate::array;
use create_tensor::{dispatch, QuantMatrix};
use std::fmt;
use std::path::Path;
use std::str::FromStr;

/// A clean-compute GEMM implementation for the INT8 datapath.
///
/// Implementations must reproduce the systolic array's semantics exactly:
/// `a (m×k) @ w (k×n)` with 24-bit wrap-around accumulators, bit-identical
/// to [`ScalarBackend`] for every input (including `m`, `k` or `n` of
/// zero), and must panic with the standard `gemm shape mismatch` message
/// when inner dimensions disagree. Fault injection, AD and the profiler
/// all consume the returned buffer, so any deviation would silently change
/// experiment semantics.
pub trait GemmBackend: fmt::Debug + Send + Sync {
    /// Stable lower-case identifier (`"scalar"`, `"blocked"`, `"wide"`).
    fn name(&self) -> &'static str;

    /// Computes the row-major `m·n` accumulator buffer, each entry a
    /// sign-extended 24-bit value exactly as the array would emit it.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != w.rows()`.
    fn gemm_i8_acc(&self, a: &QuantMatrix, w: &QuantMatrix) -> Vec<i32>;

    /// [`gemm_i8_acc`](Self::gemm_i8_acc) into a caller-provided buffer.
    ///
    /// The contract is *bit-identical output, reused capacity*: `acc` is
    /// resized to `m·n` and fully overwritten, and once it has been
    /// warmed up at the largest shape the call performs no heap
    /// allocation. This is the accelerator's steady-state entry point —
    /// [`Accelerator::linear`](crate::Accelerator::linear) routes every
    /// clean GEMM through it against a persistent scratch buffer.
    ///
    /// The default implementation delegates to the allocating path (so
    /// third-party backends stay correct without changes); both shipped
    /// backends override it with a true in-place computation.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != w.rows()`.
    fn gemm_i8_acc_into(&self, a: &QuantMatrix, w: &QuantMatrix, acc: &mut Vec<i32>) {
        *acc = self.gemm_i8_acc(a, w);
    }
}

/// The reference backend: the original scalar triple loop
/// ([`array::gemm_i8_acc`]), accumulating in `i64` and wrapping once at
/// the end. Slowest, simplest, and the definition of correct.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScalarBackend;

impl GemmBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn gemm_i8_acc(&self, a: &QuantMatrix, w: &QuantMatrix) -> Vec<i32> {
        array::gemm_i8_acc(a, w)
    }

    fn gemm_i8_acc_into(&self, a: &QuantMatrix, w: &QuantMatrix, acc: &mut Vec<i32>) {
        array::gemm_i8_acc_into(a, w, acc);
    }
}

/// How many k-rows of `w` one inner block consumes (unroll width).
/// 4 measured best on the `kernels` bench (8 adds register pressure for
/// no gain at these shapes).
const K_UNROLL: usize = 4;

/// Output-column tile: one tile of the out row plus `K_UNROLL` matching
/// `w`-row slices stay resident in L1 while a k-block streams through.
const N_TILE: usize = 256;

/// The fast backend: output rows are tiled `N_TILE` columns at a time and
/// the k loop is manually unrolled `K_UNROLL`-wide, so each pass fuses
/// four rank-1 updates into one read-modify-write of the out tile.
/// Accumulation is `i32` with wrapping adds — exact modulo 2³², which is
/// all the final 24-bit wrap can observe — giving twice the SIMD lane
/// width of the scalar backend's `i64` sums while staying bit-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockedBackend;

impl GemmBackend for BlockedBackend {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn gemm_i8_acc(&self, a: &QuantMatrix, w: &QuantMatrix) -> Vec<i32> {
        let mut acc = Vec::new();
        self.gemm_i8_acc_into(a, w, &mut acc);
        acc
    }

    fn gemm_i8_acc_into(&self, a: &QuantMatrix, w: &QuantMatrix, acc: &mut Vec<i32>) {
        array::check_gemm_shapes(a, w);
        let (m, k, n) = (a.rows(), a.cols(), w.cols());
        acc.clear();
        acc.resize(m * n, 0);
        if n == 0 {
            return;
        }
        let w_data = w.as_slice();
        for i in 0..m {
            let a_row = a.row(i);
            let out_row = &mut acc[i * n..(i + 1) * n];
            for j0 in (0..n).step_by(N_TILE) {
                let j1 = (j0 + N_TILE).min(n);
                let out = &mut out_row[j0..j1];
                let mut kk = 0;
                while kk + K_UNROLL <= k {
                    let a0 = a_row[kk] as i16;
                    let a1 = a_row[kk + 1] as i16;
                    let a2 = a_row[kk + 2] as i16;
                    let a3 = a_row[kk + 3] as i16;
                    if (a0 | a1 | a2 | a3) != 0 {
                        let len = out.len();
                        let w0 = &w_data[kk * n + j0..][..len];
                        let w1 = &w_data[(kk + 1) * n + j0..][..len];
                        let w2 = &w_data[(kk + 2) * n + j0..][..len];
                        let w3 = &w_data[(kk + 3) * n + j0..][..len];
                        for jj in 0..len {
                            // Every i8×i8 product fits in i16 (|p| ≤
                            // 16384), so the products are exact in i16
                            // and pairwise i32 sums match pmaddwd; the
                            // running i32 sum is exact mod 2^32, which is
                            // all the 24-bit wrap can observe.
                            let p01 = (a0 * w0[jj] as i16) as i32 + (a1 * w1[jj] as i16) as i32;
                            let p23 = (a2 * w2[jj] as i16) as i32 + (a3 * w3[jj] as i16) as i32;
                            out[jj] = out[jj].wrapping_add(p01.wrapping_add(p23));
                        }
                    }
                    kk += K_UNROLL;
                }
                while kk < k {
                    let av = a_row[kk] as i32;
                    if av != 0 {
                        let w_row = &w_data[kk * n + j0..kk * n + j1];
                        for (o, &wv) in out.iter_mut().zip(w_row) {
                            *o = o.wrapping_add(av * wv as i32);
                        }
                    }
                    kk += 1;
                }
            }
        }
        for v in acc.iter_mut() {
            *v = array::wrap_acc24_i32(*v);
        }
    }
}

/// Lane width of [`WideBackend`]: eight `i32` accumulators — a full
/// 256-bit vector register — per lane group, autovectorized from the
/// fixed-size array loops without intrinsics.
pub const I8_LANES: usize = 8;

/// The lane-parallel backend: [`I8_LANES`] independent output columns are
/// carried as one `[i32; I8_LANES]` accumulator array across the entire
/// k-loop, so each output element is written exactly once. Every lane
/// owns one output and accumulates in ascending k-order; integer
/// addition is exact, so (as with [`BlockedBackend`]) the result is
/// bit-identical to the reference for every input. Zero multipliers are
/// skipped with a scalar branch shared by the whole lane group — a pure
/// speed heuristic (one-hot featurizer rows are mostly zeros) that
/// cannot affect integer sums.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WideBackend;

impl GemmBackend for WideBackend {
    fn name(&self) -> &'static str {
        "wide"
    }

    fn gemm_i8_acc(&self, a: &QuantMatrix, w: &QuantMatrix) -> Vec<i32> {
        let mut acc = Vec::new();
        self.gemm_i8_acc_into(a, w, &mut acc);
        acc
    }

    fn gemm_i8_acc_into(&self, a: &QuantMatrix, w: &QuantMatrix, acc: &mut Vec<i32>) {
        array::check_gemm_shapes(a, w);
        let (m, k, n) = (a.rows(), a.cols(), w.cols());
        acc.clear();
        acc.resize(m * n, 0);
        if n == 0 {
            return;
        }
        let w_data = w.as_slice();
        for i in 0..m {
            let a_row = a.row(i);
            let out_row = &mut acc[i * n..(i + 1) * n];
            let mut j0 = 0;
            while j0 + I8_LANES <= n {
                let mut lanes = [0i32; I8_LANES];
                for kk in 0..k {
                    // Products fit i16 (|p| ≤ 16384) and the running i32
                    // sum is exact mod 2^32 — all the final 24-bit wrap
                    // can observe (same argument as BlockedBackend).
                    let av = a_row[kk] as i16;
                    if av == 0 {
                        continue;
                    }
                    let w_row = &w_data[kk * n + j0..][..I8_LANES];
                    for l in 0..I8_LANES {
                        lanes[l] = lanes[l].wrapping_add((av * w_row[l] as i16) as i32);
                    }
                }
                out_row[j0..j0 + I8_LANES].copy_from_slice(&lanes);
                j0 += I8_LANES;
            }
            // Ragged tail: same accumulation, variable lane count.
            if j0 < n {
                let tail = &mut out_row[j0..];
                for kk in 0..k {
                    let av = a_row[kk] as i16;
                    if av == 0 {
                        continue;
                    }
                    let w_row = &w_data[kk * n + j0..][..tail.len()];
                    for (o, &wv) in tail.iter_mut().zip(w_row) {
                        *o = o.wrapping_add((av * wv as i16) as i32);
                    }
                }
            }
        }
        for v in acc.iter_mut() {
            *v = array::wrap_acc24_i32(*v);
        }
    }
}

/// The `auto` backend: a per-shape router over the concrete INT8
/// backends.
///
/// Holds a flat [`dispatch::N_BUCKETS`]-entry lookup table indexed by the
/// size-class bucket of `(m, k, n)` = (`a.rows()`, `a.cols()`,
/// `w.cols()`). Dispatch is three integer compares plus an array index —
/// no allocation, no string work — so the accelerator's steady-state
/// allocation-free `linear_into` contract is untouched. Every cell is a
/// *concrete* kind (nesting `auto` is rejected at construction), and
/// every concrete backend is bit-identical, so routing cannot change a
/// single accumulator bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchBackend {
    lut: [GemmBackendKind; dispatch::N_BUCKETS],
}

/// File name of the INT8 autotune cache under the autotune directory.
pub const I8_AUTOTUNE_FILE: &str = "gemm_i8.json";

/// The op name INT8 dispatch rules use in table JSON.
const I8_OP: &str = "gemm_i8";

/// The representative shapes the one-shot autotune measures — the
/// `kernels` bench's GEMM shape set (planner prefill, controller decode,
/// small attention products, the one-hot view featurizer).
pub const AUTOTUNE_SHAPES: [(usize, usize, usize); 5] = [
    (16, 256, 256),
    (1, 512, 128),
    (4, 32, 32),
    (1, 64, 16),
    (4, 686, 32),
];

impl DispatchBackend {
    /// The compiled-in static dispatch table, derived from the committed
    /// `results/baseline/BENCH_kernels.json`: `wide` wins narrow outputs
    /// (`n` lo — the controller head) and long reductions into mid-width
    /// outputs (`k` hi, `n` mid — the one-hot featurizer); `blocked`
    /// keeps everything else. To regenerate after re-benching, compare
    /// per-shape winners in `BENCH_kernels.json` (see README §
    /// Performance).
    pub fn built_in_table() -> dispatch::RawTable {
        use dispatch::Band::{Hi, Lo, Mid};
        let rule = |k: Option<dispatch::Band>, n: Option<dispatch::Band>, backend: &str| {
            dispatch::RawRule {
                op: I8_OP.to_string(),
                m: None,
                k,
                n,
                backend: backend.to_string(),
            }
        };
        dispatch::RawTable {
            version: dispatch::TABLE_VERSION,
            rules: vec![
                rule(None, Some(Lo), "wide"),
                rule(Some(Hi), Some(Mid), "wide"),
                rule(None, None, "blocked"),
            ],
        }
    }

    /// The router resolved from the compiled-in static table.
    pub fn built_in() -> Self {
        Self::from_table(&Self::built_in_table()).expect("static table must resolve")
    }

    /// Resolves a raw dispatch table, overlaying it on the static table
    /// (buckets the table does not cover keep the committed defaults).
    /// Fails on unsupported versions, unknown backends, or `auto`
    /// nesting — so callers can fall back to [`built_in`](Self::built_in).
    pub fn from_table(table: &dispatch::RawTable) -> Result<Self, String> {
        let parse = |s: &str| match GemmBackendKind::from_str(s) {
            Ok(GemmBackendKind::Auto) | Err(_) => None,
            Ok(kind) => Some(kind),
        };
        let base = [GemmBackendKind::Blocked; dispatch::N_BUCKETS];
        let built_in = Self::built_in_table().resolve(I8_OP, base, parse)?;
        Ok(DispatchBackend {
            lut: table.resolve(I8_OP, built_in, parse)?,
        })
    }

    /// Full resolution policy — identical to the f32 router's
    /// (`create_tensor::fgemm::DispatchF32Backend::resolve`): explicit
    /// table > autotune cache > one-shot measurement > static, with
    /// every parse/measure failure warning and falling back to the
    /// static table. Exposed with explicit arguments so tests avoid
    /// racing on the process environment.
    pub fn resolve(explicit_table: Option<&Path>, autotune: bool, cache: &Path) -> Self {
        if let Some(path) = explicit_table {
            return match dispatch::load_table(path).and_then(|t| Self::from_table(&t)) {
                Ok(backend) => backend,
                Err(err) => {
                    eprintln!(
                        "[create] ignoring INT8 dispatch table {}: {err}; using built-in table",
                        path.display()
                    );
                    Self::built_in()
                }
            };
        }
        if autotune {
            if cache.exists() {
                return match dispatch::load_table(cache).and_then(|t| Self::from_table(&t)) {
                    Ok(backend) => backend,
                    Err(err) => {
                        eprintln!(
                            "[create] ignoring corrupt INT8 autotune cache {}: {err}; \
                             using built-in table",
                            cache.display()
                        );
                        Self::built_in()
                    }
                };
            }
            let table = Self::autotune();
            if let Err(err) = dispatch::store_table(cache, &table) {
                eprintln!(
                    "[create] cannot cache INT8 autotune table at {}: {err}",
                    cache.display()
                );
            }
            return match Self::from_table(&table) {
                Ok(backend) => backend,
                Err(err) => {
                    eprintln!("[create] INT8 autotune produced an unusable table: {err}");
                    Self::built_in()
                }
            };
        }
        Self::built_in()
    }

    /// One-shot autotune: times the concrete backends' `_into` path on
    /// [`AUTOTUNE_SHAPES`] and emits per-bucket winners; uncovered
    /// buckets keep the static table via the
    /// [`from_table`](Self::from_table) overlay.
    pub fn autotune() -> dispatch::RawTable {
        let candidates = [
            GemmBackendKind::Scalar,
            GemmBackendKind::Blocked,
            GemmBackendKind::Wide,
        ];
        let mut samples: Vec<(&str, usize, &str, f64)> = Vec::new();
        let mut acc = Vec::new();
        for &(m, k, n) in &AUTOTUNE_SHAPES {
            let a = probe_quant(m, k, 1);
            let w = probe_quant(k, n, 2);
            let idx = dispatch::bucket(m, k, n);
            for kind in candidates {
                let backend = kind.instantiate();
                samples.push((
                    I8_OP,
                    idx,
                    kind.name(),
                    dispatch::measure_ns(|| backend.gemm_i8_acc_into(&a, &w, &mut acc)),
                ));
            }
        }
        dispatch::table_from_measurements(&samples)
    }

    /// The process-wide `auto` router, resolved once from
    /// `CREATE_GEMM_BACKEND=auto:<path>` / `CREATE_GEMM_AUTOTUNE`.
    pub fn from_env() -> Self {
        static AUTO: std::sync::OnceLock<DispatchBackend> = std::sync::OnceLock::new();
        *AUTO.get_or_init(|| {
            let raw = std::env::var("CREATE_GEMM_BACKEND").ok();
            let explicit = raw
                .as_deref()
                .and_then(|s| s.trim().strip_prefix("auto:"))
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(Path::new);
            Self::resolve(
                explicit,
                dispatch::autotune_requested(),
                &dispatch::autotune_cache_path(I8_AUTOTUNE_FILE),
            )
        })
    }

    fn select(&self, a: &QuantMatrix, w: &QuantMatrix) -> &'static dyn GemmBackend {
        match self.lut[dispatch::bucket(a.rows(), a.cols(), w.cols())] {
            GemmBackendKind::Scalar => &ScalarBackend,
            GemmBackendKind::Blocked => &BlockedBackend,
            GemmBackendKind::Wide => &WideBackend,
            // Unreachable by construction (from_table rejects nesting);
            // route to the default concrete backend rather than recurse.
            GemmBackendKind::Auto => &BlockedBackend,
        }
    }
}

impl GemmBackend for DispatchBackend {
    fn name(&self) -> &'static str {
        "auto"
    }

    fn gemm_i8_acc(&self, a: &QuantMatrix, w: &QuantMatrix) -> Vec<i32> {
        self.select(a, w).gemm_i8_acc(a, w)
    }

    fn gemm_i8_acc_into(&self, a: &QuantMatrix, w: &QuantMatrix, acc: &mut Vec<i32>) {
        self.select(a, w).gemm_i8_acc_into(a, w, acc)
    }
}

/// Deterministic autotune probe data: an LCG fill over the full INT8
/// code range (no RNG dependency, identical across runs).
fn probe_quant(rows: usize, cols: usize, seed: u64) -> QuantMatrix {
    use create_tensor::{Matrix, Precision, QuantParams};
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let m = Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 32) as i64 % 255 - 127) as f32
    });
    QuantMatrix::quantize_with(&m, QuantParams::from_scale(1.0, Precision::Int8))
}

/// Which [`GemmBackend`] an [`AccelConfig`](crate::AccelConfig) selects.
///
/// This is the (cheaply copyable) configuration-side handle; the
/// accelerator turns it into a trait object at construction via
/// [`instantiate`](Self::instantiate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemmBackendKind {
    /// [`ScalarBackend`] — the bit-exact reference triple loop.
    Scalar,
    /// [`BlockedBackend`] — tiled/unrolled, bit-identical, faster.
    Blocked,
    /// [`WideBackend`] — lane-parallel output columns, bit-identical.
    Wide,
    /// [`DispatchBackend`] — per-shape routing to the measured-fastest
    /// concrete backend, bit-identical because every route is.
    Auto,
}

impl Default for GemmBackendKind {
    /// `Auto`: the committed baselines prove per-shape routing matches or
    /// beats every single backend, and parity is bit-exact, so everyone
    /// gets per-shape dispatch unless `CREATE_GEMM_BACKEND` opts out.
    fn default() -> Self {
        GemmBackendKind::Auto
    }
}

impl fmt::Display for GemmBackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for GemmBackendKind {
    type Err = String;

    /// Case-insensitive, whitespace-tolerant parse of a backend name.
    fn from_str(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Ok(GemmBackendKind::Scalar),
            "blocked" => Ok(GemmBackendKind::Blocked),
            "wide" => Ok(GemmBackendKind::Wide),
            "auto" => Ok(GemmBackendKind::Auto),
            // `auto:<table.json>` — the path is read by
            // `DispatchBackend::from_env`, the kind is still `Auto`.
            other if other.starts_with("auto:") => Ok(GemmBackendKind::Auto),
            other => Err(format!(
                "unknown GEMM backend {other:?}: expected \"scalar\", \"blocked\", \"wide\", \
                 \"auto\" or \"auto:<table.json>\""
            )),
        }
    }
}

impl GemmBackendKind {
    /// Every shipped backend, in reference-first order. Parity tests and
    /// the bench harnesses iterate this list.
    pub const ALL: [GemmBackendKind; 4] = [
        GemmBackendKind::Scalar,
        GemmBackendKind::Blocked,
        GemmBackendKind::Wide,
        GemmBackendKind::Auto,
    ];

    /// The backend's stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            GemmBackendKind::Scalar => ScalarBackend.name(),
            GemmBackendKind::Blocked => BlockedBackend.name(),
            GemmBackendKind::Wide => WideBackend.name(),
            GemmBackendKind::Auto => "auto",
        }
    }

    /// Boxes the selected implementation.
    pub fn instantiate(self) -> Box<dyn GemmBackend> {
        match self {
            GemmBackendKind::Scalar => Box::new(ScalarBackend),
            GemmBackendKind::Blocked => Box::new(BlockedBackend),
            GemmBackendKind::Wide => Box::new(WideBackend),
            GemmBackendKind::Auto => Box::new(DispatchBackend::from_env()),
        }
    }

    /// Resolves a raw `CREATE_GEMM_BACKEND` value (`None` = unset).
    ///
    /// Unset, empty and whitespace-only select the default silently; a
    /// non-empty unknown value warns on stderr and falls back to the
    /// default rather than silently misbehaving — the shared validated
    /// fallback contract of [`create_tensor::envcfg`], same as
    /// `CREATE_REPS`/`CREATE_THREADS`/`CREATE_F32_BACKEND`. Exposed (not
    /// just `from_env`) so tests can cover parsing without racing on the
    /// process environment.
    pub fn parse_env(raw: Option<&str>) -> Self {
        create_tensor::envcfg::parse_validated("CREATE_GEMM_BACKEND", raw, Self::default(), |s| {
            s.parse()
        })
    }

    /// The backend selected by the `CREATE_GEMM_BACKEND` environment
    /// variable, with validated fallback (see [`parse_env`](Self::parse_env)).
    ///
    /// The parse is cached for the life of the process (accelerators are
    /// constructed per trial on the hot path, and the fallback warning
    /// should print once, not once per trial — the same once-per-run
    /// contract as `CREATE_REPS`). Tests that need to exercise parsing
    /// call [`parse_env`](Self::parse_env) directly.
    pub fn from_env() -> Self {
        static FROM_ENV: std::sync::OnceLock<GemmBackendKind> = std::sync::OnceLock::new();
        *FROM_ENV
            .get_or_init(|| Self::parse_env(std::env::var("CREATE_GEMM_BACKEND").ok().as_deref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use create_tensor::{Matrix, Precision, QuantMatrix, QuantParams};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn quant_unit(m: &Matrix) -> QuantMatrix {
        QuantMatrix::quantize_with(m, QuantParams::from_scale(1.0, Precision::Int8))
    }

    fn random_quant(rows: usize, cols: usize, rng: &mut StdRng) -> QuantMatrix {
        quant_unit(&Matrix::from_fn(rows, cols, |_, _| {
            rng.random_range(-127i32..=127) as f32
        }))
    }

    /// Every non-reference backend, asserted bit-equal to the scalar
    /// reference on the same inputs. The dispatcher rides along: routing
    /// between bit-identical kernels must itself be bit-identical.
    fn fast_backends() -> [Box<dyn GemmBackend>; 3] {
        [
            Box::new(BlockedBackend),
            Box::new(WideBackend),
            Box::new(DispatchBackend::built_in()),
        ]
    }

    #[test]
    fn backends_agree_on_random_shapes() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..40 {
            let m = rng.random_range(1usize..6);
            let k = rng.random_range(1usize..40);
            let n = rng.random_range(1usize..300);
            let a = random_quant(m, k, &mut rng);
            let w = random_quant(k, n, &mut rng);
            let reference = ScalarBackend.gemm_i8_acc(&a, &w);
            for fast in fast_backends() {
                assert_eq!(
                    reference,
                    fast.gemm_i8_acc(&a, &w),
                    "{} shape {m}x{k}x{n}",
                    fast.name()
                );
            }
        }
    }

    #[test]
    fn backends_agree_on_zero_row_and_zero_col_edges() {
        let mut rng = StdRng::seed_from_u64(12);
        // Includes short-k (below any unroll width) and n below / not a
        // multiple of the wide lane count.
        for (m, k, n) in [
            (0, 7, 5),
            (3, 0, 5),
            (3, 7, 0),
            (0, 0, 0),
            (1, 1, 1),
            (2, 3, 7),
            (4, 2, 13),
        ] {
            let a = random_quant(m, k, &mut rng);
            let w = random_quant(k, n, &mut rng);
            let scalar = ScalarBackend.gemm_i8_acc(&a, &w);
            assert_eq!(scalar.len(), m * n);
            for fast in fast_backends() {
                assert_eq!(
                    scalar,
                    fast.gemm_i8_acc(&a, &w),
                    "{} shape {m}x{k}x{n}",
                    fast.name()
                );
            }
        }
    }

    #[test]
    fn backends_agree_past_the_24_bit_wrap() {
        // k = 600 saturated codes: |sum| = 127*127*600 = 9,677,400 > 2^23,
        // so the accumulator wraps and parity must hold on wrapped values.
        let ones = Matrix::from_fn(2, 600, |_, _| 127.0);
        let a = quant_unit(&ones);
        let w = quant_unit(&ones.transpose());
        let scalar = ScalarBackend.gemm_i8_acc(&a, &w);
        assert!(
            scalar.iter().any(|&v| v < 0),
            "test must actually exercise wrap-around"
        );
        for fast in fast_backends() {
            assert_eq!(scalar, fast.gemm_i8_acc(&a, &w), "{}", fast.name());
        }
    }

    #[test]
    fn into_path_is_bit_identical_and_reuses_capacity_for_all_backends() {
        let mut rng = StdRng::seed_from_u64(13);
        for kind in GemmBackendKind::ALL {
            let backend = kind.instantiate();
            let mut acc = Vec::new();
            // Warm up at the largest shape, then shrink: same bits, same
            // buffer.
            let warm_a = random_quant(4, 64, &mut rng);
            let warm_w = random_quant(64, 300, &mut rng);
            backend.gemm_i8_acc_into(&warm_a, &warm_w, &mut acc);
            assert_eq!(acc, backend.gemm_i8_acc(&warm_a, &warm_w), "{kind}");
            let ptr = acc.as_ptr();
            for (m, k, n) in [(2usize, 7usize, 9usize), (1, 1, 1), (0, 3, 2), (3, 0, 4)] {
                let a = random_quant(m, k, &mut rng);
                let w = random_quant(k, n, &mut rng);
                backend.gemm_i8_acc_into(&a, &w, &mut acc);
                assert_eq!(acc, backend.gemm_i8_acc(&a, &w), "{kind} {m}x{k}x{n}");
                assert_eq!(acc.as_ptr(), ptr, "{kind}: buffer must be reused");
            }
        }
    }

    #[test]
    #[should_panic(expected = "gemm shape mismatch")]
    fn blocked_shape_mismatch_panics_like_the_reference() {
        let a = quant_unit(&Matrix::zeros(2, 3));
        let w = quant_unit(&Matrix::zeros(4, 2));
        let backend: Box<dyn GemmBackend> = GemmBackendKind::Blocked.instantiate();
        let _ = backend.gemm_i8_acc(&a, &w);
    }

    #[test]
    #[should_panic(expected = "gemm shape mismatch")]
    fn wide_shape_mismatch_panics_like_the_reference() {
        let a = quant_unit(&Matrix::zeros(2, 3));
        let w = quant_unit(&Matrix::zeros(4, 2));
        let backend: Box<dyn GemmBackend> = GemmBackendKind::Wide.instantiate();
        let _ = backend.gemm_i8_acc(&a, &w);
    }

    #[test]
    fn kind_parses_case_insensitively() {
        assert_eq!("scalar".parse(), Ok(GemmBackendKind::Scalar));
        assert_eq!("SCALAR".parse(), Ok(GemmBackendKind::Scalar));
        assert_eq!(" Blocked\n".parse(), Ok(GemmBackendKind::Blocked));
        assert_eq!("WIDE".parse(), Ok(GemmBackendKind::Wide));
        assert_eq!("auto".parse(), Ok(GemmBackendKind::Auto));
        assert_eq!(
            " Auto:/some/table.json ".parse(),
            Ok(GemmBackendKind::Auto),
            "auto:<path> selects the dispatcher; the path is read separately"
        );
        assert!("simd".parse::<GemmBackendKind>().is_err());
    }

    #[test]
    fn dispatch_static_table_routes_by_size_class() {
        let auto = DispatchBackend::built_in();
        // The five committed bench shapes, routed per the measured
        // winners in results/baseline/BENCH_kernels.json.
        for (m, k, n, want) in [
            (1usize, 64usize, 16usize, GemmBackendKind::Wide), // n lo: controller head
            (4, 686, 32, GemmBackendKind::Wide),               // k hi, n mid: featurizer
            (16, 256, 256, GemmBackendKind::Blocked),          // planner prefill
            (1, 512, 128, GemmBackendKind::Blocked),           // planner decode
            (4, 32, 32, GemmBackendKind::Blocked),             // attention products
        ] {
            assert_eq!(
                auto.lut[dispatch::bucket(m, k, n)],
                want,
                "shape {m}x{k}x{n}"
            );
            assert_eq!(
                auto.select(
                    &quant_unit(&Matrix::zeros(m, k)),
                    &quant_unit(&Matrix::zeros(k, n))
                )
                .name(),
                want.name(),
                "select() must agree with the lut for {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn dispatch_rejects_auto_nesting_but_overlays_partial_tables() {
        let nested = dispatch::RawTable {
            version: dispatch::TABLE_VERSION,
            rules: vec![dispatch::RawRule {
                op: "gemm_i8".to_string(),
                m: None,
                k: None,
                n: None,
                backend: "auto".to_string(),
            }],
        };
        assert!(
            DispatchBackend::from_table(&nested).is_err(),
            "auto must not route to itself"
        );

        // A partial table only overrides the buckets it names; everything
        // else keeps the static defaults.
        let partial = dispatch::RawTable {
            version: dispatch::TABLE_VERSION,
            rules: vec![dispatch::RawRule {
                op: "gemm_i8".to_string(),
                m: None,
                k: None,
                n: Some(dispatch::Band::Lo),
                backend: "scalar".to_string(),
            }],
        };
        let auto = DispatchBackend::from_table(&partial).expect("partial tables resolve");
        assert_eq!(
            auto.lut[dispatch::bucket(1, 64, 16)],
            GemmBackendKind::Scalar
        );
        assert_eq!(
            auto.lut[dispatch::bucket(4, 686, 32)],
            GemmBackendKind::Wide,
            "uncovered buckets keep the static table"
        );
    }

    #[test]
    fn dispatch_resolve_falls_back_on_missing_and_corrupt_tables() {
        let dir = std::env::temp_dir().join(format!("create-i8-dispatch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let corrupt = dir.join("corrupt.json");
        std::fs::write(&corrupt, "{\"version\": 1, \"rules\": [{\"op\": tru").expect("write");
        let cache = dir.join("unused-cache.json");
        // Explicit-but-corrupt table → static, never a panic.
        assert_eq!(
            DispatchBackend::resolve(Some(&corrupt), false, &cache),
            DispatchBackend::built_in()
        );
        // Explicit-but-missing table → static.
        assert_eq!(
            DispatchBackend::resolve(Some(&dir.join("nope.json")), false, &cache),
            DispatchBackend::built_in()
        );
        // Autotune enabled but the cache is corrupt → static, and the
        // corrupt cache is left in place for inspection (never
        // re-measured, never deleted, never aborts).
        assert_eq!(
            DispatchBackend::resolve(None, true, &corrupt),
            DispatchBackend::built_in()
        );
        assert!(corrupt.exists(), "fallback must not delete the evidence");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn autotune_measures_writes_cache_and_reloads_identically() {
        let dir = std::env::temp_dir().join(format!("create-i8-autotune-{}", std::process::id()));
        let cache = dir.join(I8_AUTOTUNE_FILE);
        std::fs::remove_file(&cache).ok();
        let first = DispatchBackend::resolve(None, true, &cache);
        assert!(cache.exists(), "one-shot autotune must persist its table");
        let reloaded = DispatchBackend::resolve(None, true, &cache);
        assert_eq!(first, reloaded, "cache reload must reproduce the router");
        // Whatever won, the routed results stay bit-identical to scalar.
        let mut rng = StdRng::seed_from_u64(17);
        let a = random_quant(4, 33, &mut rng);
        let w = random_quant(33, 20, &mut rng);
        assert_eq!(first.gemm_i8_acc(&a, &w), ScalarBackend.gemm_i8_acc(&a, &w));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_env_falls_back_with_validation() {
        assert_eq!(GemmBackendKind::parse_env(None), GemmBackendKind::default());
        assert_eq!(
            GemmBackendKind::parse_env(Some("")),
            GemmBackendKind::default()
        );
        assert_eq!(
            GemmBackendKind::parse_env(Some("  \t")),
            GemmBackendKind::default()
        );
        assert_eq!(
            GemmBackendKind::parse_env(Some("definitely-not-a-backend")),
            GemmBackendKind::default()
        );
        assert_eq!(
            GemmBackendKind::parse_env(Some("sCaLaR")),
            GemmBackendKind::Scalar
        );
        assert_eq!(
            GemmBackendKind::parse_env(Some("blocked")),
            GemmBackendKind::Blocked
        );
    }

    #[test]
    fn names_round_trip_through_from_str() {
        for kind in GemmBackendKind::ALL {
            assert_eq!(kind.name().parse(), Ok(kind));
            assert_eq!(kind.instantiate().name(), kind.name());
            assert_eq!(kind.to_string(), kind.name());
        }
    }
}
