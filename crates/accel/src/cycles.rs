//! Analytic cycle/latency model of the accelerator (paper Sec. 6.1).
//!
//! The paper models cycle-level behaviour with SCALE-Sim on a platform of
//! 128×128 weight-stationary PE arrays at a 2 ns clock. We substitute the
//! standard weight-stationary analytic tiling model: every `K×N` weight
//! tile is loaded once (array-height cycles), then `M` input rows stream
//! through with a pipeline-drain tail. Latencies for Table 3 come from the
//! reference model workloads.
//!
//! Cycle counts are a function of GEMM shape and array geometry only —
//! they model the simulated hardware, not the host — so they are
//! identical for every [`GemmBackend`](crate::gemm::GemmBackend).

/// Geometry and clock of the accelerator platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayConfig {
    /// PEs per array edge (128 in the paper).
    pub dim: usize,
    /// Number of parallel systolic arrays on the chip.
    pub arrays: usize,
    /// Clock period in nanoseconds.
    pub clock_ns: f64,
}

impl Default for ArrayConfig {
    fn default() -> Self {
        Self {
            dim: 128,
            arrays: 9,
            clock_ns: 2.0,
        }
    }
}

impl ArrayConfig {
    /// Peak throughput in tera-operations per second (2 ops per MAC).
    pub fn peak_tops(&self) -> f64 {
        let macs_per_cycle = (self.dim * self.dim * self.arrays) as f64;
        macs_per_cycle * 2.0 / self.clock_ns / 1e3
    }

    /// Cycles for one `M×K×N` GEMM on a single array (weight-stationary).
    pub fn gemm_cycles(&self, m: usize, k: usize, n: usize) -> u64 {
        if m == 0 || k == 0 || n == 0 {
            return 0;
        }
        let d = self.dim;
        let k_tiles = k.div_ceil(d) as u64;
        let n_tiles = n.div_ceil(d) as u64;
        // Per weight tile: d cycles to preload, m cycles streaming, and a
        // 2d-cycle pipeline fill/drain.
        let per_tile = d as u64 + m as u64 + 2 * d as u64;
        k_tiles * n_tiles * per_tile
    }

    /// Wall-clock seconds for `macs` multiply-accumulates at utilization
    /// `util` spread over all arrays.
    pub fn latency_for_macs(&self, macs: f64, util: f64) -> f64 {
        assert!(util > 0.0 && util <= 1.0, "utilization must be in (0, 1]");
        let macs_per_cycle = (self.dim * self.dim * self.arrays) as f64 * util;
        let cycles = macs / macs_per_cycle;
        cycles * self.clock_ns * 1e-9
    }

    /// Utilization of one GEMM: useful MACs over occupied PE-cycles.
    pub fn gemm_utilization(&self, m: usize, k: usize, n: usize) -> f64 {
        let cycles = self.gemm_cycles(m, k, n);
        if cycles == 0 {
            return 0.0;
        }
        let useful = (m as f64) * (k as f64) * (n as f64);
        let capacity = cycles as f64 * (self.dim * self.dim) as f64;
        (useful / capacity).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_platform_peaks_near_144_tops() {
        let cfg = ArrayConfig::default();
        let tops = cfg.peak_tops();
        assert!(
            (140.0..155.0).contains(&tops),
            "expected ~144 TOPS (Table 3), got {tops}"
        );
    }

    #[test]
    fn gemm_cycles_grow_with_every_dimension() {
        let cfg = ArrayConfig::default();
        let base = cfg.gemm_cycles(64, 256, 256);
        assert!(cfg.gemm_cycles(128, 256, 256) > base);
        assert!(cfg.gemm_cycles(64, 512, 256) > base);
        assert!(cfg.gemm_cycles(64, 256, 512) > base);
    }

    #[test]
    fn empty_gemm_takes_no_cycles() {
        let cfg = ArrayConfig::default();
        assert_eq!(cfg.gemm_cycles(0, 10, 10), 0);
    }

    #[test]
    fn big_square_gemm_utilization_is_high() {
        let cfg = ArrayConfig::default();
        let u = cfg.gemm_utilization(1024, 1024, 1024);
        assert!(u > 0.6, "large GEMM should utilize the array well: {u}");
    }

    #[test]
    fn skinny_gemm_utilization_is_low() {
        let cfg = ArrayConfig::default();
        let u = cfg.gemm_utilization(1, 128, 128);
        assert!(u < 0.05, "single-row GEMM wastes the array: {u}");
    }

    #[test]
    fn latency_is_linear_in_macs() {
        let cfg = ArrayConfig::default();
        let t1 = cfg.latency_for_macs(1e9, 0.5);
        let t2 = cfg.latency_for_macs(2e9, 0.5);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }
}
