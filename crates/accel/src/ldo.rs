//! Digital low-dropout regulator model (paper Sec. 5.3, Table 2).
//!
//! The paper's distributed LDO (based on an event-driven 22 nm design)
//! scales the PE-array supply from 0.6 V to 0.9 V in 10 mV steps with a
//! 90 ns / 50 mV transient response and 99.8% peak current efficiency.
//! This model reproduces the externally visible behaviour: quantized
//! output levels, bounded slew, per-transition latency/energy accounting,
//! and the resulting worst-case switching latency reported in Table 3.

use crate::timing::{V_MIN, V_NOMINAL};

/// Output voltage step (V).
pub const V_STEP: f64 = 0.010;

/// Transient response: seconds per volt of transition.
pub const SLEW_S_PER_V: f64 = 90e-9 / 0.050;

/// Peak current efficiency at maximum load.
pub const PEAK_EFFICIENCY: f64 = 0.998;

/// Maximum load current (A), from Table 2.
pub const I_LOAD_MAX: f64 = 15.2;

/// Effective decoupling capacitance charged on a transition (F); sets the
/// (negligible) switching energy.
const C_SWITCH: f64 = 40e-9;

/// A digital LDO regulating one voltage rail.
///
/// # Example
///
/// ```
/// use create_accel::ldo::Ldo;
/// let mut ldo = Ldo::new();
/// let t = ldo.set_target(0.75);
/// assert!(ldo.output() == 0.75);
/// assert!(t > 0.0 && t < 1e-6, "transition should settle in sub-µs");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ldo {
    output: f64,
    switches: u64,
    total_settle_s: f64,
    max_settle_s: f64,
    switch_energy_j: f64,
}

impl Default for Ldo {
    fn default() -> Self {
        Self::new()
    }
}

impl Ldo {
    /// Creates an LDO resting at the nominal voltage.
    pub fn new() -> Self {
        Self {
            output: V_NOMINAL,
            switches: 0,
            total_settle_s: 0.0,
            max_settle_s: 0.0,
            switch_energy_j: 0.0,
        }
    }

    /// Quantizes `v` onto the 10 mV grid within `[V_MIN, V_NOMINAL]`.
    pub fn quantize(v: f64) -> f64 {
        let clamped = v.clamp(V_MIN, V_NOMINAL);
        (clamped / V_STEP).round() * V_STEP
    }

    /// Current output voltage (V).
    pub fn output(&self) -> f64 {
        self.output
    }

    /// Number of level transitions performed.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Total time spent slewing (s).
    pub fn total_settle_time(&self) -> f64 {
        self.total_settle_s
    }

    /// Worst single transition latency observed (s).
    pub fn max_settle_time(&self) -> f64 {
        self.max_settle_s
    }

    /// Energy dissipated by transitions so far (J).
    pub fn switching_energy(&self) -> f64 {
        self.switch_energy_j
    }

    /// Sets a new target voltage; returns the transition settle time in
    /// seconds (0 when the quantized target equals the current level).
    pub fn set_target(&mut self, v: f64) -> f64 {
        let target = Self::quantize(v);
        let delta = (target - self.output).abs();
        if delta < V_STEP / 2.0 {
            return 0.0;
        }
        let settle = delta * SLEW_S_PER_V;
        self.switches += 1;
        self.total_settle_s += settle;
        self.max_settle_s = self.max_settle_s.max(settle);
        // E = C · V · ΔV for the charge moved on the rail.
        self.switch_energy_j += C_SWITCH * target.max(self.output) * delta;
        self.output = target;
        settle
    }

    /// Worst-case transition latency across the full range (s) — the
    /// "switching latency" figure of Table 3.
    pub fn worst_case_latency() -> f64 {
        (V_NOMINAL - V_MIN) * SLEW_S_PER_V
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_nominal() {
        let ldo = Ldo::new();
        assert_eq!(ldo.output(), V_NOMINAL);
        assert_eq!(ldo.switches(), 0);
    }

    #[test]
    fn quantizes_to_10mv_grid() {
        assert!((Ldo::quantize(0.7512) - 0.75).abs() < 1e-12);
        assert!((Ldo::quantize(0.7449) - 0.74).abs() < 1e-12);
    }

    #[test]
    fn clamps_to_operating_range() {
        assert_eq!(Ldo::quantize(1.5), V_NOMINAL);
        assert_eq!(Ldo::quantize(0.2), V_MIN);
    }

    #[test]
    fn settle_time_matches_spec() {
        let mut ldo = Ldo::new();
        // 0.9 -> 0.85 is a 50 mV transition: 90 ns per the spec.
        let t = ldo.set_target(0.85);
        assert!((t - 90e-9).abs() < 1e-12, "got {t}");
    }

    #[test]
    fn worst_case_latency_is_sub_microsecond() {
        // 0.9 -> 0.6 full swing: 300 mV at 90 ns / 50 mV = 540 ns (Table 3).
        let t = Ldo::worst_case_latency();
        assert!((t - 540e-9).abs() < 1e-12, "got {t}");
    }

    #[test]
    fn no_op_when_target_equals_output() {
        let mut ldo = Ldo::new();
        ldo.set_target(0.8);
        let before = ldo.switches();
        let t = ldo.set_target(0.8001);
        assert_eq!(t, 0.0);
        assert_eq!(ldo.switches(), before);
    }

    #[test]
    fn accounting_accumulates() {
        let mut ldo = Ldo::new();
        ldo.set_target(0.8);
        ldo.set_target(0.7);
        ldo.set_target(0.9);
        assert_eq!(ldo.switches(), 3);
        assert!(ldo.total_settle_time() > 0.0);
        assert!(ldo.max_settle_time() >= 90e-9);
        assert!(ldo.switching_energy() > 0.0);
    }
}
