//! Identification of where a GEMM sits in the system.
//!
//! Every accelerator call is tagged with a [`LayerCtx`] so that error
//! injection can be targeted per component (Fig. 5 e–h), energy can be
//! attributed per unit (Fig. 18), and profiles can be captured per layer.

use std::fmt;

/// Which model a GEMM belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    /// The LLM-based high-level planner.
    Planner,
    /// The RL-based low-level controller.
    Controller,
    /// The entropy predictor (always runs at nominal voltage).
    Predictor,
}

impl Unit {
    /// All units, in reporting order.
    pub const ALL: [Unit; 3] = [Unit::Planner, Unit::Controller, Unit::Predictor];
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Unit::Planner => "planner",
            Unit::Controller => "controller",
            Unit::Predictor => "predictor",
        };
        f.write_str(s)
    }
}

/// Network component executing a GEMM (paper Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Attention query projection.
    Q,
    /// Attention key projection.
    K,
    /// Attention value projection.
    V,
    /// Attention output projection (pre-norm in the planner).
    O,
    /// LLM MLP gate projection.
    Gate,
    /// LLM MLP up projection.
    Up,
    /// LLM MLP down projection (pre-norm in the planner).
    Down,
    /// Controller MLP first layer.
    Fc1,
    /// Controller MLP second layer.
    Fc2,
    /// Output / policy head.
    Head,
    /// Embedding or input projection.
    Embed,
    /// Convolution layer (entropy predictor).
    Conv,
}

impl Component {
    /// Whether the component's output feeds directly into a normalization
    /// layer via the residual stream (the vulnerable class in Sec. 4.1).
    pub fn feeds_normalization(self) -> bool {
        matches!(self, Component::O | Component::Down | Component::Fc2)
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Component::Q => "Q",
            Component::K => "K",
            Component::V => "V",
            Component::O => "O",
            Component::Gate => "Gate",
            Component::Up => "Up",
            Component::Down => "Down",
            Component::Fc1 => "FC1",
            Component::Fc2 => "FC2",
            Component::Head => "Head",
            Component::Embed => "Embed",
            Component::Conv => "Conv",
        };
        f.write_str(s)
    }
}

/// Full context for one accelerator GEMM call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerCtx {
    /// Owning model.
    pub unit: Unit,
    /// Component within the transformer block.
    pub component: Component,
    /// Block index (0-based); head/embedding layers use the block they
    /// belong to or 0.
    pub layer: usize,
}

impl LayerCtx {
    /// Convenience constructor.
    pub fn new(unit: Unit, component: Component, layer: usize) -> Self {
        Self {
            unit,
            component,
            layer,
        }
    }
}

impl fmt::Display for LayerCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}[{}]", self.unit, self.component, self.layer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pre_norm_components_are_flagged() {
        assert!(Component::O.feeds_normalization());
        assert!(Component::Down.feeds_normalization());
        assert!(!Component::K.feeds_normalization());
        assert!(!Component::Q.feeds_normalization());
    }

    #[test]
    fn display_is_compact() {
        let ctx = LayerCtx::new(Unit::Planner, Component::Down, 3);
        assert_eq!(ctx.to_string(), "planner/Down[3]");
    }
}
