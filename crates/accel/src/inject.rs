//! Transient-error injection into GEMM accumulator outputs.
//!
//! Mirrors the paper's dynamic error-injection framework (Sec. 3.2): inputs
//! to GEMMs are quantized to INT8 and *bit flips are applied to the 24-bit
//! accumulator outputs*. Two error models are provided:
//!
//! * [`ErrorModel::Uniform`] — every accumulator bit flips i.i.d. with a
//!   given BER; used for the resilience characterization (Sec. 4) to stay
//!   independent of hardware specifics.
//! * [`ErrorModel::Voltage`] — per-bit probabilities follow the
//!   [`TimingModel`] at the accelerator's present voltage; used for the
//!   energy experiments (Sec. 6) and the Fig. 19 comparison.
//!
//! # Scale model
//!
//! The paper injects into a 7.9 B-parameter planner whose single inference
//! produces ~1e9 accumulator outputs; our proxy planner produces ~1e5.
//! Cliff positions on the BER axis depend on *flips per inference*, so the
//! injector accepts an `inference_scale`: each proxy element stands for
//! `scale` reference elements and is corrupted with probability
//! `1 − (1 − p_elem)^scale`. With `scale = 1` the injector is
//! fraction-faithful (used for the controller and all unit tests); with the
//! planner's reference/proxy ratio it is count-faithful, keeping the
//! planner's failure cliff where the paper reports it. See DESIGN.md.

use crate::ctx::{Component, LayerCtx};
use crate::timing::{TimingModel, ACC_BITS};
use rand::Rng;

/// Mask of the 24 accumulator bits.
const ACC_MASK: i32 = 0x00FF_FFFF;

/// Flips bit `bit` of a 24-bit two's-complement accumulator value and
/// sign-extends the result back into an `i32`.
///
/// # Panics
///
/// Panics in debug builds if `bit >= 24`.
#[inline]
pub fn flip_acc_bit(value: i32, bit: u32) -> i32 {
    debug_assert!((bit as usize) < ACC_BITS);
    let flipped = (value & ACC_MASK) ^ (1 << bit);
    // Sign-extend from bit 23.
    (flipped << 8) >> 8
}

/// Statistical error model for accumulator bit flips.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorModel {
    /// Hardware-agnostic model: every bit flips with probability `ber` and
    /// the flipped bit position is uniform over the 24 accumulator bits.
    Uniform {
        /// Per-bit flip probability.
        ber: f64,
    },
    /// Hardware-derived model: per-bit probabilities from the
    /// [`TimingModel`] at the current supply voltage.
    Voltage {
        /// The calibrated timing model.
        model: TimingModel,
    },
}

impl ErrorModel {
    /// Per-bit flip probabilities under this model at voltage `v`.
    pub fn bit_probs(&self, v: f64) -> [f64; ACC_BITS] {
        match self {
            ErrorModel::Uniform { ber } => [*ber; ACC_BITS],
            ErrorModel::Voltage { model } => model.bit_error_probs(v),
        }
    }

    /// Aggregate per-bit BER at voltage `v`.
    pub fn aggregate_ber(&self, v: f64) -> f64 {
        match self {
            ErrorModel::Uniform { ber } => *ber,
            ErrorModel::Voltage { model } => model.aggregate_ber(v),
        }
    }
}

/// Which GEMMs receive injected errors.
///
/// The characterization study (Sec. 4) injects into one model or one
/// component at a time; deployment experiments (Sec. 6) inject everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InjectionTarget {
    /// Inject into every GEMM.
    #[default]
    All,
    /// Inject only into GEMMs of the given component type.
    Component(Component),
    /// Inject only into GEMMs of the given layer index.
    Layer(usize),
    /// Inject nowhere (golden run with metering still active).
    None,
}

impl InjectionTarget {
    /// Whether a GEMM with context `ctx` should be injected.
    pub fn matches(&self, ctx: LayerCtx) -> bool {
        match self {
            InjectionTarget::All => true,
            InjectionTarget::Component(c) => ctx.component == *c,
            InjectionTarget::Layer(l) => ctx.layer == *l,
            InjectionTarget::None => false,
        }
    }
}

/// Outcome counters for one injection pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionStats {
    /// Elements corrupted.
    pub corrupted: u64,
    /// Elements examined.
    pub total: u64,
}

/// Stateless injection engine; randomness comes from the caller's RNG so
/// that trials are reproducible under any parallel schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Injector {
    model: ErrorModel,
    target: InjectionTarget,
    inference_scale: f64,
}

impl Injector {
    /// Creates an injector.
    ///
    /// # Panics
    ///
    /// Panics if `inference_scale < 1.0`.
    pub fn new(model: ErrorModel, target: InjectionTarget, inference_scale: f64) -> Self {
        assert!(
            inference_scale >= 1.0,
            "inference scale must be >= 1, got {inference_scale}"
        );
        Self {
            model,
            target,
            inference_scale,
        }
    }

    /// The statistical error model.
    pub fn model(&self) -> ErrorModel {
        self.model
    }

    /// The injection target filter.
    pub fn target(&self) -> InjectionTarget {
        self.target
    }

    /// Reference-to-proxy element scale.
    pub fn inference_scale(&self) -> f64 {
        self.inference_scale
    }

    /// Probability that a single proxy element is corrupted at voltage `v`.
    pub fn element_corruption_prob(&self, v: f64) -> f64 {
        let probs = self.model.bit_probs(v);
        // P(element clean) = prod_b (1 - p_b); use log1p for precision.
        let log_clean: f64 = probs.iter().map(|&p| (1.0 - p.min(0.999_999)).ln()).sum();
        let p_elem = 1.0 - log_clean.exp();
        1.0 - (1.0 - p_elem).powf(self.inference_scale)
    }

    /// Injects bit flips into the accumulator buffer `acc` for a GEMM with
    /// context `ctx` at voltage `v`. Returns how many elements were hit.
    pub fn inject(
        &self,
        acc: &mut [i32],
        ctx: LayerCtx,
        v: f64,
        rng: &mut impl Rng,
    ) -> InjectionStats {
        let total = acc.len() as u64;
        if acc.is_empty() || !self.target.matches(ctx) {
            return InjectionStats {
                corrupted: 0,
                total,
            };
        }
        let p = self.element_corruption_prob(v);
        if p <= 0.0 {
            return InjectionStats {
                corrupted: 0,
                total,
            };
        }
        let probs = self.model.bit_probs(v);
        let corrupted = if p < 0.02 {
            // Sparse regime: draw the corrupted count, then place flips.
            let lambda = p * acc.len() as f64;
            let k = sample_poisson(lambda, rng).min(acc.len() as u64);
            for _ in 0..k {
                let idx = rng.random_range(0..acc.len());
                let bit = sample_bit(&probs, rng);
                acc[idx] = flip_acc_bit(acc[idx], bit);
            }
            k
        } else {
            // Dense regime: per-element Bernoulli.
            let mut hit = 0;
            for value in acc.iter_mut() {
                if rng.random_range(0.0..1.0) < p {
                    let bit = sample_bit(&probs, rng);
                    *value = flip_acc_bit(*value, bit);
                    hit += 1;
                }
            }
            hit
        };
        InjectionStats { corrupted, total }
    }
}

/// Samples a bit index proportional to `probs`.
fn sample_bit(probs: &[f64; ACC_BITS], rng: &mut impl Rng) -> u32 {
    let total: f64 = probs.iter().sum();
    if total <= 0.0 {
        return (ACC_BITS - 1) as u32;
    }
    let mut r = rng.random_range(0.0..total);
    for (b, &p) in probs.iter().enumerate() {
        if r < p {
            return b as u32;
        }
        r -= p;
    }
    (ACC_BITS - 1) as u32
}

/// Samples from Poisson(λ): Knuth's method for small λ, normal
/// approximation for large λ.
pub fn sample_poisson(lambda: f64, rng: &mut impl Rng) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.random_range(0.0..1.0f64);
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // numerically impossible, but stay total
            }
        }
    }
    // Normal approximation with continuity correction.
    let z = sample_standard_normal(rng);
    let v = lambda + lambda.sqrt() * z + 0.5;
    if v < 0.0 {
        0
    } else {
        v as u64
    }
}

/// Box–Muller standard normal sample.
pub fn sample_standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Unit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> LayerCtx {
        LayerCtx::new(Unit::Controller, Component::Fc1, 0)
    }

    #[test]
    fn flip_bit_roundtrips() {
        for v in [-12345, 0, 77, 8_388_607, -8_388_608] {
            for bit in [0u32, 5, 12, 23] {
                let flipped = flip_acc_bit(v, bit);
                assert_ne!(flipped, v);
                assert_eq!(flip_acc_bit(flipped, bit), v);
            }
        }
    }

    #[test]
    fn flipping_bit_23_changes_sign_region() {
        let v = 100;
        let flipped = flip_acc_bit(v, 23);
        assert!(
            flipped < 0,
            "setting the sign bit must go negative: {flipped}"
        );
        assert_eq!(flipped, 100 - 0x0080_0000);
    }

    #[test]
    fn small_flips_have_small_magnitude() {
        let v = 1000;
        let flipped = flip_acc_bit(v, 2);
        assert!((flipped - v).abs() <= 4);
    }

    #[test]
    fn zero_ber_injects_nothing() {
        let inj = Injector::new(ErrorModel::Uniform { ber: 0.0 }, InjectionTarget::All, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut acc = vec![5i32; 1000];
        let stats = inj.inject(&mut acc, ctx(), 0.9, &mut rng);
        assert_eq!(stats.corrupted, 0);
        assert!(acc.iter().all(|&v| v == 5));
    }

    #[test]
    fn corruption_rate_matches_expectation() {
        let ber = 1e-3;
        let inj = Injector::new(ErrorModel::Uniform { ber }, InjectionTarget::All, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000usize;
        let mut acc = vec![0i32; n];
        let stats = inj.inject(&mut acc, ctx(), 0.9, &mut rng);
        let expect = (1.0 - (1.0 - ber).powi(24)) * n as f64;
        let got = stats.corrupted as f64;
        assert!(
            (got - expect).abs() < 5.0 * expect.sqrt() + 10.0,
            "got {got}, expected ~{expect}"
        );
    }

    #[test]
    fn inference_scale_multiplies_corruption() {
        let ber = 1e-6;
        let base = Injector::new(ErrorModel::Uniform { ber }, InjectionTarget::All, 1.0);
        let scaled = Injector::new(ErrorModel::Uniform { ber }, InjectionTarget::All, 100.0);
        let p0 = base.element_corruption_prob(0.9);
        let p1 = scaled.element_corruption_prob(0.9);
        assert!((p1 / p0 - 100.0).abs() < 1.0, "scaling off: {p0} {p1}");
    }

    #[test]
    fn corruption_probability_saturates_below_one() {
        let inj = Injector::new(
            ErrorModel::Uniform { ber: 0.05 },
            InjectionTarget::All,
            10_000.0,
        );
        let p = inj.element_corruption_prob(0.9);
        assert!(p <= 1.0 && p > 0.99);
    }

    #[test]
    fn component_target_filters_injection() {
        let inj = Injector::new(
            ErrorModel::Uniform { ber: 0.5 },
            InjectionTarget::Component(Component::K),
            1.0,
        );
        let mut rng = StdRng::seed_from_u64(3);
        let mut acc = vec![7i32; 100];
        let stats = inj.inject(&mut acc, ctx(), 0.9, &mut rng);
        assert_eq!(stats.corrupted, 0, "FC1 must be skipped when targeting K");
        let k_ctx = LayerCtx::new(Unit::Controller, Component::K, 0);
        let stats = inj.inject(&mut acc, k_ctx, 0.9, &mut rng);
        assert!(stats.corrupted > 0);
    }

    #[test]
    fn voltage_model_injects_mostly_high_bits_at_085() {
        let inj = Injector::new(
            ErrorModel::Voltage {
                model: TimingModel::new(),
            },
            InjectionTarget::All,
            // Scale up so we observe enough flips at the low 0.85 V BER.
            1e6,
        );
        let mut rng = StdRng::seed_from_u64(4);
        let mut acc = vec![0i32; 50_000];
        inj.inject(&mut acc, ctx(), 0.85, &mut rng);
        let mut high = 0u64;
        let mut low = 0u64;
        for &v in &acc {
            if v != 0 {
                let bits = (v & ACC_MASK) as u32;
                let top = 31 - bits.leading_zeros().min(31);
                if top >= 16 {
                    high += 1;
                } else {
                    low += 1;
                }
            }
        }
        assert!(high > 0, "expected some flips at 0.85 V with big scale");
        assert!(high >= 10 * low.max(1), "high {high} low {low}");
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(5);
        for &lambda in &[0.5f64, 5.0, 80.0] {
            let n = 3000;
            let sum: u64 = (0..n).map(|_| sample_poisson(lambda, &mut rng)).sum();
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < 0.15 * lambda + 0.1,
                "lambda {lambda}: mean {mean}"
            );
        }
    }
}
