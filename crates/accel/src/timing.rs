//! Voltage-dependent timing-error model (paper Sec. 3.1, Fig. 4a).
//!
//! The paper synthesizes an 8-bit-multiplier / 24-bit-accumulator systolic
//! array with a commercial 22 nm PDK (nominal 0.9 V, 2 ns clock) and
//! extracts per-bit timing-error rates with PrimeTime/HSPICE. We do not
//! have the PDK, so this module substitutes an analytic model calibrated to
//! the published curves:
//!
//! * **Path delay** to accumulator bit `b` grows with the carry-chain
//!   length, `d(b) ∝ m(b) = 0.55 + 0.4·(b+1)/24` of the clock period at
//!   nominal voltage, and scales with voltage via the alpha-power law
//!   `s(v) = ((v_nom − v_th)/(v − v_th))^α`.
//! * **Aggregate BER** follows the published voltage→BER relation: roughly
//!   one decade of BER per 20 mV below ~0.88 V, saturating near 2e-2 at
//!   deep undervolting (Fig. 1b / Fig. 4a).
//! * **Bit placement**: flip probability mass concentrates on bits at or
//!   above the first timing-violating bit `b_cut(v)`, which moves from bit
//!   ~24 (0.9 V, nothing violates) down to bit 0 (0.6 V, everything does).
//!   Higher bits therefore flip first and with large magnitude, matching
//!   the paper's observation.

/// Number of accumulator bits modeled (24-bit accumulators).
pub const ACC_BITS: usize = 24;

/// Nominal supply voltage (V).
pub const V_NOMINAL: f64 = 0.9;

/// Minimum LDO output voltage (V).
pub const V_MIN: f64 = 0.6;

/// Threshold voltage for the alpha-power-law delay model (V).
const V_TH: f64 = 0.3;

/// Alpha-power-law exponent.
const ALPHA: f64 = 1.3;

/// Slope of log10(BER) per volt of undervolting.
const BER_DECADES_PER_VOLT: f64 = 50.0;

/// log10(BER) at nominal voltage (essentially error-free).
const BER_LOG10_AT_NOMINAL: f64 = -9.5;

/// BER saturation at deep undervolting.
const BER_LOG10_FLOOR: f64 = -1.7;

/// How sharply flip probability decays below the violating bit (in bits).
const BIT_DECAY: f64 = 2.5;

/// The voltage→timing-error characteristics of the synthesized array.
///
/// # Example
///
/// ```
/// use create_accel::timing::TimingModel;
/// let t = TimingModel::default();
/// assert!(t.aggregate_ber(0.9) < 1e-8);
/// assert!(t.aggregate_ber(0.75) > 1e-4);
/// // Monotone: lower voltage, more errors.
/// assert!(t.aggregate_ber(0.7) > t.aggregate_ber(0.8));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimingModel {
    _priv: (),
}

impl TimingModel {
    /// Creates the calibrated 22 nm model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Relative delay multiplier at voltage `v` (1.0 at nominal).
    pub fn delay_scale(&self, v: f64) -> f64 {
        let v = v.max(V_TH + 0.05);
        ((V_NOMINAL - V_TH) / (v - V_TH)).powf(ALPHA)
    }

    /// Nominal-voltage path delay of accumulator bit `b` as a fraction of
    /// the clock period.
    pub fn nominal_delay_fraction(&self, bit: usize) -> f64 {
        debug_assert!(bit < ACC_BITS);
        0.55 + 0.40 * (bit as f64 + 1.0) / ACC_BITS as f64
    }

    /// Index of the lowest accumulator bit whose worst-case path violates
    /// timing at voltage `v`; `ACC_BITS` if none does.
    pub fn first_violating_bit(&self, v: f64) -> usize {
        let s = self.delay_scale(v);
        for b in 0..ACC_BITS {
            if self.nominal_delay_fraction(b) * s > 1.0 {
                return b;
            }
        }
        ACC_BITS
    }

    /// The fractional (possibly negative) violating-bit threshold, used to
    /// place the flip-probability mass smoothly.
    fn violation_cut(&self, v: f64) -> f64 {
        // Solve m(b) * s(v) = 1 for continuous b.
        let s = self.delay_scale(v);
        let target = 1.0 / s;
        ((target - 0.55) / 0.40) * ACC_BITS as f64 - 1.0
    }

    /// Aggregate bit error rate (probability that any given accumulator bit
    /// of any given operation flips) at voltage `v`.
    pub fn aggregate_ber(&self, v: f64) -> f64 {
        let log10 =
            (BER_LOG10_AT_NOMINAL + BER_DECADES_PER_VOLT * (V_NOMINAL - v)).min(BER_LOG10_FLOOR);
        10f64.powf(log10)
    }

    /// Inverse of [`aggregate_ber`](Self::aggregate_ber): the highest
    /// voltage whose BER is at least `ber` (clamped to the LDO range).
    pub fn voltage_for_ber(&self, ber: f64) -> f64 {
        let log10 = ber.max(1e-30).log10();
        let v = V_NOMINAL - (log10 - BER_LOG10_AT_NOMINAL) / BER_DECADES_PER_VOLT;
        v.clamp(V_MIN, V_NOMINAL)
    }

    /// Per-bit flip probabilities at voltage `v`.
    ///
    /// The probabilities sum to `aggregate_ber(v) * ACC_BITS` (expected
    /// flipped bits per operation) and concentrate on the bits whose carry
    /// chains violate timing at `v`.
    pub fn bit_error_probs(&self, v: f64) -> [f64; ACC_BITS] {
        let total = self.aggregate_ber(v) * ACC_BITS as f64;
        let cut = self.violation_cut(v).min(ACC_BITS as f64 - 1.0);
        let mut weights = [0.0; ACC_BITS];
        let mut sum = 0.0;
        for (b, w) in weights.iter_mut().enumerate() {
            // Bits above the cut carry full weight; below it the weight
            // decays exponentially with distance (shorter carry chains).
            let x = (b as f64 - cut) / BIT_DECAY;
            *w = if x >= 0.0 { 1.0 } else { x.exp() };
            sum += *w;
        }
        let mut probs = [0.0; ACC_BITS];
        for (p, w) in probs.iter_mut().zip(weights) {
            *p = (total * w / sum).min(0.5);
        }
        probs
    }

    /// Expected flipped bits per operation at voltage `v` (the sum of the
    /// per-bit probabilities).
    pub fn flips_per_op(&self, v: f64) -> f64 {
        self.bit_error_probs(v).iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_voltage_is_nearly_error_free() {
        let t = TimingModel::new();
        assert!(t.aggregate_ber(0.9) < 1e-9);
        assert_eq!(t.first_violating_bit(0.9), ACC_BITS);
    }

    #[test]
    fn ber_is_monotone_decreasing_in_voltage() {
        let t = TimingModel::new();
        let mut prev = f64::INFINITY;
        let mut v = 0.60;
        while v < 0.901 {
            let ber = t.aggregate_ber(v);
            assert!(ber <= prev, "BER should not increase with voltage");
            prev = ber;
            v += 0.01;
        }
    }

    #[test]
    fn calibration_matches_paper_operating_points() {
        let t = TimingModel::new();
        // ~1e-7..1e-6 around 0.85 V; ~1e-4 around 0.80 V; saturation at 0.6 V.
        let b085 = t.aggregate_ber(0.85);
        assert!((1e-8..1e-5).contains(&b085), "0.85 V BER {b085}");
        let b080 = t.aggregate_ber(0.80);
        assert!((1e-6..1e-3).contains(&b080), "0.80 V BER {b080}");
        let b060 = t.aggregate_ber(0.60);
        assert!((1e-3..1e-1).contains(&b060), "0.60 V BER {b060}");
    }

    #[test]
    fn violating_bit_moves_down_with_voltage() {
        let t = TimingModel::new();
        let hi = t.first_violating_bit(0.85);
        let mid = t.first_violating_bit(0.75);
        let lo = t.first_violating_bit(0.62);
        assert!(hi > mid && mid > lo, "cut bits: {hi} {mid} {lo}");
        assert!(
            hi >= 16,
            "at 0.85 V only high bits should violate, got {hi}"
        );
    }

    #[test]
    fn high_bits_dominate_flip_probability() {
        let t = TimingModel::new();
        let probs = t.bit_error_probs(0.85);
        let high: f64 = probs[16..].iter().sum();
        let low: f64 = probs[..8].iter().sum();
        assert!(
            high > 20.0 * low.max(1e-30),
            "high bits should dominate at 0.85 V: high {high} low {low}"
        );
    }

    #[test]
    fn bit_probs_sum_to_expected_flips() {
        let t = TimingModel::new();
        for v in [0.65, 0.75, 0.85] {
            let sum: f64 = t.bit_error_probs(v).iter().sum();
            let expect = t.aggregate_ber(v) * ACC_BITS as f64;
            assert!(
                (sum - expect).abs() / expect < 0.05,
                "v={v}: sum {sum} vs {expect}"
            );
        }
    }

    #[test]
    fn voltage_for_ber_inverts_aggregate() {
        let t = TimingModel::new();
        for &ber in &[1e-7, 1e-5, 1e-3] {
            let v = t.voltage_for_ber(ber);
            let back = t.aggregate_ber(v);
            assert!(
                (back.log10() - ber.log10()).abs() < 0.1,
                "ber {ber} -> v {v} -> {back}"
            );
        }
    }

    #[test]
    fn delay_scale_grows_as_voltage_drops() {
        let t = TimingModel::new();
        assert!((t.delay_scale(0.9) - 1.0).abs() < 1e-9);
        assert!(t.delay_scale(0.6) > t.delay_scale(0.75));
        assert!(t.delay_scale(0.75) > 1.0);
    }
}
