//! Anomaly detection and clearance (paper Sec. 5.1, Fig. 8b).
//!
//! A row of comparator+multiplexer units at the systolic-array output stage
//! checks every requantized GEMM result against the known valid bound (127
//! times the offline output scaling factor). Out-of-range results — the
//! signature of a high-bit timing flip — are clamped to zero; in-range
//! values pass through unchanged. The residual (a dropped activation) is
//! left to the DNN's inherent fault tolerance.

/// Counters describing one anomaly-detection pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdStats {
    /// Values inspected.
    pub checked: u64,
    /// Values found out of range and cleared to zero.
    pub cleared: u64,
}

impl AdStats {
    /// Merges another pass into this one.
    pub fn merge(&mut self, other: AdStats) {
        self.checked += other.checked;
        self.cleared += other.cleared;
    }
}

/// Clamps out-of-bound accumulator values to zero.
///
/// `bound_acc` is the valid range expressed in accumulator units (the real
/// bound divided by the combined input×weight scale). Values with
/// `|v| > bound_acc` are anomalies.
///
/// Returns the pass statistics.
pub fn clear_anomalies(acc: &mut [i32], bound_acc: i64) -> AdStats {
    let mut cleared = 0u64;
    for v in acc.iter_mut() {
        if (*v as i64).abs() > bound_acc {
            *v = 0;
            cleared += 1;
        }
    }
    AdStats {
        checked: acc.len() as u64,
        cleared,
    }
}

/// Converts a real-valued bound into accumulator units, saturating safely.
pub fn bound_in_acc_units(bound_real: f32, combined_scale: f32) -> i64 {
    if combined_scale <= 0.0 || !bound_real.is_finite() {
        return i64::MAX;
    }
    let b = (bound_real as f64 / combined_scale as f64).ceil();
    if b >= i64::MAX as f64 {
        i64::MAX
    } else {
        b as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_pass_through() {
        let mut acc = vec![5, -100, 99, 0];
        let stats = clear_anomalies(&mut acc, 100);
        assert_eq!(acc, vec![5, -100, 99, 0]);
        assert_eq!(stats.cleared, 0);
        assert_eq!(stats.checked, 4);
    }

    #[test]
    fn out_of_range_values_are_cleared() {
        let mut acc = vec![5, 101, -200, 50];
        let stats = clear_anomalies(&mut acc, 100);
        assert_eq!(acc, vec![5, 0, 0, 50]);
        assert_eq!(stats.cleared, 2);
    }

    #[test]
    fn boundary_value_is_kept() {
        let mut acc = vec![100, -100];
        let stats = clear_anomalies(&mut acc, 100);
        assert_eq!(stats.cleared, 0);
        assert_eq!(acc, vec![100, -100]);
    }

    #[test]
    fn bound_conversion_scales_and_saturates() {
        assert_eq!(bound_in_acc_units(10.0, 0.1), 100);
        assert_eq!(bound_in_acc_units(1.0, 0.0), i64::MAX);
        assert_eq!(bound_in_acc_units(f32::INFINITY, 0.5), i64::MAX);
        assert_eq!(bound_in_acc_units(1e30, 1e-30), i64::MAX);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = AdStats {
            checked: 10,
            cleared: 2,
        };
        a.merge(AdStats {
            checked: 5,
            cleared: 1,
        });
        assert_eq!(a.checked, 15);
        assert_eq!(a.cleared, 3);
    }
}
