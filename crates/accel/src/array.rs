//! Functional model of the INT8 systolic-array GEMM datapath.
//!
//! Weights are held stationary in the 128×128 PE grid, inputs stream
//! horizontally, and partial sums accumulate down the columns into 24-bit
//! accumulators (paper Fig. 8b). This module computes the *values* that
//! datapath would produce — including 24-bit wrap-around on overflow — so
//! that bit-flip injection and anomaly detection act on bit-exact state.
//!
//! [`gemm_i8_acc`] is the *reference* implementation: it defines the bit
//! pattern every [`GemmBackend`](crate::gemm::GemmBackend) must reproduce.
//! The accelerator facade dispatches through [`crate::gemm`], which wraps
//! this loop as `ScalarBackend` and ships a faster bit-identical
//! `BlockedBackend` beside it.

use create_tensor::QuantMatrix;

/// Mask selecting the 24 accumulator bits.
const ACC_MASK: i32 = 0x00FF_FFFF;

/// Wraps a wide sum into 24-bit two's complement (sign-extended `i32`).
#[inline]
pub fn wrap_acc24(v: i64) -> i32 {
    wrap_acc24_i32(v as i32)
}

/// Wraps an `i32` running sum (exact mod 2³²) into 24-bit two's
/// complement. Backends that accumulate in `i32` lanes use this; it
/// agrees with [`wrap_acc24`] because the wrap only observes the low 24
/// bits.
#[inline]
pub fn wrap_acc24_i32(v: i32) -> i32 {
    ((v & ACC_MASK) << 8) >> 8
}

/// Panics with the canonical `gemm shape mismatch` message if inner
/// dimensions disagree. Every backend routes its shape check here so the
/// panic is uniform no matter which implementation is selected.
#[inline]
pub fn check_gemm_shapes(a: &QuantMatrix, w: &QuantMatrix) {
    assert_eq!(
        a.cols(),
        w.rows(),
        "gemm shape mismatch: {}x{} @ {}x{}",
        a.rows(),
        a.cols(),
        w.rows(),
        w.cols()
    );
}

/// Computes the INT8 GEMM `a (m×k) @ w (k×n)` with 24-bit accumulation.
///
/// Returns the row-major accumulator buffer of length `m·n`, each entry a
/// sign-extended 24-bit value exactly as the array would emit it.
///
/// # Panics
///
/// Panics if inner dimensions disagree.
pub fn gemm_i8_acc(a: &QuantMatrix, w: &QuantMatrix) -> Vec<i32> {
    check_gemm_shapes(a, w);
    let (m, k, n) = (a.rows(), a.cols(), w.cols());
    let mut acc = vec![0i64; m * n];
    let w_data = w.as_slice();
    for i in 0..m {
        let a_row = a.row(i);
        let out_row = &mut acc[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate().take(k) {
            if av == 0 {
                continue;
            }
            let av = av as i64;
            let w_row = &w_data[kk * n..(kk + 1) * n];
            for (o, &wv) in out_row.iter_mut().zip(w_row) {
                *o += av * wv as i64;
            }
        }
    }
    acc.into_iter().map(wrap_acc24).collect()
}

/// [`gemm_i8_acc`] into a caller-provided accumulator buffer.
///
/// Accumulates in `i32` with wrapping adds — exact modulo 2³², which is
/// all the final 24-bit wrap can observe — so the result is bit-identical
/// to the `i64` reference for every input while reusing `acc`'s capacity
/// (zero heap allocation once warmed up at the largest `m·n`).
///
/// # Panics
///
/// Panics if inner dimensions disagree.
pub fn gemm_i8_acc_into(a: &QuantMatrix, w: &QuantMatrix, acc: &mut Vec<i32>) {
    check_gemm_shapes(a, w);
    let (m, k, n) = (a.rows(), a.cols(), w.cols());
    acc.clear();
    acc.resize(m * n, 0);
    let w_data = w.as_slice();
    for i in 0..m {
        let a_row = a.row(i);
        let out_row = &mut acc[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate().take(k) {
            if av == 0 {
                continue;
            }
            let av = av as i32;
            let w_row = &w_data[kk * n..(kk + 1) * n];
            for (o, &wv) in out_row.iter_mut().zip(w_row) {
                *o = o.wrapping_add(av * wv as i32);
            }
        }
    }
    for v in acc.iter_mut() {
        *v = wrap_acc24_i32(*v);
    }
}

/// Dequantizes an accumulator buffer into real values using the combined
/// input×weight scale.
pub fn acc_to_f32(acc: &[i32], combined_scale: f32) -> Vec<f32> {
    acc.iter().map(|&v| v as f32 * combined_scale).collect()
}

/// [`acc_to_f32`] into a caller-provided buffer (identical values, reused
/// capacity).
pub fn acc_to_f32_into(acc: &[i32], combined_scale: f32, out: &mut Vec<f32>) {
    out.clear();
    out.extend(acc.iter().map(|&v| v as f32 * combined_scale));
}

#[cfg(test)]
mod tests {
    use super::*;
    use create_tensor::{Matrix, Precision, QuantMatrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_float_reference_for_small_values() {
        let mut rng = StdRng::seed_from_u64(21);
        let a = Matrix::random_uniform(4, 16, 1.0, &mut rng);
        let w = Matrix::random_uniform(16, 8, 1.0, &mut rng);
        let aq = QuantMatrix::quantize(&a, Precision::Int8);
        let wq = QuantMatrix::quantize(&w, Precision::Int8);
        let acc = gemm_i8_acc(&aq, &wq);
        let combined = aq.params().scale() * wq.params().scale();
        let approx = acc_to_f32(&acc, combined);
        let exact = aq.dequantize().matmul(&wq.dequantize());
        for (got, want) in approx.iter().zip(exact.as_slice()) {
            assert!(
                (got - want).abs() < 1e-4,
                "quantized gemm mismatch: {got} vs {want}"
            );
        }
    }

    #[test]
    fn accumulator_values_fit_24_bits_for_k_512() {
        // Worst case |acc| = 127*127*512 = 8,258,048 < 2^23 = 8,388,608.
        let big = Matrix::from_fn(1, 512, |_, _| 1.0);
        let aq = QuantMatrix::quantize(&big, Precision::Int8);
        let wq = QuantMatrix::quantize(&big.transpose(), Precision::Int8);
        let acc = gemm_i8_acc(&aq, &wq);
        assert_eq!(acc[0], 127 * 127 * 512);
    }

    #[test]
    fn wrap_acc24_wraps_past_the_limit() {
        assert_eq!(wrap_acc24(8_388_607), 8_388_607);
        assert_eq!(wrap_acc24(8_388_608), -8_388_608);
        assert_eq!(wrap_acc24(-8_388_609), 8_388_607);
        assert_eq!(wrap_acc24(0), 0);
    }

    #[test]
    fn wrap_acc24_i32_agrees_with_the_i64_wrap() {
        for v in [
            -8_388_609i64,
            -1,
            0,
            8_388_607,
            8_388_608,
            i32::MAX as i64,
            i32::MIN as i64,
        ] {
            assert_eq!(wrap_acc24(v), wrap_acc24_i32(v as i32));
        }
    }

    #[test]
    fn zero_inputs_give_zero_outputs() {
        let z = Matrix::zeros(3, 4);
        let w = Matrix::from_fn(4, 5, |r, c| (r + c) as f32);
        let zq = QuantMatrix::quantize(&z, Precision::Int8);
        let wq = QuantMatrix::quantize(&w, Precision::Int8);
        let acc = gemm_i8_acc(&zq, &wq);
        assert!(acc.iter().all(|&v| v == 0));
    }

    #[test]
    #[should_panic(expected = "gemm shape mismatch")]
    fn shape_mismatch_panics() {
        let a = QuantMatrix::quantize(&Matrix::zeros(2, 3), Precision::Int8);
        let w = QuantMatrix::quantize(&Matrix::zeros(4, 2), Precision::Int8);
        let _ = gemm_i8_acc(&a, &w);
    }

    #[test]
    fn gemm_into_matches_reference_incl_wrap_and_reuses_capacity() {
        let mut rng = StdRng::seed_from_u64(33);
        let mut acc = Vec::new();
        // Saturated k=600 rows wrap past 24 bits, pinning the i32-lane
        // equivalence; the shrinking shapes pin capacity reuse.
        let big = Matrix::from_fn(2, 600, |_, _| 127.0);
        let bq = QuantMatrix::quantize(&big, Precision::Int8);
        let btq = QuantMatrix::quantize(&big.transpose(), Precision::Int8);
        gemm_i8_acc_into(&bq, &btq, &mut acc);
        assert_eq!(acc, gemm_i8_acc(&bq, &btq));
        let ptr = acc.as_ptr();
        for (m, k, n) in [(2usize, 3usize, 2usize), (1, 16, 4), (0, 5, 3)] {
            let a = QuantMatrix::quantize(
                &Matrix::random_uniform(m, k, 1.0, &mut rng),
                Precision::Int8,
            );
            let w = QuantMatrix::quantize(
                &Matrix::random_uniform(k, n, 1.0, &mut rng),
                Precision::Int8,
            );
            gemm_i8_acc_into(&a, &w, &mut acc);
            assert_eq!(acc, gemm_i8_acc(&a, &w));
            assert_eq!(acc.as_ptr(), ptr, "accumulator buffer must be reused");
        }
    }

    #[test]
    fn acc_to_f32_into_matches_allocating_form() {
        let acc = [0i32, 1, -8_388_608, 8_388_607, 42];
        let mut out = vec![9.0f32; 2];
        acc_to_f32_into(&acc, 0.031_25, &mut out);
        assert_eq!(out, acc_to_f32(&acc, 0.031_25));
    }
}
