//! The accelerator execution facade.
//!
//! All planner/controller GEMMs flow through [`Accelerator::linear`], which
//! applies — in datapath order — quantization, systolic accumulation,
//! voltage-dependent bit-flip injection, anomaly detection and clearance,
//! and dequantization. A single choke point guarantees that every
//! experiment (characterization, ablations, baselines) exercises the same
//! code path and differs only in configuration.
//!
//! The clean accumulation step itself is pluggable: it dispatches through
//! the [`GemmBackend`] trait object selected by [`AccelConfig::backend`],
//! while every downstream stage (injection, AD, requantization, profiler,
//! MAC/energy accounting) consumes the backend's output buffer unchanged.
//! Because all shipped backends are bit-identical, swapping them changes
//! wall-clock time and nothing else.

use crate::ad::{self, AdStats};
use crate::ctx::LayerCtx;
use crate::gemm::{GemmBackend, GemmBackendKind};
use crate::inject::{InjectionStats, Injector};
use crate::scheme::{apply_scheme_into, Scheme, SchemeBuffers, SchemeStats};
use crate::timing::V_NOMINAL;
use create_tensor::stats::Histogram;
use create_tensor::{Matrix, Precision, QuantMatrix, QuantParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Sampled distribution of dequantized GEMM outputs (for Fig. 8a).
#[derive(Debug, Clone)]
pub struct OutputProfiler {
    hist: Histogram,
    sample_every: usize,
    counter: usize,
}

impl OutputProfiler {
    /// Creates a profiler with the given histogram range and subsampling.
    pub fn new(lo: f32, hi: f32, bins: usize, sample_every: usize) -> Self {
        Self {
            hist: Histogram::new(lo, hi, bins),
            sample_every: sample_every.max(1),
            counter: 0,
        }
    }

    fn record(&mut self, values: &[f32]) {
        for &v in values {
            self.counter += 1;
            if self.counter.is_multiple_of(self.sample_every) {
                self.hist.push(v);
            }
        }
    }

    /// The collected histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }
}

/// Configuration for an [`Accelerator`] instance.
#[derive(Debug, Clone)]
pub struct AccelConfig {
    /// Optional error injector; `None` runs golden.
    pub injector: Option<Injector>,
    /// Whether anomaly-detection units are active.
    pub ad_enabled: bool,
    /// Datapath protection scheme (baseline comparison; CREATE uses
    /// `Plain` + AD).
    pub scheme: Scheme,
    /// Ablation knob: multiplier on the offline-profiled output bound
    /// (AD threshold *and* requantization rail). `1.0` is the deployed
    /// configuration; `<1` clips golden activations, `>1` lets larger
    /// surviving errors through. See the `abl_ad_bound` bench target.
    pub bound_scale: f32,
    /// Which [`GemmBackend`] computes the clean accumulators. All shipped
    /// backends are bit-identical, so this is a pure performance knob.
    pub backend: GemmBackendKind,
}

impl Default for AccelConfig {
    /// The default configuration reads `CREATE_GEMM_BACKEND` (validated,
    /// falling back to `blocked`), so the whole workspace — tests, figure
    /// harnesses, examples — can be pinned to one backend from the
    /// environment without touching construction sites.
    fn default() -> Self {
        Self {
            injector: None,
            ad_enabled: false,
            scheme: Scheme::default(),
            bound_scale: 1.0,
            backend: GemmBackendKind::from_env(),
        }
    }
}

/// Persistent per-accelerator scratch buffers for the steady-state
/// inference path.
///
/// One fault-injection campaign runs millions of small GEMMs through
/// [`Accelerator::linear`]; allocating a quantized-input buffer, an
/// accumulator buffer and (under redundancy schemes) replica clones on
/// every call dominated wall-clock on small layers. All of that state
/// lives here instead: buffers are resized in place and fully
/// overwritten each call, so after one warm-up call at the largest layer
/// shape the whole datapath — quantize → GEMM → inject → scheme → AD →
/// dequant — performs **zero heap allocations** (asserted by the
/// counting-allocator test in `tests/alloc.rs`). Scratch contents never
/// influence results: every buffer is written before it is read.
#[derive(Debug)]
struct Scratch {
    /// Quantized input operand.
    xq: QuantMatrix,
    /// Clean accumulators from the GEMM backend.
    clean: Vec<i32>,
    /// First (injected) execution under redundancy schemes.
    first: Vec<i32>,
    /// Replica buffers for DMR/ABFT recomputes.
    scheme: SchemeBuffers,
}

impl Default for Scratch {
    fn default() -> Self {
        Self {
            xq: QuantMatrix::empty(QuantParams::from_scale(1.0, Precision::Int8)),
            clean: Vec::new(),
            first: Vec::new(),
            scheme: SchemeBuffers::default(),
        }
    }
}

/// A voltage-scaled, possibly-faulty systolic accelerator.
///
/// # Example
///
/// ```
/// use create_accel::{Accelerator, LayerCtx, Unit, Component};
/// use create_tensor::{Matrix, Precision, QuantMatrix, QuantParams};
///
/// let mut acc = Accelerator::ideal(42);
/// let x = Matrix::from_fn(1, 8, |_, j| j as f32 * 0.1);
/// let w = QuantMatrix::quantize(&Matrix::identity(8), Precision::Int8);
/// let params = QuantParams::from_max_abs(1.0, Precision::Int8);
/// let ctx = LayerCtx::new(Unit::Controller, Component::Fc1, 0);
/// let y = acc.linear(&x, &w, params, f32::INFINITY, ctx);
/// assert!(x.max_abs_diff(&y) < 0.02, "identity GEMM round-trips");
/// ```
#[derive(Debug)]
pub struct Accelerator {
    config: AccelConfig,
    backend: Box<dyn GemmBackend>,
    voltage: f64,
    rng: StdRng,
    ad_stats: AdStats,
    inj_stats: InjectionStats,
    scheme_stats: SchemeStats,
    profiler: Option<OutputProfiler>,
    macs: u64,
    logical_macs: u64,
    gemms: u64,
    scratch: Scratch,
}

impl Accelerator {
    /// Creates an accelerator with the given configuration at nominal
    /// voltage, seeded deterministically.
    pub fn new(config: AccelConfig, seed: u64) -> Self {
        let backend = config.backend.instantiate();
        Self {
            config,
            backend,
            voltage: V_NOMINAL,
            rng: StdRng::seed_from_u64(seed),
            ad_stats: AdStats::default(),
            inj_stats: InjectionStats::default(),
            scheme_stats: SchemeStats::default(),
            profiler: None,
            macs: 0,
            logical_macs: 0,
            gemms: 0,
            scratch: Scratch::default(),
        }
    }

    /// An error-free accelerator (the golden path).
    pub fn ideal(seed: u64) -> Self {
        Self::new(AccelConfig::default(), seed)
    }

    /// Sets the supply voltage (used by the voltage error model).
    pub fn set_voltage(&mut self, v: f64) {
        self.voltage = v;
    }

    /// Current supply voltage.
    pub fn voltage(&self) -> f64 {
        self.voltage
    }

    /// Replaces the injector (e.g. to sweep BER within one trial).
    ///
    /// Injection perturbs the accumulator buffer *after* the clean GEMM
    /// backend has produced it, so swapping injectors never interacts
    /// with [`AccelConfig::backend`]: the same flips land on the same
    /// bit-identical clean state whichever backend is selected.
    pub fn set_injector(&mut self, injector: Option<Injector>) {
        self.config.injector = injector;
    }

    /// Enables or disables the anomaly-detection units.
    pub fn set_ad_enabled(&mut self, enabled: bool) {
        self.config.ad_enabled = enabled;
    }

    /// Whether AD is active.
    pub fn ad_enabled(&self) -> bool {
        self.config.ad_enabled
    }

    /// Reseeds the RNG (per-trial reproducibility).
    ///
    /// Only injection and the redundancy schemes draw from this stream —
    /// the clean GEMM backends are deterministic functions of their
    /// inputs — so a reseeded accelerator replays identical faults on any
    /// backend and the engine's `(base seed, point, trial)` derivation
    /// stays backend-agnostic.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Name of the active GEMM backend (`"scalar"`, `"blocked"`,
    /// `"wide"`, or `"auto"` for the per-shape dispatcher).
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Attaches an output profiler.
    pub fn set_profiler(&mut self, profiler: Option<OutputProfiler>) {
        self.profiler = profiler;
    }

    /// Detaches and returns the output profiler.
    pub fn take_profiler(&mut self) -> Option<OutputProfiler> {
        self.profiler.take()
    }

    /// Cumulative anomaly-detection statistics.
    pub fn ad_stats(&self) -> AdStats {
        self.ad_stats
    }

    /// Cumulative injection statistics.
    pub fn injection_stats(&self) -> InjectionStats {
        self.inj_stats
    }

    /// Cumulative protection-scheme telemetry (redundant executions,
    /// residual corruption) across all GEMMs that ran under a
    /// non-`Plain` scheme.
    pub fn scheme_stats(&self) -> SchemeStats {
        self.scheme_stats
    }

    /// Physical MACs executed so far (redundant executions included).
    pub fn macs(&self) -> u64 {
        self.macs
    }

    /// Logical MACs (one per GEMM, regardless of scheme redundancy).
    pub fn logical_macs(&self) -> u64 {
        self.logical_macs
    }

    /// GEMM calls executed so far.
    pub fn gemms(&self) -> u64 {
        self.gemms
    }

    /// Executes `x @ w` on the array and returns the dequantized result.
    ///
    /// * `x` is quantized on the fly with the offline-profiled
    ///   `input_params`;
    /// * `w` is the pre-quantized weight;
    /// * `out_bound` is the offline-profiled valid output magnitude used by
    ///   the AD units (pass `f32::INFINITY` to disable the bound even when
    ///   AD is on).
    ///
    /// The clean accumulators come from the configured [`GemmBackend`];
    /// injection, AD, requantization saturation, profiling and MAC
    /// accounting then run on that buffer in datapath order, identically
    /// for every backend.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree (the check is routed through
    /// the backend trait object, with one canonical message).
    pub fn linear(
        &mut self,
        x: &Matrix,
        w: &QuantMatrix,
        input_params: QuantParams,
        out_bound: f32,
        ctx: LayerCtx,
    ) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.linear_into(x, w, input_params, out_bound, ctx, &mut out);
        out
    }

    /// [`linear`](Self::linear) into a caller-provided output matrix.
    ///
    /// This is the steady-state entry point: the quantized input, the
    /// accumulators, the redundancy replicas and the output all live in
    /// reused storage (the accelerator's persistent scratch plus `out`),
    /// so after one warm-up call at the largest layer shape the whole
    /// datapath performs **zero heap allocations** — asserted by the
    /// counting-allocator test in `tests/alloc.rs`. Outputs are
    /// bit-identical to [`linear`](Self::linear): same quantization, same
    /// RNG draws, same accumulator state, every scheme and backend.
    pub fn linear_into(
        &mut self,
        x: &Matrix,
        w: &QuantMatrix,
        input_params: QuantParams,
        out_bound: f32,
        ctx: LayerCtx,
        out: &mut Matrix,
    ) {
        let out_bound = out_bound * self.config.bound_scale;
        let gemm_macs = (x.rows() * x.cols() * w.cols()) as u64;
        let combined = input_params.scale() * w.params().scale();
        self.logical_macs += gemm_macs;
        self.gemms += 1;
        QuantMatrix::quantize_with_into(x, input_params, &mut self.scratch.xq);

        // Split borrows: the injector is *borrowed* from the config (it
        // used to be deep-cloned on every GEMM, which dominated small
        // layers), while the RNG, counters and scratch are taken as
        // disjoint mutable fields.
        let voltage = self.voltage;
        let Self {
            config,
            backend,
            rng,
            ad_stats,
            inj_stats,
            scheme_stats,
            profiler,
            macs,
            scratch,
            ..
        } = self;
        let Scratch {
            xq,
            clean,
            first,
            scheme: scheme_bufs,
        } = scratch;
        backend.gemm_i8_acc_into(xq, w, clean);
        let acc: &mut Vec<i32> = if let Some(injector) = config.injector.as_ref() {
            match config.scheme {
                Scheme::Plain => {
                    let stats = injector.inject(clean, ctx, voltage, rng);
                    inj_stats.corrupted += stats.corrupted;
                    inj_stats.total += stats.total;
                    *macs += gemm_macs;
                    clean
                }
                scheme => {
                    let clean_ref: &[i32] = clean;
                    first.clear();
                    first.extend_from_slice(clean_ref);
                    let stats = injector.inject(first, ctx, voltage, rng);
                    inj_stats.corrupted += stats.corrupted;
                    inj_stats.total += stats.total;
                    let outcome = apply_scheme_into(
                        scheme,
                        clean_ref,
                        first,
                        scheme_bufs,
                        |replica, rng| {
                            replica.clear();
                            replica.extend_from_slice(clean_ref);
                            injector.inject(replica, ctx, voltage, rng);
                        },
                        rng,
                    );
                    scheme_stats.record(&outcome);
                    *macs += gemm_macs * outcome.executions as u64
                        + (gemm_macs as f64 * outcome.extra_mac_fraction).round() as u64;
                    first
                }
            }
        } else {
            *macs += gemm_macs;
            clean
        };
        if config.ad_enabled {
            let bound_acc = ad::bound_in_acc_units(out_bound, combined);
            let stats = ad::clear_anomalies(acc, bound_acc);
            ad_stats.merge(stats);
        }
        // Dequantize straight into the output storage.
        out.reset_zeros(x.rows(), w.cols());
        for (o, &a) in out.as_mut_slice().iter_mut().zip(acc.iter()) {
            *o = a as f32 * combined;
        }
        // Requantization saturation: the output stage re-quantizes results
        // to INT8 against the offline scale (out_bound = 127 codes), so no
        // emitted value can exceed the profiled bound. This is what makes
        // weight rotation protective even without AD — a tighter profile
        // bounds the worst-case damage of a surviving flip. (AD, when on,
        // clears out-of-bound values to zero *before* saturation pins them
        // at the rail.)
        if out_bound.is_finite() {
            for v in out.as_mut_slice().iter_mut() {
                *v = v.clamp(-out_bound, out_bound);
            }
        }
        if let Some(profiler) = profiler {
            profiler.record(out.as_slice());
        }
    }

    /// Current capacities of the persistent scratch buffers `(input
    /// codes, clean acc, first replica)` — exposed so tests can assert
    /// that repeated [`linear_into`](Self::linear_into) calls reuse
    /// storage instead of reallocating.
    pub fn scratch_capacities(&self) -> (usize, usize, usize) {
        (
            self.scratch.xq.capacity(),
            self.scratch.clean.capacity(),
            self.scratch.first.capacity(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::{Component, Unit};
    use crate::inject::{ErrorModel, InjectionTarget};
    use create_tensor::Precision;
    use rand::Rng;

    fn ctx() -> LayerCtx {
        LayerCtx::new(Unit::Controller, Component::Fc1, 0)
    }

    fn random_setup(seed: u64) -> (Matrix, QuantMatrix, QuantParams) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Matrix::from_fn(4, 32, |_, _| rng.random_range(-1.0..1.0));
        let w_f = Matrix::from_fn(32, 16, |_, _| rng.random_range(-0.5..0.5));
        let w = QuantMatrix::quantize(&w_f, Precision::Int8);
        let params = QuantParams::from_max_abs(1.0, Precision::Int8);
        (x, w, params)
    }

    #[test]
    fn ideal_accelerator_matches_quantized_reference() {
        let (x, w, params) = random_setup(31);
        let mut acc = Accelerator::ideal(0);
        let y = acc.linear(&x, &w, params, f32::INFINITY, ctx());
        let xq = QuantMatrix::quantize_with(&x, params);
        let reference = xq.dequantize().matmul(&w.dequantize());
        assert!(y.max_abs_diff(&reference) < 1e-4);
        assert_eq!(acc.gemms(), 1);
        assert_eq!(acc.macs(), 4 * 32 * 16);
    }

    #[test]
    fn injection_corrupts_and_ad_repairs_large_errors() {
        let (x, w, params) = random_setup(32);
        let golden = Accelerator::ideal(0).linear(&x, &w, params, f32::INFINITY, ctx());
        let bound = golden.max_abs() * 1.1;

        // Heavy uniform errors, no AD: outputs deviate wildly.
        let injector = Injector::new(ErrorModel::Uniform { ber: 0.02 }, InjectionTarget::All, 1.0);
        let mut faulty = Accelerator::new(
            AccelConfig {
                injector: Some(injector.clone()),
                ad_enabled: false,
                ..Default::default()
            },
            7,
        );
        let noisy = faulty.linear(&x, &w, params, f32::INFINITY, ctx());
        assert!(
            noisy.max_abs() > 10.0 * golden.max_abs(),
            "high-bit flips should create huge outliers"
        );

        // Same errors with a finite requant bound (no AD): saturation pins
        // corrupted values at the rail instead of letting them explode.
        let mut saturated = Accelerator::new(
            AccelConfig {
                injector: Some(injector.clone()),
                ad_enabled: false,
                ..Default::default()
            },
            7,
        );
        let pinned = saturated.linear(&x, &w, params, bound, ctx());
        assert!(pinned.max_abs() <= bound * 1.0001);

        // Same errors with AD: max magnitude bounded by the profile.
        let mut protected = Accelerator::new(
            AccelConfig {
                injector: Some(injector),
                ad_enabled: true,
                ..Default::default()
            },
            7,
        );
        let cleaned = protected.linear(&x, &w, params, bound, ctx());
        assert!(cleaned.max_abs() <= bound * 1.0001);
        assert!(protected.ad_stats().cleared > 0);
    }

    #[test]
    fn reseeding_reproduces_identical_faults() {
        let (x, w, params) = random_setup(33);
        let injector = Injector::new(ErrorModel::Uniform { ber: 1e-3 }, InjectionTarget::All, 1.0);
        let mut a = Accelerator::new(
            AccelConfig {
                injector: Some(injector.clone()),
                ad_enabled: false,
                ..Default::default()
            },
            99,
        );
        let mut b = Accelerator::new(
            AccelConfig {
                injector: Some(injector),
                ad_enabled: false,
                ..Default::default()
            },
            99,
        );
        let ya = a.linear(&x, &w, params, f32::INFINITY, ctx());
        let yb = b.linear(&x, &w, params, f32::INFINITY, ctx());
        assert_eq!(ya, yb);
    }

    #[test]
    fn profiler_collects_output_samples() {
        let (x, w, params) = random_setup(34);
        let mut acc = Accelerator::ideal(0);
        acc.set_profiler(Some(OutputProfiler::new(-10.0, 10.0, 20, 1)));
        acc.linear(&x, &w, params, f32::INFINITY, ctx());
        let profiler = acc.take_profiler().expect("profiler attached");
        assert_eq!(profiler.histogram().total(), 4 * 16);
    }

    #[test]
    fn bound_scale_tightens_or_loosens_the_output_stage() {
        let (x, w, params) = random_setup(35);
        let golden = Accelerator::ideal(0).linear(&x, &w, params, f32::INFINITY, ctx());
        let bound = golden.max_abs() * 1.1;
        // A deliberately over-tight bound clips even golden activations.
        let mut tight = Accelerator::new(
            AccelConfig {
                bound_scale: 0.25,
                ..Default::default()
            },
            0,
        );
        let clipped = tight.linear(&x, &w, params, bound, ctx());
        assert!(clipped.max_abs() <= bound * 0.25 * 1.0001);
        assert!(
            clipped.max_abs_diff(&golden) > 0.0,
            "golden data was clipped"
        );
        // A loose bound lets injected high-bit flips survive larger.
        let injector = Injector::new(ErrorModel::Uniform { ber: 0.02 }, InjectionTarget::All, 1.0);
        let run = |scale: f32| {
            let mut acc = Accelerator::new(
                AccelConfig {
                    injector: Some(injector.clone()),
                    ad_enabled: true,
                    bound_scale: scale,
                    ..Default::default()
                },
                7,
            );
            acc.linear(&x, &w, params, bound, ctx()).max_abs()
        };
        assert!(run(8.0) > run(1.0), "loose bounds admit larger residuals");
    }

    #[test]
    fn full_pipeline_is_backend_agnostic() {
        // Same seed, same config, different backend: clean accumulators
        // are bit-identical, so the injected faults, AD clearances and
        // MAC/energy counters must all coincide exactly.
        let (x, w, params) = random_setup(36);
        let injector = Injector::new(ErrorModel::Uniform { ber: 1e-3 }, InjectionTarget::All, 1.0);
        let run = |backend: GemmBackendKind| {
            let mut acc = Accelerator::new(
                AccelConfig {
                    injector: Some(injector.clone()),
                    ad_enabled: true,
                    backend,
                    ..Default::default()
                },
                99,
            );
            let y = acc.linear(&x, &w, params, 4.0, ctx());
            (y, acc.ad_stats(), acc.injection_stats(), acc.macs())
        };
        let scalar = run(GemmBackendKind::Scalar);
        let blocked = run(GemmBackendKind::Blocked);
        assert_eq!(scalar, blocked);
    }

    #[test]
    fn backend_name_reports_the_selected_backend() {
        for kind in GemmBackendKind::ALL {
            let acc = Accelerator::new(
                AccelConfig {
                    backend: kind,
                    ..Default::default()
                },
                0,
            );
            assert_eq!(acc.backend_name(), kind.name());
        }
    }

    #[test]
    #[should_panic(expected = "gemm shape mismatch")]
    fn linear_shape_mismatch_panics_through_the_trait_object() {
        let mut acc = Accelerator::new(
            AccelConfig {
                backend: GemmBackendKind::Blocked,
                ..Default::default()
            },
            0,
        );
        let x = Matrix::zeros(2, 3);
        let w = QuantMatrix::quantize(&Matrix::zeros(4, 2), Precision::Int8);
        let params = QuantParams::from_max_abs(1.0, Precision::Int8);
        let _ = acc.linear(&x, &w, params, f32::INFINITY, ctx());
    }

    #[test]
    fn voltage_roundtrips() {
        let mut acc = Accelerator::ideal(0);
        assert_eq!(acc.voltage(), V_NOMINAL);
        acc.set_voltage(0.75);
        assert_eq!(acc.voltage(), 0.75);
    }

    #[test]
    fn linear_into_is_bit_identical_to_linear_for_every_scheme_and_backend() {
        // Same seed, same config: the buffer-out path must reproduce the
        // allocating path exactly — outputs, fault draws, AD clearances
        // and MAC counters — even with a dirty, differently-shaped
        // scratch left over from a previous layer.
        let (x, w, params) = random_setup(40);
        let (x_small, w_small, _) = random_setup(41);
        let x_small = x_small.rows_range(0, 1);
        let injector = Injector::new(ErrorModel::Uniform { ber: 5e-3 }, InjectionTarget::All, 1.0);
        for backend in GemmBackendKind::ALL {
            for scheme in [
                Scheme::Plain,
                Scheme::Dmr,
                Scheme::ThunderVolt,
                Scheme::Razor,
                Scheme::Abft { max_retries: 3 },
            ] {
                let config = AccelConfig {
                    injector: Some(injector.clone()),
                    ad_enabled: true,
                    scheme,
                    backend,
                    ..Default::default()
                };
                let mut a = Accelerator::new(config.clone(), 17);
                let mut b = Accelerator::new(config, 17);
                let ya = a.linear(&x, &w, params, 4.0, ctx());
                let mut yb = Matrix::zeros(3, 3); // dirty out buffer
                b.linear_into(&x, &w, params, 4.0, ctx(), &mut yb);
                assert_eq!(ya, yb, "{backend:?}/{scheme:?}");
                // Second call at a smaller shape reuses the scratch.
                let ya2 = a.linear(&x_small, &w_small, params, 4.0, ctx());
                b.linear_into(&x_small, &w_small, params, 4.0, ctx(), &mut yb);
                assert_eq!(ya2, yb, "{backend:?}/{scheme:?} (2nd shape)");
                assert_eq!(a.macs(), b.macs());
                assert_eq!(a.ad_stats(), b.ad_stats());
                assert_eq!(a.injection_stats(), b.injection_stats());
            }
        }
    }

    #[test]
    fn scheme_stats_count_redundancy_and_residuals() {
        let (x, w, params) = random_setup(43);
        // Plain never records scheme applications, even under injection.
        let injector = Injector::new(ErrorModel::Uniform { ber: 1e-2 }, InjectionTarget::All, 1.0);
        let mut plain = Accelerator::new(
            AccelConfig {
                injector: Some(injector.clone()),
                ..Default::default()
            },
            5,
        );
        plain.linear(&x, &w, params, f32::INFINITY, ctx());
        assert_eq!(plain.scheme_stats(), SchemeStats::default());

        // DMR at a heavy BER: every GEMM applies the scheme and the
        // mismatch recomputes show up as redundant executions.
        let mut dmr = Accelerator::new(
            AccelConfig {
                injector: Some(injector),
                scheme: Scheme::Dmr,
                ..Default::default()
            },
            5,
        );
        for _ in 0..4 {
            dmr.linear(&x, &w, params, f32::INFINITY, ctx());
        }
        let stats = dmr.scheme_stats();
        assert_eq!(stats.applications, 4);
        assert!(
            stats.redundant_executions >= stats.applications,
            "DMR always runs at least twice: {stats:?}"
        );
        assert!(stats.residuals <= stats.applications);
    }

    #[test]
    fn scratch_capacities_stabilize_after_warm_up() {
        // The zero-allocation steady-state contract, observable without a
        // custom allocator: after one call at the largest shape, repeated
        // calls (including smaller shapes) never grow any scratch buffer.
        let (x, w, params) = random_setup(42);
        let injector = Injector::new(ErrorModel::Uniform { ber: 1e-2 }, InjectionTarget::All, 1.0);
        let mut acc = Accelerator::new(
            AccelConfig {
                injector: Some(injector),
                ad_enabled: true,
                scheme: Scheme::Dmr,
                ..Default::default()
            },
            3,
        );
        let mut out = Matrix::zeros(0, 0);
        acc.linear_into(&x, &w, params, 4.0, ctx(), &mut out);
        let warm = acc.scratch_capacities();
        let out_ptr = out.as_slice().as_ptr();
        for i in 0..50 {
            acc.linear_into(&x, &w, params, 4.0, ctx(), &mut out);
            assert_eq!(acc.scratch_capacities(), warm, "iteration {i}");
            assert_eq!(out.as_slice().as_ptr(), out_ptr, "output storage reused");
        }
    }
}
