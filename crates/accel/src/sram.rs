//! Voltage-dependent SRAM retention-fault model and protected weight
//! buffers.
//!
//! The paper's threat model (Sec. 2.3) puts memory faults out of scope
//! because "memory faults can be effectively mitigated by ECC", and names
//! extending the resilience study to memory as future work (Sec. 3.1).
//! This module implements that extension so the claim can be *measured*
//! rather than assumed:
//!
//! * [`MemoryFaultModel`] — per-bit retention-failure probability of a
//!   6T SRAM cell versus supply voltage. Like [`crate::timing`], it is an
//!   analytic substitute for foundry characterization, calibrated to the
//!   published low-voltage SRAM literature the paper cites: essentially
//!   fault-free at the 0.9 V nominal point, ~1e-5 per bit near 0.75 V, and
//!   collapsing toward percent-level per-bit faults below 0.67 V as static
//!   noise margins close.
//! * [`SramBuffer`] — a weight buffer that stores bytes either raw or as
//!   SECDED (72,64) codewords ([`crate::ecc`]) and materializes a
//!   *retention-fault snapshot* at a given voltage: every stored bit flips
//!   independently with the model probability, then protected words are
//!   decoded (correcting singles, detecting doubles). Cells whose margin
//!   collapses at low voltage stay bad until rewritten, so one snapshot per
//!   mission is the faithful granularity — the Ares-style static weight
//!   fault protocol.
//!
//! The `ext_memory` bench target uses this to chart controller task quality
//! versus memory-rail voltage with and without SECDED.

use crate::ecc::{self, Codeword, Decoded};
use crate::inject::sample_poisson;
use crate::timing::{V_MIN, V_NOMINAL};
use rand::Rng;
use std::fmt;

/// log10 of the per-bit retention-failure probability at nominal voltage.
const MEM_LOG10_AT_NOMINAL: f64 = -11.0;

/// Decades of failure probability per volt of undervolting. SRAM static
/// noise margins collapse super-exponentially below V_min; the slope is
/// set so the failure window (clean → percent-level per-bit faults) spans
/// the LDO's 0.9–0.6 V range, as in published low-voltage SRAM studies.
const MEM_DECADES_PER_VOLT: f64 = 40.0;

/// Saturation at deep undervolting (matches the logic-rail BER floor).
const MEM_LOG10_FLOOR: f64 = -1.7;

/// Fractional read-energy overhead of SECDED encode/decode logic, relative
/// to the raw array access (syndrome tree plus correction mux).
pub const SECDED_READ_ENERGY_OVERHEAD: f64 = 0.03;

/// Per-bit SRAM retention-failure probability versus supply voltage.
///
/// # Example
///
/// ```
/// use create_accel::sram::MemoryFaultModel;
///
/// let m = MemoryFaultModel::new();
/// assert!(m.upset_prob(0.9) < 1e-10);
/// assert!(m.upset_prob(0.6) > 1e-4);
/// assert!(m.upset_prob(0.7) > m.upset_prob(0.8));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemoryFaultModel {
    _priv: (),
}

impl MemoryFaultModel {
    /// Creates the calibrated 22 nm model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Probability that one stored bit has failed retention at voltage `v`.
    pub fn upset_prob(&self, v: f64) -> f64 {
        let log10 =
            (MEM_LOG10_AT_NOMINAL + MEM_DECADES_PER_VOLT * (V_NOMINAL - v)).min(MEM_LOG10_FLOOR);
        10f64.powf(log10)
    }

    /// The highest voltage whose per-bit upset probability is at least `p`
    /// (clamped to the LDO range) — the inverse of
    /// [`upset_prob`](Self::upset_prob).
    pub fn voltage_for_upset(&self, p: f64) -> f64 {
        let log10 = p.max(1e-30).log10();
        let v = V_NOMINAL - (log10 - MEM_LOG10_AT_NOMINAL) / MEM_DECADES_PER_VOLT;
        v.clamp(V_MIN, V_NOMINAL)
    }
}

/// Protection applied to a stored buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Protection {
    /// Raw storage: every upset lands in data silently.
    #[default]
    None,
    /// SECDED (72,64): single upsets per word corrected, doubles detected.
    Secded,
}

impl Protection {
    /// Extra storage bits per data bit.
    pub fn storage_overhead(self) -> f64 {
        match self {
            Protection::None => 0.0,
            Protection::Secded => ecc::OVERHEAD,
        }
    }

    /// Fractional read-energy overhead of the protection logic.
    pub fn read_energy_overhead(self) -> f64 {
        match self {
            Protection::None => 0.0,
            Protection::Secded => SECDED_READ_ENERGY_OVERHEAD,
        }
    }
}

impl fmt::Display for Protection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Protection::None => "none",
            Protection::Secded => "SECDED",
        })
    }
}

/// Outcome counters of one fault snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Raw storage bits that flipped.
    pub bits_upset: u64,
    /// Words repaired by SECDED correction.
    pub words_corrected: u64,
    /// Words with detected-uncorrectable (double) faults.
    pub words_detected: u64,
    /// Words whose data is silently corrupt (unprotected faults, or
    /// undetected multi-bit patterns).
    pub words_silent: u64,
    /// Words examined.
    pub words_total: u64,
}

impl ReadStats {
    /// Accumulates another snapshot's counters.
    pub fn merge(&mut self, other: ReadStats) {
        self.bits_upset += other.bits_upset;
        self.words_corrected += other.words_corrected;
        self.words_detected += other.words_detected;
        self.words_silent += other.words_silent;
        self.words_total += other.words_total;
    }

    /// Fraction of words whose data bits are wrong after protection.
    pub fn corrupt_fraction(&self) -> f64 {
        if self.words_total == 0 {
            return 0.0;
        }
        (self.words_detected + self.words_silent) as f64 / self.words_total as f64
    }
}

/// A weight buffer held in the modeled SRAM.
///
/// # Example
///
/// ```
/// use create_accel::sram::{MemoryFaultModel, Protection, SramBuffer};
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// let weights: Vec<i8> = (0..256).map(|i| (i % 127) as i8).collect();
/// let buf = SramBuffer::store(&weights, Protection::Secded, MemoryFaultModel::new());
/// let mut rng = StdRng::seed_from_u64(7);
/// // At nominal voltage the snapshot is fault-free.
/// let (read, stats) = buf.snapshot(0.9, &mut rng);
/// assert_eq!(read, weights);
/// assert_eq!(stats.bits_upset, 0);
/// ```
#[derive(Debug, Clone)]
pub struct SramBuffer {
    /// One `u64` data word per 8 bytes (zero-padded tail).
    words: Vec<u64>,
    len: usize,
    protection: Protection,
    model: MemoryFaultModel,
}

impl SramBuffer {
    /// Stores `data` with the given protection.
    pub fn store(data: &[i8], protection: Protection, model: MemoryFaultModel) -> Self {
        let mut words = Vec::with_capacity(data.len().div_ceil(8));
        for chunk in data.chunks(8) {
            let mut bytes = [0u8; 8];
            for (b, &v) in bytes.iter_mut().zip(chunk) {
                *b = v as u8;
            }
            words.push(u64::from_le_bytes(bytes));
        }
        Self {
            words,
            len: data.len(),
            protection,
            model,
        }
    }

    /// Number of data bytes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured protection.
    pub fn protection(&self) -> Protection {
        self.protection
    }

    /// Total physical storage bits including check bits.
    pub fn storage_bits(&self) -> u64 {
        let per_word = match self.protection {
            Protection::None => ecc::DATA_BITS,
            Protection::Secded => ecc::CODE_BITS,
        };
        self.words.len() as u64 * per_word as u64
    }

    /// Materializes a retention-fault snapshot at memory-rail voltage `v`.
    ///
    /// Every physical storage bit flips independently with the model's
    /// upset probability; SECDED words are then decoded. Returns the data
    /// as read (corrected where the code allows) and the fault counters.
    /// The stored golden copy is untouched, so snapshots at different
    /// voltages or seeds are independent.
    pub fn snapshot(&self, v: f64, rng: &mut impl Rng) -> (Vec<i8>, ReadStats) {
        let p = self.model.upset_prob(v);
        let bits_per_word = match self.protection {
            Protection::None => ecc::DATA_BITS,
            Protection::Secded => ecc::CODE_BITS,
        };
        let mut stats = ReadStats {
            words_total: self.words.len() as u64,
            ..ReadStats::default()
        };
        let mut out = Vec::with_capacity(self.len);
        // Sparse sampling: draw the global upset count, then scatter flips.
        let total_bits = self.words.len() as u64 * bits_per_word as u64;
        let lambda = p * total_bits as f64;
        let n_upsets = if lambda < 0.02 * total_bits as f64 {
            sample_poisson(lambda, rng).min(total_bits)
        } else {
            // Dense regime: Bernoulli per bit, via binomial-by-sum.
            let mut k = 0u64;
            for _ in 0..total_bits {
                if rng.random_range(0.0..1.0) < p {
                    k += 1;
                }
            }
            k
        };
        let mut flips: Vec<(usize, u32)> = (0..n_upsets)
            .map(|_| {
                let bit = rng.random_range(0..total_bits);
                (
                    (bit / bits_per_word as u64) as usize,
                    (bit % bits_per_word as u64) as u32,
                )
            })
            .collect();
        flips.sort_unstable();
        stats.bits_upset = flips.len() as u64;

        let mut flip_iter = flips.into_iter().peekable();
        for (idx, &data) in self.words.iter().enumerate() {
            // Collect this word's flips.
            let mut word_flips: Vec<u32> = Vec::new();
            while let Some(&(w, b)) = flip_iter.peek() {
                if w != idx {
                    break;
                }
                word_flips.push(b);
                flip_iter.next();
            }
            let read = match self.protection {
                Protection::None => {
                    let mut v = data;
                    for &b in &word_flips {
                        v ^= 1u64 << b;
                    }
                    if !word_flips.is_empty() && v != data {
                        stats.words_silent += 1;
                    }
                    v
                }
                Protection::Secded => {
                    let mut cw = Codeword::encode(data);
                    for &b in &word_flips {
                        cw = cw.with_flipped_bit(b);
                    }
                    let (decoded, outcome) = cw.decode();
                    match outcome {
                        Decoded::Clean => {}
                        Decoded::Corrected => stats.words_corrected += 1,
                        Decoded::Detected => stats.words_detected += 1,
                    }
                    if outcome != Decoded::Detected && decoded != data {
                        // Miscorrection of a ≥3-bit pattern.
                        stats.words_silent += 1;
                    }
                    decoded
                }
            };
            for (i, byte) in read.to_le_bytes().into_iter().enumerate() {
                if idx * 8 + i < self.len {
                    out.push(byte as i8);
                }
            }
        }
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn weights(n: usize) -> Vec<i8> {
        (0..n).map(|i| ((i * 37 + 11) % 255) as u8 as i8).collect()
    }

    #[test]
    fn model_is_monotone_and_calibrated() {
        let m = MemoryFaultModel::new();
        let mut prev = f64::INFINITY;
        let mut v = 0.60;
        while v < 0.901 {
            let p = m.upset_prob(v);
            assert!(p <= prev);
            prev = p;
            v += 0.01;
        }
        assert!(m.upset_prob(0.9) < 1e-10);
        let p075 = m.upset_prob(0.75);
        assert!((1e-7..1e-4).contains(&p075), "0.75 V upset {p075}");
        assert!(m.upset_prob(0.60) > 1e-3);
    }

    #[test]
    fn voltage_for_upset_inverts_the_model() {
        let m = MemoryFaultModel::new();
        for &p in &[1e-9, 1e-6, 1e-4] {
            let v = m.voltage_for_upset(p);
            let back = m.upset_prob(v);
            assert!(
                (back.log10() - p.log10()).abs() < 0.1,
                "p {p} v {v} back {back}"
            );
        }
    }

    #[test]
    fn nominal_snapshot_is_identity() {
        let data = weights(1000);
        for protection in [Protection::None, Protection::Secded] {
            let buf = SramBuffer::store(&data, protection, MemoryFaultModel::new());
            let mut rng = StdRng::seed_from_u64(1);
            let (read, stats) = buf.snapshot(V_NOMINAL, &mut rng);
            assert_eq!(read, data);
            assert_eq!(stats.bits_upset, 0);
            assert_eq!(stats.corrupt_fraction(), 0.0);
        }
    }

    #[test]
    fn unprotected_low_voltage_snapshot_corrupts_data() {
        let data = weights(4096);
        let buf = SramBuffer::store(&data, Protection::None, MemoryFaultModel::new());
        let mut rng = StdRng::seed_from_u64(2);
        let (read, stats) = buf.snapshot(0.62, &mut rng);
        assert_ne!(read, data);
        assert!(stats.bits_upset > 0);
        assert!(stats.words_silent > 0);
        assert_eq!(stats.words_corrected, 0, "no ECC, nothing corrected");
    }

    #[test]
    fn secded_corrects_moderate_voltage_snapshots() {
        // Pick a voltage where single-bit-per-word faults are common but
        // doubles are rare: p ≈ 1e-4 → per 72-bit word ~7e-3 singles,
        // ~2.6e-5 doubles.
        let m = MemoryFaultModel::new();
        let v = m.voltage_for_upset(1e-4);
        let data = weights(80_000);
        let buf = SramBuffer::store(&data, Protection::Secded, m);
        let mut rng = StdRng::seed_from_u64(3);
        let (read, stats) = buf.snapshot(v, &mut rng);
        assert!(stats.words_corrected > 10, "corrected {stats:?}");
        assert!(
            stats.corrupt_fraction() < 1e-3,
            "SECDED should repair nearly everything: {stats:?}"
        );
        // The few detected doubles are the only tolerated deviations.
        let mismatches = read.iter().zip(&data).filter(|(a, b)| a != b).count();
        assert!(mismatches as u64 <= 8 * (stats.words_detected + stats.words_silent));
    }

    #[test]
    fn secded_beats_unprotected_at_equal_voltage() {
        let m = MemoryFaultModel::new();
        let v = m.voltage_for_upset(3e-4);
        let data = weights(40_000);
        let plain = SramBuffer::store(&data, Protection::None, m);
        let ecc = SramBuffer::store(&data, Protection::Secded, m);
        let (_, s_plain) = plain.snapshot(v, &mut StdRng::seed_from_u64(4));
        let (_, s_ecc) = ecc.snapshot(v, &mut StdRng::seed_from_u64(4));
        assert!(
            s_ecc.corrupt_fraction() < 0.2 * s_plain.corrupt_fraction(),
            "ECC {:.2e} vs plain {:.2e}",
            s_ecc.corrupt_fraction(),
            s_plain.corrupt_fraction()
        );
    }

    #[test]
    fn snapshots_are_deterministic_per_seed_and_independent() {
        let data = weights(2000);
        let buf = SramBuffer::store(&data, Protection::None, MemoryFaultModel::new());
        let (a, sa) = buf.snapshot(0.65, &mut StdRng::seed_from_u64(9));
        let (b, sb) = buf.snapshot(0.65, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        let (c, _) = buf.snapshot(0.65, &mut StdRng::seed_from_u64(10));
        assert_ne!(a, c, "different seeds draw different fault maps");
        // The golden copy is untouched: a nominal snapshot is still clean.
        let (d, _) = buf.snapshot(V_NOMINAL, &mut StdRng::seed_from_u64(11));
        assert_eq!(d, data);
    }

    #[test]
    fn tail_lengths_roundtrip() {
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let data = weights(n);
            let buf = SramBuffer::store(&data, Protection::Secded, MemoryFaultModel::new());
            assert_eq!(buf.len(), n);
            assert_eq!(buf.is_empty(), n == 0);
            let (read, _) = buf.snapshot(V_NOMINAL, &mut StdRng::seed_from_u64(5));
            assert_eq!(read, data);
        }
    }

    #[test]
    fn storage_accounting_reflects_protection() {
        let data = weights(64); // 8 words
        let plain = SramBuffer::store(&data, Protection::None, MemoryFaultModel::new());
        let ecc = SramBuffer::store(&data, Protection::Secded, MemoryFaultModel::new());
        assert_eq!(plain.storage_bits(), 8 * 64);
        assert_eq!(ecc.storage_bits(), 8 * 72);
        assert_eq!(Protection::None.storage_overhead(), 0.0);
        assert!((Protection::Secded.storage_overhead() - 0.125).abs() < 1e-12);
        assert!(Protection::Secded.read_energy_overhead() > 0.0);
    }
}
