//! Property-based tests for the environments: conservation laws, expert
//! admissibility and invariants under arbitrary action sequences.

use create_env::craftworld::CraftWorld;
use create_env::{Action, ArmWorld, Item, Subtask, TaskId, World};
use proptest::prelude::*;

const CRAFT_TASKS: [TaskId; 4] = [TaskId::Wooden, TaskId::Stone, TaskId::Log, TaskId::Chicken];
const ARM_TASKS: [TaskId; 4] = [TaskId::Wine, TaskId::Button, TaskId::Block, TaskId::Place];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Inventories never go negative and the wood-mass conservation law
    /// holds: planks are only created from logs (4 per log), sticks only
    /// from planks — whatever the action sequence.
    #[test]
    fn crafting_conserves_wood_mass(
        seed in 0u64..200,
        actions in prop::collection::vec(0usize..Action::COUNT, 1..150),
        subtask_choice in 0usize..3,
    ) {
        let mut w = CraftWorld::new(TaskId::Wooden, seed);
        let st = [
            Subtask::MineLog(10),
            Subtask::CraftPlanks(40),
            Subtask::CraftSticks(40),
        ][subtask_choice];
        w.set_subtask(st);
        for &a in &actions {
            w.step(Action::from_index(a));
        }
        let inv = w.inventory();
        // Total wood mass in log-equivalents must not exceed what was mined.
        // 1 log = 4 planks; 2 planks = 4 sticks => 1 log = 8 sticks.
        let logs = inv.count(Item::Log) as f64;
        let planks = inv.count(Item::Plank) as f64 / 4.0;
        let sticks = inv.count(Item::Stick) as f64 / 8.0;
        let mass = logs + planks + sticks;
        // The jungle holds 22 trees; mass can never exceed that.
        prop_assert!(mass <= 22.0 + 1e-9, "wood mass {mass} exceeds world supply");
    }

    /// The expert's distribution is always a valid probability vector, for
    /// any reachable state of any crafting task.
    #[test]
    fn craft_expert_is_always_normalized(
        task_idx in 0usize..CRAFT_TASKS.len(),
        seed in 0u64..100,
        actions in prop::collection::vec(0usize..Action::COUNT, 0..60),
    ) {
        let task = CRAFT_TASKS[task_idx];
        let mut world = World::for_task(task, seed);
        world.set_subtask(task.reference_plan()[0]);
        for &a in &actions {
            world.step(Action::from_index(a));
        }
        let p = world.expert_policy();
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
    }

    /// Same for the manipulation world.
    #[test]
    fn arm_expert_is_always_normalized(
        task_idx in 0usize..ARM_TASKS.len(),
        seed in 0u64..100,
        actions in prop::collection::vec(0usize..Action::COUNT, 0..60),
    ) {
        let task = ARM_TASKS[task_idx];
        let mut world = ArmWorld::new(task, seed);
        world.set_subtask(task.reference_plan()[0]);
        for &a in &actions {
            world.step(Action::from_index(a));
        }
        let p = world.expert_policy();
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
    }

    /// Observations are always well-formed: view ids in range, compass a
    /// unit vector (or zero), status features in [0, 1] ∪ {-1..1 compass}.
    #[test]
    fn observations_are_well_formed(
        task_idx in 0usize..CRAFT_TASKS.len(),
        seed in 0u64..100,
        actions in prop::collection::vec(0usize..Action::COUNT, 0..80),
    ) {
        let task = CRAFT_TASKS[task_idx];
        let mut world = World::for_task(task, seed);
        world.set_subtask(task.reference_plan()[0]);
        for &a in &actions {
            world.step(Action::from_index(a));
        }
        let obs = world.observe();
        prop_assert!(obs.view.iter().all(|&v| (v as usize) < create_env::observe::CELL_TYPES));
        let norm = (obs.compass[0].powi(2) + obs.compass[1].powi(2)).sqrt();
        prop_assert!(norm < 1.0 + 1e-3);
        for &s in &obs.status {
            prop_assert!((-1.0 - 1e-6..=1.0 + 1e-6).contains(&s), "status {s} out of range");
        }
        prop_assert!(obs.subtask_token < create_env::SUBTASK_VOCAB.len());
    }

    /// Following the expert's argmax action never *increases* the BFS
    /// distance to the goal set (admissibility of the navigation policy)
    /// when a target is reachable — checked indirectly: the expert
    /// eventually completes MineLog(1) from any reachable state.
    #[test]
    fn expert_argmax_completes_single_log(seed in 0u64..60) {
        let mut w = CraftWorld::new(TaskId::Log, seed);
        w.set_subtask(Subtask::MineLog(1));
        let mut done = false;
        for _ in 0..600 {
            if w.subtask_complete() {
                done = true;
                break;
            }
            let p = w.expert_policy();
            let best = p
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            w.step(Action::from_index(best));
        }
        prop_assert!(done, "expert argmax failed to mine one log");
    }

    /// Armworld observations are well-formed too: the manipulation
    /// encoder shares the craftworld feature contract (view ids in range,
    /// bounded status features, valid subtask token).
    #[test]
    fn arm_observations_are_well_formed(
        task_idx in 0usize..ARM_TASKS.len(),
        seed in 0u64..100,
        actions in prop::collection::vec(0usize..Action::COUNT, 0..80),
    ) {
        let task = ARM_TASKS[task_idx];
        let mut world = ArmWorld::new(task, seed);
        world.set_subtask(task.reference_plan()[0]);
        for &a in &actions {
            world.step(Action::from_index(a));
        }
        let obs = world.observe();
        prop_assert!(obs.view.iter().all(|&v| (v as usize) < create_env::observe::CELL_TYPES));
        for &s in &obs.status {
            prop_assert!((-1.0 - 1e-6..=1.0 + 1e-6).contains(&s), "status {s} out of range");
        }
        prop_assert!(obs.subtask_token < create_env::SUBTASK_VOCAB.len());
    }

    /// Every action advances the step counter by exactly one, whatever the
    /// world state — energy accounting depends on this.
    #[test]
    fn steps_count_every_action(
        task_idx in 0usize..CRAFT_TASKS.len(),
        seed in 0u64..100,
        actions in prop::collection::vec(0usize..Action::COUNT, 1..50),
    ) {
        let task = CRAFT_TASKS[task_idx];
        let mut world = World::for_task(task, seed);
        world.set_subtask(task.reference_plan()[0]);
        let before = world.steps();
        for &a in &actions {
            world.step(Action::from_index(a));
        }
        prop_assert_eq!(world.steps(), before + actions.len() as u64);
    }

    /// World generation is a pure function of (task, seed).
    #[test]
    fn generation_is_pure(task_idx in 0usize..CRAFT_TASKS.len(), seed in 0u64..500) {
        let task = CRAFT_TASKS[task_idx];
        let a = World::for_task(task, seed);
        let b = World::for_task(task, seed);
        prop_assert_eq!(a.observe(), b.observe());
    }

    /// Rendered observation images are valid RGB in [0, 1].
    #[test]
    fn rendered_images_are_valid_rgb(seed in 0u64..100) {
        let world = World::for_task(TaskId::Stone, seed);
        let img = world.observe().render_image();
        prop_assert!(img.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
