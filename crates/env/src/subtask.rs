//! Subtasks: the vocabulary shared by the planner (which emits them) and
//! the controller (which is prompted with one at a time).

use crate::item::{Inventory, Item};
use crate::recipe::Recipe;
use std::fmt;

/// Objects in the manipulation world (LIBERO / CALVIN / OXE analogs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArmObject {
    /// LIBERO wine bottle.
    Wine,
    /// LIBERO alphabet soup can.
    Soup,
    /// LIBERO bbq sauce bottle.
    Bbq,
    /// OXE eggplant.
    Eggplant,
    /// OXE coke can.
    Coke,
    /// OXE carrot.
    Carrot,
    /// CALVIN sliding block.
    Block,
    /// CALVIN LED button.
    Button,
    /// CALVIN drawer handle.
    Handle,
    /// OXE drawer front.
    Drawer,
    /// OXE generic graspable object.
    Widget,
}

/// Placement targets in the manipulation world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArmTarget {
    /// Top of the cabinet.
    CabinetTop,
    /// The basket.
    Basket,
    /// The plate.
    Plate,
    /// Inside the drawer.
    DrawerSpot,
    /// A marked zone near another object.
    Zone,
}

/// One unit of work the planner can schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Subtask {
    /// Gather logs until holding `n`.
    MineLog(u32),
    /// Mine cobblestone until holding `n` (needs a wooden pickaxe).
    MineStone(u32),
    /// Mine coal until holding `n` (needs a wooden pickaxe).
    MineCoal(u32),
    /// Mine iron ore until holding `n` (needs a stone pickaxe).
    MineIron(u32),
    /// Craft planks until holding `n`.
    CraftPlanks(u32),
    /// Craft sticks until holding `n`.
    CraftSticks(u32),
    /// Craft a crafting table.
    CraftTable,
    /// Craft a wooden pickaxe.
    CraftWoodenPickaxe,
    /// Craft a stone pickaxe.
    CraftStonePickaxe,
    /// Craft a furnace.
    CraftFurnace,
    /// Craft an iron sword.
    CraftIronSword,
    /// Smelt charcoal until holding `n`.
    SmeltCharcoal(u32),
    /// Smelt iron ingots until holding `n`.
    SmeltIron(u32),
    /// Cook chicken until holding `n`.
    CookChicken(u32),
    /// Hunt chickens until holding `n` raw chicken.
    HuntChicken(u32),
    /// Shear sheep until holding `n` wool.
    ShearWool(u32),
    /// Collect wheat seeds until holding `n`.
    CollectSeeds(u32),
    /// Pick up an object (manipulation world).
    Pick(ArmObject),
    /// Place the held object at a target (manipulation world).
    PlaceAt(ArmTarget),
    /// Press the button (manipulation world).
    PressButton,
    /// Slide the block into the drawer (manipulation world).
    SlideBlock,
    /// Pull the handle to open the drawer (manipulation world).
    PullHandle,
    /// Pull open the drawer front (manipulation world).
    PullDrawer,
    /// Do nothing (the fallback for unintelligible plans).
    Idle,
}

/// The full subtask vocabulary, in token order. Every plan entry must come
/// from this list so planner tokens and subtasks map 1:1.
pub const SUBTASK_VOCAB: &[Subtask] = &[
    Subtask::MineLog(3),
    Subtask::MineLog(4),
    Subtask::MineLog(10),
    Subtask::MineStone(3),
    Subtask::MineStone(8),
    Subtask::MineStone(11),
    Subtask::MineCoal(1),
    Subtask::MineIron(2),
    Subtask::CraftPlanks(9),
    Subtask::CraftPlanks(12),
    Subtask::CraftSticks(4),
    Subtask::CraftSticks(6),
    Subtask::CraftTable,
    Subtask::CraftWoodenPickaxe,
    Subtask::CraftStonePickaxe,
    Subtask::CraftFurnace,
    Subtask::CraftIronSword,
    Subtask::SmeltCharcoal(1),
    Subtask::SmeltIron(2),
    Subtask::CookChicken(1),
    Subtask::HuntChicken(1),
    Subtask::ShearWool(5),
    Subtask::CollectSeeds(10),
    Subtask::Pick(ArmObject::Wine),
    Subtask::Pick(ArmObject::Soup),
    Subtask::Pick(ArmObject::Bbq),
    Subtask::Pick(ArmObject::Eggplant),
    Subtask::Pick(ArmObject::Coke),
    Subtask::Pick(ArmObject::Carrot),
    Subtask::Pick(ArmObject::Widget),
    Subtask::PlaceAt(ArmTarget::CabinetTop),
    Subtask::PlaceAt(ArmTarget::Basket),
    Subtask::PlaceAt(ArmTarget::Plate),
    Subtask::PlaceAt(ArmTarget::DrawerSpot),
    Subtask::PlaceAt(ArmTarget::Zone),
    Subtask::PressButton,
    Subtask::SlideBlock,
    Subtask::PullHandle,
    Subtask::PullDrawer,
    Subtask::Idle,
];

impl Subtask {
    /// Token id of this subtask in [`SUBTASK_VOCAB`], if it is a vocabulary
    /// entry.
    pub fn token_id(self) -> Option<usize> {
        SUBTASK_VOCAB.iter().position(|&s| s == self)
    }

    /// Subtask for a vocabulary token id.
    pub fn from_token_id(id: usize) -> Option<Subtask> {
        SUBTASK_VOCAB.get(id).copied()
    }

    /// Whether this subtask belongs to the crafting world.
    pub fn is_craftworld(self) -> bool {
        !matches!(
            self,
            Subtask::Pick(_)
                | Subtask::PlaceAt(_)
                | Subtask::PressButton
                | Subtask::SlideBlock
                | Subtask::PullHandle
                | Subtask::PullDrawer
        ) && self != Subtask::Idle
    }

    /// The recipe the `Craft` action executes while this subtask is active
    /// (crafting world only).
    pub fn craft_recipe(self) -> Option<&'static Recipe> {
        let output = match self {
            Subtask::CraftPlanks(_) => Item::Plank,
            Subtask::CraftSticks(_) => Item::Stick,
            Subtask::CraftTable => Item::CraftingTable,
            Subtask::CraftWoodenPickaxe => Item::WoodenPickaxe,
            Subtask::CraftStonePickaxe => Item::StonePickaxe,
            Subtask::CraftFurnace => Item::Furnace,
            Subtask::CraftIronSword => Item::IronSword,
            Subtask::SmeltCharcoal(_) => Item::Charcoal,
            Subtask::SmeltIron(_) => Item::IronIngot,
            Subtask::CookChicken(_) => Item::CookedChicken,
            _ => return None,
        };
        Recipe::for_output(output)
    }

    /// Whether the crafting-world goal of this subtask is met by `inv`.
    ///
    /// Manipulation-world subtask completion is judged by the arm world's
    /// own state, not the inventory.
    pub fn goal_met(self, inv: &Inventory) -> bool {
        match self {
            Subtask::MineLog(n) => inv.count(Item::Log) >= n,
            Subtask::MineStone(n) => inv.count(Item::Cobblestone) >= n,
            Subtask::MineCoal(n) => inv.count(Item::Coal) >= n,
            Subtask::MineIron(n) => inv.count(Item::IronOre) >= n,
            Subtask::CraftPlanks(n) => inv.count(Item::Plank) >= n,
            Subtask::CraftSticks(n) => inv.count(Item::Stick) >= n,
            Subtask::CraftTable => inv.has(Item::CraftingTable),
            Subtask::CraftWoodenPickaxe => inv.has(Item::WoodenPickaxe),
            Subtask::CraftStonePickaxe => inv.has(Item::StonePickaxe),
            Subtask::CraftFurnace => inv.has(Item::Furnace),
            Subtask::CraftIronSword => inv.has(Item::IronSword),
            Subtask::SmeltCharcoal(n) => inv.count(Item::Charcoal) >= n,
            Subtask::SmeltIron(n) => inv.count(Item::IronIngot) >= n,
            Subtask::CookChicken(n) => inv.count(Item::CookedChicken) >= n,
            Subtask::HuntChicken(n) => inv.count(Item::RawChicken) >= n,
            Subtask::ShearWool(n) => inv.count(Item::Wool) >= n,
            Subtask::CollectSeeds(n) => inv.count(Item::WheatSeeds) >= n,
            _ => false,
        }
    }

    /// Whether this subtask is *sequential* (progress can be destroyed by a
    /// single wrong action) as opposed to *stochastic* (noise only wastes
    /// time) — the Fig. 6 distinction.
    pub fn is_sequential(self) -> bool {
        matches!(
            self,
            Subtask::MineLog(_)
                | Subtask::MineStone(_)
                | Subtask::MineCoal(_)
                | Subtask::MineIron(_)
                | Subtask::SlideBlock
                | Subtask::PullHandle
                | Subtask::PullDrawer
        )
    }
}

impl fmt::Display for Subtask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subtask::MineLog(n) => write!(f, "mine {n} logs"),
            Subtask::MineStone(n) => write!(f, "mine {n} cobblestone"),
            Subtask::MineCoal(n) => write!(f, "mine {n} coal"),
            Subtask::MineIron(n) => write!(f, "mine {n} iron ore"),
            Subtask::CraftPlanks(n) => write!(f, "craft {n} planks"),
            Subtask::CraftSticks(n) => write!(f, "craft {n} sticks"),
            Subtask::CraftTable => write!(f, "craft crafting table"),
            Subtask::CraftWoodenPickaxe => write!(f, "craft wooden pickaxe"),
            Subtask::CraftStonePickaxe => write!(f, "craft stone pickaxe"),
            Subtask::CraftFurnace => write!(f, "craft furnace"),
            Subtask::CraftIronSword => write!(f, "craft iron sword"),
            Subtask::SmeltCharcoal(n) => write!(f, "smelt {n} charcoal"),
            Subtask::SmeltIron(n) => write!(f, "smelt {n} iron ingots"),
            Subtask::CookChicken(n) => write!(f, "cook {n} chicken"),
            Subtask::HuntChicken(n) => write!(f, "hunt {n} chickens"),
            Subtask::ShearWool(n) => write!(f, "shear {n} wool"),
            Subtask::CollectSeeds(n) => write!(f, "collect {n} wheat seeds"),
            Subtask::Pick(o) => write!(f, "pick up {o:?}"),
            Subtask::PlaceAt(t) => write!(f, "place at {t:?}"),
            Subtask::PressButton => write!(f, "press the button"),
            Subtask::SlideBlock => write!(f, "slide the block"),
            Subtask::PullHandle => write!(f, "pull the handle"),
            Subtask::PullDrawer => write!(f, "pull open the drawer"),
            Subtask::Idle => write!(f, "idle"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocab_tokens_roundtrip() {
        for (i, &s) in SUBTASK_VOCAB.iter().enumerate() {
            assert_eq!(s.token_id(), Some(i));
            assert_eq!(Subtask::from_token_id(i), Some(s));
        }
        assert!(Subtask::from_token_id(SUBTASK_VOCAB.len()).is_none());
    }

    #[test]
    fn vocab_has_no_duplicates() {
        for (i, a) in SUBTASK_VOCAB.iter().enumerate() {
            for b in &SUBTASK_VOCAB[i + 1..] {
                assert_ne!(a, b, "duplicate vocab entry {a:?}");
            }
        }
    }

    #[test]
    fn goal_predicates_track_inventory() {
        let mut inv = Inventory::new();
        assert!(!Subtask::MineLog(3).goal_met(&inv));
        inv.add(Item::Log, 3);
        assert!(Subtask::MineLog(3).goal_met(&inv));
        assert!(!Subtask::CraftTable.goal_met(&inv));
        inv.add(Item::CraftingTable, 1);
        assert!(Subtask::CraftTable.goal_met(&inv));
    }

    #[test]
    fn craft_recipes_resolve() {
        assert!(Subtask::CraftPlanks(9).craft_recipe().is_some());
        assert!(Subtask::SmeltIron(2).craft_recipe().is_some());
        assert!(Subtask::MineLog(3).craft_recipe().is_none());
        assert!(Subtask::PressButton.craft_recipe().is_none());
    }

    #[test]
    fn sequential_classification_matches_paper() {
        // log and stone degrade abruptly (sequential); chicken and wool
        // degrade gracefully (stochastic) — Fig. 6.
        assert!(Subtask::MineLog(10).is_sequential());
        assert!(Subtask::MineStone(3).is_sequential());
        assert!(!Subtask::HuntChicken(1).is_sequential());
        assert!(!Subtask::ShearWool(5).is_sequential());
    }

    #[test]
    fn world_classification() {
        assert!(Subtask::MineLog(3).is_craftworld());
        assert!(!Subtask::Pick(ArmObject::Wine).is_craftworld());
        assert!(!Subtask::Idle.is_craftworld());
    }
}
