//! The manipulation world: a tabletop analog of LIBERO / CALVIN / OXE.
//!
//! Used by the cross-platform generality study (paper Sec. 6.7, Fig. 17):
//! the OpenVLA/RoboFlamingo planner presets and the Octo/RT-1 controller
//! presets run their twelve manipulation tasks here. The world is a grid
//! tabletop with a gripper agent, graspable objects, placement targets and
//! fixtures (button, handle, drawer); like the crafting world it mixes
//! one-shot interactions (press) with sequential streaks (pull, slide).

use crate::observe::{cell_id, Observation, STATUS_DIMS, VIEW_CELLS, VIEW_RADIUS, VIEW_SIZE};
use crate::subtask::{ArmObject, ArmTarget, Subtask};
use crate::task::TaskId;
use crate::types::{Action, Pos};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Tabletop edge length.
pub const TABLE_SIZE: i32 = 12;

/// The manipulation environment for one task trial.
#[derive(Debug, Clone)]
pub struct ArmWorld {
    task: TaskId,
    objects: Vec<(ArmObject, Pos)>,
    holding: Option<ArmObject>,
    placements: Vec<(ArmObject, ArmTarget)>,
    button_pressed: bool,
    drawer_open: bool,
    block_pos: Pos,
    block_in_drawer: bool,
    agent: Pos,
    subtask: Subtask,
    streak_target: Option<Pos>,
    streak: u32,
    steps: u64,
}

/// Fixed fixture positions.
fn button_pos() -> Pos {
    Pos::new(2, 2)
}
fn handle_pos() -> Pos {
    Pos::new(TABLE_SIZE - 2, TABLE_SIZE / 2)
}
fn drawer_pos() -> Pos {
    Pos::new(TABLE_SIZE - 2, TABLE_SIZE / 2 + 2)
}

/// Target regions.
fn target_pos(t: ArmTarget) -> Pos {
    match t {
        ArmTarget::CabinetTop => Pos::new(TABLE_SIZE / 2, 1),
        ArmTarget::Basket => Pos::new(2, TABLE_SIZE - 3),
        ArmTarget::Plate => Pos::new(TABLE_SIZE - 3, TABLE_SIZE - 3),
        ArmTarget::DrawerSpot => drawer_pos(),
        ArmTarget::Zone => Pos::new(TABLE_SIZE / 2, TABLE_SIZE - 2),
    }
}

impl ArmWorld {
    /// Generates a tabletop for `task` with the trial seed.
    ///
    /// # Panics
    ///
    /// Panics if `task` is a crafting-world task.
    pub fn new(task: TaskId, seed: u64) -> Self {
        assert!(
            task.biome().is_none(),
            "{task} is a crafting-world task, not a manipulation task"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA4A4_0000);
        let agent = Pos::new(TABLE_SIZE / 2, TABLE_SIZE / 2);
        let fixtures = [button_pos(), handle_pos(), drawer_pos()];
        let mut objects = Vec::new();
        let mut used: Vec<Pos> = fixtures.to_vec();
        used.push(agent);
        // Which objects exist depends on the task (plus a distractor).
        let needed: Vec<ArmObject> = task
            .reference_plan()
            .iter()
            .filter_map(|st| match st {
                Subtask::Pick(o) => Some(*o),
                _ => None,
            })
            .collect();
        let spawn = |objects: &mut Vec<(ArmObject, Pos)>,
                     used: &mut Vec<Pos>,
                     kind: ArmObject,
                     rng: &mut StdRng| {
            for _ in 0..200 {
                let p = Pos::new(
                    rng.random_range(1..TABLE_SIZE - 1),
                    rng.random_range(1..TABLE_SIZE - 1),
                );
                let corridor =
                    p.y == TABLE_SIZE / 2 + 2 && p.x >= TABLE_SIZE / 2 && p.x <= TABLE_SIZE - 2;
                if !used.contains(&p)
                    && !corridor
                    && [
                        ArmTarget::CabinetTop,
                        ArmTarget::Basket,
                        ArmTarget::Plate,
                        ArmTarget::Zone,
                    ]
                    .iter()
                    .all(|&t| target_pos(t) != p)
                {
                    objects.push((kind, p));
                    used.push(p);
                    return;
                }
            }
        };
        for kind in &needed {
            spawn(&mut objects, &mut used, *kind, &mut rng);
        }
        // One distractor object for visual variety.
        spawn(&mut objects, &mut used, ArmObject::Coke, &mut rng);

        // The sliding block starts left of the drawer's approach column.
        let block_pos = Pos::new(TABLE_SIZE / 2, TABLE_SIZE / 2 + 2);

        let plan = task.reference_plan();
        Self {
            task,
            objects,
            holding: None,
            placements: Vec::new(),
            button_pressed: false,
            drawer_open: false,
            block_pos,
            block_in_drawer: false,
            agent,
            subtask: plan[0],
            streak_target: None,
            streak: 0,
            steps: 0,
        }
    }

    /// The task this world was generated for.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// Agent (gripper) position.
    pub fn agent(&self) -> Pos {
        self.agent
    }

    /// The held object, if any.
    pub fn holding(&self) -> Option<ArmObject> {
        self.holding
    }

    fn in_bounds(&self, p: Pos) -> bool {
        (0..TABLE_SIZE).contains(&p.x) && (0..TABLE_SIZE).contains(&p.y)
    }

    fn occupied(&self, p: Pos) -> bool {
        self.objects.iter().any(|&(_, op)| op == p)
            || [button_pos(), handle_pos(), drawer_pos()].contains(&p)
            || (p == self.block_pos && !self.block_in_drawer)
    }

    fn passable(&self, p: Pos) -> bool {
        self.in_bounds(p) && !self.occupied(p)
    }

    /// The position the current subtask wants the agent adjacent to.
    fn subtask_target(&self) -> Option<Pos> {
        match self.subtask {
            Subtask::Pick(o) => self
                .objects
                .iter()
                .find(|&&(kind, _)| kind == o)
                .map(|&(_, p)| p),
            Subtask::PlaceAt(t) => Some(target_pos(t)),
            Subtask::PressButton => Some(button_pos()),
            Subtask::SlideBlock => (!self.block_in_drawer).then_some(self.block_pos),
            Subtask::PullHandle => Some(handle_pos()),
            Subtask::PullDrawer => Some(drawer_pos()),
            _ => None,
        }
    }

    /// Whether the active subtask's goal is met.
    pub fn subtask_complete(&self) -> bool {
        match self.subtask {
            Subtask::Pick(o) => self.holding == Some(o),
            Subtask::PlaceAt(t) => self.placements.iter().any(|&(_, pt)| pt == t),
            Subtask::PressButton => self.button_pressed,
            Subtask::SlideBlock => self.block_in_drawer,
            Subtask::PullHandle | Subtask::PullDrawer => self.drawer_open,
            _ => false,
        }
    }

    /// Whether the overall task goal is met (final plan entry's goal).
    pub fn task_goal_met(&self) -> bool {
        let plan = self.task.reference_plan();
        let Some(&last) = plan.last() else {
            return false;
        };
        match last {
            Subtask::Pick(o) => self.holding == Some(o),
            Subtask::PlaceAt(t) => self.placements.iter().any(|&(_, pt)| pt == t),
            Subtask::PressButton => self.button_pressed,
            Subtask::SlideBlock => self.block_in_drawer,
            Subtask::PullHandle | Subtask::PullDrawer => self.drawer_open,
            _ => false,
        }
    }

    /// Sets the active subtask (resets streaks).
    pub fn set_subtask(&mut self, s: Subtask) {
        self.subtask = s;
        self.streak_target = None;
        self.streak = 0;
    }

    /// The active subtask.
    pub fn current_subtask(&self) -> Subtask {
        self.subtask
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    fn do_interact(&mut self) {
        let Some(target) = self.subtask_target() else {
            self.streak = 0;
            return;
        };
        if !self.agent.adjacent_to(target) {
            self.streak = 0;
            self.streak_target = None;
            return;
        }
        match self.subtask {
            Subtask::Pick(o) if self.holding.is_none() => {
                if let Some(i) = self
                    .objects
                    .iter()
                    .position(|&(k, p)| k == o && p == target)
                {
                    self.objects.swap_remove(i);
                    self.holding = Some(o);
                }
            }
            Subtask::Pick(_) => {}
            Subtask::PlaceAt(t) => {
                if let Some(obj) = self.holding.take() {
                    self.placements.push((obj, t));
                }
            }
            Subtask::PressButton => {
                self.button_pressed = true;
            }
            Subtask::PullHandle | Subtask::PullDrawer => {
                // Sequential: 3 consecutive pulls open the drawer.
                if self.streak_target == Some(target) {
                    self.streak += 1;
                } else {
                    self.streak_target = Some(target);
                    self.streak = 1;
                }
                if self.streak >= 3 {
                    self.drawer_open = true;
                    self.streak = 0;
                    self.streak_target = None;
                }
            }
            Subtask::SlideBlock => {
                // Push the block one cell away from the gripper; it falls
                // into the drawer when it reaches the drawer cell.
                let dx = (self.block_pos.x - self.agent.x).signum();
                let dy = (self.block_pos.y - self.agent.y).signum();
                let next = Pos::new(self.block_pos.x + dx, self.block_pos.y + dy);
                if next == drawer_pos() {
                    self.block_in_drawer = true;
                } else if self.in_bounds(next) && !self.occupied(next) {
                    self.block_pos = next;
                }
            }
            _ => {}
        }
    }

    /// Advances the world by one gripper action.
    pub fn step(&mut self, action: Action) {
        self.steps += 1;
        match action {
            Action::North | Action::South | Action::East | Action::West => {
                let next = self.agent.stepped(action);
                if self.passable(next) {
                    self.agent = next;
                }
                self.streak = 0;
                self.streak_target = None;
            }
            Action::Interact => self.do_interact(),
            Action::Craft | Action::Wait => {
                self.streak = 0;
                self.streak_target = None;
            }
        }
    }

    fn bfs_from_cells(&self, zero_cells: &[Pos]) -> Vec<u32> {
        let n = (TABLE_SIZE * TABLE_SIZE) as usize;
        let mut dist = vec![u32::MAX; n];
        let mut queue = VecDeque::new();
        for &p in zero_cells {
            if self.in_bounds(p) && (self.passable(p) || p == self.agent) {
                let idx = (p.y * TABLE_SIZE + p.x) as usize;
                if dist[idx] != 0 {
                    dist[idx] = 0;
                    queue.push_back(p);
                }
            }
        }
        while let Some(p) = queue.pop_front() {
            let d = dist[(p.y * TABLE_SIZE + p.x) as usize];
            for next in p.neighbors() {
                if !self.in_bounds(next) || !self.passable(next) {
                    continue;
                }
                let idx = (next.y * TABLE_SIZE + next.x) as usize;
                if dist[idx] == u32::MAX {
                    dist[idx] = d + 1;
                    queue.push_back(next);
                }
            }
        }
        dist
    }

    /// The scripted expert's action distribution.
    pub fn expert_policy(&self) -> [f32; Action::COUNT] {
        let mut probs = [0.0f32; Action::COUNT];
        if self.subtask_complete() || self.subtask == Subtask::Idle {
            probs[Action::Wait.index()] = 1.0;
            return probs;
        }
        let Some(target) = self.subtask_target() else {
            probs[Action::Wait.index()] = 1.0;
            return probs;
        };
        // A PlaceAt with empty gripper is infeasible (corrupted plan).
        if matches!(self.subtask, Subtask::PlaceAt(_)) && self.holding.is_none() {
            probs[Action::Wait.index()] = 1.0;
            return probs;
        }
        // For SlideBlock the push direction matters: the expert stands on
        // the side opposite the drawer before interacting.
        if self.subtask == Subtask::SlideBlock && self.agent.adjacent_to(target) {
            let dx = (target.x - self.agent.x).signum();
            let dy = (target.y - self.agent.y).signum();
            let pushed = Pos::new(target.x + dx, target.y + dy);
            let toward_drawer = pushed.manhattan(drawer_pos()) < target.manhattan(drawer_pos());
            if toward_drawer {
                probs[Action::Interact.index()] = 1.0;
                return probs;
            }
            // Reposition: walk around the block (fall through to BFS with a
            // synthetic goal on the far side).
        } else if self.agent.adjacent_to(target) {
            probs[Action::Interact.index()] = 1.0;
            return probs;
        }
        // Navigate toward the target (for SlideBlock, toward the exact
        // standing cell on the side opposite the drawer).
        let dist = if self.subtask == Subtask::SlideBlock {
            let dx = (drawer_pos().x - target.x).signum();
            let dy = (drawer_pos().y - target.y).signum();
            let stand = Pos::new(target.x - dx, target.y - dy);
            self.bfs_from_cells(&[stand])
        } else {
            self.bfs_from_cells(&target.neighbors())
        };
        let here = dist[(self.agent.y * TABLE_SIZE + self.agent.x) as usize];
        if here == 0 {
            // At a valid acting cell (only reachable for SlideBlock, since
            // adjacency was handled above).
            probs[Action::Interact.index()] = 1.0;
            return probs;
        }
        let mut best = Vec::new();
        if here != u32::MAX {
            for a in [Action::North, Action::South, Action::East, Action::West] {
                let next = self.agent.stepped(a);
                if !self.passable(next) {
                    continue;
                }
                let d = dist[(next.y * TABLE_SIZE + next.x) as usize];
                if d != u32::MAX && d + 1 == here {
                    best.push(a);
                }
            }
        }
        if best.is_empty() {
            // Roam.
            let moves: Vec<Action> = [Action::North, Action::South, Action::East, Action::West]
                .into_iter()
                .filter(|&a| self.passable(self.agent.stepped(a)))
                .collect();
            if moves.is_empty() {
                probs[Action::Wait.index()] = 1.0;
            } else {
                let p = 1.0 / moves.len() as f32;
                for m in moves {
                    probs[m.index()] = p;
                }
            }
        } else {
            let p = 1.0 / best.len() as f32;
            for m in best {
                probs[m.index()] = p;
            }
        }
        probs
    }

    /// Builds the controller observation.
    pub fn observe(&self) -> Observation {
        let mut view = [cell_id::WALL; VIEW_CELLS];
        for vy in 0..VIEW_SIZE as i32 {
            for vx in 0..VIEW_SIZE as i32 {
                let p = Pos::new(
                    self.agent.x + vx - VIEW_RADIUS,
                    self.agent.y + vy - VIEW_RADIUS,
                );
                if !self.in_bounds(p) {
                    continue;
                }
                let mut id = cell_id::GROUND;
                if [button_pos(), handle_pos(), drawer_pos()].contains(&p) {
                    id = cell_id::FIXTURE;
                } else if self.objects.iter().any(|&(_, op)| op == p)
                    || (p == self.block_pos && !self.block_in_drawer)
                {
                    id = cell_id::OBJECT;
                } else if [
                    ArmTarget::CabinetTop,
                    ArmTarget::Basket,
                    ArmTarget::Plate,
                    ArmTarget::Zone,
                ]
                .iter()
                .any(|&t| target_pos(t) == p)
                {
                    id = cell_id::TARGET;
                }
                view[(vy * VIEW_SIZE as i32 + vx) as usize] = id;
            }
        }

        let mut compass = [0.0f32; 4];
        if let Some(t) = self.subtask_target() {
            let dx = (t.x - self.agent.x) as f32;
            let dy = (t.y - self.agent.y) as f32;
            let d = (dx * dx + dy * dy).sqrt().max(1e-6);
            compass = [dx / d, dy / d, (d / 12.0).min(1.0), 1.0];
        }

        let mut status = [0.0f32; STATUS_DIMS];
        status[0] = self.streak as f32 / 3.0;
        status[10] = if self.subtask_complete() { 1.0 } else { 0.0 };
        status[11] = if self.holding.is_some() { 1.0 } else { 0.0 };
        for (i, a) in [Action::North, Action::South, Action::East, Action::West]
            .into_iter()
            .enumerate()
        {
            let p = self.agent.stepped(a);
            status[12 + i] = if self.passable(p) { 1.0 } else { 0.0 };
            status[16 + i] = if Some(p) == self.subtask_target() {
                1.0
            } else {
                0.0
            };
        }

        Observation {
            view,
            compass,
            status,
            subtask_token: self.subtask.token_id().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_expert(world: &mut ArmWorld, max_steps: u32) -> bool {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..max_steps {
            if world.subtask_complete() {
                return true;
            }
            let probs = world.expert_policy();
            let mut r: f32 = rng.random_range(0.0..1.0);
            let mut chosen = Action::Wait;
            for (i, &p) in probs.iter().enumerate() {
                if r < p {
                    chosen = Action::from_index(i);
                    break;
                }
                r -= p;
            }
            world.step(chosen);
        }
        world.subtask_complete()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ArmWorld::new(TaskId::Wine, 3);
        let b = ArmWorld::new(TaskId::Wine, 3);
        assert_eq!(a.objects, b.objects);
    }

    #[test]
    fn expert_picks_up_the_wine() {
        let mut w = ArmWorld::new(TaskId::Wine, 4);
        assert!(run_expert(&mut w, 200), "expert failed to pick the wine");
        assert_eq!(w.holding(), Some(ArmObject::Wine));
    }

    #[test]
    fn expert_completes_pick_and_place() {
        let mut w = ArmWorld::new(TaskId::Alphabet, 5);
        assert!(run_expert(&mut w, 200), "pick failed");
        w.set_subtask(Subtask::PlaceAt(ArmTarget::Basket));
        assert!(run_expert(&mut w, 200), "place failed");
        assert!(w.task_goal_met());
    }

    #[test]
    fn button_press_is_one_shot() {
        let mut w = ArmWorld::new(TaskId::Button, 6);
        assert!(run_expert(&mut w, 200), "button press failed");
        assert!(w.button_pressed);
    }

    #[test]
    fn handle_needs_consecutive_pulls() {
        let mut w = ArmWorld::new(TaskId::Handle, 7);
        // Drive the agent adjacent to the handle with the expert.
        let mut guard = 0;
        while !w.agent.adjacent_to(handle_pos()) && guard < 300 {
            guard += 1;
            let probs = w.expert_policy();
            let best = probs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            w.step(Action::from_index(best));
        }
        assert!(w.agent.adjacent_to(handle_pos()), "never reached handle");
        w.step(Action::Interact);
        w.step(Action::Interact);
        assert!(!w.drawer_open);
        w.step(Action::Wait); // interruption resets the pull streak
        w.step(Action::Interact);
        w.step(Action::Interact);
        assert!(!w.drawer_open, "streak must restart after interruption");
        w.step(Action::Interact);
        assert!(w.drawer_open);
    }

    #[test]
    fn slide_block_reaches_drawer() {
        let mut w = ArmWorld::new(TaskId::Block, 8);
        assert!(run_expert(&mut w, 400), "block never reached the drawer");
        assert!(w.block_in_drawer);
    }

    #[test]
    fn place_without_holding_is_infeasible() {
        let mut w = ArmWorld::new(TaskId::Wine, 9);
        w.set_subtask(Subtask::PlaceAt(ArmTarget::Basket));
        let probs = w.expert_policy();
        assert_eq!(probs[Action::Wait.index()], 1.0);
    }

    #[test]
    fn observation_shows_fixtures_and_objects() {
        let w = ArmWorld::new(TaskId::Coke, 10);
        let obs = w.observe();
        assert!(obs.view.iter().all(|&v| v < 14));
        assert_eq!(obs.status[11], 0.0, "not holding initially");
    }

    #[test]
    #[should_panic(expected = "crafting-world task")]
    fn craftworld_task_is_rejected() {
        let _ = ArmWorld::new(TaskId::Wooden, 0);
    }
}
