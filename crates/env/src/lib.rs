//! Simulated embodied-AI environments for the CREATE reproduction.
//!
//! Two worlds stand in for the paper's evaluation platforms:
//!
//! * [`craftworld::CraftWorld`] — a Minecraft-lite crafting grid world (the
//!   JARVIS-1 testbed analog): biomes, trees, ores, animals, recipes, tool
//!   gating, and interaction streaks that make sequential subtasks brittle.
//! * [`armworld::ArmWorld`] — a tabletop manipulation world (the LIBERO /
//!   CALVIN / OXE analog) for the cross-platform study.
//!
//! Both expose the same surface — subtasks ([`Subtask`]), observations
//! ([`Observation`]), a scripted expert distribution, and step dynamics —
//! unified by the [`World`] enum so mission runners are world-agnostic.
//!
//! # Example
//!
//! ```
//! use create_env::{TaskId, World};
//!
//! let mut world = World::for_task(TaskId::Wooden, 42);
//! let plan = TaskId::Wooden.reference_plan();
//! world.set_subtask(plan[0]);
//! assert!(!world.subtask_complete());
//! ```

pub mod armworld;
pub mod craftworld;
pub mod item;
pub mod observe;
pub mod recipe;
pub mod subtask;
pub mod task;
pub mod types;

pub use armworld::ArmWorld;
pub use craftworld::CraftWorld;
pub use item::{Inventory, Item};
pub use observe::{Observation, STATUS_DIMS, VIEW_CELLS, VIEW_SIZE};
pub use subtask::{ArmObject, ArmTarget, Subtask, SUBTASK_VOCAB};
pub use task::{Benchmark, Biome, TaskId};
pub use types::{Action, Pos};

/// A world of either kind, dispatching the common environment surface.
#[derive(Debug, Clone)]
pub enum World {
    /// Crafting world (Minecraft analog).
    Craft(CraftWorld),
    /// Manipulation world (LIBERO/CALVIN/OXE analog).
    Arm(ArmWorld),
}

impl World {
    /// Builds the right world for `task` with the trial seed.
    pub fn for_task(task: TaskId, seed: u64) -> World {
        if task.biome().is_some() {
            World::Craft(CraftWorld::new(task, seed))
        } else {
            World::Arm(ArmWorld::new(task, seed))
        }
    }

    /// The task this world was generated for.
    pub fn task(&self) -> TaskId {
        match self {
            World::Craft(w) => w.task(),
            World::Arm(w) => w.task(),
        }
    }

    /// Sets the active subtask.
    pub fn set_subtask(&mut self, s: Subtask) {
        match self {
            World::Craft(w) => w.set_subtask(s),
            World::Arm(w) => w.set_subtask(s),
        }
    }

    /// The active subtask.
    pub fn current_subtask(&self) -> Subtask {
        match self {
            World::Craft(w) => w.current_subtask(),
            World::Arm(w) => w.current_subtask(),
        }
    }

    /// Whether the active subtask's goal is met.
    pub fn subtask_complete(&self) -> bool {
        match self {
            World::Craft(w) => w.subtask_complete(),
            World::Arm(w) => w.subtask_complete(),
        }
    }

    /// Whether the overall task goal is met.
    pub fn task_goal_met(&self) -> bool {
        match self {
            World::Craft(w) => w.task_goal_met(),
            World::Arm(w) => w.task_goal_met(),
        }
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        match self {
            World::Craft(w) => w.steps(),
            World::Arm(w) => w.steps(),
        }
    }

    /// Advances the world by one action.
    pub fn step(&mut self, a: Action) {
        match self {
            World::Craft(w) => w.step(a),
            World::Arm(w) => w.step(a),
        }
    }

    /// Builds the controller observation.
    pub fn observe(&self) -> Observation {
        match self {
            World::Craft(w) => w.observe(),
            World::Arm(w) => w.observe(),
        }
    }

    /// The scripted expert's action distribution.
    pub fn expert_policy(&self) -> [f32; Action::COUNT] {
        match self {
            World::Craft(w) => w.expert_policy(),
            World::Arm(w) => w.expert_policy(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_task_picks_the_right_world() {
        assert!(matches!(
            World::for_task(TaskId::Wooden, 0),
            World::Craft(_)
        ));
        assert!(matches!(World::for_task(TaskId::Wine, 0), World::Arm(_)));
    }

    #[test]
    fn expert_distributions_are_normalized() {
        for task in [TaskId::Wooden, TaskId::Wine, TaskId::Button] {
            let mut world = World::for_task(task, 9);
            world.set_subtask(task.reference_plan()[0]);
            let p = world.expert_policy();
            let sum: f32 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "{task}: sums to {sum}");
            assert!(p.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn world_dispatch_steps_and_counts() {
        let mut w = World::for_task(TaskId::Seed, 1);
        w.step(Action::Wait);
        w.step(Action::North);
        assert_eq!(w.steps(), 2);
    }
}
