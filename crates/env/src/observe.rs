//! Observations: what the controller and the entropy predictor see.
//!
//! The controller receives a structured feature view (local cell grid,
//! compass to the nearest subtask target, inventory/progress status); the
//! entropy predictor receives a rendered 64×64 RGB image of the same local
//! view (paper Fig. 11: the predictor takes the observed image plus the
//! subtask prompt embedding).

use create_nn::Tensor3;

/// View half-width: the agent sees a `(2r+1)²` neighbourhood.
pub const VIEW_RADIUS: i32 = 3;

/// View edge length (7).
pub const VIEW_SIZE: usize = (2 * VIEW_RADIUS as usize) + 1;

/// Cells in the view (49).
pub const VIEW_CELLS: usize = VIEW_SIZE * VIEW_SIZE;

/// Number of distinct cell-type ids in views.
pub const CELL_TYPES: usize = 14;

/// Length of the status feature vector.
pub const STATUS_DIMS: usize = 20;

/// Rendered image edge (64×64, matching the predictor CNN input).
pub const IMAGE_SIZE: usize = 64;

/// Cell-type ids used in [`Observation::view`].
pub mod cell_id {
    /// Walkable ground.
    pub const GROUND: u8 = 0;
    /// Tall grass (seed source).
    pub const TALL_GRASS: u8 = 1;
    /// Tree (log source).
    pub const TREE: u8 = 2;
    /// Stone (cobblestone source).
    pub const STONE: u8 = 3;
    /// Coal ore.
    pub const COAL_ORE: u8 = 4;
    /// Iron ore.
    pub const IRON_ORE: u8 = 5;
    /// Water (obstacle).
    pub const WATER: u8 = 6;
    /// Out-of-bounds / wall.
    pub const WALL: u8 = 7;
    /// Chicken (animal overlay).
    pub const CHICKEN: u8 = 8;
    /// Sheep (animal overlay).
    pub const SHEEP: u8 = 9;
    /// Sheared sheep.
    pub const SHEEP_SHEARED: u8 = 10;
    /// Button / fixture (manipulation world).
    pub const FIXTURE: u8 = 11;
    /// Graspable object (manipulation world).
    pub const OBJECT: u8 = 12;
    /// Placement target marker (manipulation world).
    pub const TARGET: u8 = 13;
}

/// One controller observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Local `VIEW_SIZE × VIEW_SIZE` cell-type grid, row-major, agent at
    /// the center.
    pub view: [u8; VIEW_CELLS],
    /// `[dx, dy, distance, visible]` toward the nearest subtask target:
    /// unit direction, distance normalized to `[0,1]`, and a visibility
    /// flag.
    pub compass: [f32; 4],
    /// Inventory / progress / neighbour-passability features.
    pub status: [f32; STATUS_DIMS],
    /// Token id of the active subtask (prompt for the controller).
    pub subtask_token: usize,
}

impl Observation {
    /// An all-zero observation (used for padding and tests).
    pub fn empty() -> Self {
        Self {
            view: [0; VIEW_CELLS],
            compass: [0.0; 4],
            status: [0.0; STATUS_DIMS],
            subtask_token: 0,
        }
    }

    /// Renders the observation to a 64×64 RGB image for the entropy
    /// predictor: each view cell becomes a colored 9×9 block (63×63 plus a
    /// 1-pixel border), the agent is a white center dot, and the compass is
    /// drawn as a red ray from the center.
    pub fn render_image(&self) -> Tensor3 {
        let mut img = Tensor3::zeros(3, IMAGE_SIZE, IMAGE_SIZE);
        let block = 9usize;
        for vr in 0..VIEW_SIZE {
            for vc in 0..VIEW_SIZE {
                let id = self.view[vr * VIEW_SIZE + vc];
                let (r, g, b) = cell_color(id);
                for pr in 0..block {
                    for pc in 0..block {
                        let y = vr * block + pr;
                        let x = vc * block + pc;
                        img.set(0, y, x, r);
                        img.set(1, y, x, g);
                        img.set(2, y, x, b);
                    }
                }
            }
        }
        // Agent marker: white 3×3 at the center block.
        let center = (VIEW_SIZE / 2) * block + block / 2;
        for dy in -1i32..=1 {
            for dx in -1i32..=1 {
                let y = (center as i32 + dy) as usize;
                let x = (center as i32 + dx) as usize;
                img.set(0, y, x, 1.0);
                img.set(1, y, x, 1.0);
                img.set(2, y, x, 1.0);
            }
        }
        // Compass ray: red pixels along the target direction, with length
        // inversely related to distance (closer target => longer ray).
        if self.compass[3] > 0.5 {
            let len = (12.0 * (1.0 - self.compass[2]) + 4.0) as i32;
            for t in 2..len {
                let y = center as i32 + (self.compass[1] * t as f32) as i32;
                let x = center as i32 + (self.compass[0] * t as f32) as i32;
                if (0..IMAGE_SIZE as i32).contains(&y) && (0..IMAGE_SIZE as i32).contains(&x) {
                    img.set(0, y as usize, x as usize, 1.0);
                    img.set(1, y as usize, x as usize, 0.1);
                    img.set(2, y as usize, x as usize, 0.1);
                }
            }
        }
        img
    }
}

/// RGB color for a cell id (each component in `[0,1]`).
fn cell_color(id: u8) -> (f32, f32, f32) {
    match id {
        cell_id::GROUND => (0.35, 0.65, 0.30),
        cell_id::TALL_GRASS => (0.45, 0.85, 0.35),
        cell_id::TREE => (0.15, 0.35, 0.10),
        cell_id::STONE => (0.50, 0.50, 0.50),
        cell_id::COAL_ORE => (0.20, 0.20, 0.20),
        cell_id::IRON_ORE => (0.75, 0.65, 0.55),
        cell_id::WATER => (0.20, 0.40, 0.85),
        cell_id::WALL => (0.05, 0.05, 0.05),
        cell_id::CHICKEN => (0.95, 0.95, 0.70),
        cell_id::SHEEP => (0.90, 0.90, 0.90),
        cell_id::SHEEP_SHEARED => (0.80, 0.70, 0.65),
        cell_id::FIXTURE => (0.85, 0.20, 0.20),
        cell_id::OBJECT => (0.90, 0.70, 0.20),
        cell_id::TARGET => (0.60, 0.20, 0.80),
        _ => (0.0, 0.0, 0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_observation_is_zeroed() {
        let o = Observation::empty();
        assert!(o.view.iter().all(|&v| v == 0));
        assert_eq!(o.compass, [0.0; 4]);
    }

    #[test]
    fn rendered_image_has_predictor_dimensions() {
        let o = Observation::empty();
        let img = o.render_image();
        assert_eq!((img.c, img.h, img.w), (3, IMAGE_SIZE, IMAGE_SIZE));
    }

    #[test]
    fn agent_marker_is_white() {
        let o = Observation::empty();
        let img = o.render_image();
        let c = (VIEW_SIZE / 2) * 9 + 4;
        assert_eq!(img.get(0, c, c), 1.0);
        assert_eq!(img.get(1, c, c), 1.0);
        assert_eq!(img.get(2, c, c), 1.0);
    }

    #[test]
    fn compass_ray_appears_when_visible() {
        let mut o = Observation::empty();
        o.compass = [1.0, 0.0, 0.2, 1.0];
        let with_ray = o.render_image();
        o.compass = [1.0, 0.0, 0.2, 0.0];
        let without = o.render_image();
        // The red channel should differ somewhere along the ray.
        let diff: f32 = with_ray
            .as_slice()
            .iter()
            .zip(without.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 0.5, "compass ray should change the render");
    }

    #[test]
    fn distinct_cells_have_distinct_colors() {
        for a in 0..CELL_TYPES as u8 {
            for b in (a + 1)..CELL_TYPES as u8 {
                assert_ne!(cell_color(a), cell_color(b), "ids {a} and {b} collide");
            }
        }
    }
}
